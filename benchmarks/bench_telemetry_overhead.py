"""Telemetry overhead: instrumented stepping vs the disabled default.

The observability contract is that the *disabled* recorder costs one
attribute lookup per phase boundary and the *enabled* recorder stays a
small, bounded tax (a handful of span events per step — per rank for
the distributed driver, per ``run()`` call for the single domain).
This file measures both sides so ``compare_bench.py`` keeps the
disabled path inside the standing >30% regression gate, and reports
the enabled/disabled ratio for the record.
"""

import numpy as np
import pytest

from repro.core import Simulation, shear_wave
from repro.parallel import DistributedSimulation
from repro.perf import mflups
from repro.telemetry import Telemetry

SHAPE = (32, 16, 16)


def _single(telemetry=None):
    sim = Simulation("D3Q19", SHAPE, tau=0.8, kernel="planned", telemetry=telemetry)
    rho, u = shear_wave(SHAPE)
    sim.initialize(rho, u)
    sim.run(2)  # warm the plan arena / lazy caches
    return sim


def _distributed(telemetry=None):
    dist = DistributedSimulation(
        "D3Q19",
        SHAPE,
        tau=0.8,
        num_ranks=4,
        ghost_depth=2,
        kernel="planned",
        telemetry=telemetry,
    )
    rho, u = shear_wave(SHAPE)
    dist.initialize(rho, u)
    dist.run(2)
    return dist


@pytest.mark.parametrize("telemetry", ["disabled", "enabled"])
def test_single_domain_step_overhead(benchmark, telemetry):
    recorder = Telemetry.in_memory() if telemetry == "enabled" else None
    sim = _single(recorder)
    benchmark(sim.run, 1)
    cells = int(np.prod(SHAPE))
    benchmark.extra_info["mflups"] = round(
        mflups(1, cells, benchmark.stats["mean"]), 2
    )
    benchmark.extra_info["telemetry"] = telemetry


@pytest.mark.parametrize("telemetry", ["disabled", "enabled"])
def test_distributed_step_overhead(benchmark, telemetry):
    recorder = Telemetry.in_memory() if telemetry == "enabled" else None
    dist = _distributed(recorder)
    benchmark(dist.run, 1)
    cells = int(np.prod(SHAPE))
    benchmark.extra_info["mflups"] = round(
        mflups(1, cells, benchmark.stats["mean"]), 2
    )
    benchmark.extra_info["telemetry"] = telemetry
