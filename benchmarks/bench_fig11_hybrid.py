"""Fig. 11 — hybrid MPI/OpenMP placements on both machines."""

import pytest

from repro.analysis import bar_chart
from repro.experiments import run_experiment
from repro.experiments.fig11 import FIG11A_LABELS, FIG11B_COMBOS


@pytest.mark.parametrize("which", ["fig11a", "fig11b"])
def test_fig11_reproduction(benchmark, report, which):
    result = benchmark(run_experiment, which)
    report(result.to_text())
    labels = (
        list(FIG11A_LABELS)
        if which == "fig11a"
        else [f"{t}-{h}" for t, h in FIG11B_COMBOS]
    )
    for lname in ("D3Q19", "D3Q39"):
        report(
            bar_chart(
                labels,
                result.series[lname],
                title=f"{which} {lname} runtime (s, lower is better)",
                unit="s",
            )
        )
    c = result.checks
    if which == "fig11a":
        # threading wins; D3Q39 hybrid beats VN, D3Q19 ties
        assert c["D3Q39/t4_runtime"] < c["D3Q39/vn_runtime"]
        assert abs(c["D3Q19/t4_runtime"] / c["D3Q19/vn_runtime"] - 1) < 0.08
        benchmark.extra_info["d3q39_4t_depth"] = c["D3Q39/t4_depth"]
    else:
        assert c["D3Q19/best"] == (4, 16)
        assert c["D3Q39/best"] == (4, 16)
        benchmark.extra_info["best"] = "4-16"
