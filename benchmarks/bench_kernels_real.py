"""Real measured MFlup/s of the numpy kernels (not the machine model).

This is the *executable* analogue of the paper's single-node study: the
same stream+collide update measured on this host, across the kernel
ladder (roll -> fused-gather -> planned), lattices (D3Q19 vs D3Q39),
equilibrium orders and population dtypes (float32 halves the paper's
bytes-per-cell figure).  Absolute numbers depend on the host; the
shapes that must hold are (a) D3Q39 costs ~2x D3Q19 per cell, (b) all
kernels agree, and (c) the planned kernel's zero-allocation update
beats the roll kernel by the acceptance margins below.
"""

import time

import numpy as np
import pytest

from repro.core import (
    FusedGatherKernel,
    PlannedKernel,
    RollKernel,
    equilibrium,
    make_kernel,
)
from repro.lattice import get_lattice
from repro.perf import mflups

SHAPE = (32, 32, 32)

#: (kernel class, dtype) rungs of the measured ladder.  The allocating
#: kernels are measured at float64 (their historic configuration); the
#: planned kernel at both dtype-policy ends.
LADDER = [
    (RollKernel, "float64"),
    (FusedGatherKernel, "float64"),
    (PlannedKernel, "float64"),
    (RollKernel, "float32"),
    (PlannedKernel, "float32"),
]


def _state(lattice, dtype="float64"):
    rng = np.random.default_rng(0)
    rho = 1.0 + 0.01 * rng.standard_normal(SHAPE)
    u = 0.01 * rng.standard_normal((3, *SHAPE))
    return np.ascontiguousarray(equilibrium(lattice, rho, u), dtype=np.dtype(dtype))


def _make(kernel_cls, lattice, dtype):
    # make_kernel owns the per-kernel construction dispatch (which
    # kernels take dtype/shape at build time).
    return make_kernel(kernel_cls.name, lattice, tau=0.8, dtype=dtype, shape=SHAPE)


def _measure(kernel, f, reps=5):
    """Mean seconds per step over ``reps`` (after one warmup step)."""
    g = f.copy()
    g = kernel.step(g)
    start = time.perf_counter()
    for _ in range(reps):
        g = kernel.step(g)
    return (time.perf_counter() - start) / reps


@pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
@pytest.mark.parametrize(
    "kernel_cls,dtype",
    LADDER,
    ids=[f"{cls.name}-{dt}" for cls, dt in LADDER],
)
def test_kernel_throughput(benchmark, lname, kernel_cls, dtype):
    lattice = get_lattice(lname)
    kernel = _make(kernel_cls, lattice, dtype)
    f = _state(lattice, dtype)
    kernel.step(f.copy())  # warm the gather tables / buffers / arena

    state = {"f": f.copy()}

    def step():
        state["f"] = kernel.step(state["f"])

    benchmark(step)
    cells = int(np.prod(SHAPE))
    achieved = mflups(1, cells, benchmark.stats["mean"])
    benchmark.extra_info["mflups"] = round(achieved, 2)
    benchmark.extra_info["kernel"] = kernel.name
    benchmark.extra_info["dtype"] = dtype
    benchmark.extra_info["bytes_per_cell"] = lattice.bytes_per_cell * (
        1 if dtype == "float64" else 0.5
    )
    assert np.isfinite(state["f"]).all()


def test_planned_beats_roll_acceptance(benchmark):
    """The PR-4 acceptance ratios on D3Q39 at 32^3: the zero-allocation
    planned kernel must reach >= 1.3x the roll kernel's MFLUP/s at
    float64 and >= 1.7x at float32 (vs roll at float64).  Measured
    margins on a quiet host are ~2.5x/4x, so the thresholds leave CI
    noise plenty of headroom."""
    lattice = get_lattice("D3Q39")
    f64 = _state(lattice, "float64")
    roll = _measure(RollKernel(lattice, tau=0.8), f64)
    planned64 = _measure(PlannedKernel(lattice, tau=0.8, shape=SHAPE), f64)
    planned32 = _measure(
        PlannedKernel(lattice, tau=0.8, dtype="float32", shape=SHAPE),
        f64.astype(np.float32),
    )
    benchmark.extra_info["speedup_float64"] = round(roll / planned64, 2)
    benchmark.extra_info["speedup_float32"] = round(roll / planned32, 2)
    assert roll / planned64 >= 1.3
    assert roll / planned32 >= 1.7
    benchmark(lambda: None)  # register a timing so --benchmark-only keeps this


def test_d3q39_costs_about_double(benchmark):
    """The paper's headline cost ratio: B(Q39)/B(Q19) = 936/456 ~ 2.05."""
    times = {}
    for lname in ("D3Q19", "D3Q39"):
        lattice = get_lattice(lname)
        kernel = RollKernel(lattice, tau=0.8)
        f = _state(lattice)
        kernel.step(f.copy())
        import time

        reps = 3
        t0 = time.perf_counter()
        g = f.copy()
        for _ in range(reps):
            g = kernel.step(g)
        times[lname] = (time.perf_counter() - t0) / reps

    ratio = times["D3Q39"] / times["D3Q19"]
    benchmark.extra_info["measured_ratio"] = round(ratio, 2)
    benchmark.extra_info["paper_ratio"] = round(936 / 456, 2)
    # Shape check: D3Q39 costs a small multiple of D3Q19.  The paper's C
    # kernel sits exactly at the byte ratio 2.05 (bandwidth-bound); the
    # numpy kernel pays extra for Q39's larger working set and its
    # 3-plane shifts, so the measured ratio lands above it (and the
    # slice-assign streaming path helps the 1-plane D3Q19 shifts more,
    # pushing the ratio further up).
    assert 1.4 < ratio < 6.5
    benchmark(lambda: None)  # register a timing so --benchmark-only keeps this test


def test_distributed_overhead(benchmark):
    """Halo exchange overhead of the in-process distributed solver
    relative to the single-domain path (4 ranks, depth 2).  Kept under
    its historic name/configuration as the cross-PR baseline the
    distributed ladder below is gated against."""
    from repro.core import Simulation, shear_wave
    from repro.parallel import DistributedSimulation

    shape = (32, 16, 16)
    rho, u = shear_wave(shape)
    dist = DistributedSimulation("D3Q19", shape, tau=0.8, num_ranks=4, ghost_depth=2)
    dist.initialize(rho, u)
    dist.run(2)  # warm up

    benchmark(dist.run, 1)
    ref = Simulation("D3Q19", shape, tau=0.8)
    ref.initialize(rho, u)
    ref.run(3)
    benchmark.extra_info["messages_so_far"] = dist.message_count()
    assert dist.gather().shape == (19, *shape)


# -- distributed slab ladder (PR 5) -----------------------------------------

DIST_SHAPE = (32, 16, 16)

#: (slab kernel, dtype) rungs of the distributed ladder: the legacy
#: stream_padded + BGKCollision pair at its historic float64, then the
#: planned windowed kernel at both dtype-policy ends.
DIST_LADDER = [
    ("legacy", "float64"),
    ("planned", "float64"),
    ("planned", "float32"),
]


def _dist_sim(lname, kernel, dtype):
    from repro.core import shear_wave
    from repro.parallel import DistributedSimulation

    dist = DistributedSimulation(
        lname,
        DIST_SHAPE,
        tau=0.8,
        num_ranks=4,
        ghost_depth=2,
        kernel=kernel,
        dtype=dtype,
    )
    rho, u = shear_wave(DIST_SHAPE)
    dist.initialize(rho, u)
    dist.run(2)  # warm up: plans/buffers built, one full exchange cycle
    return dist


@pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
@pytest.mark.parametrize(
    "kernel,dtype", DIST_LADDER, ids=[f"{k}-{d}" for k, d in DIST_LADDER]
)
def test_distributed_throughput(benchmark, lname, kernel, dtype):
    """Measured MFLUP/s of one distributed step (4 ranks, depth 2),
    exchange cost amortised in — the slab-parallel analogue of the
    single-domain ladder above."""
    dist = _dist_sim(lname, kernel, dtype)
    benchmark(dist.run, 1)
    cells = int(np.prod(DIST_SHAPE))
    achieved = mflups(1, cells, benchmark.stats["mean"])
    benchmark.extra_info["mflups"] = round(achieved, 2)
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["dtype"] = dtype
    benchmark.extra_info["comm_bytes"] = dist.total_comm_bytes()
    assert np.isfinite(dist.gather()).all()


def test_planned_slab_beats_legacy_acceptance(benchmark):
    """The PR-5 acceptance ratio: the planned distributed step must
    reach >= 1.5x the legacy slab path's MFLUP/s on both paper lattices
    at float64.  Measured margins on a quiet host are ~3-5x, so the
    threshold leaves CI noise plenty of headroom."""

    def _measure(dist, reps=5):
        start = time.perf_counter()
        dist.run(reps)
        return (time.perf_counter() - start) / reps

    speedups = {}
    for lname in ("D3Q19", "D3Q39"):
        legacy = _measure(_dist_sim(lname, "legacy", "float64"))
        planned = _measure(_dist_sim(lname, "planned", "float64"))
        speedups[lname] = legacy / planned
        benchmark.extra_info[f"speedup_{lname}"] = round(speedups[lname], 2)
    assert speedups["D3Q19"] >= 1.5
    assert speedups["D3Q39"] >= 1.5
    benchmark(lambda: None)  # register a timing so --benchmark-only keeps this
