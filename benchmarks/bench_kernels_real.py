"""Real measured MFlup/s of the numpy kernels (not the machine model).

This is the *executable* analogue of the paper's single-node study: the
same stream+collide update measured on this host, across kernels
(roll vs fused-gather), lattices (D3Q19 vs D3Q39) and equilibrium
orders.  Absolute numbers depend on the host; the shapes that must hold
are (a) D3Q39 costs ~2x D3Q19 per cell and (b) all kernels agree.
"""

import numpy as np
import pytest

from repro.core import FusedGatherKernel, RollKernel, equilibrium
from repro.lattice import get_lattice
from repro.perf import mflups

SHAPE = (32, 32, 32)


def _state(lattice):
    rng = np.random.default_rng(0)
    rho = 1.0 + 0.01 * rng.standard_normal(SHAPE)
    u = 0.01 * rng.standard_normal((3, *SHAPE))
    return equilibrium(lattice, rho, u)


@pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
@pytest.mark.parametrize("kernel_cls", [RollKernel, FusedGatherKernel])
def test_kernel_throughput(benchmark, lname, kernel_cls):
    lattice = get_lattice(lname)
    kernel = kernel_cls(lattice, tau=0.8)
    f = _state(lattice)
    kernel.step(f.copy())  # warm the gather tables / buffers

    state = {"f": f.copy()}

    def step():
        state["f"] = kernel.step(state["f"])

    benchmark(step)
    cells = int(np.prod(SHAPE))
    achieved = mflups(1, cells, benchmark.stats["mean"])
    benchmark.extra_info["mflups"] = round(achieved, 2)
    benchmark.extra_info["bytes_per_cell"] = lattice.bytes_per_cell
    assert np.isfinite(state["f"]).all()


def test_d3q39_costs_about_double(benchmark):
    """The paper's headline cost ratio: B(Q39)/B(Q19) = 936/456 ~ 2.05."""
    times = {}
    for lname in ("D3Q19", "D3Q39"):
        lattice = get_lattice(lname)
        kernel = RollKernel(lattice, tau=0.8)
        f = _state(lattice)
        kernel.step(f.copy())
        import time

        reps = 3
        t0 = time.perf_counter()
        g = f.copy()
        for _ in range(reps):
            g = kernel.step(g)
        times[lname] = (time.perf_counter() - t0) / reps

    ratio = times["D3Q39"] / times["D3Q19"]
    benchmark.extra_info["measured_ratio"] = round(ratio, 2)
    benchmark.extra_info["paper_ratio"] = round(936 / 456, 2)
    # Shape check: D3Q39 costs a small multiple of D3Q19.  The paper's C
    # kernel sits exactly at the byte ratio 2.05 (bandwidth-bound); the
    # numpy kernel pays extra for Q39's larger working set and its
    # 3-plane shifts, so the measured ratio lands above it.
    assert 1.4 < ratio < 5.0
    benchmark(lambda: None)  # register a timing so --benchmark-only keeps this test


def test_distributed_overhead(benchmark):
    """Halo exchange overhead of the in-process distributed solver
    relative to the single-domain path (4 ranks, depth 2)."""
    from repro.core import Simulation, shear_wave
    from repro.parallel import DistributedSimulation

    shape = (32, 16, 16)
    rho, u = shear_wave(shape)
    dist = DistributedSimulation("D3Q19", shape, tau=0.8, num_ranks=4, ghost_depth=2)
    dist.initialize(rho, u)
    dist.run(2)  # warm up

    benchmark(dist.run, 1)
    ref = Simulation("D3Q19", shape, tau=0.8)
    ref.initialize(rho, u)
    ref.run(3)
    benchmark.extra_info["messages_so_far"] = dist.message_count()
    assert dist.gather().shape == (19, *shape)
