"""Reduce a pytest-benchmark JSON report to a compact perf record.

CI runs ``benchmarks/bench_kernels_real.py`` in smoke mode with
``--benchmark-json=report.json``, then::

    python benchmarks/export_bench.py report.json BENCH_PR3.json

to distil the per-kernel numbers — MFLUP/s and mean step time — into a
small stable-schema JSON artifact.  Uploading it per commit gives the
repo a measured performance trajectory (the executable analogue of the
paper's single-node tables) without archiving the full pytest report.

Stdlib-only on purpose: the exporter must run in any CI job that can
run the benchmarks.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

#: Schema 5: sparse-kernel rows carry a ``fill`` column (the fluid
#: fraction of the bounding box) so the perf-model fitter can calibrate
#: the fill-fraction term of B(Q), and the ``suite`` field names the
#: bench module that produced the record instead of being hardwired.
#: Schema 4 added the measuring ``host`` and ``cpu_count`` (the fitter
#: keys calibrations per host) and stamped ``dtype`` on every
#: throughput row; schema 3 (PR 5) added ``comm_bytes`` and
#: distributed-ladder names; schema 2 (PR 4) added ``kernel``/``dtype``
#: extra-info keys.
SCHEMA = 5


def _suite(report: dict) -> str:
    """The bench module that produced ``report`` (from any fullname)."""
    for bench in report.get("benchmarks", []):
        fullname = str(bench.get("fullname", ""))
        module = fullname.split("::", 1)[0]
        if module:
            return Path(module).stem
    return "bench_kernels_real"


def export(report: dict) -> dict:
    """The compact perf record for one pytest-benchmark ``report``."""
    kernels = {}
    for bench in report.get("benchmarks", []):
        extra = dict(bench.get("extra_info", {}))
        entry = {"mean_s": float(bench["stats"]["mean"]), **extra}
        if "mflups" in entry and "dtype" not in entry:
            # Old suite revisions only stamped dtype on reduced-precision
            # rows; make it explicit on every throughput row.
            entry["dtype"] = (
                "float32" if "float32" in str(bench["name"]).lower() else "float64"
            )
        kernels[str(bench["name"])] = entry
    machine = report.get("machine_info", {})
    return {
        "schema": SCHEMA,
        "suite": _suite(report),
        "python": machine.get("python_version"),
        "cpu": (machine.get("cpu") or {}).get("brand_raw"),
        "host": machine.get("node") or platform.node(),
        "cpu_count": os.cpu_count(),
        "kernels": kernels,
    }


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(
            "usage: python benchmarks/export_bench.py "
            "<pytest-benchmark-report.json> <out.json>",
            file=sys.stderr,
        )
        return 2
    report_path, out_path = Path(argv[0]), Path(argv[1])
    record = export(json.loads(report_path.read_text()))
    if not record["kernels"]:
        print(f"error: no benchmarks in {report_path}", file=sys.stderr)
        return 1
    out_path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    mflups = {
        name: entry.get("mflups")
        for name, entry in record["kernels"].items()
        if "mflups" in entry
    }
    print(f"wrote {out_path}: {len(record['kernels'])} benchmark(s)")
    for name in sorted(mflups):
        print(f"  {name}: {mflups[name]:.2f} MFLUP/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
