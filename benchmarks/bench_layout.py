"""Measured data-layout effect (the paper's §V-B DH optimization).

Compares the paper's collision-optimized velocity-major layout against
the space-major (velocity-fastest) alternative on this host.  The
layouts produce identical physics (tested); the performance difference
is what DH is about.
"""

import numpy as np
import pytest

from repro.core import RollKernel, SpaceMajorKernel, equilibrium
from repro.lattice import get_lattice

SHAPE = (32, 32, 32)


def _state(lattice):
    rng = np.random.default_rng(1)
    rho = 1.0 + 0.01 * rng.standard_normal(SHAPE)
    u = 0.01 * rng.standard_normal((3, *SHAPE))
    return equilibrium(lattice, rho, u)


@pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
def test_velocity_major_layout(benchmark, lname):
    lattice = get_lattice(lname)
    kernel = RollKernel(lattice, tau=0.8)
    state = {"f": _state(lattice)}
    kernel.step(state["f"].copy())

    def step():
        state["f"] = kernel.step(state["f"])

    benchmark(step)
    benchmark.extra_info["layout"] = "velocity-major (paper's choice)"


@pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
def test_space_major_layout(benchmark, lname):
    lattice = get_lattice(lname)
    kernel = SpaceMajorKernel(lattice, tau=0.8)
    f_sm = np.ascontiguousarray(np.moveaxis(_state(lattice), 0, -1))
    state = {"f": f_sm}

    def step():
        state["f"] = kernel.step_native(state["f"])

    benchmark(step)
    benchmark.extra_info["layout"] = "space-major (AoS alternative)"
    assert np.isfinite(state["f"]).all()
