"""Gate MFLUP/s regressions between two exported bench records.

CI produces a fresh BENCH_PRn.json (see export_bench.py) and compares
it against the committed baseline of the previous PR::

    python benchmarks/compare_bench.py BENCH_PR3.json BENCH_PR4.json \
        --kernel roll --max-regression 0.30

The gate is deliberately narrow: it watches one kernel (default: the
roll kernel, present in every suite revision) per lattice, at float64,
and fails only on a drop larger than ``--max-regression`` — wide enough
to absorb host-to-host and run-to-run noise, tight enough to catch a
real hot-loop regression.  Stdlib-only, like the exporter.

``--model CALIBRATION.json`` adds a second, baseline-free gate: every
throughput row of the *current* record is compared against the fitted
perf-model calibration (``repro perf-model fit``), and a measurement
far below its prediction (``--model-slack``, default 50%) fails even
when no baseline record has a row for that (kernel, lattice, dtype)
cell.  The calibration file is plain JSON — effective bandwidth
``beta`` per fitted cell — so this stays stdlib-only too::

    python benchmarks/compare_bench.py BENCH_PR5.json \
        --model calibration.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

LATTICES = ("D3Q19", "D3Q39")

_LATTICE_RE = re.compile(r"D3Q\d+", re.IGNORECASE)

#: Schema-1 records name kernels by class (mirrors repro.perf.model).
_LEGACY_KERNEL_NAMES = {
    "naivekernel": "naive",
    "rollkernel": "roll",
    "fusedgatherkernel": "fused-gather",
    "plannedkernel": "planned",
}


def kernel_mflups(record: dict, kernel: str) -> dict[str, float]:
    """Per-lattice float64 MFLUP/s of ``kernel`` in one bench record.

    Matches case-insensitively by benchmark-name substring (or the
    ``kernel`` extra-info field) so the gate survives suite
    reparameterisations: PR3 named entries ``[RollKernel-D3Q19]``, PR4
    names them ``[roll-float64-D3Q19]``.  ``kernel`` may be several
    ``+``-joined substrings that must all match — the PR5 distributed
    gate selects ``planned+distributed`` to separate the slab rows from
    the single-domain planned rows.  float32 entries are excluded.

    Sparse rows (schema 5: a ``fill`` column, or ``sparse`` in the
    kernel name) only participate when the gate *asks* for a sparse
    kernel — otherwise the dense ``planned`` gate would absorb
    ``sparse-planned`` rows by substring.  When they do participate,
    each fill is its own comparison key (``D3Q19@fill0.25``): fills
    have different B(Q), so their MFLUP/s are not comparable.
    """
    tokens = [t for t in kernel.lower().split("+") if t]
    want_sparse = any("sparse" in token for token in tokens)
    found: dict[str, float] = {}
    for name, entry in record.get("kernels", {}).items():
        lowered = name.lower()
        is_sparse = (
            entry.get("fill") is not None
            or "sparse" in str(entry.get("kernel", "")).lower()
            or "sparse" in lowered
        )
        if is_sparse != want_sparse:
            continue
        if (
            not all(token in lowered for token in tokens)
            and entry.get("kernel") != kernel
        ):
            continue
        if "float32" in lowered or entry.get("dtype") == "float32":
            continue
        value = entry.get("mflups")
        if value is None:
            continue
        lattice = str(entry.get("lattice") or "").upper() or None
        if lattice is None:
            for cand in LATTICES:
                if cand.lower() in lowered:
                    lattice = cand
                    break
        if lattice is None:
            continue
        key = lattice
        if entry.get("fill") is not None:
            key = f"{lattice}@fill{float(entry['fill']):g}"
        found[key] = float(value)
    return found


def compare(
    baseline: dict, current: dict, kernel: str, max_regression: float
) -> tuple[bool, list[str]]:
    """(ok, report lines) for one baseline/current record pair."""
    base = kernel_mflups(baseline, kernel)
    new = kernel_mflups(current, kernel)
    lines: list[str] = []
    ok = True
    shared = sorted(set(base) & set(new))
    if not shared:
        return False, [
            f"no comparable {kernel} float64 entries "
            f"(baseline has {sorted(base)}, current has {sorted(new)})"
        ]
    for lattice in shared:
        ratio = new[lattice] / base[lattice]
        verdict = "ok"
        if ratio < 1.0 - max_regression:
            verdict = f"REGRESSION beyond {max_regression:.0%}"
            ok = False
        lines.append(
            f"{kernel} {lattice}: {base[lattice]:.2f} -> {new[lattice]:.2f} "
            f"MFLUP/s ({ratio:.2f}x) {verdict}"
        )
    return ok, lines


def _row_cell(name: str, entry: dict) -> "tuple[str, str, str, str] | None":
    """The fitted-model key of one bench row: (kernel, mode, dtype, lattice).

    Mirrors ``repro.perf.model.samples_from_bench`` — extra-info fields
    when stamped (schema >= 2), name parsing for legacy rows — but in
    stdlib form.  ``None`` for rows that are not attributable
    throughput measurements.
    """
    if "mflups" not in entry:
        return None
    lowered = name.lower()
    kernel = entry.get("kernel")
    if not kernel:
        for legacy, mapped in _LEGACY_KERNEL_NAMES.items():
            if legacy in lowered:
                kernel = mapped
                break
    match = _LATTICE_RE.search(name)
    lattice = (
        match.group(0).upper()
        if match
        else str(entry.get("lattice") or "").upper() or None
    )
    if not kernel or not lattice:
        return None
    dtype = str(
        entry.get("dtype") or ("float32" if "float32" in lowered else "float64")
    )
    # Mirrors samples_from_bench's mode inference: a fill column or a
    # sparse kernel name marks the indirect-addressing population.
    if "distributed" in lowered:
        mode = "distributed"
    elif entry.get("fill") is not None or "sparse" in str(kernel).lower():
        mode = "sparse"
    else:
        mode = "single"
    return (str(kernel), mode, dtype, lattice)


def model_check(
    record: dict, calibration: dict, slack: float
) -> tuple[bool, list[str]]:
    """(ok, report lines): flag rows measured far below their prediction.

    A row fails when ``measured < predicted * (1 - slack)``.  Only rows
    with an *exact* fitted cell in the calibration participate — the
    pooled extrapolation levels live in :mod:`repro.perf.model`, and a
    regression gate should only ever compare against a direct fit.
    Measuring *above* prediction never fails (that is an improvement, or
    a stale calibration to refit).
    """
    fitted = {
        (e["kernel"], e["mode"], e["dtype"], e["lattice"]): e
        for e in calibration.get("entries", [])
    }
    lines: list[str] = []
    ok = True
    checked = 0
    for name, entry in sorted(record.get("kernels", {}).items()):
        cell = _row_cell(name, entry)
        if cell is None or cell not in fitted:
            continue
        fit = fitted[cell]
        b = float(entry.get("bytes_per_cell") or fit["bytes_per_cell"])
        predicted = float(fit["beta"]) / (b * 1e6)
        measured = float(entry["mflups"])
        if predicted <= 0:
            continue
        checked += 1
        ratio = measured / predicted
        verdict = "ok"
        if ratio < 1.0 - slack:
            verdict = f"MEASURED FAR BELOW MODEL (> {slack:.0%} short)"
            ok = False
        kernel, mode, dtype, lattice = cell
        lines.append(
            f"model {kernel} {mode} {dtype} {lattice}: measured "
            f"{measured:.2f} vs predicted {predicted:.2f} MFLUP/s "
            f"({ratio:.2f}x) {verdict}"
        )
    if not checked:
        return False, lines + [
            "model gate: no current rows matched a fitted calibration cell"
        ]
    return ok, lines


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline",
        type=Path,
        help="committed reference record (with --model and no current "
        "record, this is the record the model gate checks)",
    )
    parser.add_argument(
        "current",
        type=Path,
        nargs="?",
        default=None,
        help="freshly measured record (optional with --model)",
    )
    parser.add_argument(
        "--kernel",
        default="roll",
        help="kernel to gate on (name substring; default: roll)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="maximum tolerated MFLUP/s drop (default: 0.30)",
    )
    parser.add_argument(
        "--model",
        type=Path,
        default=None,
        metavar="CALIBRATION.json",
        help="also gate the current record against this fitted perf-model "
        "calibration (measured far below predicted fails)",
    )
    parser.add_argument(
        "--model-slack",
        type=float,
        default=0.50,
        metavar="FRACTION",
        help="maximum tolerated shortfall below the model prediction "
        "(default: 0.50)",
    )
    args = parser.parse_args(argv)
    if args.current is None and args.model is None:
        parser.error("a current record is required unless --model is given")
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text()) if args.current else baseline
    ok = True
    if args.current is not None:
        ok, lines = compare(baseline, current, args.kernel, args.max_regression)
        for line in lines:
            print(line)
    if args.model is not None:
        model_ok, lines = model_check(
            current, json.loads(args.model.read_text()), args.model_slack
        )
        for line in lines:
            print(line)
        ok = ok and model_ok
    if not ok:
        print("bench regression gate FAILED", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
