"""Gate MFLUP/s regressions between two exported bench records.

CI produces a fresh BENCH_PRn.json (see export_bench.py) and compares
it against the committed baseline of the previous PR::

    python benchmarks/compare_bench.py BENCH_PR3.json BENCH_PR4.json \
        --kernel roll --max-regression 0.30

The gate is deliberately narrow: it watches one kernel (default: the
roll kernel, present in every suite revision) per lattice, at float64,
and fails only on a drop larger than ``--max-regression`` — wide enough
to absorb host-to-host and run-to-run noise, tight enough to catch a
real hot-loop regression.  Stdlib-only, like the exporter.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

LATTICES = ("D3Q19", "D3Q39")


def kernel_mflups(record: dict, kernel: str) -> dict[str, float]:
    """Per-lattice float64 MFLUP/s of ``kernel`` in one bench record.

    Matches case-insensitively by benchmark-name substring (or the
    ``kernel`` extra-info field) so the gate survives suite
    reparameterisations: PR3 named entries ``[RollKernel-D3Q19]``, PR4
    names them ``[roll-float64-D3Q19]``.  ``kernel`` may be several
    ``+``-joined substrings that must all match — the PR5 distributed
    gate selects ``planned+distributed`` to separate the slab rows from
    the single-domain planned rows.  float32 entries are excluded.
    """
    tokens = [t for t in kernel.lower().split("+") if t]
    found: dict[str, float] = {}
    for name, entry in record.get("kernels", {}).items():
        lowered = name.lower()
        if (
            not all(token in lowered for token in tokens)
            and entry.get("kernel") != kernel
        ):
            continue
        if "float32" in lowered or entry.get("dtype") == "float32":
            continue
        value = entry.get("mflups")
        if value is None:
            continue
        for lattice in LATTICES:
            if lattice.lower() in lowered:
                found[lattice] = float(value)
    return found


def compare(
    baseline: dict, current: dict, kernel: str, max_regression: float
) -> tuple[bool, list[str]]:
    """(ok, report lines) for one baseline/current record pair."""
    base = kernel_mflups(baseline, kernel)
    new = kernel_mflups(current, kernel)
    lines: list[str] = []
    ok = True
    shared = sorted(set(base) & set(new))
    if not shared:
        return False, [
            f"no comparable {kernel} float64 entries "
            f"(baseline has {sorted(base)}, current has {sorted(new)})"
        ]
    for lattice in shared:
        ratio = new[lattice] / base[lattice]
        verdict = "ok"
        if ratio < 1.0 - max_regression:
            verdict = f"REGRESSION beyond {max_regression:.0%}"
            ok = False
        lines.append(
            f"{kernel} {lattice}: {base[lattice]:.2f} -> {new[lattice]:.2f} "
            f"MFLUP/s ({ratio:.2f}x) {verdict}"
        )
    return ok, lines


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed reference record")
    parser.add_argument("current", type=Path, help="freshly measured record")
    parser.add_argument(
        "--kernel",
        default="roll",
        help="kernel to gate on (name substring; default: roll)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="maximum tolerated MFLUP/s drop (default: 0.30)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    ok, lines = compare(baseline, current, args.kernel, args.max_regression)
    for line in lines:
        print(line)
    if not ok:
        print("bench regression gate FAILED", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
