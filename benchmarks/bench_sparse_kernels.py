"""Real measured MFLUP/s of the sparse (indirect-addressing) kernels.

The executable analogue of the paper's sparse-geometry discussion: the
same stream+collide update on a :class:`~repro.core.sparse.SparseDomain`
at several fluid fills, across the sparse kernel ladder (legacy
fancy-index baseline -> planned flat-gather).  MFLUP/s counts *fluid*
lattice updates only — that is the whole point of sparse storage — and
every row is stamped with its ``fill`` so the perf-model fitter
(``repro perf-model fit``) can calibrate the fill-fraction term of
B(Q) from this suite's export (bench schema 5).

Shapes that must hold on any host: (a) both kernels agree bitwise-close
at every fill, (b) the planned kernel's zero-allocation flat gather
beats the legacy baseline by the acceptance margin below at <= 50%
fill (the regime vascular geometries live in: the bifurcating-vessel
case fills ~22% of its bounding box).
"""

import time

import numpy as np
import pytest

from repro.core.sparse import SparseDomain, make_sparse_kernel
from repro.lattice import get_lattice
from repro.machine.roofline import sparse_bytes_per_cell
from repro.perf import mflups

SHAPE = (32, 32, 32)
LATTICE = "D3Q19"
DTYPE = "float64"

#: Fluid fills of the measured ladder.  1.0 degenerates to a fully
#: periodic box (the dense limit of the gather); 0.25 is vascular
#: territory.  Masks are seeded random scatters — the worst case for
#: gather locality, so measured speedups are conservative.
FILLS = (0.25, 0.5, 1.0)

KERNELS = ("sparse-legacy", "sparse-planned")


def _domain(fill, shape=SHAPE):
    lattice = get_lattice(LATTICE)
    size = int(np.prod(shape))
    solid = np.zeros(size, dtype=bool)
    if fill < 1.0:
        rng = np.random.default_rng(7)
        num_solid = size - int(round(fill * size))
        solid[rng.permutation(size)[:num_solid]] = True
    return SparseDomain(lattice, solid.reshape(shape))


def _state(domain, dtype=DTYPE):
    rng = np.random.default_rng(1)
    w = domain.lattice.weights.astype(np.dtype(dtype))
    noise = 1.0 + 0.01 * rng.standard_normal((domain.lattice.q, domain.num_fluid))
    return np.ascontiguousarray(w[:, None] * noise, dtype=np.dtype(dtype))


def _measure(kernel, f, reps=5):
    """Mean seconds per step over ``reps`` (after one warmup step)."""
    g = f.copy()
    g = kernel.step(g)
    start = time.perf_counter()
    for _ in range(reps):
        g = kernel.step(g)
    return (time.perf_counter() - start) / reps


@pytest.mark.parametrize("fill", FILLS, ids=[f"fill{f:g}" for f in FILLS])
@pytest.mark.parametrize("kernel_name", KERNELS)
def test_sparse_kernel_throughput(benchmark, kernel_name, fill):
    domain = _domain(fill)
    kernel = make_sparse_kernel(kernel_name, domain, tau=0.8, dtype=DTYPE)
    f = _state(domain)
    kernel.step(f.copy())  # warm the gather table / scratch arena

    state = {"f": f.copy()}

    def step():
        state["f"] = kernel.step(state["f"])

    benchmark(step)
    achieved = mflups(1, domain.num_fluid, benchmark.stats["mean"])
    benchmark.extra_info["mflups"] = round(achieved, 2)
    benchmark.extra_info["kernel"] = kernel.name
    benchmark.extra_info["dtype"] = DTYPE
    # The parametrized names carry no lattice token, so stamp it: the
    # fitter and the regression gate both fall back to this field.
    benchmark.extra_info["lattice"] = LATTICE
    benchmark.extra_info["fill"] = round(domain.fill_fraction, 4)
    benchmark.extra_info["bytes_per_cell"] = round(
        sparse_bytes_per_cell(domain.lattice, DTYPE, fill=domain.fill_fraction), 2
    )
    assert np.isfinite(state["f"]).all()


def test_planned_beats_legacy_sparse_acceptance(benchmark):
    """The PR-9 acceptance ratio: at <= 50% fill on D3Q19, the planned
    flat-gather kernel must reach >= 1.5x the legacy fancy-index
    baseline's MFLUP/s.  Measured margins on a quiet host are ~2-3x,
    so the threshold leaves CI noise plenty of headroom."""
    domain = _domain(0.5)
    assert domain.fill_fraction <= 0.5
    f = _state(domain)
    legacy = _measure(make_sparse_kernel("sparse-legacy", domain, tau=0.8), f)
    planned = _measure(make_sparse_kernel("sparse-planned", domain, tau=0.8), f)
    benchmark.extra_info["speedup"] = round(legacy / planned, 2)
    benchmark.extra_info["fill"] = round(domain.fill_fraction, 4)
    assert legacy / planned >= 1.5
    benchmark(lambda: None)  # register a timing so --benchmark-only keeps this


def test_kernels_agree_at_every_fill(benchmark):
    """Both rungs are the same physics: after 10 steps from the same
    state, populations agree to accumulation-rounding tolerance."""
    for fill in FILLS:
        domain = _domain(fill)
        a = _state(domain)
        b = a.copy()
        legacy = make_sparse_kernel("sparse-legacy", domain, tau=0.8)
        planned = make_sparse_kernel("sparse-planned", domain, tau=0.8)
        for _ in range(10):
            a = legacy.step(a)
            b = planned.step(b)
        assert np.allclose(a, b, atol=1e-13)
    benchmark(lambda: None)
