"""Tables III & IV — optimal ghost depth vs points-per-processor ratio."""

from repro.experiments import run_experiment


def test_tables34_reproduction(benchmark, report):
    result = benchmark(run_experiment, "tables34")
    report(result.to_text())
    c = result.checks
    benchmark.extra_info["table3"] = {k: v for k, v in c.items() if k.startswith("t3")}
    benchmark.extra_info["table4"] = {k: v for k, v in c.items() if k.startswith("t4")}
    # shape: monotone in ratio, depth 1 at small R, >= 2 past the band
    assert c["t3/4"] == 1 and c["t3/64"] >= 2
    assert c["t4/128"] == 1 and c["t4/800"] >= 2
