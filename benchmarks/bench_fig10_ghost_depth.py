"""Fig. 10 — runtime vs deep-halo ghost depth across fluid sizes."""

import pytest

from repro.experiments import run_experiment


@pytest.mark.parametrize("which", ["fig10a", "fig10b"])
def test_fig10_reproduction(benchmark, report, which):
    result = benchmark(run_experiment, which)
    report(result.to_text())
    sizes = list(result.series)
    benchmark.extra_info["optimal_depths"] = {
        s: result.checks[f"{s}/optimal"] for s in sizes
    }
    # crossover shape: smallest size prefers GC=1, largest prefers deeper
    assert result.checks[f"{sizes[0]}/optimal"] == 1
    assert result.checks[f"{sizes[-1]}/optimal"] >= 2
    if which == "fig10a":
        # the paper's OOM event at (133k, GC=4)
        assert result.checks["133k/oom"] == (4,)
