"""Benchmark harness configuration.

Every file regenerates one of the paper's tables/figures and prints the
reproduced rows (run ``pytest benchmarks/ --benchmark-only -s`` to see
them inline); the numbers also land in each benchmark's ``extra_info``.
"""

import pytest


@pytest.fixture
def report():
    """Print a reproduced artifact without pytest capturing noise."""

    def _report(text: str) -> None:
        print("\n" + text)

    return _report
