"""Fig. 8 — MFlup/s across the optimization ladder on both machines."""

import pytest

from repro.analysis import bar_chart
from repro.experiments import run_experiment


@pytest.mark.parametrize("which,machine", [("fig8a", "BG/P"), ("fig8b", "BG/Q")])
def test_fig8_reproduction(benchmark, report, which, machine):
    result = benchmark(run_experiment, which)
    report(result.to_text())
    levels = ["Orig", "GC", "DH", "CF", "LoBr", "NB-C", "GC_C", "SIMD"]
    for lname in ("D3Q19", "D3Q39"):
        report(
            bar_chart(
                levels,
                result.series[lname],
                title=f"Fig. 8 {machine} {lname} (MFlup/s, 128 nodes)",
            )
        )
        benchmark.extra_info[f"{lname}_final_over_peak"] = round(
            result.checks[f"{lname}/final_over_peak"], 3
        )
        benchmark.extra_info[f"{lname}_improvement"] = round(
            result.checks[f"{lname}/improvement"], 2
        )
        # shape: monotone ladder, near the paper's endpoint bands
        assert result.checks[f"{lname}/monotone"]
        paper = result.checks[f"{lname}/paper_final_over_peak"]
        assert abs(result.checks[f"{lname}/final_over_peak"] - paper) < 0.06
