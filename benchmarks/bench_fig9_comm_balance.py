"""Fig. 9 — communication-time balance across schedules."""

from repro.experiments import run_experiment


def test_fig9_reproduction(benchmark, report):
    result = benchmark(run_experiment, "fig9")
    report(result.to_text())
    c = result.checks
    benchmark.extra_info["d3q19_nbc_max"] = round(c["D3Q19/NB-C/max"], 1)
    benchmark.extra_info["d3q19_gcc_max"] = round(c["D3Q19/GC-C/max"], 1)
    # who wins: GC-C compresses the spread by >= 4x (paper: 40 s -> 3-5 s)
    assert c["D3Q19/GC-C/max"] < 0.25 * c["D3Q19/NB-C/max"]
    assert c["D3Q39/GC-C/max"] < 0.25 * c["D3Q39/NB-C/max"]
