"""Table I — lattice parameters (and the cost of verifying them)."""

from repro.experiments import run_experiment
from repro.lattice.d3q39 import make_d3q39


def test_table1_reproduction(benchmark, report):
    """Regenerate Table I; the benchmark times the full verification
    (shell expansion + exact rational isotropy checks)."""
    result = benchmark(run_experiment, "table1")
    report(result.to_text())
    benchmark.extra_info["q19_isotropy"] = result.checks["q19_isotropy"]
    benchmark.extra_info["q39_isotropy"] = result.checks["q39_isotropy"]
    assert result.checks["q39_isotropy"] >= 6


def test_d3q39_construction(benchmark):
    """Cost of building + validating the 39-velocity lattice."""
    lattice = benchmark(make_d3q39)
    assert lattice.q == 39
