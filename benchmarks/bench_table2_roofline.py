"""Table II + §III-C — the roofline model rows."""

from repro.experiments import run_experiment


def test_table2_reproduction(benchmark, report):
    result = benchmark(run_experiment, "table2")
    report(result.to_text())
    for key, value in result.checks.items():
        if isinstance(value, float):
            benchmark.extra_info[key] = round(value, 2)
    # who wins and by what factor: D3Q39 halves the bandwidth roofline
    ratio_p = result.checks["BG/P/D3Q19/p_bm"] / result.checks["BG/P/D3Q39/p_bm"]
    assert 1.9 < ratio_p < 2.2  # 456 vs 936 bytes/cell
