"""Ablations of the cost model's design choices (DESIGN.md §3)."""

from repro.perf import run_all_ablations


def test_ablations(benchmark, report):
    results = benchmark(run_all_ablations)
    lines = ["Cost-model ablations:"]
    for r in results:
        lines.append(
            f"  {r.name}: baseline {r.baseline:.4g} -> ablated {r.ablated:.4g} "
            f"{r.unit} ({r.change:+.1%})"
        )
        lines.append(f"    -> {r.conclusion}")
    report("\n".join(lines))
    benchmark.extra_info["ablations"] = {
        r.name: round(r.change, 4) for r in results
    }
    by_name = {r.name: r for r in results}
    assert by_name["sqrt-depth wait consolidation"].ablated == 1.0
    assert by_name["SIMD lanes (double hummer)"].change < -0.05
