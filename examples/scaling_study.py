#!/usr/bin/env python3
"""Machine-model scaling study: the paper's evaluation in miniature.

Thin wrapper over the registered ``scaling-study`` case: optimization
ladder, strong scaling and hybrid-placement tables from the calibrated
Blue Gene models.  Equivalent CLI::

    python -m repro case scaling-study --set lattice=D3Q39

Usage::

    python examples/scaling_study.py [D3Q15|D3Q19|D3Q27|D3Q39]
"""

import sys

from repro.scenarios.cli import run_case_cli


def main() -> int:
    lattice = sys.argv[1] if len(sys.argv) > 1 else "D3Q39"
    return run_case_cli("scaling-study", overrides={"lattice": lattice})


if __name__ == "__main__":
    raise SystemExit(main())
