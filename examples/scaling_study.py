#!/usr/bin/env python3
"""Machine-model scaling study: the paper's evaluation in miniature.

Uses the calibrated Blue Gene models to answer the questions a user of
the paper would ask before a production run:

* What throughput should I expect at each optimization level?
* How does performance strong-scale as I add nodes?
* Which hybrid tasks x threads placement should I use?

Usage::

    python examples/scaling_study.py [D3Q19|D3Q39]
"""

import sys

from repro.analysis import bar_chart, render_table
from repro.lattice import get_lattice
from repro.machine import BLUE_GENE_Q, roofline
from repro.perf import (
    CostModel,
    Placement,
    Workload,
    best_point,
    ladder_states,
    sweep_hybrid,
)
from repro.perf.optimization import OptimizationLevel


def ladder_section(lattice) -> None:
    model = CostModel(BLUE_GENE_Q, lattice)
    placement = Placement(nodes=64, tasks_per_node=32)
    workload = Workload(lattice, (placement.total_ranks * 32, 64, 64))
    states = ladder_states(BLUE_GENE_Q, lattice)
    labels = [lv.value for lv, _ in states]
    values = [model.mflups_aggregate(p, workload, placement) for _, p in states]
    peak = roofline(BLUE_GENE_Q, lattice).attainable_mflups * placement.nodes
    print(
        bar_chart(
            labels,
            values,
            title=f"\nOptimization ladder, {lattice.name} on 64 BG/Q nodes "
            f"(model peak {peak:.0f} MFlup/s)",
        )
    )


def strong_scaling_section(lattice) -> None:
    model = CostModel(BLUE_GENE_Q, lattice)
    params = dict(ladder_states(BLUE_GENE_Q, lattice))[OptimizationLevel.SIMD]
    workload = Workload(lattice, (4096, 64, 64))
    rows = []
    base = None
    for nodes in (8, 16, 32, 64, 128):
        placement = Placement(nodes=nodes, tasks_per_node=32)
        agg = model.mflups_aggregate(params, workload, placement)
        base = base or agg / nodes * 8
        eff = agg / (base * nodes / 8)
        rows.append([nodes, f"{agg:.0f}", f"{eff:.1%}"])
    print()
    print(
        render_table(
            ["nodes", "MFlup/s", "scaling efficiency"],
            rows,
            title=f"Strong scaling, {lattice.name}, 4096x64x64 grid",
        )
    )


def hybrid_section(lattice) -> None:
    params = dict(ladder_states(BLUE_GENE_Q, lattice))[OptimizationLevel.SIMD]
    workload = Workload(lattice, (12800, 40, 40))
    combos = ((1, 64), (2, 32), (4, 16), (8, 8), (16, 4), (32, 2), (64, 1))
    points = sweep_hybrid(BLUE_GENE_Q, lattice, params, workload, 16, combos)
    best = best_point(points)
    rows = [
        [p.label, "infeasible" if p.runtime_s is None else f"{p.runtime_s:.1f}",
         p.best_depth or "-", "<-- best" if p is best else ""]
        for p in points
    ]
    print()
    print(
        render_table(
            ["tasks-threads", "runtime (s)", "ghost depth", ""],
            rows,
            title=f"Hybrid placement, {lattice.name}, 16 BG/Q nodes",
        )
    )


def main() -> int:
    lname = sys.argv[1] if len(sys.argv) > 1 else "D3Q39"
    lattice = get_lattice(lname)
    ladder_section(lattice)
    strong_scaling_section(lattice)
    hybrid_section(lattice)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
