#!/usr/bin/env python3
"""Microfluidic constriction: drag and flow reduction from a clog.

Thin wrapper over the registered ``microfluidic-clogging`` case: a
sweep over the occlusion radius shows the flow being monotonically
choked while the momentum-exchange drag balances the injected body
force.  Equivalent CLI::

    python -m repro sweep microfluidic-clogging --param clog_radius=0,2,3.5,5

Usage::

    python examples/microfluidic_clogging.py
"""

from repro.scenarios import Sweep


def main() -> int:
    sweep = Sweep("microfluidic-clogging", {"clog_radius": [0.0, 2.0, 3.5, 5.0]})
    result = sweep.run()
    print(result.to_table())

    flows = [run.metrics["flow_rate"] for run in result.results]
    monotone = all(b < a for a, b in zip(flows, flows[1:]))
    balanced = all(
        abs(run.metrics["force_balance"] - 1.0) < 0.05 for run in result.results
    )
    print()
    print(f"  flow monotonically choked by clog:   {'yes' if monotone else 'NO'}")
    print(f"  steady-state force balance holds:    {'yes' if balanced else 'NO'}")
    return 0 if (monotone and balanced) else 1


if __name__ == "__main__":
    raise SystemExit(main())
