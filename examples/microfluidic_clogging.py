#!/usr/bin/env python3
"""Microfluidic constriction: drag and flow reduction from a clog.

The paper's introduction motivates the extended model with "the study
of clogging in a microfluidic device".  This example builds a plane
channel with a growing spherical occlusion at its throat and measures,
for each occlusion radius:

* the volumetric flow rate (how much the clog chokes the channel), and
* the hydrodynamic drag on the particle via momentum exchange (the
  force trying to push the clog downstream).

At steady state the drag on all solid surfaces balances the injected
body force exactly — an invariant the script verifies.

Usage::

    python examples/microfluidic_clogging.py
"""

import numpy as np

from repro.core import (
    BounceBackWalls,
    GuoForcing,
    Simulation,
    channel_walls_mask,
    macroscopic,
    momentum_exchange_force,
    sphere_mask,
    stream_periodic,
    uniform_flow,
)
from repro.lattice import get_lattice

SHAPE = (24, 15, 15)
FORCE = 3e-6
TAU = 0.8
STEPS = 700


def run_case(radius: float):
    lattice = get_lattice("D3Q19")
    walls = channel_walls_mask(SHAPE, axis=1)
    clog = (
        sphere_mask(SHAPE, (SHAPE[0] // 2, SHAPE[1] // 2, SHAPE[2] // 2), radius)
        if radius > 0
        else np.zeros(SHAPE, dtype=bool)
    )
    solid = walls | clog
    sim = Simulation(
        lattice,
        SHAPE,
        tau=TAU,
        boundaries=[BounceBackWalls(lattice, solid)],
        forcing=GuoForcing(lattice, (FORCE, 0.0, 0.0)),
    )
    rho, u = uniform_flow(SHAPE)
    sim.initialize(rho, u)
    sim.run(STEPS, check_stability_every=100)

    _, u_out = macroscopic(lattice, sim.f)
    axial = np.where(~solid, u_out[0], 0.0)
    flow_rate = float(axial.sum(axis=(1, 2)).mean())

    adv = stream_periodic(lattice, sim.f)
    drag_clog = momentum_exchange_force(lattice, adv, clog)[0] if radius > 0 else 0.0
    drag_total = momentum_exchange_force(lattice, adv, solid)[0]
    injected = FORCE * sim.num_cells
    return flow_rate, float(drag_clog), float(drag_total), injected


def main() -> int:
    radii = (0.0, 2.0, 3.5, 5.0)
    print(f"Channel {SHAPE} with growing clog, body force {FORCE}")
    print(f"{'radius':>7} | {'flow rate':>10} | {'choked':>7} | {'clog drag':>10} | {'force balance':>13}")
    print("-" * 62)
    base_flow = None
    flows, balances = [], []
    for radius in radii:
        flow, drag_clog, drag_total, injected = run_case(radius)
        base_flow = base_flow or flow
        choke = 1 - flow / base_flow
        balance = drag_total / injected
        flows.append(flow)
        balances.append(balance)
        print(
            f"{radius:7.1f} | {flow:10.4e} | {choke:7.1%} | "
            f"{drag_clog:10.3e} | {balance:13.3f}"
        )

    monotone = all(b < a for a, b in zip(flows, flows[1:]))
    balanced = all(abs(b - 1) < 0.05 for b in balances)
    print()
    print(f"  flow monotonically choked by clog:   {'yes' if monotone else 'NO'}")
    print(f"  steady-state force balance holds:    {'yes' if balanced else 'NO'}")
    return 0 if (monotone and balanced) else 1


if __name__ == "__main__":
    raise SystemExit(main())
