#!/usr/bin/env python3
"""Beyond Navier-Stokes: rarefied Couette flow in a microchannel.

The paper's motivation: at finite Knudsen number the continuum
assumption fails and higher-order lattices are needed.  This example
runs plane Couette flow between diffuse (Maxwell) walls over a range of
Kn and measures the wall *slip* — the signature rarefaction effect —
by extrapolating the bulk linear profile to the wall plane.

Kinetic theory (first-order slip, full accommodation) predicts a slip
fraction of about ``Kn / (1 + 2 Kn)``.  The third-order D3Q39 model
tracks this closely across the slip and transition regimes; the
second-order D3Q19 model overshoots badly in the near-continuum limit
and stays biased throughout — the missing kinetic moments the paper's
extended model restores.

Usage::

    python examples/microchannel_knudsen.py
"""

import numpy as np

from repro.core import (
    DiffuseWallPair,
    RegularizedBGKCollision,
    Simulation,
    classify_regime,
    tau_for_knudsen,
    uniform_flow,
    velocity_profile,
)
from repro.lattice import get_lattice

CHANNEL = 17  # wall-normal extent (lattice nodes)
WALL_SPEED = 0.005
STEPS = 1200


def measured_slip(lname: str, kn: float) -> float:
    """Slip fraction 1 - u(wall)/u_wall via bulk-profile extrapolation."""
    lattice = get_lattice(lname)
    tau = tau_for_knudsen(kn, CHANNEL, lattice.cs2_float)
    shape = (4, CHANNEL, 4)
    bc = DiffuseWallPair(
        lattice,
        axis=1,
        wall_velocity_low=(0.0, 0.0, 0.0),
        wall_velocity_high=(WALL_SPEED, 0.0, 0.0),
    )
    sim = Simulation(
        lattice,
        shape,
        collision=RegularizedBGKCollision(lattice, tau),
        boundaries=[bc],
    )
    rho, u = uniform_flow(shape)
    sim.initialize(rho, u)
    sim.run(STEPS, check_stability_every=200)
    profile = velocity_profile(lattice, sim.f, flow_axis=0, across_axis=1)
    y = np.arange(CHANNEL)
    bulk = slice(5, CHANNEL - 5)  # linear Couette core, outside Knudsen layers
    fit = np.polyfit(y[bulk], profile[bulk], 1)
    u_at_wall = np.polyval(fit, CHANNEL - 0.5)
    return 1.0 - float(u_at_wall) / WALL_SPEED


def theory_slip(kn: float) -> float:
    """First-order Maxwell slip fraction for symmetric Couette flow."""
    return kn / (1.0 + 2.0 * kn)


def main() -> int:
    kns = (0.01, 0.05, 0.1, 0.3, 0.7)
    print(f"Couette microchannel, H={CHANNEL}, wall speed {WALL_SPEED}")
    print(
        f"{'Kn':>6} | {'regime':<12} | {'theory':>7} | "
        f"{'D3Q19':>7} | {'D3Q39':>7} | {'err Q19':>8} | {'err Q39':>8}"
    )
    print("-" * 72)
    err19_all, err39_all = [], []
    slips39 = []
    for kn in kns:
        s19 = measured_slip("D3Q19", kn)
        s39 = measured_slip("D3Q39", kn)
        th = theory_slip(kn)
        e19, e39 = abs(s19 - th), abs(s39 - th)
        err19_all.append(e19)
        err39_all.append(e39)
        slips39.append(s39)
        print(
            f"{kn:6.2f} | {classify_regime(kn).value:<12} | {th:7.4f} | "
            f"{s19:7.4f} | {s39:7.4f} | {e19:8.4f} | {e39:8.4f}"
        )

    monotone = all(b > a for a, b in zip(slips39, slips39[1:]))
    q39_wins = all(e39 <= e19 for e19, e39 in zip(err19_all, err39_all))
    print()
    print(f"  slip grows with Kn (D3Q39):              {'yes' if monotone else 'NO'}")
    print(f"  D3Q39 closer to kinetic theory at all Kn: {'yes' if q39_wins else 'NO'}")
    print("  -> the higher-order quadrature recovers the kinetic moments the")
    print("     second-order model truncates; this is the physics the paper's")
    print("     performance engineering makes affordable.")
    return 0 if (monotone and q39_wins) else 1


if __name__ == "__main__":
    raise SystemExit(main())
