#!/usr/bin/env python3
"""Beyond Navier-Stokes: rarefied Couette flow in a microchannel.

Thin wrapper over the registered ``microchannel-knudsen`` case: a
parameter sweep over Knudsen number x lattice reproduces the original
example's table — D3Q39's third-order quadrature tracks the kinetic
slip prediction Kn/(1+2Kn); second-order D3Q19 stays biased.
Equivalent CLI::

    python -m repro sweep microchannel-knudsen \
        --param kn=0.01,0.05,0.1,0.3,0.7 --param lattice=D3Q19,D3Q39

Usage::

    python examples/microchannel_knudsen.py
"""

from repro.scenarios import Sweep


def main() -> int:
    sweep = Sweep(
        "microchannel-knudsen",
        {"kn": [0.01, 0.05, 0.1, 0.3, 0.7], "lattice": ["D3Q19", "D3Q39"]},
    )
    result = sweep.run()
    print(result.to_table())

    # D3Q39 must beat D3Q19 against kinetic theory at every Kn, and its
    # slip must grow monotonically with Kn (the rarefaction signature).
    errors: dict[str, dict[float, float]] = {}
    slips39: dict[float, float] = {}
    for overrides, run in zip(result.variants, result.results):
        errors.setdefault(overrides["lattice"], {})[overrides["kn"]] = (
            run.metrics["slip_error"]
        )
        if overrides["lattice"] == "D3Q39":
            slips39[overrides["kn"]] = run.metrics["slip_measured"]
    q39_wins = all(
        errors["D3Q39"][kn] <= errors["D3Q19"][kn] for kn in errors["D3Q39"]
    )
    ordered = [slips39[kn] for kn in sorted(slips39)]
    monotone = all(b > a for a, b in zip(ordered, ordered[1:]))
    print()
    print(f"  slip grows with Kn (D3Q39):               {'yes' if monotone else 'NO'}")
    print(f"  D3Q39 closer to kinetic theory at all Kn: {'yes' if q39_wins else 'NO'}")
    return 0 if (monotone and q39_wins) else 1


if __name__ == "__main__":
    raise SystemExit(main())
