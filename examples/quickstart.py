#!/usr/bin/env python3
"""Quickstart: the Taylor-Green vortex case from the scenario registry.

Thin wrapper over ``repro.scenarios`` — the workload itself (initial
condition, observables, analytic decay check) is the registered
``taylor-green`` case; this script only picks the grid size.
Equivalent CLI::

    python -m repro case taylor-green --set shape=N,N,4

Usage::

    python examples/quickstart.py [grid_size]
"""

import sys

from repro.scenarios import run_case


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    result = run_case("taylor-green", shape=(n, n, 4))
    print(result.to_text())
    print(f"  throughput: {result.metrics['mflups']:.2f} MFlup/s")
    return 0 if result.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
