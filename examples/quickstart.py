#!/usr/bin/env python3
"""Quickstart: a Taylor-Green vortex on the D3Q19 lattice.

Runs a periodic vortex flow, checks the kinetic-energy decay against
the analytic viscous rate, and reports the measured throughput in
MFlup/s (the paper's Eq. 4 metric).

Usage::

    python examples/quickstart.py [grid_size]
"""

import sys

import numpy as np

from repro.core import Simulation, kinetic_energy, taylor_green
from repro.lattice import get_lattice


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    shape = (n, n, 4)
    tau = 0.7
    steps = 200

    lattice = get_lattice("D3Q19")
    sim = Simulation(lattice, shape, tau=tau)
    rho, u = taylor_green(shape, u0=1e-3)
    sim.initialize(rho, u)

    print(f"Taylor-Green vortex, {lattice.name}, grid {shape}, tau={tau}")
    e0 = kinetic_energy(lattice, sim.f)
    sim.run(steps, check_stability_every=50)
    e1 = kinetic_energy(lattice, sim.f)

    nu = lattice.cs2_float * (tau - 0.5)
    k = 2 * np.pi / n
    expected = np.exp(-4 * nu * k * k * steps)
    measured = e1 / e0

    print(f"  kinetic energy decay: measured {measured:.4f}, theory {expected:.4f}")
    print(f"  relative error:       {abs(measured / expected - 1):.2%}")
    print(f"  throughput:           {sim.mflups():.2f} MFlup/s "
          f"(stream {sim.timings.stream_seconds:.2f}s, "
          f"collide {sim.timings.collide_seconds:.2f}s)")
    ok = abs(measured / expected - 1) < 0.1
    print("  PASS" if ok else "  FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
