#!/usr/bin/env python3
"""Continuum application: pressure-driven flow in a curved vessel.

Thin wrapper over the registered ``artery-flow`` case (synthetic
meandering tube, bounce-back walls, body-force drive; checks no-slip,
mass conservation and low Mach).  Equivalent CLI::

    python -m repro case artery-flow

Usage::

    python examples/artery_flow.py
"""

from repro.scenarios.cli import run_case_cli


def main() -> int:
    return run_case_cli("artery-flow")


if __name__ == "__main__":
    raise SystemExit(main())
