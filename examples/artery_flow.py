#!/usr/bin/env python3
"""Continuum application: pressure-driven flow in a curved vessel.

The paper's code is the fluid component of a cardiovascular multiphysics
stack (Fig. 1 shows aortic flow).  Patient CT geometries are not
available here (see DESIGN.md substitutions), so this example builds a
synthetic curved vessel — a tube whose centre meanders sinusoidally —
voxelised onto the lattice with full-way bounce-back walls, driven by a
body force (the pressure-gradient surrogate).

It reports flow rate, peak velocity and Reynolds number, and checks two
physical invariants: no-slip at the vessel wall and mass conservation.

Usage::

    python examples/artery_flow.py
"""

import numpy as np

from repro.core import (
    BounceBackWalls,
    GuoForcing,
    Simulation,
    macroscopic,
    reynolds_number,
    total_mass,
    uniform_flow,
)
from repro.lattice import get_lattice

SHAPE = (48, 21, 21)  # axial x cross-section
RADIUS = 7.0
MEANDER = 2.5  # centreline deflection amplitude
FORCE = 4e-6
TAU = 0.8
STEPS = 600


def build_vessel(shape, radius, meander) -> np.ndarray:
    """Solid mask of a curved tube along x (True = vessel wall/outside)."""
    nx, ny, nz = shape
    x = np.arange(nx)[:, None, None]
    y = np.arange(ny)[None, :, None]
    z = np.arange(nz)[None, None, :]
    cy = ny / 2.0 + meander * np.sin(2 * np.pi * x / nx)
    cz = nz / 2.0 + meander * np.cos(2 * np.pi * x / nx)
    r2 = (y - cy) ** 2 + (z - cz) ** 2
    return r2 > radius * radius


def main() -> int:
    lattice = get_lattice("D3Q19")
    solid = build_vessel(SHAPE, RADIUS, MEANDER)
    fluid_cells = int((~solid).sum())
    print(f"Curved vessel: grid {SHAPE}, radius {RADIUS}, "
          f"{fluid_cells} fluid cells ({fluid_cells / solid.size:.0%} of box)")

    sim = Simulation(
        lattice,
        SHAPE,
        tau=TAU,
        boundaries=[BounceBackWalls(lattice, solid)],
        forcing=GuoForcing(lattice, (FORCE, 0.0, 0.0)),
    )
    rho, u = uniform_flow(SHAPE)
    sim.initialize(rho, u)
    m0 = total_mass(sim.f)
    sim.run(STEPS, check_stability_every=100)

    rho_out, u_out = macroscopic(lattice, sim.f)
    axial = np.where(~solid, u_out[0], 0.0)
    flow_rate = axial.sum(axis=(1, 2)).mean()
    peak = axial.max()
    mean_speed = axial.sum() / fluid_cells
    nu = lattice.cs2_float * (TAU - 0.5)
    re = reynolds_number(mean_speed, 2 * RADIUS, nu)

    # no-slip: fluid adjacent to the wall is much slower than the core
    wall_adjacent = (~solid) & (
        np.roll(solid, 1, 1) | np.roll(solid, -1, 1) | np.roll(solid, 1, 2) | np.roll(solid, -1, 2)
    )
    near_wall_speed = axial[wall_adjacent].mean()

    mass_drift = abs(total_mass(sim.f) - m0) / m0
    print(f"  flow rate:        {flow_rate:.4e} (lattice units)")
    print(f"  peak velocity:    {peak:.4e}  (Mach {peak / np.sqrt(lattice.cs2_float):.3f})")
    print(f"  Reynolds number:  {re:.3g}")
    print(f"  near-wall speed:  {near_wall_speed:.2e} "
          f"({near_wall_speed / peak:.1%} of peak -> no-slip)")
    print(f"  mass drift:       {mass_drift:.2e}")
    print(f"  throughput:       {sim.mflups():.2f} MFlup/s")

    ok = (
        flow_rate > 0
        and near_wall_speed < 0.35 * peak
        and mass_drift < 1e-10
        and peak / np.sqrt(lattice.cs2_float) < 0.3
    )
    print("  PASS" if ok else "  FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
