#!/usr/bin/env python3
"""Deep-halo ghost-cell tuning for a user workload (paper §V-A/§VI-A).

Thin wrapper over the registered ``deep-halo-tuning`` case: verifies
that deep halos preserve the physics bit-for-bit while cutting the
message count, then lets the calibrated BG/Q cost model pick the
runtime-optimal depth.  Equivalent CLI::

    python -m repro case deep-halo-tuning

Usage::

    python examples/deep_halo_tuning.py
"""

from repro.scenarios.cli import run_case_cli


def main() -> int:
    return run_case_cli("deep-halo-tuning")


if __name__ == "__main__":
    raise SystemExit(main())
