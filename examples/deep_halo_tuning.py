#!/usr/bin/env python3
"""Deep-halo ghost-cell tuning for a user workload (paper §V-A/§VI-A).

Given a D3Q39 problem on a simulated Blue Gene/Q partition, this
example:

1. verifies *functionally* (with the in-process distributed solver)
   that deep halos preserve the physics bit-for-bit while cutting the
   message count d-fold, and
2. uses the calibrated cost model to pick the runtime-optimal depth,
   showing the tradeoff the paper's Fig. 10 plots.

Usage::

    python examples/deep_halo_tuning.py
"""

import numpy as np

from repro.core import Simulation, shear_wave
from repro.lattice import get_lattice
from repro.machine import BLUE_GENE_Q
from repro.parallel import DistributedSimulation
from repro.perf import Placement, Workload, ladder_states, sweep_ghost_depth
from repro.perf.optimization import OptimizationLevel
from repro.perf.tuner import tuned_params_for_depth_study


def functional_check() -> bool:
    """Deep halos change messages, not physics."""
    shape = (36, 5, 5)
    steps = 8
    lattice = get_lattice("D3Q39")
    ref = Simulation(lattice, shape, tau=0.8)
    rho, u = shear_wave(shape)
    ref.initialize(rho, u)
    ref.run(steps)

    print("functional check (D3Q39, 2 ranks, 8 steps):")
    ok = True
    for depth in (1, 2):
        dist = DistributedSimulation(
            lattice, shape, tau=0.8, num_ranks=2, ghost_depth=depth
        )
        dist.initialize(rho, u)
        dist.run(steps)
        err = float(np.abs(dist.gather() - ref.f).max())
        print(
            f"  depth {depth}: max |error| = {err:.2e}, "
            f"messages = {dist.message_count()}, "
            f"bytes = {dist.total_comm_bytes():,}"
        )
        ok = ok and err < 1e-13
    return ok


def model_tuning() -> int:
    """Pick the best depth for a 16-node BG/Q run of a large system."""
    lattice = get_lattice("D3Q39")
    params = tuned_params_for_depth_study(
        dict(ladder_states(BLUE_GENE_Q, lattice))[OptimizationLevel.SIMD]
    )
    placement = Placement(nodes=16, tasks_per_node=16)
    workload = Workload(lattice, (200_000, 40, 40), steps=300)
    sweep = sweep_ghost_depth(
        BLUE_GENE_Q, lattice, params, workload, placement, size_label="200k"
    )
    print("\nmodel tuning (D3Q39, 200k planes on 16 BG/Q nodes x 16 tasks):")
    for depth, runtime, norm in zip(sweep.depths, sweep.runtimes_s, sweep.normalized):
        if runtime is None:
            print(f"  depth {depth}: OUT OF MEMORY")
        else:
            marker = " <- optimal" if depth == sweep.optimal_depth else ""
            print(f"  depth {depth}: {runtime:8.2f} s ({norm:.3f} of GC=1){marker}")
    return sweep.optimal_depth


def main() -> int:
    ok = functional_check()
    best = model_tuning()
    print(f"\nchosen ghost depth: {best}")
    print("PASS" if ok and best >= 1 else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
