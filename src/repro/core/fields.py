"""Distribution-field container.

The paper (§IV) stores the particle distribution functions in a
two-dimensional array of shape ``(NumVelocities, z*y*x)`` "allocated in
contiguous memory" — a *collision-optimized*, velocity-major layout
(Wellein et al. 2006).  :class:`DistributionField` mirrors that layout as
a C-contiguous numpy array of shape ``(Q, nx, ny, nz)``: the velocity
index is the slowest-varying (outermost) dimension, so each velocity's
spatial block is contiguous, exactly as in the C code.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet

__all__ = ["DistributionField"]


@dataclasses.dataclass
class DistributionField:
    """Populations ``f_i(x)`` on a regular grid for one velocity set.

    Attributes
    ----------
    lattice:
        The discrete velocity model.
    data:
        C-contiguous float64 array of shape ``(Q, nx, ny, nz)``.
    """

    lattice: VelocitySet
    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)
        if self.data.ndim != 1 + self.lattice.dim:
            raise LatticeError(
                f"field must have {1 + self.lattice.dim} dims, got {self.data.ndim}"
            )
        if self.data.shape[0] != self.lattice.q:
            raise LatticeError(
                f"leading dim {self.data.shape[0]} != Q={self.lattice.q}"
            )

    # -- constructors ----------------------------------------------------

    @classmethod
    def zeros(cls, lattice: VelocitySet, shape: Iterable[int]) -> "DistributionField":
        """All-zero field on a grid of the given spatial ``shape``."""
        shape = tuple(int(s) for s in shape)
        if len(shape) != lattice.dim or any(s <= 0 for s in shape):
            raise LatticeError(f"bad spatial shape {shape} for {lattice.name}")
        return cls(lattice, np.zeros((lattice.q, *shape)))

    @classmethod
    def from_equilibrium(
        cls,
        lattice: VelocitySet,
        rho: np.ndarray,
        u: np.ndarray,
        order: int | None = None,
    ) -> "DistributionField":
        """Field initialised to the Hermite equilibrium of ``(rho, u)``."""
        from .equilibrium import equilibrium  # local import avoids a cycle

        return cls(lattice, equilibrium(lattice, rho, u, order=order))

    # -- properties -------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """Spatial grid shape (without the velocity axis)."""
        return self.data.shape[1:]

    @property
    def num_cells(self) -> int:
        """Number of lattice points (fluid cells) in the grid."""
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        """Bytes of population storage (one copy; the solver keeps two)."""
        return self.data.nbytes

    # -- operations --------------------------------------------------------

    def copy(self) -> "DistributionField":
        """Deep copy."""
        return DistributionField(self.lattice, self.data.copy())

    def allclose(self, other: "DistributionField", **kwargs) -> bool:
        """Elementwise comparison of two fields on the same lattice."""
        if other.lattice.name != self.lattice.name:
            raise LatticeError("cannot compare fields on different lattices")
        return bool(np.allclose(self.data, other.data, **kwargs))

    def is_finite(self) -> bool:
        """True when every population is finite (stability check)."""
        return bool(np.isfinite(self.data).all())

    def __getitem__(self, idx):
        return self.data[idx]

    def __setitem__(self, idx, value) -> None:
        self.data[idx] = value
