"""Distribution-field container.

The paper (§IV) stores the particle distribution functions in a
two-dimensional array of shape ``(NumVelocities, z*y*x)`` "allocated in
contiguous memory" — a *collision-optimized*, velocity-major layout
(Wellein et al. 2006).  :class:`DistributionField` mirrors that layout as
a C-contiguous numpy array of shape ``(Q, nx, ny, nz)``: the velocity
index is the slowest-varying (outermost) dimension, so each velocity's
spatial block is contiguous, exactly as in the C code.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet

__all__ = [
    "DistributionField",
    "LAYOUT_AOS",
    "LAYOUT_SOA",
    "SUPPORTED_DTYPES",
    "SUPPORTED_LAYOUTS",
    "resolve_dtype",
    "resolve_layout",
    "compute_dtype",
]

#: Population dtypes the solver's dtype policy supports.  The paper's
#: bytes-per-cell analysis (Table II) makes B(Q) the bandwidth knob:
#: float32 halves it, roughly doubling bandwidth-bound throughput.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

#: Struct-of-arrays: velocity-major ``(Q, nx, ny, nz)`` physical order —
#: the paper's collision-optimized layout and this repo's historic one.
LAYOUT_SOA = "soa"

#: Array-of-structs: cell-major physical order (all Q populations of one
#: cell contiguous — the paper §IV's propagation-optimized alternative).
#: The *logical* shape stays ``(Q, *shape)`` everywhere; AoS only changes
#: the strides underneath.
LAYOUT_AOS = "aos"

#: Memory layouts the layout policy supports (paper §IV's SoA-vs-AoS
#: axis, selectable exactly like ``kernel``/``dtype``).
SUPPORTED_LAYOUTS = (LAYOUT_SOA, LAYOUT_AOS)


def resolve_layout(layout: "str | None") -> str:
    """Normalise a layout-policy value (``"soa"``/``"aos"``/``None``) to a
    supported layout name; ``None`` means SoA (the historic default)."""
    if layout is None:
        return LAYOUT_SOA
    resolved = str(layout).lower()
    if resolved not in SUPPORTED_LAYOUTS:
        names = ", ".join(SUPPORTED_LAYOUTS)
        raise LatticeError(
            f"unsupported field layout {layout!r} (supported: {names})"
        )
    return resolved


def resolve_dtype(dtype: "str | np.dtype | type | None") -> np.dtype:
    """Normalise a dtype-policy value (``"float32"``/``"float64"``/numpy
    dtype/``None``) to a supported numpy dtype; ``None`` means float64."""
    if dtype is None:
        return np.dtype(np.float64)
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise LatticeError(f"unrecognised dtype {dtype!r}") from exc
    if resolved not in SUPPORTED_DTYPES:
        names = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise LatticeError(
            f"unsupported population dtype {resolved.name!r} (supported: {names})"
        )
    return resolved


def compute_dtype(*operands: "np.ndarray | float") -> np.dtype:
    """The dtype a moment/equilibrium evaluation should compute in.

    float32 iff every floating array operand is float32 (Python scalars
    are weak and do not promote); anything else computes in float64 —
    the conservative end of the policy, so existing float64 paths are
    bit-identical to before the policy existed.
    """
    strong = [
        np.asarray(op).dtype
        for op in operands
        if not isinstance(op, (bool, int, float))
    ]
    floating = [d for d in strong if d.kind == "f"]
    if floating and all(d == np.float32 for d in floating):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


@dataclasses.dataclass
class DistributionField:
    """Populations ``f_i(x)`` on a regular grid for one velocity set.

    Attributes
    ----------
    lattice:
        The discrete velocity model.
    data:
        Float array of shape ``(Q, nx, ny, nz)``.  float32 input stays
        float32 (the dtype policy's low-bandwidth end); anything else is
        cast to float64.
    layout:
        Physical memory order (``"soa"``/``"aos"``).  The logical shape
        is ``(Q, *shape)`` either way; under AoS ``data`` is a transposed
        view over a C-contiguous cell-major buffer, so every consumer of
        the logical indexing keeps working unchanged.
    """

    lattice: VelocitySet
    data: np.ndarray
    layout: str = LAYOUT_SOA

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        dtype = data.dtype if data.dtype in SUPPORTED_DTYPES else np.dtype(np.float64)
        self.layout = resolve_layout(self.layout)
        if self.layout == LAYOUT_AOS:
            buf = np.ascontiguousarray(np.moveaxis(data, 0, -1), dtype=dtype)
            self.data = np.moveaxis(buf, -1, 0)
        else:
            self.data = np.ascontiguousarray(data, dtype=dtype)
        if self.data.ndim != 1 + self.lattice.dim:
            raise LatticeError(
                f"field must have {1 + self.lattice.dim} dims, got {self.data.ndim}"
            )
        if self.data.shape[0] != self.lattice.q:
            raise LatticeError(
                f"leading dim {self.data.shape[0]} != Q={self.lattice.q}"
            )

    # -- constructors ----------------------------------------------------

    @classmethod
    def zeros(
        cls,
        lattice: VelocitySet,
        shape: Iterable[int],
        dtype: "str | np.dtype | None" = None,
        layout: "str | None" = None,
    ) -> "DistributionField":
        """All-zero field on a grid of the given spatial ``shape``."""
        shape = tuple(int(s) for s in shape)
        if len(shape) != lattice.dim or any(s <= 0 for s in shape):
            raise LatticeError(f"bad spatial shape {shape} for {lattice.name}")
        return cls(
            lattice,
            np.zeros((lattice.q, *shape), dtype=resolve_dtype(dtype)),
            resolve_layout(layout),
        )

    @classmethod
    def from_equilibrium(
        cls,
        lattice: VelocitySet,
        rho: np.ndarray,
        u: np.ndarray,
        order: int | None = None,
        dtype: "str | np.dtype | None" = None,
        layout: "str | None" = None,
    ) -> "DistributionField":
        """Field initialised to the Hermite equilibrium of ``(rho, u)``."""
        from .equilibrium import equilibrium  # local import avoids a cycle

        if dtype is not None:
            dtype = resolve_dtype(dtype)
        return cls(
            lattice,
            equilibrium(lattice, rho, u, order=order, dtype=dtype),
            resolve_layout(layout),
        )

    # -- properties -------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        """Population dtype (float32 or float64)."""
        return self.data.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        """Spatial grid shape (without the velocity axis)."""
        return self.data.shape[1:]

    @property
    def num_cells(self) -> int:
        """Number of lattice points (fluid cells) in the grid."""
        return int(np.prod(self.shape))

    @property
    def nbytes(self) -> int:
        """Bytes of population storage (one copy; the solver keeps two)."""
        return self.data.nbytes

    # -- operations --------------------------------------------------------

    def as_soa(self) -> np.ndarray:
        """The populations as a C-contiguous velocity-major array.

        A zero-copy alias for SoA fields; an exact element copy for AoS
        ones.  Observables and checkpoints read through this so their
        reductions see identical bytes in identical order under either
        layout (whole-array reductions on a strided view may legally
        accumulate in a different order).
        """
        return np.ascontiguousarray(self.data)

    def copy(self) -> "DistributionField":
        """Deep copy."""
        return DistributionField(self.lattice, self.data.copy(), self.layout)

    def astype(self, dtype: "str | np.dtype") -> "DistributionField":
        """A copy of this field cast to another supported dtype."""
        return DistributionField(
            self.lattice, self.data.astype(resolve_dtype(dtype)), self.layout
        )

    def allclose(self, other: "DistributionField", **kwargs) -> bool:
        """Elementwise comparison of two fields on the same lattice."""
        if other.lattice.name != self.lattice.name:
            raise LatticeError("cannot compare fields on different lattices")
        return bool(np.allclose(self.data, other.data, **kwargs))

    def is_finite(self) -> bool:
        """True when every population is finite (stability check)."""
        return bool(np.isfinite(self.data).all())

    def __getitem__(self, idx):
        return self.data[idx]

    def __setitem__(self, idx, value) -> None:
        self.data[idx] = value
