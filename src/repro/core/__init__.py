"""LBM core: fields, equilibria, collision, streaming, boundaries, driver."""

from .boundary import (
    BounceBackWalls,
    BoundaryCondition,
    DiffuseWallPair,
    MovingWallBounceBack,
)
from .collision import (
    BGKCollision,
    RegularizedBGKCollision,
    tau_from_viscosity,
    viscosity_from_tau,
)
from .equilibrium import equilibrium, equilibrium_order_for
from .fields import (
    SUPPORTED_DTYPES,
    DistributionField,
    compute_dtype,
    resolve_dtype,
)
from .forcing import GuoForcing
from .io import (
    CheckpointData,
    TimeSeriesLogger,
    canonical_json,
    deserialize_result_data,
    jsonable,
    load_checkpoint,
    load_checkpoint_data,
    save_checkpoint,
    serialize_result_data,
    write_vtk,
)
from .initial_conditions import (
    density_pulse,
    random_perturbation,
    shear_wave,
    taylor_green,
    uniform_flow,
)
from .kernels import FusedGatherKernel, LBMKernel, NaiveKernel, RollKernel
from .layout import SpaceMajorKernel
from .plan import (
    AUTO_KERNEL,
    DEFAULT_KERNEL,
    KernelPlan,
    PlannedKernel,
    auto_select_kernel,
    available_kernels,
    make_kernel,
)
from .mrt import HermiteMRTCollision
from .obstacles import (
    channel_walls_mask,
    cylinder_mask,
    momentum_exchange_force,
    sphere_mask,
)
from .moments import (
    density,
    deviatoric_stress,
    heat_flux,
    macroscopic,
    momentum,
    momentum_flux,
    velocity,
)
from .observables import (
    enstrophy,
    kinetic_energy,
    mach_number_field,
    max_speed,
    total_mass,
    total_momentum,
    velocity_profile,
)
from .simulation import Simulation, StepTimings
from .sparse import SparseDomain, SparseSimulation
from .streaming import stream_padded, stream_periodic
from .units import (
    FlowRegime,
    LatticeUnits,
    classify_regime,
    knudsen_number,
    mach_number,
    mean_free_path,
    reynolds_number,
    tau_for_knudsen,
)

__all__ = [
    "AUTO_KERNEL",
    "auto_select_kernel",
    "available_kernels",
    "BGKCollision",
    "canonical_json",
    "compute_dtype",
    "DEFAULT_KERNEL",
    "KernelPlan",
    "make_kernel",
    "PlannedKernel",
    "resolve_dtype",
    "SUPPORTED_DTYPES",
    "channel_walls_mask",
    "CheckpointData",
    "deserialize_result_data",
    "jsonable",
    "load_checkpoint_data",
    "serialize_result_data",
    "cylinder_mask",
    "HermiteMRTCollision",
    "load_checkpoint",
    "momentum_exchange_force",
    "save_checkpoint",
    "sphere_mask",
    "SpaceMajorKernel",
    "SparseDomain",
    "SparseSimulation",
    "TimeSeriesLogger",
    "write_vtk",
    "BounceBackWalls",
    "BoundaryCondition",
    "classify_regime",
    "density",
    "density_pulse",
    "deviatoric_stress",
    "DiffuseWallPair",
    "DistributionField",
    "enstrophy",
    "equilibrium",
    "equilibrium_order_for",
    "FlowRegime",
    "FusedGatherKernel",
    "GuoForcing",
    "heat_flux",
    "kinetic_energy",
    "knudsen_number",
    "LatticeUnits",
    "LBMKernel",
    "mach_number",
    "mach_number_field",
    "macroscopic",
    "max_speed",
    "mean_free_path",
    "momentum",
    "momentum_flux",
    "MovingWallBounceBack",
    "NaiveKernel",
    "random_perturbation",
    "RegularizedBGKCollision",
    "reynolds_number",
    "RollKernel",
    "shear_wave",
    "Simulation",
    "StepTimings",
    "stream_padded",
    "stream_periodic",
    "tau_for_knudsen",
    "tau_from_viscosity",
    "taylor_green",
    "total_mass",
    "total_momentum",
    "uniform_flow",
    "velocity",
    "velocity_profile",
    "viscosity_from_tau",
]
