"""Analytic initial conditions used by tests, examples and benchmarks.

Each function returns ``(rho, u)`` fields ready for
:meth:`~repro.core.fields.DistributionField.from_equilibrium`:
``rho`` has the spatial shape, ``u`` has shape ``(3, *spatial)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_flow",
    "shear_wave",
    "taylor_green",
    "random_perturbation",
    "density_pulse",
]


def _grids(shape: tuple[int, ...]) -> list[np.ndarray]:
    """Index grids, one per axis, each of the full spatial shape."""
    return list(np.indices(shape).astype(np.float64))


def uniform_flow(
    shape: tuple[int, ...], velocity: tuple[float, ...] = (0.0, 0.0, 0.0), rho0: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """Constant density and velocity everywhere."""
    rho = np.full(shape, rho0)
    u = np.empty((len(shape), *shape))
    for a, comp in enumerate(velocity):
        u[a] = comp
    return rho, u


def shear_wave(
    shape: tuple[int, ...],
    amplitude: float = 1e-4,
    wavenumber: int = 1,
    vary_axis: int = 0,
    flow_axis: int = 1,
    rho0: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sinusoidal transverse shear wave.

    ``u_flow(x) = A sin(2 pi n x / L)`` varying along ``vary_axis``.  Its
    amplitude decays as ``exp(-nu k^2 t)`` — the classic viscometric test
    that pins the solver's viscosity to ``cs2 (tau - 1/2)``.
    """
    if vary_axis == flow_axis:
        raise ValueError("shear wave must be transverse (vary_axis != flow_axis)")
    rho = np.full(shape, rho0)
    u = np.zeros((len(shape), *shape))
    x = _grids(shape)[vary_axis]
    k = 2.0 * np.pi * wavenumber / shape[vary_axis]
    u[flow_axis] = amplitude * np.sin(k * x)
    return rho, u


def taylor_green(
    shape: tuple[int, ...], u0: float = 1e-3, rho0: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """2-D Taylor–Green vortex embedded in a 3-D box (z-invariant).

    ``u = u0 ( cos kx sin ky, -sin kx cos ky, 0 )`` with the matching
    pressure (density) field.  Kinetic energy decays as
    ``exp(-4 nu k^2 t)`` at low Mach — the quickstart validation flow.
    """
    nx, ny, _ = shape
    if nx != ny:
        raise ValueError("taylor_green requires nx == ny")
    gx, gy, _ = _grids(shape)
    k = 2.0 * np.pi / nx
    u = np.zeros((3, *shape))
    u[0] = u0 * np.cos(k * gx) * np.sin(k * gy)
    u[1] = -u0 * np.sin(k * gx) * np.cos(k * gy)
    # Pressure field p = -rho0 u0^2/4 (cos 2kx + cos 2ky); p = cs2 (rho-rho0)
    # The cs2 division is applied by the caller's lattice? No: use cs2=1/3
    # convention here would couple this module to a lattice.  Return the
    # *pressure* via a density perturbation scaled for cs2 passed in by
    # the caller when precision matters; the O(Ma^2) term is optional.
    rho = np.full(shape, rho0)
    return rho, u


def random_perturbation(
    shape: tuple[int, ...],
    amplitude: float = 1e-5,
    rho0: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Small random velocity field (deterministic seed) for mixing tests."""
    rng = np.random.default_rng(seed)
    rho = np.full(shape, rho0)
    u = amplitude * rng.standard_normal((len(shape), *shape))
    return rho, u


def density_pulse(
    shape: tuple[int, ...],
    amplitude: float = 1e-3,
    width: float = 3.0,
    rho0: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian density bump at the box centre (acoustic/sound-speed test).

    The pulse splits into sound waves travelling at ``c_s``; tracking the
    wavefront measures the lattice sound speed (cs2 = 1/3 vs 2/3 for
    D3Q19 vs D3Q39 — a physically observable difference between the
    models).
    """
    grids = _grids(shape)
    r2 = np.zeros(shape)
    for g, n in zip(grids, shape):
        r2 += (g - n / 2.0) ** 2
    rho = rho0 + amplitude * np.exp(-r2 / (2.0 * width * width))
    u = np.zeros((len(shape), *shape))
    return rho, u
