"""Planned, zero-allocation stream+collide kernel and kernel selection.

The endpoint of the paper's §V single-node optimization ladder is a
kernel in which *everything that can be computed once is computed once*:
index arithmetic is precomputed (LoBr), loops are fused, and the hot
loop touches only preallocated memory.  :class:`KernelPlan` is the
Python analogue — at construction it builds

* the flat gather table for pull-streaming (one ``np.take`` per step,
  indices computed once per shape),
* dtype-cast velocity/weight tables (cached per lattice, see
  :meth:`~repro.lattice.VelocitySet.velocities_as`),
* a scratch arena (``adv``, ``rho``, ``u``, ``cu``, ``term``, ``work``,
  ``cell``) sized for the grid,

so :meth:`PlannedKernel.step` performs the full stream + moments +
equilibrium + relax update exclusively through ``out=`` ufunc calls:
zero per-step heap allocations (tracemalloc-asserted in the tests).

The plan also carries the **dtype policy**: built for float32, the
whole update runs in single precision, halving the paper's
bytes-per-cell figure B(Q) — the knob its roofline model (Table II)
says roughly doubles bandwidth-bound throughput.

:func:`make_kernel` is the registry every layer above selects kernels
through (``Simulation(kernel=...)``, ``CaseSpec.kernel``, the CLI
``--kernel`` flag), and :func:`auto_select_kernel` implements
``kernel="auto"`` with a three-rung resolution ladder:

1. **model** — a fitted :class:`~repro.perf.model.FittedPerfModel`
   calibration for this host (see ``repro perf-model fit``) predicts
   every candidate's MFLUP/s from the roofline's B(Q) arithmetic; when
   it covers all candidates the winner is chosen without running a
   single timed step (``$REPRO_NO_PERF_MODEL`` opts out);
2. **cached** — a previously measured verdict for this exact (host,
   shape, lattice, order, dtype, candidates) identity replays;
3. **measured** — the cold-start timing race: a few steps of each
   candidate on the actual shape/lattice/dtype, keep the fastest.
   These races are what feed the model's fit (their verdict events
   carry ``provenance="measured"``), so measurement never disappears —
   it just stops being on the hot path once a calibration exists.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet
from ..telemetry.recorder import get_telemetry
from .equilibrium import equilibrium_order_for
from .fields import LAYOUT_AOS, LAYOUT_SOA, resolve_dtype, resolve_layout
from .kernels import FusedGatherKernel, LBMKernel, NaiveKernel, RollKernel
from .streaming import pull_gather_rows

__all__ = [
    "AUTO_KERNEL",
    "DEFAULT_KERNEL",
    "KernelPlan",
    "PlannedKernel",
    "auto_select_kernel",
    "available_kernels",
    "build_aos_gather_table",
    "build_gather_table",
    "build_slab_gather_table",
    "kernel_cache_dir",
    "make_kernel",
    "model_select_kernel",
]


def build_gather_table(lattice: VelocitySet, shape: Sequence[int]) -> np.ndarray:
    """Flat pull indices over the flattened ``(Q * N,)`` populations.

    ``table[i * N + flat(x)] = i * N + flat(x - c_i)`` (periodic), so one
    ``np.take(f.reshape(-1), table, out=...)`` advects every population —
    the paper's "minimize index calculation" transformation taken to its
    limit: a single gather with no per-step index arithmetic at all.
    The index math itself is :func:`~repro.core.streaming.pull_gather_rows`
    (shared with :class:`~repro.core.kernels.FusedGatherKernel`); this
    adds the per-velocity row offsets and flattens.
    """
    shape = tuple(int(s) for s in shape)
    rows = pull_gather_rows(lattice, shape)  # (Q, N)
    n = rows.shape[1]
    offsets = (np.arange(lattice.q) * n)[:, None]
    # Deliberately left writable: np.take(mode="clip") copies read-only
    # index arrays into a fresh buffer on every call, which would turn
    # each step into a hidden field-sized allocation.
    return np.ascontiguousarray((rows + offsets).reshape(-1))


def build_aos_gather_table(lattice: VelocitySet, shape: Sequence[int]) -> np.ndarray:
    """Flat pull indices from an **array-of-structs** source buffer.

    AoS stores the populations of one cell contiguously — the flat index
    of ``(cell x, velocity i)`` is ``flat(x) * Q + i`` instead of SoA's
    ``i * N + flat(x)``.  ``table[i * N + flat(x)] = flat(x - c_i) * Q + i``,
    so one ``np.take`` through it streams out of AoS storage *and*
    transposes into the plan's struct-of-arrays scratch in the same
    gather — the "plan-time index-table remapping" that lets both
    layouts share one kernel body (paper §IV's layout study).
    """
    shape = tuple(int(s) for s in shape)
    rows = pull_gather_rows(lattice, shape)  # (Q, N) spatial source index
    table = rows * lattice.q + np.arange(lattice.q, dtype=rows.dtype)[:, None]
    return np.ascontiguousarray(table.reshape(-1))


def build_slab_gather_table(
    lattice: VelocitySet, padded_shape: Sequence[int], window: slice
) -> np.ndarray:
    """Flat pull indices from a halo-padded slab into an x-window of it.

    ``table[i * Nw + flat_w(x)] = i * Npad + flat_pad(x - c_i)``, where
    destinations range over the compute ``window`` (an x-slice of the
    padded array) and sources live in the *full* padded array: periodic
    along y/z, **non-wrapping** along x — the 1-D slab decomposition
    axis, where wrap-around data arrives by halo exchange instead.  One
    ``np.take`` through this table therefore streams *and* extracts the
    valid window in a single gather, the halo-padded counterpart of
    :func:`build_gather_table`.

    Every source must lie inside the padded array; that holds exactly
    when the window leaves ``k = max_displacement`` planes of padding on
    each side (the deep-halo validity invariant), and is verified here
    so a mis-sized window fails at plan build, not as silent clipping.
    """
    padded_shape = tuple(int(s) for s in padded_shape)
    px = padded_shape[0]
    start, stop, _ = window.indices(px)
    if stop <= start:
        raise LatticeError(f"empty compute window {window} in {padded_shape}")
    coords = np.indices((stop - start, *padded_shape[1:]))
    n_pad = int(np.prod(padded_shape))
    rows = []
    for i, c in enumerate(lattice.velocities):
        sx = coords[0] + start - int(c[0])  # non-wrapping decomposed axis
        if sx.min() < 0 or sx.max() >= px:
            raise LatticeError(
                f"window {start}:{stop} needs sources outside the padded "
                f"array (x extent {px}); widen the padding by "
                f"{lattice.max_displacement} planes per side"
            )
        flat = sx
        for axis in range(1, len(padded_shape)):
            src = (coords[axis] - int(c[axis])) % padded_shape[axis]
            flat = flat * padded_shape[axis] + src
        rows.append((flat + i * n_pad).ravel())
    return np.ascontiguousarray(np.concatenate(rows))


class KernelPlan:
    """Precomputed state for one ``(lattice, shape, order, dtype)`` hot loop.

    Everything :meth:`PlannedKernel.step` needs that does not change
    between steps: the gather table, the cast constant tables, and the
    scratch arena.  Plans are cheap to hold and safe to share between
    steps; they must not be shared between concurrently stepping kernels
    (the arena is mutable state).

    ``shape`` is the plan's *compute* extent.  By default it is also the
    streaming source extent (periodic single domain); a plan built via
    :meth:`for_window` instead computes a movable x-window of a larger
    halo-padded array, gathering its sources from the padded array —
    the extension :class:`~repro.parallel.plan.PlannedSlabKernel` rides.
    """

    def __init__(
        self,
        lattice: VelocitySet,
        shape: Sequence[int],
        order: int | None = None,
        dtype: "np.dtype | str | None" = None,
        gather: np.ndarray | None = None,
        layout: str | None = None,
    ) -> None:
        self.lattice = lattice
        self.shape = tuple(int(s) for s in shape)
        # An explicit gather table may address any source topology (a
        # sparse fluid-site list is a 1-D "shape"); only default periodic
        # tables require the full lattice dimensionality.
        if any(s <= 0 for s in self.shape) or (
            gather is None and len(self.shape) != lattice.dim
        ):
            raise LatticeError(f"bad spatial shape {self.shape} for {lattice.name}")
        self.order = equilibrium_order_for(lattice, order)
        self.dtype = resolve_dtype(dtype)
        self.layout = resolve_layout(layout)
        q = lattice.q
        n = int(np.prod(self.shape))
        self.num_cells = n
        #: x-slice of the source array this plan computes (None = whole).
        self.window: slice | None = None
        #: Spatial shape of the streaming *source* array (== shape for
        #: periodic plans; the padded shape for window plans).
        self.source_shape: tuple[int, ...] = self.shape
        if gather is None:
            builder = (
                build_aos_gather_table
                if self.layout == LAYOUT_AOS
                else build_gather_table
            )
            gather = builder(lattice, self.shape)
        self.gather = gather
        # AoS exit path: the collision writes a contiguous (Q, N) scratch
        # and one take through this transpose permutation scatters it
        # back into cell-major order.  Writing the strided AoS view
        # directly would be exact too, but numpy routes badly-strided
        # ufunc outputs through its buffered iterator — a per-call heap
        # allocation the planned discipline forbids.
        if self.layout == LAYOUT_AOS:
            self._aos_out = np.empty((q, n), dtype=self.dtype)
            self._aos_out_flat = self._aos_out.reshape(-1)
            self._soa_index = np.ascontiguousarray(
                np.arange(q * n, dtype=np.int64).reshape(q, n).T.reshape(-1)
            )
        else:
            self._aos_out = None
            self._aos_out_flat = None
            self._soa_index = None
        # Constant tables, cast once (velocities_as caches per lattice).
        self.c = lattice.velocities_as(self.dtype)  # (Q, D)
        self.c_t = np.ascontiguousarray(self.c.T)  # (D, Q)
        self.w = lattice.weights_as(self.dtype)  # (Q,)
        # Scratch arena: the only memory the per-step update ever writes
        # besides the caller's field itself.  The post-streaming buffer
        # `adv` serves only the fused step_into path (the split
        # stream/collide path streams into the caller's own buffer), so
        # it is allocated lazily on the first fused step.
        self._adv: np.ndarray | None = None
        self._adv_flat: np.ndarray | None = None
        self.rho = np.empty(n, dtype=self.dtype)  # density
        self.u = np.empty((lattice.dim, n), dtype=self.dtype)  # velocity
        self.cu = np.empty((q, n), dtype=self.dtype)  # c_i . u
        self.term = np.empty((q, n), dtype=self.dtype)  # Hermite series / feq
        self.work = np.empty((q, n), dtype=self.dtype)  # (Q, N) scratch
        self.cell = np.empty(n, dtype=self.dtype)  # per-cell scratch (u^2)
        # Row views + scalar weights, prebuilt so the hot loop's
        # per-velocity operations are same-shape contiguous ufunc calls.
        # Broadcast in-place ops ((Q, N) ⊙ (N,)) would be correct too,
        # but numpy routes them through its ufunc buffer whenever N is
        # below the buffer size — a per-step heap allocation.
        self._u_rows = tuple(self.u[a] for a in range(lattice.dim))
        self._term_rows = tuple(self.term[i] for i in range(q))
        self._work_rows = tuple(self.work[i] for i in range(q))
        self._w_scalars = tuple(float(w) for w in self.w)

    @classmethod
    def for_window(
        cls,
        lattice: VelocitySet,
        padded_shape: Sequence[int],
        window: slice,
        order: int | None = None,
        dtype: "np.dtype | str | None" = None,
    ) -> "KernelPlan":
        """A plan computing one x-window of a halo-padded slab array.

        ``stream_into`` then expects the *padded* array as its source
        and the plan's window-sized buffer as its destination; the
        collision arena is sized for the window.  Used per validity
        level by :class:`~repro.parallel.plan.PlannedSlabKernel` (each
        deep-halo sub-step computes a different, shrinking window).
        """
        padded_shape = tuple(int(s) for s in padded_shape)
        start, stop, _ = window.indices(padded_shape[0])
        shape = (stop - start, *padded_shape[1:])
        plan = cls(
            lattice,
            shape,
            order=order,
            dtype=dtype,
            gather=build_slab_gather_table(lattice, padded_shape, window),
        )
        plan.window = slice(start, stop)
        plan.source_shape = padded_shape
        return plan

    @property
    def nbytes(self) -> int:
        """Bytes held by the arena + gather table (diagnostics)."""
        arrays = (
            self.gather,
            self.rho,
            self.u,
            self.cu,
            self.term,
            self.work,
            self.cell,
        )
        extra = 0 if self._adv is None else self._adv.nbytes
        if self._aos_out is not None:
            extra += self._aos_out.nbytes + self._soa_index.nbytes
        return int(sum(a.nbytes for a in arrays)) + extra

    def _fused_buffers(self) -> tuple[np.ndarray, np.ndarray]:
        """The (adv, adv_flat) pair for the fused path, allocated once."""
        if self._adv is None:
            self._adv = np.empty(
                (self.lattice.q, self.num_cells), dtype=self.dtype
            )
            self._adv_flat = self._adv.reshape(-1)
        return self._adv, self._adv_flat

    # -- the planned update --------------------------------------------

    def _flat_source(self, f: np.ndarray) -> np.ndarray:
        """``f`` as the flat buffer the gather table indexes.

        SoA plans index the array's own C order.  AoS plans index the
        cell-major physical buffer — ``f`` arrives as the logical
        ``(Q, *shape)`` transposed view over it, and ``moveaxis`` back
        recovers the contiguous buffer without copying.
        """
        if self.layout == LAYOUT_AOS:
            return np.moveaxis(f, 0, -1).reshape(-1)
        return f.reshape(-1)

    def collide_native(self, src: np.ndarray, out: np.ndarray, omega: float) -> None:
        """Collide SoA ``src`` into the layout-native logical array ``out``.

        SoA writes straight through :meth:`collide_into`.  AoS collides
        into the plan's contiguous scratch and scatters it back through
        the transpose permutation in one ``np.take`` — an exact
        permutation (bytes unchanged), so both layouts produce identical
        populations per dtype; the extra pass is the layout's genuine,
        measurable scatter cost.
        """
        if self.layout == LAYOUT_AOS:
            self.collide_into(src, self._aos_out, omega)
            np.take(
                self._aos_out_flat,
                self._soa_index,
                out=np.moveaxis(out, 0, -1).reshape(-1),
                mode="clip",
            )
        else:
            self.collide_into(src, out.reshape(self.lattice.q, -1), omega)

    def stream_into(self, f: np.ndarray, out: np.ndarray) -> None:
        """Advect ``f`` into ``out`` via the precomputed gather table.

        ``mode="clip"`` writes straight into ``out``; the default
        ``mode="raise"`` routes through a full-size bounce buffer (a
        hidden field-sized allocation per step).  The table's indices
        are in-bounds by construction, so clipping never fires.  ``out``
        is always struct-of-arrays (the scratch side), whatever the
        plan's source layout.
        """
        np.take(self._flat_source(f), self.gather, out=out.reshape(-1), mode="clip")

    def collide_into(self, src: np.ndarray, out_flat: np.ndarray, omega: float) -> None:
        """Relax post-streaming populations ``src`` (shape ``(Q, N)``)
        into ``out_flat`` using only ``out=`` ufunc calls on the arena.

        ``src`` may be the arena's own ``adv`` (the fused path) or any
        ``(Q, N)`` view of a caller-owned buffer (the split path the
        simulation driver uses so boundary conditions can run between
        streaming and collision).  ``src`` is read-only here; the result
        is ``(1 - omega) src + omega feq(src)``.
        """
        rho, u, cu = self.rho, self.u, self.cu
        term, work, cell = self.term, self.work, self.cell
        cs2 = self.lattice.cs2_float
        inv_cs2 = 1.0 / cs2

        # moments: rho = sum_i f_i ; u = c^T f / rho
        src.sum(axis=0, out=rho)
        np.dot(self.c_t, src, out=u)
        for u_row in self._u_rows:  # u /= rho without broadcast buffering
            u_row /= rho
        # cu_i = c_i . u, then u is free: square it in place for u^2
        np.dot(self.c, u, out=cu)
        np.multiply(u, u, out=u)
        u.sum(axis=0, out=cell)  # cell = u^2

        # Hermite series at the plan's order (paper Eqs. 2/3)
        np.multiply(cu, inv_cs2, out=work)  # work = cu/cs2
        if self.order >= 2:
            np.multiply(work, work, out=term)  # (cu/cs2)^2
            term *= 0.5
            term += work
            term += 1.0
            cell *= 0.5 * inv_cs2  # cell = u^2/(2 cs2)
            for term_row in self._term_rows:
                term_row -= cell
        else:
            np.add(work, 1.0, out=term)
        if self.order >= 3:
            cell *= 6.0 * cs2  # cell = 3 u^2 (undoes the 1/(2 cs2))
            np.multiply(cu, cu, out=work)
            work *= inv_cs2  # cu^2/cs2
            for work_row in self._work_rows:
                work_row -= cell
            work *= cu
            work *= inv_cs2 * inv_cs2 / 6.0
            term += work

        # feq = w rho term (into term), then out = (1-omega) src + omega feq
        for term_row, weight in zip(self._term_rows, self._w_scalars):
            term_row *= weight
            term_row *= rho
        np.multiply(src, 1.0 - omega, out=out_flat)
        term *= omega
        out_flat += term

    def step_into(self, f: np.ndarray, omega: float) -> np.ndarray:
        """One fused stream+collide step, result written back into ``f``."""
        adv, adv_flat = self._fused_buffers()
        self.stream_into(f, adv_flat)
        self.collide_native(adv, f, omega)
        return f


class PlannedKernel(LBMKernel):
    """Zero-allocation planned kernel (the ladder's measured endpoint).

    Holds a :class:`KernelPlan` built lazily for the first shape it
    sees (or eagerly when ``shape`` is given) and replays it every
    step.  Input populations must match the kernel's dtype — silently
    casting would reintroduce exactly the hidden full-lattice copies
    this kernel exists to eliminate.
    """

    name = "planned"

    def __init__(
        self,
        lattice: VelocitySet,
        tau: float,
        order: int | None = None,
        dtype: "np.dtype | str | None" = None,
        shape: Sequence[int] | None = None,
        layout: str | None = None,
    ) -> None:
        super().__init__(lattice, tau, order)
        self.dtype = resolve_dtype(dtype)
        self.layout = resolve_layout(layout)
        self._plan: KernelPlan | None = None
        if shape is not None:
            self._plan = KernelPlan(
                lattice,
                shape,
                order=self.collision.order,
                dtype=self.dtype,
                layout=self.layout,
            )

    def plan_for(self, shape: Sequence[int]) -> KernelPlan:
        """The plan for ``shape``, rebuilding only on a shape change."""
        shape = tuple(int(s) for s in shape)
        if self._plan is None or self._plan.shape != shape:
            self._plan = KernelPlan(
                self.lattice,
                shape,
                order=self.collision.order,
                dtype=self.dtype,
                layout=self.layout,
            )
        return self._plan

    def _check_dtype(self, f: np.ndarray) -> None:
        if f.dtype != self.dtype:
            raise LatticeError(
                f"planned kernel is built for {self.dtype.name}, got "
                f"{f.dtype.name} populations (rebuild the kernel or cast "
                "the field explicitly)"
            )

    def _check_input(self, f: np.ndarray) -> None:
        """Validate a *layout-native* persistent field array."""
        self._check_dtype(f)
        native = f if self.layout == LAYOUT_SOA else np.moveaxis(f, 0, -1)
        if not native.flags.c_contiguous:
            # reshape(-1) on a strided view returns a *copy*; the out=
            # writes would then land in a throwaway buffer and the
            # caller's array would silently keep its pre-step values.
            raise LatticeError(
                f"planned kernel ({self.layout} layout) requires "
                "layout-contiguous populations (got a strided view; pass "
                "an array whose physical order matches the layout)"
            )

    def _check_soa(self, f: np.ndarray) -> None:
        """Validate a struct-of-arrays scratch-side array."""
        self._check_dtype(f)
        if not f.flags.c_contiguous:
            raise LatticeError(
                "planned kernel requires C-contiguous populations "
                "(got a strided view; pass np.ascontiguousarray(f))"
            )

    def step(self, f: np.ndarray) -> np.ndarray:
        self._check_input(f)
        return self.plan_for(f.shape[1:]).step_into(f, self.collision.omega)

    def stream(self, f: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Gather-table streaming into SoA ``out`` (split path for drivers)."""
        self._check_input(f)
        self._check_soa(out)
        self.plan_for(f.shape[1:]).stream_into(f, out)
        return out

    def collide(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Planned collision from SoA ``f`` into layout-native ``out``."""
        self._check_soa(f)
        if out is None:
            if self.layout == LAYOUT_AOS:
                raise LatticeError(
                    "aos planned kernel cannot collide in place: the "
                    "source is struct-of-arrays scratch; pass out="
                )
            out = f
        else:
            self._check_input(out)
        plan = self.plan_for(f.shape[1:])
        plan.collide_native(
            f.reshape(self.lattice.q, -1), out, self.collision.omega
        )
        return out


# -- kernel selection -------------------------------------------------------

#: Name -> kernel class; the single registry every selection path uses.
KERNELS: dict[str, type[LBMKernel]] = {
    "naive": NaiveKernel,
    "roll": RollKernel,
    "fused-gather": FusedGatherKernel,
    "planned": PlannedKernel,
}

#: The sentinel name that triggers measured auto-selection.
AUTO_KERNEL = "auto"

#: What ``Simulation`` uses when no kernel is requested (the legacy
#: roll-stream + fused-collide production pair).
DEFAULT_KERNEL = "roll"

#: Candidates ``kernel="auto"`` times.  NaiveKernel is excluded — it is
#: the executable specification, O(minutes) beyond toy grids.
AUTO_CANDIDATES = ("roll", "fused-gather", "planned")


def available_kernels() -> tuple[str, ...]:
    """Names of all selectable kernels, sorted (excludes ``"auto"``)."""
    return tuple(sorted(KERNELS))


def make_kernel(
    kernel: "str | LBMKernel",
    lattice: VelocitySet,
    tau: float,
    order: int | None = None,
    dtype: "np.dtype | str | None" = None,
    shape: Sequence[int] | None = None,
    layout: str | None = None,
    domain=None,
) -> LBMKernel:
    """Resolve a kernel selection to a ready instance.

    ``kernel`` may be an :class:`LBMKernel` instance (returned as-is), a
    registry name, or ``"auto"`` (requires ``shape``; times the
    candidates on the actual problem).  ``dtype`` matters only to the
    planned kernel — the other kernels adapt to whatever dtype the
    populations carry.

    ``layout`` selects the persistent field's physical order; only the
    planned kernel supports ``"aos"`` (its plan remaps the gather
    table), so ``"auto"`` under AoS resolves straight to it.

    ``domain`` (a :class:`~repro.core.sparse.SparseDomain`) switches to
    the sparse rung of the ladder: ``legacy``/``planned``/``auto`` (and
    the registry names ``sparse-legacy``/``sparse-planned``) resolve to
    indirect-addressing kernels streaming that domain's fluid sites.
    """
    layout = resolve_layout(layout)
    if isinstance(kernel, LBMKernel):
        if getattr(kernel, "layout", LAYOUT_SOA) != layout:
            raise LatticeError(
                f"kernel instance uses layout={getattr(kernel, 'layout', LAYOUT_SOA)!r}"
                f" but layout={layout!r} was requested"
            )
        return kernel
    key = str(kernel).lower()
    if domain is not None:
        if layout != LAYOUT_SOA:
            raise LatticeError(
                "sparse kernels store populations per fluid site "
                "(struct-of-arrays only); layout='aos' is a dense-grid axis"
            )
        from .sparse import make_sparse_kernel  # late: sparse builds on plan

        return make_sparse_kernel(key, domain, tau, order=order, dtype=dtype)
    if key.startswith("sparse-"):
        raise LatticeError(
            f"kernel {kernel!r} streams a SparseDomain; pass domain= "
            "(or select it through SparseSimulation(kernel=...))"
        )
    if layout == LAYOUT_AOS:
        if key == AUTO_KERNEL:
            key = "planned"
        if KERNELS.get(key) is not PlannedKernel:
            raise LatticeError(
                f"layout='aos' requires the planned kernel (got {kernel!r}); "
                "only its plan can remap the gather table per layout"
            )
        return PlannedKernel(
            lattice, tau, order=order, dtype=dtype, shape=shape, layout=layout
        )
    if key == AUTO_KERNEL:
        if shape is None:
            raise LatticeError(
                "kernel='auto' needs the grid shape to time candidates on"
            )
        return auto_select_kernel(lattice, shape, tau, order=order, dtype=dtype)
    if key not in KERNELS:
        raise LatticeError(
            f"unknown kernel {kernel!r}; available: "
            f"{', '.join(available_kernels())} (or 'auto')"
        )
    cls = KERNELS[key]
    if cls is PlannedKernel:
        return PlannedKernel(lattice, tau, order=order, dtype=dtype, shape=shape)
    return cls(lattice, tau, order=order)


#: Environment variable overriding where auto-selection verdicts live.
KERNEL_CACHE_ENV = "REPRO_KERNEL_CACHE_DIR"

#: Environment variable disabling the verdict cache entirely (any
#: non-empty value); the programmatic escape hatch behind the CLI's
#: ``--no-kernel-cache``.
KERNEL_CACHE_DISABLE_ENV = "REPRO_NO_KERNEL_CACHE"

#: Environment variable disabling model-based ``kernel="auto"``
#: resolution (any non-empty value): selection falls back to the
#: measured verdict cache / timing race even when a calibration exists.
PERF_MODEL_DISABLE_ENV = "REPRO_NO_PERF_MODEL"


def kernel_cache_dir() -> Path:
    """Directory holding cached ``kernel="auto"`` verdicts.

    ``$REPRO_KERNEL_CACHE_DIR`` when set, else the conventional
    per-user cache location (``$XDG_CACHE_HOME``/``~/.cache``) under
    ``repro/kernel-auto``.
    """
    override = os.environ.get(KERNEL_CACHE_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or (Path.home() / ".cache")
    return Path(base) / "repro" / "kernel-auto"


def _auto_cache_key(
    lattice: VelocitySet,
    shape: tuple[int, ...],
    order: int | None,
    dtype: np.dtype,
    candidates: Sequence[str],
) -> dict:
    """The identity a cached verdict is valid for.

    Keyed per *host* because the verdict is a timing race: another
    machine (or core count) may legitimately crown a different kernel.
    ``tau`` is deliberately absent — it scales the arithmetic, not the
    memory behaviour the race measures.
    """
    return {
        "host": platform.node(),
        "lattice": lattice.name,
        "shape": list(shape),
        "order": equilibrium_order_for(lattice, order),
        "dtype": dtype.name,
        "candidates": list(candidates),
    }


def _auto_cache_path(cache_dir: Path, key: dict) -> Path:
    digest = hashlib.sha256(
        json.dumps(key, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return cache_dir / f"{digest[:24]}.json"


def _read_auto_cache(path: Path, key: dict) -> dict | None:
    """The cached verdict record, or ``None`` if absent/corrupt/stale."""
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if record.get("key") != key or record.get("kernel") not in KERNELS:
        return None
    return record


def _write_auto_cache(path: Path, key: dict, best: str, timings: dict) -> None:
    """Best-effort verdict write (an unwritable cache is not an error)."""
    record = {"key": key, "kernel": best, "timings": timings}
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
        tmp.write_text(json.dumps(record, sort_keys=True, indent=1))
        os.replace(tmp, path)
    except OSError:
        pass


def _emit_auto_verdict(
    winner: str,
    provenance: str,
    lattice: VelocitySet,
    shape: tuple[int, ...],
    dtype: np.dtype,
    timings: dict,
    mode: str | None = None,
    fill: float | None = None,
) -> None:
    """Record a ``kernel.auto`` verdict event on the ambient recorder.

    Each candidate's timing (mean seconds per step) is also expressed
    as measured MFLUP/s via the paper's Eq. 4 — the number the roofline
    discussion compares kernels by.  Sparse verdicts stamp their
    ``mode="sparse"`` and fluid ``fill`` fraction so the perf-model
    fitter can attribute them to the fill-aware B(Q).
    """
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return
    from ..perf.metrics import mflups  # late: perf builds on core

    cells = int(np.prod(shape))
    rates = {
        str(name): mflups(1, cells, float(seconds))
        for name, seconds in timings.items()
        if float(seconds) > 0
    }
    attrs: dict = {}
    if mode is not None:
        attrs["mode"] = str(mode)
    if fill is not None:
        attrs["fill"] = float(fill)
    telemetry.event(
        "kernel.auto",
        winner=winner,
        provenance=provenance,
        lattice=lattice.name,
        shape=list(shape),
        dtype=dtype.name,
        step_seconds={str(k): float(v) for k, v in timings.items()},
        mflups=rates,
        **attrs,
    )


def model_select_kernel(
    lattice: VelocitySet,
    shape: Sequence[int],
    tau: float,
    order: int | None = None,
    dtype: "np.dtype | str | None" = None,
    candidates: Sequence[str] = AUTO_CANDIDATES,
) -> LBMKernel | None:
    """Resolve ``kernel="auto"`` from this host's fitted calibration.

    Returns the predicted-fastest candidate as a ready instance, or
    ``None`` when no calibration exists or it does not cover *every*
    candidate (a partial model could only crown a winner by ignoring
    the kernels it has never seen — that question belongs to the
    measured race).  The winner carries the prediction as
    ``auto_timings`` (predicted seconds per step, comparable to the
    race's measured figures) and ``auto_provenance = "model"``.
    """
    from ..perf.model import load_calibration  # late: perf builds on core

    calibration = load_calibration()
    if calibration is None:
        return None
    dtype = resolve_dtype(dtype)
    shape = tuple(int(s) for s in shape)
    rates = calibration.rank_kernels(
        candidates, lattice.name, dtype.name, shape=shape
    )
    if set(rates) != set(candidates):
        return None
    cells = int(np.prod(shape))
    # Predicted mean seconds per step, the same unit the race measures.
    timings = {name: cells / (rate * 1e6) for name, rate in rates.items()}
    best = min(timings, key=lambda name: (timings[name], name))
    winner = make_kernel(best, lattice, tau, order=order, dtype=dtype, shape=shape)
    winner.auto_timings = dict(timings)
    winner.auto_cached = False
    winner.auto_provenance = "model"
    _emit_auto_verdict(best, "model", lattice, shape, dtype, timings)
    return winner


def auto_select_kernel(
    lattice: VelocitySet,
    shape: Sequence[int],
    tau: float,
    order: int | None = None,
    dtype: "np.dtype | str | None" = None,
    candidates: Sequence[str] = AUTO_CANDIDATES,
    warmup: int = 1,
    trials: int = 2,
    clock: Callable[[], float] = time.perf_counter,
    cache: bool | None = None,
    cache_dir: "str | Path | None" = None,
    model: bool | None = None,
) -> LBMKernel:
    """Resolve ``kernel="auto"``: model, then cached verdict, then race.

    With a fitted calibration on this host (``repro perf-model fit``)
    that covers every candidate, the winner comes straight from
    :func:`model_select_kernel` — no timed steps at all.  Otherwise a
    previously cached measured verdict for this exact identity replays;
    otherwise the cold-start timing race runs: the same
    sweep-and-pick-min idiom as :mod:`repro.perf.tuner`'s ghost depth
    tuning, but measured — ``warmup`` steps build each kernel's
    tables/buffers, then ``trials`` steps are timed on an equilibrium
    rest state.  The winning *instance* is returned (already warm),
    with per-candidate mean step seconds (measured or predicted)
    attached as ``kernel.auto_timings`` and the resolution rung as
    ``kernel.auto_provenance`` (``"model"``/``"cached"``/``"measured"``).

    Measured verdicts are cached per (host, shape, lattice, order,
    dtype, candidates) under :func:`kernel_cache_dir`; a hit returns a
    fresh warm instance of the recorded winner with
    ``kernel.auto_cached = True``.  ``cache=False`` (or a set
    ``$REPRO_NO_KERNEL_CACHE``) disables both the lookup and the
    write-back; ``model=False`` (or a set ``$REPRO_NO_PERF_MODEL``)
    skips the calibration rung; ``None`` means "on unless the
    environment disables it".
    """
    if not candidates:
        raise LatticeError("auto kernel selection needs at least one candidate")
    dtype = resolve_dtype(dtype)
    shape = tuple(int(s) for s in shape)
    if model is None:
        model = not os.environ.get(PERF_MODEL_DISABLE_ENV)
    if model:
        winner = model_select_kernel(
            lattice, shape, tau, order=order, dtype=dtype, candidates=candidates
        )
        if winner is not None:
            return winner
    if cache is None:
        cache = not os.environ.get(KERNEL_CACHE_DISABLE_ENV)
    cache_path = None
    if cache:
        key = _auto_cache_key(lattice, shape, order, dtype, candidates)
        cache_path = _auto_cache_path(
            Path(cache_dir) if cache_dir is not None else kernel_cache_dir(), key
        )
        record = _read_auto_cache(cache_path, key)
        if record is not None:
            winner = make_kernel(
                record["kernel"], lattice, tau, order=order, dtype=dtype, shape=shape
            )
            winner.auto_timings = {
                str(k): float(v) for k, v in record.get("timings", {}).items()
            }
            winner.auto_cached = True
            winner.auto_provenance = "cached"
            _emit_auto_verdict(
                record["kernel"], "cached", lattice, shape, dtype,
                winner.auto_timings,
            )
            return winner
    # Equilibrium at rest (rho=1, u=0): f_i = w_i, numerically inert, so
    # timing steps cannot go unstable no matter the tau.
    f0 = np.empty((lattice.q, *shape), dtype=dtype)
    f0[...] = lattice.weights_as(dtype).reshape((lattice.q,) + (1,) * len(shape))
    kernels: dict[str, LBMKernel] = {}
    timings: dict[str, float] = {}
    with get_telemetry().span(
        "kernel.auto.race",
        lattice=lattice.name,
        shape=list(shape),
        dtype=dtype.name,
        candidates=list(candidates),
    ):
        for name in candidates:
            kernel = make_kernel(
                name, lattice, tau, order=order, dtype=dtype, shape=shape
            )
            f = f0.copy()
            for _ in range(max(1, warmup)):
                f = kernel.step(f)
            start = clock()
            for _ in range(max(1, trials)):
                f = kernel.step(f)
            timings[name] = (clock() - start) / max(1, trials)
            kernels[name] = kernel
    best = min(timings, key=lambda name: (timings[name], name))
    if cache_path is not None:
        _write_auto_cache(cache_path, key, best, timings)
    winner = kernels[best]
    winner.auto_timings = dict(timings)
    winner.auto_cached = False
    winner.auto_provenance = "measured"
    _emit_auto_verdict(best, "measured", lattice, shape, dtype, timings)
    return winner
