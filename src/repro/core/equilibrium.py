"""Truncated Hermite equilibria (paper Eqs. 2 and 3).

The local equilibrium is a Hermite expansion of the Maxwellian about zero
mean velocity (Grad / Shan–Yuan–Chen).  With ``cu = c_i . u``:

second order (Eq. 2, recovers Navier–Stokes)::

    feq_i = w_i rho [ 1 + cu/cs2 + cu^2/(2 cs2^2) - u^2/(2 cs2) ]

third order (Eq. 3, D3Q39, beyond Navier–Stokes)::

    feq_i = second order
            + w_i rho * cu/(6 cs2^2) * ( cu^2/cs2 - 3 u^2 )

The printed equations in the paper have ``u^2/c_s`` where dimensional
consistency (and the original Shan–Yuan–Chen derivation) requires
``u^2/c_s^2``; we implement the standard forms, which exactly conserve
mass and momentum on any lattice whose quadrature is of sufficient
degree (unit-tested for all four lattices).
"""

from __future__ import annotations

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet

__all__ = ["equilibrium", "equilibrium_order_for"]


def equilibrium_order_for(lattice: VelocitySet, order: int | None) -> int:
    """Resolve the expansion order for ``lattice``.

    ``None`` selects the lattice's native order (2 for D3Q19, 3 for
    D3Q39).  Requesting an order above what the lattice's quadrature
    supports raises :class:`LatticeError` — e.g. a third-order expansion
    on D3Q19, whose fourth-order isotropy cannot represent the extra
    Hermite mode (this is exactly why the paper moves to D3Q39).
    """
    if order is None:
        order = lattice.equilibrium_order
    if not 1 <= order <= 3:
        raise LatticeError(f"equilibrium order must be 1..3, got {order}")
    if order > lattice.equilibrium_order:
        raise LatticeError(
            f"{lattice.name} supports expansion order {lattice.equilibrium_order}; "
            f"order {order} requires a higher-isotropy lattice (e.g. D3Q39)"
        )
    return order


def equilibrium(
    lattice: VelocitySet,
    rho: np.ndarray,
    u: np.ndarray,
    order: int | None = None,
    out: np.ndarray | None = None,
    dtype: "np.dtype | str | None" = None,
) -> np.ndarray:
    """Evaluate the truncated Hermite equilibrium on a grid.

    Parameters
    ----------
    lattice:
        Velocity set.
    rho:
        Density, spatial shape ``S`` (scalars and 0-d arrays broadcast).
    u:
        Velocity, shape ``(D, *S)``.
    order:
        Hermite truncation order 1–3; ``None`` = lattice native order.
    out:
        Optional output array of shape ``(Q, *S)`` (avoids allocation in
        the hot loop).
    dtype:
        Population dtype to evaluate in.  ``None`` follows the dtype
        policy: ``out``'s dtype when given, else float32 iff every
        floating array input is float32, else float64.

    Returns
    -------
    numpy.ndarray
        Populations of shape ``(Q, *S)``.
    """
    from .fields import compute_dtype, resolve_dtype

    order = equilibrium_order_for(lattice, order)
    if dtype is not None:
        dtype = resolve_dtype(dtype)
    elif out is not None:
        dtype = resolve_dtype(out.dtype)
    else:
        dtype = compute_dtype(rho, u)
    rho = np.asarray(rho, dtype=dtype)
    u = np.asarray(u, dtype=dtype)
    if u.shape[0] != lattice.dim:
        raise LatticeError(f"u must have leading dim {lattice.dim}, got {u.shape}")
    cs2 = lattice.cs2_float
    c = lattice.velocities_as(dtype)  # (Q, D)
    w = lattice.weights_as(dtype)  # (Q,)

    # cu[i, ...] = c_i . u ;  u2[...] = |u|^2
    cu = np.tensordot(c, u, axes=([1], [0]))
    u2 = np.einsum("a...,a...->...", u, u)

    spatial_shape = cu.shape[1:]
    expand = (slice(None),) + (None,) * len(spatial_shape)

    term = 1.0 + cu / cs2
    if order >= 2:
        term += 0.5 * (cu / cs2) ** 2 - 0.5 * (u2 / cs2)
    if order >= 3:
        term += cu / (6.0 * cs2 * cs2) * ((cu * cu) / cs2 - 3.0 * u2)

    if out is None:
        out = np.empty((lattice.q, *spatial_shape), dtype=dtype)
    np.multiply(w[expand], term, out=out)
    out *= rho[None]
    return out
