"""Diagnostics computed from the macroscopic fields."""

from __future__ import annotations

import numpy as np

from ..lattice import VelocitySet
from .moments import macroscopic

__all__ = [
    "total_mass",
    "total_momentum",
    "kinetic_energy",
    "max_speed",
    "mach_number_field",
    "enstrophy",
    "velocity_profile",
]


def total_mass(f: np.ndarray) -> float:
    """Sum of all populations — conserved exactly by collision+streaming."""
    return float(f.sum())


def total_momentum(lattice: VelocitySet, f: np.ndarray) -> np.ndarray:
    """Global momentum vector, shape ``(D,)``."""
    c = lattice.velocities_as(np.float64)
    spatial_axes = tuple(range(1, f.ndim))
    return np.tensordot(c.T, f.sum(axis=spatial_axes), axes=([1], [0]))


def kinetic_energy(lattice: VelocitySet, f: np.ndarray) -> float:
    """Total macroscopic kinetic energy ``1/2 sum rho |u|^2``."""
    rho, u = macroscopic(lattice, f)
    return float(0.5 * (rho * np.einsum("a...,a...->...", u, u)).sum())


def max_speed(lattice: VelocitySet, f: np.ndarray) -> float:
    """Maximum flow speed (for Mach/stability monitoring)."""
    _, u = macroscopic(lattice, f)
    return float(np.sqrt(np.einsum("a...,a...->...", u, u)).max())


def mach_number_field(lattice: VelocitySet, f: np.ndarray) -> np.ndarray:
    """Local Mach number field ``|u| / c_s``."""
    _, u = macroscopic(lattice, f)
    return np.sqrt(np.einsum("a...,a...->...", u, u) / lattice.cs2_float)


def enstrophy(lattice: VelocitySet, f: np.ndarray) -> float:
    """Total enstrophy ``1/2 sum |curl u|^2`` (periodic finite differences).

    Diagnoses vortical structure decay in the Taylor–Green example.
    """
    _, u = macroscopic(lattice, f)
    if u.shape[0] != 3:
        raise ValueError("enstrophy requires a 3-D velocity field")

    def d(comp: np.ndarray, axis: int) -> np.ndarray:
        return (np.roll(comp, -1, axis=axis) - np.roll(comp, 1, axis=axis)) / 2.0

    wx = d(u[2], 1) - d(u[1], 2)
    wy = d(u[0], 2) - d(u[2], 0)
    wz = d(u[1], 0) - d(u[0], 1)
    return float(0.5 * (wx**2 + wy**2 + wz**2).sum())


def velocity_profile(
    lattice: VelocitySet, f: np.ndarray, flow_axis: int, across_axis: int
) -> np.ndarray:
    """Mean flow-direction velocity as a function of the cross coordinate.

    Averages ``u[flow_axis]`` over all axes except ``across_axis`` —
    e.g. the Poiseuille/Couette profile across a channel.
    """
    _, u = macroscopic(lattice, f)
    comp = u[flow_axis]
    axes = tuple(a for a in range(comp.ndim) if a != across_axis)
    return comp.mean(axis=axes)
