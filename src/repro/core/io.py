"""Field output and checkpointing.

Production LBM codes ship their state out for visualisation and
restart; this module provides the minimum a downstream user needs:

* :func:`write_vtk` — legacy-ASCII VTK ``STRUCTURED_POINTS`` files of
  the macroscopic fields, loadable by ParaView/VisIt;
* :func:`save_checkpoint` / :func:`load_checkpoint` — lossless restart
  files (numpy ``.npz``) carrying populations + run metadata + the
  observable series recorded so far, with a round-trip that is
  bit-exact (unit-tested);
* :func:`canonical_json` / :func:`serialize_result_data` — stable,
  order-independent serialization of scalar run outcomes (the basis of
  the scenario sweep result cache, whose keys and payloads must be
  bit-identical across processes and runs);
* :class:`ClaimRecord` and the claim-file primitives — atomic,
  filesystem-level exclusive claims on shared resources (the lease
  files that let distributed sweep workers divide work without a
  coordinator);
* :class:`TimeSeriesLogger` — CSV logging of scalar observables during
  a run (plugs into ``Simulation.run(monitor=...)``).
"""

from __future__ import annotations

import contextlib
import dataclasses
import io as _io
import json
import os
import socket
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import LatticeError
from ..lattice import get_lattice
from .simulation import Simulation

__all__ = [
    "write_vtk",
    "CheckpointData",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_data",
    "jsonable",
    "canonical_json",
    "serialize_result_data",
    "deserialize_result_data",
    "RESPONSE_SCHEMA_VERSION",
    "response_envelope",
    "render_response",
    "ClaimRecord",
    "write_claim",
    "read_claim",
    "refresh_claim",
    "release_claim",
    "break_claim",
    "claim_lock",
    "TimeSeriesLogger",
]


def jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-representable types.

    Numpy scalars/arrays become Python scalars/lists, tuples become
    lists, mapping keys become strings.  Floats survive bit-exactly:
    JSON text uses the shortest round-tripping ``repr``.
    """
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return jsonable(value.tolist())
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [jsonable(v) for v in items]
    raise TypeError(f"cannot serialise {type(value).__name__}: {value!r}")


def canonical_json(value: Any) -> str:
    """Serialise to a canonical JSON string: sorted keys, no whitespace.

    Two structurally equal values produce byte-identical text no matter
    the insertion order of their mappings or the process that built
    them — the property content-addressed caches need.
    """
    return json.dumps(jsonable(value), sort_keys=True, separators=(",", ":"))


def serialize_result_data(
    metrics: Mapping[str, Any],
    series: Mapping[str, Sequence[float]],
    checks: Mapping[str, bool],
) -> str:
    """Canonical text form of one run's scalar outcomes.

    The triple is what a comparison table needs from a finished case
    run (see :class:`repro.scenarios.runner.CaseResult`); serialising
    through canonical JSON keeps the round-trip bit-exact for floats.
    """
    return canonical_json(
        {"metrics": metrics, "series": series, "checks": checks}
    )


def deserialize_result_data(
    text: str,
) -> "tuple[dict[str, Any], dict[str, list[float]], dict[str, bool]]":
    """Inverse of :func:`serialize_result_data`."""
    data = json.loads(text)
    return dict(data["metrics"]), dict(data["series"]), dict(data["checks"])


# -- response envelopes -----------------------------------------------------
#
# Every machine-readable answer the repro stack gives — CLI ``--json``
# output and ``repro serve`` HTTP bodies alike — goes through one
# serializer so that the same query yields byte-identical text no
# matter which surface asked.  The envelope is versioned so consumers
# can detect shape changes without sniffing fields.

RESPONSE_SCHEMA_VERSION = 1


def response_envelope(kind: str, data: Any) -> dict[str, Any]:
    """Wrap ``data`` in the versioned response envelope.

    ``kind`` names the payload shape (``"case"``, ``"sweep"``,
    ``"fleet"``, ``"job"``, ``"worker-report"``, ``"error"``, ...);
    consumers dispatch on it rather than guessing from keys.
    """
    return {
        "schema": RESPONSE_SCHEMA_VERSION,
        "kind": str(kind),
        "data": jsonable(data),
    }


def render_response(kind: str, data: Any) -> str:
    """Canonical JSON text of one response envelope (no trailing newline).

    Like :func:`canonical_json` but strict: NaN/Infinity are rejected
    (payload builders must map them to ``None``), because the output
    must be parseable by any JSON consumer, not just Python's.
    """
    return json.dumps(
        response_envelope(kind, data),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


# -- claim records ----------------------------------------------------------
#
# A claim file is a filesystem-level mutual-exclusion token: whoever
# creates it (atomically, O_EXCL) owns the named resource until the
# file is removed or the claim expires.  Distributed sweep workers use
# them as per-variant lease files over a shared cache directory; the
# primitives below are deliberately generic (any "resource" string,
# any directory) and make no assumption about clocks beyond "loosely
# synchronised within a TTL".
#
# Claims are advisory: the sweep cache commits are content-addressed
# and idempotent, so a lost race costs a duplicated run, never a wrong
# result.


@dataclasses.dataclass
class ClaimRecord:
    """One owner's exclusive claim on a shared resource.

    Attributes
    ----------
    owner:
        Opaque owner token (workers use ``host:pid:nonce``).
    resource:
        What is claimed (sweep workers use the variant fingerprint).
    host / pid:
        Where the owner runs — lets same-host observers detect a dead
        owner immediately instead of waiting for the TTL.
    acquired_at / expires_at:
        POSIX timestamps; a claim past ``expires_at`` is stale and may
        be broken by anyone.
    """

    owner: str
    resource: str
    host: str
    pid: int
    acquired_at: float
    expires_at: float

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)


def write_claim(path: str | Path, record: ClaimRecord) -> bool:
    """Atomically create the claim file; ``False`` if already claimed.

    Uses ``O_CREAT | O_EXCL``, so of any number of concurrent callers
    exactly one succeeds — including across NFS-style shared mounts.
    """
    path = Path(path)
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        handle.write(record.to_json())
    return True


def read_claim(path: str | Path) -> ClaimRecord | None:
    """The claim currently on file, or ``None`` if absent/corrupt."""
    try:
        raw = json.loads(Path(path).read_text())
        return ClaimRecord(
            owner=str(raw["owner"]),
            resource=str(raw["resource"]),
            host=str(raw["host"]),
            pid=int(raw["pid"]),
            acquired_at=float(raw["acquired_at"]),
            expires_at=float(raw["expires_at"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def refresh_claim(path: str | Path, record: ClaimRecord) -> None:
    """Atomically rewrite a claim (heartbeat / extended expiry).

    Only the owner should refresh; the write goes through a uniquely
    named temp file + rename so readers never see a torn record.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{uuid.uuid4().hex[:8]}.tmp")
    tmp.write_text(record.to_json())
    os.replace(tmp, path)


def release_claim(path: str | Path, owner: str) -> bool:
    """Remove the claim if ``owner`` still holds it; ``True`` if removed."""
    path = Path(path)
    record = read_claim(path)
    if record is None or record.owner != owner:
        return False
    try:
        path.unlink()
    except OSError:
        return False
    return True


def break_claim(path: str | Path) -> bool:
    """Forcibly remove a (stale) claim; ``True`` iff *we* removed it.

    Rename-to-unique-then-unlink, so when several observers race to
    break the same stale claim exactly one of them wins and the claim
    file disappears exactly once — the winner may then re-acquire with
    :func:`write_claim` without a window where two fresh claims exist.
    """
    path = Path(path)
    trash = path.with_name(f"{path.name}.broken-{uuid.uuid4().hex[:8]}")
    try:
        os.rename(path, trash)
    except OSError:
        return False
    try:
        trash.unlink()
    except OSError:  # pragma: no cover - cleanup only
        pass
    return True


def _claim_owner_dead(record: ClaimRecord) -> bool:
    """Same-host claims from a dead pid are stale immediately."""
    if record.host != socket.gethostname():
        return False
    try:
        os.kill(record.pid, 0)
    except ProcessLookupError:
        return True
    except OSError:
        return False
    return False


@contextlib.contextmanager
def claim_lock(
    path: str | Path,
    *,
    ttl: float = 30.0,
    poll: float = 0.02,
    timeout: float = 30.0,
):
    """Hold a short-lived exclusive claim file around a critical section.

    Built on the same :func:`write_claim` / :func:`break_claim`
    primitives as worker leases, so it is safe across processes and
    hosts sharing the directory.  A holder that crashed (same-host dead
    pid) or let its TTL lapse is broken and the lock re-acquired; a
    live contender past ``timeout`` raises :class:`TimeoutError` rather
    than spinning forever.
    """
    path = Path(path)
    host = socket.gethostname()
    pid = os.getpid()
    owner = f"{host}:{pid}:{uuid.uuid4().hex[:8]}"
    deadline = time.monotonic() + timeout
    while True:
        now = time.time()
        record = ClaimRecord(
            owner=owner,
            resource=path.name,
            host=host,
            pid=pid,
            acquired_at=now,
            expires_at=now + ttl,
        )
        if write_claim(path, record):
            break
        held = read_claim(path)
        if held is None or now >= held.expires_at or _claim_owner_dead(held):
            break_claim(path)
            continue
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"could not acquire claim lock {path} within {timeout:g}s "
                f"(held by {held.owner})"
            )
        time.sleep(poll)
    try:
        yield
    finally:
        release_claim(path, owner)


def write_vtk(
    path: str | Path,
    simulation: Simulation,
    fields: Sequence[str] = ("density", "velocity"),
) -> Path:
    """Write macroscopic fields as a legacy-ASCII VTK file.

    Parameters
    ----------
    path:
        Output filename (conventionally ``*.vtk``).
    simulation:
        The simulation whose current state to dump.
    fields:
        Any of ``"density"``, ``"velocity"``, ``"speed"``.
    """
    valid = {"density", "velocity", "speed"}
    unknown = set(fields) - valid
    if unknown:
        raise ValueError(f"unknown fields {sorted(unknown)}; valid: {sorted(valid)}")
    rho, u = simulation.macroscopic()
    nx, ny, nz = simulation.shape
    buf = _io.StringIO()
    buf.write("# vtk DataFile Version 3.0\n")
    buf.write(f"repro LBM output, step {simulation.time_step}\n")
    buf.write("ASCII\nDATASET STRUCTURED_POINTS\n")
    buf.write(f"DIMENSIONS {nx} {ny} {nz}\n")
    buf.write("ORIGIN 0 0 0\nSPACING 1 1 1\n")
    buf.write(f"POINT_DATA {nx * ny * nz}\n")

    def scalars(name: str, data: np.ndarray) -> None:
        buf.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
        # VTK expects x fastest; our arrays are (x, y, z) C-order -> z fastest
        np.savetxt(buf, data.transpose(2, 1, 0).ravel()[:, None], fmt="%.10e")

    if "density" in fields:
        scalars("density", rho)
    if "speed" in fields:
        scalars("speed", np.sqrt(np.einsum("a...,a...->...", u, u)))
    if "velocity" in fields:
        buf.write("VECTORS velocity double\n")
        flat = u.transpose(0, 3, 2, 1).reshape(3, -1).T
        np.savetxt(buf, flat, fmt="%.10e")

    path = Path(path)
    path.write_text(buf.getvalue())
    return path


@dataclasses.dataclass
class CheckpointData:
    """Raw contents of a restart file.

    Callers that know how the simulation was configured (e.g. the
    scenario :class:`~repro.scenarios.runner.CaseRunner`) rebuild the
    full driver — collision operator, boundaries, forcing — from their
    own spec and restore only ``f`` / ``time_step`` from here, so the
    restart is bit-exact under any collision model.
    """

    f: np.ndarray
    lattice: str
    tau: float
    order: int
    time_step: int
    extra: dict[str, Any] = dataclasses.field(default_factory=dict)
    series: dict[str, list[float]] = dataclasses.field(default_factory=dict)
    dtype: str = "float64"
    #: Kernel name the writing simulation stepped with (None = the
    #: legacy default pair).  Restores must match it: kernels agree
    #: only to rounding, so a cross-kernel resume is not bit-exact.
    kernel: str | None = None


def save_checkpoint(
    path: str | Path,
    simulation: Simulation,
    extra: Mapping[str, Any] | None = None,
    series: Mapping[str, Sequence[float]] | None = None,
) -> Path:
    """Serialise a simulation's full state for exact restart.

    Parameters
    ----------
    extra:
        Optional JSON-serialisable metadata stored alongside the state
        (e.g. the scenario case name that produced the checkpoint).
    series:
        Optional observable time series recorded up to this point; a
        resumed run restores it so the full history survives restarts
        instead of restarting from the checkpoint step.
    """
    path = Path(path)
    tau = getattr(simulation.collision, "tau", None)
    if tau is None:
        tau = getattr(simulation.collision, "tau_shear", None)
    if tau is None:
        raise LatticeError(
            "checkpointing requires a collision exposing tau/tau_shear"
        )
    np.savez_compressed(
        path,
        f=simulation.f,
        lattice=simulation.lattice.name,
        tau=float(tau),
        order=int(simulation.collision.order),
        time_step=int(simulation.time_step),
        extra_json=json.dumps(dict(extra or {})),
        series_json=canonical_json(dict(series or {})),
        dtype=str(simulation.f.dtype),
        kernel=getattr(getattr(simulation, "kernel", None), "name", "") or "",
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint_data(path: str | Path) -> CheckpointData:
    """Read a checkpoint back as raw state without building a driver."""
    with np.load(Path(path), allow_pickle=False) as data:
        extra_json = str(data["extra_json"]) if "extra_json" in data else "{}"
        series_json = str(data["series_json"]) if "series_json" in data else "{}"
        f = np.array(data["f"])
        return CheckpointData(
            f=f,
            lattice=str(data["lattice"]),
            tau=float(data["tau"]),
            order=int(data["order"]),
            time_step=int(data["time_step"]),
            extra=json.loads(extra_json),
            series=json.loads(series_json),
            dtype=str(data["dtype"]) if "dtype" in data else str(f.dtype),
            kernel=(str(data["kernel"]) or None) if "kernel" in data else None,
        )


def load_checkpoint(path: str | Path) -> Simulation:
    """Rebuild a :class:`Simulation` from a checkpoint (BGK collision).

    The populations are restored bit-exactly; boundary conditions and
    forcing are *not* serialised (reattach them after loading, or use
    :class:`repro.scenarios.CaseRunner` which rebuilds them from the
    case spec).
    """
    data = load_checkpoint_data(path)
    sim = Simulation(
        get_lattice(data.lattice),
        data.f.shape[1:],
        tau=data.tau,
        order=data.order,
        dtype=data.dtype,
        kernel=data.kernel,
    )
    sim.field.data[...] = data.f
    sim.time_step = data.time_step
    return sim


@dataclasses.dataclass
class TimeSeriesLogger:
    """CSV logger of scalar observables, usable as a run monitor.

    >>> logger = TimeSeriesLogger({"mass": lambda s: s.f.sum()})
    >>> sim.run(100, monitor=logger, monitor_every=10)
    >>> logger.write("series.csv")
    """

    observables: dict[str, Callable[[Simulation], float]]

    def __post_init__(self) -> None:
        self.rows: list[list[float]] = []

    def __call__(self, simulation: Simulation) -> None:
        self.rows.append(
            [float(simulation.time_step)]
            + [float(fn(simulation)) for fn in self.observables.values()]
        )

    @property
    def header(self) -> list[str]:
        return ["step"] + list(self.observables)

    def as_array(self) -> np.ndarray:
        """All logged rows, shape ``(n_records, 1 + n_observables)``."""
        return np.array(self.rows) if self.rows else np.empty((0, len(self.header)))

    def write(self, path: str | Path) -> Path:
        """Write the series as CSV."""
        path = Path(path)
        lines = [",".join(self.header)]
        lines += [",".join(f"{v:.12g}" for v in row) for row in self.rows]
        path.write_text("\n".join(lines) + "\n")
        return path
