"""Streaming (advection) step.

Propagates each population along its discrete velocity: the *push*
scheme of the paper's Fig. 3, ``distr_adv[x + c_i] = distr[x]``.  Two
implementations:

* :func:`stream_periodic` — fully periodic domain via ``numpy.roll``
  (the production path for single-domain simulations; matches the
  paper's cubic periodic test systems).
* :func:`stream_padded` — non-wrapping slice shifts for halo-padded slab
  subdomains.  Values that would enter from outside the pad are filled
  with ``fill_value``; they only ever land in the outermost ``k`` planes,
  which the deep-halo validity window has already expired (enforced by
  :mod:`repro.parallel.halo`).

Both advance populations by exactly one time step; for D3Q39 a
population may hop up to ``k = 3`` planes.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..lattice import VelocitySet

__all__ = ["pull_gather_rows", "stream_periodic", "stream_padded"]


def pull_gather_rows(lattice: VelocitySet, shape: tuple[int, ...]) -> np.ndarray:
    """Per-velocity flat pull indices: ``rows[i, flat(x)] = flat(x - c_i)``.

    The periodic pull formulation of streaming as precomputed index
    arithmetic (the paper's "minimize index calculation" optimization):
    gathering ``f[i].ravel()[rows[i]]`` equals push-streaming ``f[i]``.
    Shared by :class:`~repro.core.kernels.FusedGatherKernel` and
    :class:`~repro.core.plan.KernelPlan`, so there is exactly one copy
    of the index math.  Shape ``(Q, N)``, ``N = prod(shape)``.
    """
    shape = tuple(int(s) for s in shape)
    coords = np.indices(shape)  # (D, *shape)
    flat = np.arange(int(np.prod(shape))).reshape(shape)
    rows = []
    for c in lattice.velocities:
        src = [(coords[a] - int(c[a])) % shape[a] for a in range(len(shape))]
        rows.append(flat[tuple(src)].ravel())
    return np.stack(rows)


def _roll_into(src: np.ndarray, dst: np.ndarray, shift: tuple[int, ...]) -> None:
    """``dst[(x + shift) mod n] = src[x]`` without intermediate copies.

    ``np.roll`` allocates a rolled temporary which the caller then copies
    into its destination — every population is moved through memory
    twice.  Writing the (at most ``2^D``) wrapped regions directly from
    ``src`` into ``dst`` moves each value exactly once, which measurably
    helps the bandwidth-bound streaming step (D3Q39 shifts cross up to
    three axes, so the roll path was 2 full copies x 39 velocities).
    """
    per_axis: list[list[tuple[slice, slice]]] = []
    for axis, s in enumerate(shift):
        n = src.shape[axis]
        s %= n
        if s == 0:
            per_axis.append([(slice(None), slice(None))])
        else:
            per_axis.append(
                [
                    (slice(0, n - s), slice(s, n)),  # body moves forward
                    (slice(n - s, n), slice(0, s)),  # tail wraps to front
                ]
            )
    for regions in itertools.product(*per_axis):
        src_idx = tuple(r[0] for r in regions)
        dst_idx = tuple(r[1] for r in regions)
        dst[dst_idx] = src[src_idx]


def stream_periodic(
    lattice: VelocitySet, f: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Periodic push-streaming: ``out[i, x + c_i] = f[i, x]`` (wrapping).

    Each population is moved with direct slice assignments into ``out``
    (single copy per value; see :func:`_roll_into`), not ``np.roll``.

    Parameters
    ----------
    lattice:
        Velocity set supplying the ``(Q, D)`` displacement table.
    f:
        Populations, shape ``(Q, *spatial)``.
    out:
        Optional destination (must not alias ``f``).
    """
    if out is None:
        out = np.empty_like(f)
    if out is f:
        raise ValueError("stream_periodic cannot operate in place")
    for i, c in enumerate(lattice.velocities):
        if not any(c):
            out[i] = f[i]
        else:
            _roll_into(f[i], out[i], tuple(int(s) for s in c))
    return out


def _shift_mixed(
    src: np.ndarray,
    shift: tuple[int, ...],
    nowrap_axes: tuple[int, ...],
    fill_value: float,
) -> np.ndarray:
    """Shift ``src``: periodic on most axes, non-wrapping on ``nowrap_axes``.

    Vacated cells along the non-wrapping axes receive ``fill_value``.
    """
    wrap_axes = [a for a in range(src.ndim) if a not in nowrap_axes and shift[a]]
    if wrap_axes:
        src = np.roll(src, shift=[shift[a] for a in wrap_axes], axis=wrap_axes)
    active = [a for a in nowrap_axes if shift[a]]
    if not active:
        return src if wrap_axes else src.copy()
    out = np.full_like(src, fill_value)
    src_slices: list[slice] = [slice(None)] * src.ndim
    dst_slices: list[slice] = [slice(None)] * src.ndim
    for axis in active:
        s = shift[axis]
        n = src.shape[axis]
        if abs(s) >= n:
            return out
        if s >= 0:
            src_slices[axis] = slice(0, n - s)
            dst_slices[axis] = slice(s, n)
        else:
            src_slices[axis] = slice(-s, n)
            dst_slices[axis] = slice(0, n + s)
    out[tuple(dst_slices)] = src[tuple(src_slices)]
    return out


def stream_padded(
    lattice: VelocitySet,
    f: np.ndarray,
    out: np.ndarray | None = None,
    fill_value: float = np.nan,
    nowrap_axes: tuple[int, ...] = (0,),
) -> np.ndarray:
    """Push-streaming for halo-padded slab subdomains.

    Periodic along the non-decomposed axes; *non-wrapping* along
    ``nowrap_axes`` (default: x, the paper's 1-D decomposition axis).
    Cells within ``k`` planes of a non-wrapping edge receive
    ``fill_value`` where the source would lie outside the array.  Using
    NaN as the default fill makes any read of expired halo data
    immediately visible in tests.
    """
    if out is None:
        out = np.empty_like(f)
    if out is f:
        raise ValueError("stream_padded cannot operate in place")
    for i, c in enumerate(lattice.velocities):
        shift = tuple(int(x) for x in c)
        if not any(shift):
            out[i] = f[i]
        else:
            out[i] = _shift_mixed(f[i], shift, nowrap_axes, fill_value)
    return out
