"""Solid-geometry helpers and momentum-exchange force measurement.

Supports the paper's application side (artery geometry, microfluidic
clogging): build voxelised obstacles and measure the hydrodynamic force
the fluid exerts on them via the momentum-exchange method — with
full-way bounce-back, every population reversed at a solid node hands
``2 c_i f_i`` of momentum to the body each step.
"""

from __future__ import annotations

import numpy as np

from ..lattice import VelocitySet

__all__ = [
    "sphere_mask",
    "cylinder_mask",
    "channel_walls_mask",
    "momentum_exchange_force",
]


def sphere_mask(shape: tuple[int, int, int], centre, radius: float) -> np.ndarray:
    """Boolean solid mask of a sphere."""
    grids = np.indices(shape).astype(np.float64)
    r2 = sum((g - c) ** 2 for g, c in zip(grids, centre))
    return r2 <= radius * radius


def cylinder_mask(
    shape: tuple[int, int, int], axis: int, centre, radius: float
) -> np.ndarray:
    """Boolean solid mask of an axis-aligned cylinder spanning the box."""
    grids = np.indices(shape).astype(np.float64)
    others = [a for a in range(3) if a != axis]
    r2 = sum((grids[a] - c) ** 2 for a, c in zip(others, centre))
    return r2 <= radius * radius


def channel_walls_mask(
    shape: tuple[int, int, int], axis: int, thickness: int = 1
) -> np.ndarray:
    """Solid walls on both faces of ``axis`` (a plane channel)."""
    mask = np.zeros(shape, dtype=bool)
    idx_lo: list[slice] = [slice(None)] * 3
    idx_hi: list[slice] = [slice(None)] * 3
    idx_lo[axis] = slice(0, thickness)
    idx_hi[axis] = slice(shape[axis] - thickness, shape[axis])
    mask[tuple(idx_lo)] = True
    mask[tuple(idx_hi)] = True
    return mask


def momentum_exchange_force(
    lattice: VelocitySet, f_post_stream: np.ndarray, solid_mask: np.ndarray
) -> np.ndarray:
    """Force on the solid body, shape ``(D,)`` (lattice units/step).

    With full-way bounce-back, the populations sitting on solid nodes
    after streaming are reversed; the body absorbs momentum
    ``sum_i 2 c_i f_i`` summed over solid nodes.  Evaluate *after*
    streaming and *before* the bounce-back reversal (i.e. pass the
    post-stream populations a ``BounceBackWalls`` boundary is about to
    flip).
    """
    c = lattice.velocities_as(np.float64)
    solid = f_post_stream[:, solid_mask]  # (Q, Nsolid)
    return 2.0 * np.tensordot(c.T, solid.sum(axis=1), axes=([1], [0]))
