"""Collision operators.

The paper uses the single-relaxation-time Bhatnagar–Gross–Krook (BGK)
operator (Eq. 1)::

    f <- f - omega * (f - feq),   omega = dt / tau_relax

with the kinematic viscosity ``nu = cs2 (tau - 1/2)`` in lattice units.
We additionally provide a *regularized* BGK variant (an extension beyond
the paper, listed in DESIGN.md): before relaxing, the non-equilibrium
part is projected onto the Hermite modes the lattice can actually
represent, which filters the unsupported ghost moments and markedly
improves stability of the higher-order model at large Kn.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet, hermite_tensor
from .equilibrium import equilibrium, equilibrium_order_for
from .moments import macroscopic

__all__ = ["BGKCollision", "RegularizedBGKCollision", "viscosity_from_tau", "tau_from_viscosity"]


def viscosity_from_tau(tau: float, cs2: float) -> float:
    """Kinematic viscosity ``nu = cs2 (tau - 1/2)`` (lattice units)."""
    return cs2 * (tau - 0.5)


def tau_from_viscosity(nu: float, cs2: float) -> float:
    """Relaxation time for a target viscosity: ``tau = nu/cs2 + 1/2``."""
    return nu / cs2 + 0.5


@dataclasses.dataclass
class BGKCollision:
    """Single-relaxation-time BGK collision (paper Eq. 1).

    Parameters
    ----------
    lattice:
        Velocity set.
    tau:
        Relaxation time in units of the time step; must exceed 1/2 for a
        positive viscosity.
    order:
        Hermite order of the equilibrium (``None`` = lattice native).
    """

    lattice: VelocitySet
    tau: float
    order: int | None = None

    def __post_init__(self) -> None:
        if self.tau <= 0.5:
            raise LatticeError(f"tau must exceed 0.5 (got {self.tau})")
        self.order = equilibrium_order_for(self.lattice, self.order)
        self._feq_buffer: np.ndarray | None = None

    @property
    def omega(self) -> float:
        """Relaxation frequency ``1 / tau``."""
        return 1.0 / self.tau

    @property
    def viscosity(self) -> float:
        """Kinematic viscosity produced by this operator."""
        return viscosity_from_tau(self.tau, self.lattice.cs2_float)

    def equilibrium(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Equilibrium at this operator's expansion order."""
        if (
            self._feq_buffer is None
            or self._feq_buffer.shape[1:] != rho.shape
            or self._feq_buffer.dtype != rho.dtype
        ):
            self._feq_buffer = np.empty((self.lattice.q, *rho.shape), dtype=rho.dtype)
        return equilibrium(self.lattice, rho, u, order=self.order, out=self._feq_buffer)

    def relax_into(
        self, f: np.ndarray, feq: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``out = (1 - omega) f + omega feq``, consuming ``feq``.

        ``feq`` is scaled in place (callers pass this operator's own
        equilibrium scratch buffer), which avoids a full-lattice
        ``omega * feq`` temporary.  The one relaxation fusion both the
        plain and the Guo-forced collide paths share.
        """
        np.multiply(f, 1.0 - self.omega, out=out)
        feq *= self.omega
        out += feq
        return out

    def apply(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Relax ``f`` toward local equilibrium (in place unless ``out``).

        Computes ``rho`` and ``u`` from ``f`` (Fig. 4 pseudocode), builds
        the equilibrium and applies ``f - omega (f - feq)``.
        """
        rho, u = macroscopic(self.lattice, f)
        feq = self.equilibrium(rho, u)
        if out is None:
            out = f
        return self.relax_into(f, feq, out)


@dataclasses.dataclass
class RegularizedBGKCollision:
    """BGK with Hermite regularization of the non-equilibrium part.

    The non-equilibrium ``f - feq`` is replaced by its projection on the
    second (and, for third-order lattices, third) Hermite mode before
    relaxation (Latt & Chopard 2006; Zhang, Shan & Chen 2006 use the same
    filtering idea for finite-Kn stability).  Strictly more work per cell
    than plain BGK; used in the finite-Kn examples.
    """

    lattice: VelocitySet
    tau: float
    order: int | None = None

    def __post_init__(self) -> None:
        if self.tau <= 0.5:
            raise LatticeError(f"tau must exceed 0.5 (got {self.tau})")
        self.order = equilibrium_order_for(self.lattice, self.order)
        cs2 = self.lattice.cs2_float
        c = self.lattice.velocities_as(np.float64)
        self._h2 = hermite_tensor(2, c, cs2)  # (Q, D, D)
        self._h3 = hermite_tensor(3, c, cs2)  # (Q, D, D, D)

    @property
    def omega(self) -> float:
        return 1.0 / self.tau

    @property
    def viscosity(self) -> float:
        return viscosity_from_tau(self.tau, self.lattice.cs2_float)

    def apply(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Regularize then relax; returns the post-collision populations."""
        lat = self.lattice
        cs2 = lat.cs2_float
        w = lat.weights
        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u, order=self.order)
        fneq = f - feq

        # a2_ab = sum_i H2_i,ab fneq_i ; reconstruct fneq from modes.
        a2 = np.einsum("qab,q...->ab...", self._h2, fneq)
        reg = np.einsum("qab,ab...->q...", self._h2, a2) / (2.0 * cs2 * cs2)
        if self.order >= 3:
            a3 = np.einsum("qabc,q...->abc...", self._h3, fneq)
            reg += np.einsum("qabc,abc...->q...", self._h3, a3) / (6.0 * cs2**3)
        expand = (slice(None),) + (None,) * (f.ndim - 1)
        fneq_reg = w[expand] * reg

        if out is None:
            out = f
        np.add(feq, (1.0 - self.omega) * fneq_reg, out=out)
        return out
