"""Data-layout comparison: the paper's DH optimization, measurable.

The paper's §V-B attributes large gains to the *collision-optimized*
velocity-major layout ("the discrete velocities of the distribution
function ... are located contiguously in memory. To maximize cache
reuse, we reorganized the loops such that all velocities are iterated
over followed by the z-, y- and x-coordinates in memory order").

:class:`SpaceMajorKernel` implements the same stream+collide update on
the *opposite* layout — populations stored ``(nx, ny, nz, Q)`` with the
velocity index fastest (the propagation-optimized/AoS layout) — so the
layout effect can be measured on the host rather than taken on faith;
``benchmarks/bench_layout.py`` compares it against the velocity-major
:class:`~repro.core.kernels.RollKernel`.  Results are validated to be
identical to machine precision.
"""

from __future__ import annotations

import numpy as np

from .kernels import LBMKernel

__all__ = ["SpaceMajorKernel"]


class SpaceMajorKernel(LBMKernel):
    """Stream+BGK-collide on the space-major (velocity-fastest) layout.

    The public interface still exchanges velocity-major arrays
    ``(Q, nx, ny, nz)``; internally the state is transposed once on
    entry and back on exit per call, and the hot loops run on the
    ``(..., Q)`` layout.  For benchmarking the steady-state cost, use
    :meth:`step_native` with a pre-transposed array to exclude the
    conversion.
    """

    name = "space-major"

    def step_native(self, f_sm: np.ndarray) -> np.ndarray:
        """One update on a space-major array ``(nx, ny, nz, Q)``."""
        lat = self.lattice
        cs2 = lat.cs2_float
        w = lat.weights
        c = lat.velocities_as(np.float64)
        omega = self.collision.omega
        order = self.collision.order

        # stream: per velocity, roll the spatial block
        adv = np.empty_like(f_sm)
        for i, ci in enumerate(lat.velocities):
            nz_axes = [a for a, comp in enumerate(ci) if comp]
            if not nz_axes:
                adv[..., i] = f_sm[..., i]
            else:
                adv[..., i] = np.roll(
                    f_sm[..., i],
                    shift=[int(ci[a]) for a in nz_axes],
                    axis=nz_axes,
                )

        # collide on the trailing velocity axis
        rho = adv.sum(axis=-1)
        mom = adv @ c  # (..., D)
        u = mom / rho[..., None]
        cu = u @ c.T  # (..., Q)
        u2 = np.einsum("...a,...a->...", u, u)
        term = 1.0 + cu / cs2
        if order >= 2:
            term += 0.5 * (cu / cs2) ** 2 - 0.5 * (u2 / cs2)[..., None]
        if order >= 3:
            term += cu / (6.0 * cs2 * cs2) * (cu * cu / cs2 - 3.0 * u2[..., None])
        feq = w[None, None, None, :] * rho[..., None] * term
        return adv - omega * (adv - feq)

    def step(self, f: np.ndarray) -> np.ndarray:
        """Velocity-major in, velocity-major out (for cross-validation)."""
        f_sm = np.ascontiguousarray(np.moveaxis(f, 0, -1))
        out = self.step_native(f_sm)
        return np.ascontiguousarray(np.moveaxis(out, -1, 0))
