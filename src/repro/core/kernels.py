"""Interchangeable stream+collide kernel implementations.

The paper's §V is a ladder of single-node code transformations (data
handling, loop restructuring, branch removal, SIMD).  The analogous
transformations available to *Python* code are implemented here as three
kernels with identical semantics and very different machine behaviour:

* :class:`NaiveKernel` — the paper's Fig. 3/4 pseudocode transcribed
  literally: per-cell, per-velocity Python loops.  Only usable on tiny
  grids; serves as the executable specification the fast kernels are
  validated against.
* :class:`RollKernel` — velocity-major vectorization: one
  ``numpy.roll`` per velocity, then a fused vectorized collide.  This is
  the production kernel (used by :class:`~repro.core.simulation.Simulation`).
* :class:`FusedGatherKernel` — stream and collide in one pass over a
  precomputed flat gather-index table (the Python analogue of the
  paper's loop-fusion/index-precomputation optimizations: indices
  computed once, no per-step index arithmetic).
* :class:`~repro.core.plan.PlannedKernel` (in :mod:`repro.core.plan`) —
  the ladder's endpoint: precomputed gather table *and* a preallocated
  scratch arena, so a step makes zero heap allocations; also the kernel
  that carries the float32/float64 dtype policy.

Kernel selection (by name, or ``"auto"`` measured selection) lives in
:func:`repro.core.plan.make_kernel`.  ``benchmarks/bench_kernels_real.py``
measures the real MFlup/s of each, giving a measured (not simulated)
optimization-ladder analogue.
"""

from __future__ import annotations

import numpy as np

from ..lattice import VelocitySet
from .collision import BGKCollision
from .streaming import pull_gather_rows, stream_periodic

__all__ = ["LBMKernel", "NaiveKernel", "RollKernel", "FusedGatherKernel"]


class LBMKernel:
    """One time step of periodic stream+BGK-collide.

    Subclasses implement :meth:`step`, which consumes the populations
    ``f`` of shape ``(Q, *spatial)`` and returns the post-collision
    populations (a new array or a reused internal buffer — callers must
    treat the input as consumed).
    """

    name = "abstract"

    def __init__(self, lattice: VelocitySet, tau: float, order: int | None = None):
        self.lattice = lattice
        self.collision = BGKCollision(lattice, tau, order=order)

    def step(self, f: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    # Split API: drivers that apply boundary conditions between
    # streaming and collision (`Simulation`) call these instead of the
    # fused `step`, so every kernel stays usable under any boundary set.

    def stream(self, f: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Advect ``f`` into ``out`` (periodic); kernels may override."""
        return stream_periodic(self.lattice, f, out=out)

    def collide(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Relax ``f`` toward equilibrium; kernels may override."""
        return self.collision.apply(f, out=out)


class RollKernel(LBMKernel):
    """Vectorized reference kernel: roll-stream then fused collide."""

    name = "roll"

    def __init__(self, lattice: VelocitySet, tau: float, order: int | None = None):
        super().__init__(lattice, tau, order)
        self._buffer: np.ndarray | None = None

    def step(self, f: np.ndarray) -> np.ndarray:
        if (
            self._buffer is None
            or self._buffer.shape != f.shape
            or self._buffer.dtype != f.dtype
        ):
            self._buffer = np.empty_like(f)
        adv = stream_periodic(self.lattice, f, out=self._buffer)
        self.collision.apply(adv, out=f)
        return f


class FusedGatherKernel(LBMKernel):
    """Stream+collide in one pass via a precomputed gather table.

    For each velocity ``i`` the pull-gather ``f_i(x - c_i)`` is a single
    fancy-index ``take`` with indices computed once at construction —
    the Python analogue of the paper's "minimize index calculation"
    (LoBr) optimization.
    """

    name = "fused-gather"

    def __init__(self, lattice: VelocitySet, tau: float, order: int | None = None):
        super().__init__(lattice, tau, order)
        self._shape: tuple[int, ...] | None = None
        self._gather: np.ndarray | None = None

    def _build_gather(self, shape: tuple[int, ...]) -> None:
        """Flat pull indices: gather[i, x_flat] = flat(x - c_i) (periodic)."""
        self._gather = pull_gather_rows(self.lattice, shape)  # (Q, N)
        self._shape = shape

    def step(self, f: np.ndarray) -> np.ndarray:
        shape = f.shape[1:]
        if self._shape != shape:
            self._build_gather(shape)
        flat = f.reshape(self.lattice.q, -1)
        adv = np.take_along_axis(flat, self._gather, axis=1)
        out = adv.reshape(f.shape)
        self.collision.apply(out, out=out)
        return out

    def stream(self, f: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Gather-table streaming (the split path runs the same index
        precomputation as the fused step, not the roll fallback)."""
        shape = f.shape[1:]
        if self._shape != shape:
            self._build_gather(shape)
        flat = f.reshape(self.lattice.q, -1)
        adv = np.take_along_axis(flat, self._gather, axis=1)
        # copyto honours out's strides; `out.reshape(...)[...] =` would
        # silently write into a throwaway copy for non-contiguous out.
        np.copyto(out, adv.reshape(f.shape))
        return out


class NaiveKernel(LBMKernel):
    """Literal transcription of the paper's Fig. 3/4 pseudocode.

    Triple spatial loop, inner velocity loop, scalar arithmetic.  Runs in
    O(minutes) beyond ~12^3 grids; exists as the executable specification
    (tests assert the fast kernels reproduce it exactly) and as the
    baseline of the measured kernel ladder.
    """

    name = "naive"

    def stream(self, f: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Push-streaming, literal: distr_adv[is][x + c] = distr[is][x]."""
        lat = self.lattice
        nx, ny, nz = f.shape[1:]
        for i in range(lat.q):
            cx, cy, cz = (int(v) for v in lat.velocities[i])
            for ix in range(nx):
                for iy in range(ny):
                    for iz in range(nz):
                        out[i, (ix + cx) % nx, (iy + cy) % ny, (iz + cz) % nz] = f[
                            i, ix, iy, iz
                        ]
        return out

    def collide(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Per-cell scalar moments + equilibrium + relax, literal.

        Element-aliasing-safe: each ``f[i, cell]`` is read before the
        same element of ``out`` is written, so ``out is f`` works.
        """
        lat = self.lattice
        q = lat.q
        nx, ny, nz = f.shape[1:]
        c = lat.velocities
        w = lat.weights
        cs2 = lat.cs2_float
        omega = self.collision.omega
        order = self.collision.order
        if out is None:
            out = f
        for ix in range(nx):
            for iy in range(ny):
                for iz in range(nz):
                    rho = 0.0
                    ux = uy = uz = 0.0
                    for i in range(q):
                        fi = f[i, ix, iy, iz]
                        rho += fi
                        ux += c[i, 0] * fi
                        uy += c[i, 1] * fi
                        uz += c[i, 2] * fi
                    ux /= rho
                    uy /= rho
                    uz /= rho
                    u2 = ux * ux + uy * uy + uz * uz
                    for i in range(q):
                        cu = c[i, 0] * ux + c[i, 1] * uy + c[i, 2] * uz
                        term = 1.0 + cu / cs2
                        if order >= 2:
                            term += 0.5 * (cu / cs2) ** 2 - 0.5 * u2 / cs2
                        if order >= 3:
                            term += cu / (6.0 * cs2 * cs2) * (cu * cu / cs2 - 3.0 * u2)
                        feq = w[i] * rho * term
                        out[i, ix, iy, iz] = f[i, ix, iy, iz] - omega * (
                            f[i, ix, iy, iz] - feq
                        )
        return out

    def step(self, f: np.ndarray) -> np.ndarray:
        adv = self.stream(f, np.empty_like(f))
        return self.collide(adv, out=np.empty_like(f))
