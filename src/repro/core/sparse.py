"""Indirect-addressing (sparse) fluid domains.

The paper stores its distributions so as to "set the code up for an
easy transition to the use of indirect addressing necessary for
irregular domains" (§IV) — production artery geometries keep only the
fluid nodes and walk neighbor lists instead of dense array offsets.
This module implements that representation:

* only fluid nodes are stored (populations shape ``(Q, N_fluid)``);
* streaming is one gather through a precomputed neighbor-index table;
* links that would enter a solid node are replaced by *half-way
  bounce-back* links (the index points back to the source node with the
  opposite velocity), giving no-slip walls located half a cell outside
  the last fluid node — the standard irregular-domain LBM formulation.

For a fully fluid periodic box the sparse solver reproduces the dense
:class:`~repro.core.simulation.Simulation` exactly (unit-tested); with
walls it conserves mass exactly and produces the expected channel
profiles.  Memory drops from ``Q * nx * ny * nz`` to ``Q * N_fluid`` —
the win that matters when an artery occupies a few percent of its
bounding box — and the repo's population dtype policy applies
(``dtype="float32"`` halves the per-node bytes again).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet, get_lattice
from .collision import BGKCollision
from .equilibrium import equilibrium
from .fields import resolve_dtype
from .moments import density, momentum

__all__ = ["SparseDomain", "SparseSimulation"]


class SparseDomain:
    """Fluid-node list + per-velocity pull-neighbor table.

    Parameters
    ----------
    lattice:
        Velocity set.
    solid_mask:
        Boolean array over the bounding box; ``True`` = solid.  The
        complement is the fluid set.  The box is periodic; solid nodes
        block links with half-way bounce-back.
    """

    def __init__(self, lattice: VelocitySet, solid_mask: np.ndarray) -> None:
        solid_mask = np.asarray(solid_mask, dtype=bool)
        if solid_mask.ndim != lattice.dim:
            raise LatticeError(f"mask must be {lattice.dim}-D")
        if solid_mask.all():
            raise LatticeError("domain has no fluid nodes")
        self.lattice = lattice
        self.shape = solid_mask.shape
        self.solid_mask = solid_mask
        self.fluid_index = np.flatnonzero(~solid_mask.ravel())
        self.num_fluid = len(self.fluid_index)
        # dense -> sparse id (or -1 for solid)
        dense_to_sparse = np.full(solid_mask.size, -1, dtype=np.int64)
        dense_to_sparse[self.fluid_index] = np.arange(self.num_fluid)

        coords = np.array(
            np.unravel_index(self.fluid_index, self.shape)
        ).T  # (N, D)
        q = lattice.q
        self.pull_from = np.empty((q, self.num_fluid), dtype=np.int64)
        self.pull_velocity = np.empty((q, self.num_fluid), dtype=np.int64)
        opposite = lattice.opposite
        for i, c in enumerate(lattice.velocities):
            src = (coords - c[None, :]) % np.array(self.shape)[None, :]
            src_flat = np.ravel_multi_index(src.T, self.shape)
            src_sparse = dense_to_sparse[src_flat]
            blocked = src_sparse < 0
            # open links pull population i from the upstream fluid node;
            # blocked links bounce back: pull the *opposite* population
            # from this very node (half-way bounce-back).
            self.pull_from[i] = np.where(
                blocked, np.arange(self.num_fluid), src_sparse
            )
            self.pull_velocity[i] = np.where(blocked, opposite[i], i)
        #: Number of wall links (diagnostics / surface area estimate).
        self.num_wall_links = int(
            sum((self.pull_velocity[i] != i).sum() for i in range(q))
        )

    # -- dense <-> sparse -------------------------------------------------

    def scatter(self, sparse_values: np.ndarray, fill: float = np.nan) -> np.ndarray:
        """Sparse per-node values -> dense array over the bounding box.

        The dense result keeps the values' floating dtype, so a float32
        solve scatters to a float32 box.
        """
        sparse_values = np.asarray(sparse_values)
        dtype = sparse_values.dtype if sparse_values.dtype.kind == "f" else np.float64
        dense = np.full(self.solid_mask.size, fill, dtype=dtype)
        dense[self.fluid_index] = sparse_values
        return dense.reshape(self.shape)

    def gather_from_dense(self, dense: np.ndarray) -> np.ndarray:
        """Dense spatial array -> per-fluid-node values."""
        return dense.reshape(-1)[self.fluid_index]


class SparseSimulation:
    """BGK LBM on a :class:`SparseDomain` (indirect addressing).

    The update is *pull*-form: for every fluid node and velocity, the
    post-streaming population is gathered through the neighbor table
    (one fancy-index per step), then collided in place.
    """

    def __init__(
        self,
        lattice: VelocitySet | str,
        solid_mask: np.ndarray,
        tau: float = 1.0,
        order: int | None = None,
        force: Sequence[float] | None = None,
        dtype: "np.dtype | str | None" = None,
    ) -> None:
        self.lattice = get_lattice(lattice) if isinstance(lattice, str) else lattice
        if self.lattice.max_displacement != 1:
            raise LatticeError(
                "sparse half-way bounce-back supports k=1 lattices "
                f"(got {self.lattice.name} with k={self.lattice.max_displacement}); "
                "multi-speed lattices need multi-layer wall handling"
            )
        self.dtype = resolve_dtype(dtype)
        self.domain = SparseDomain(self.lattice, solid_mask)
        self.collision = BGKCollision(self.lattice, tau, order=order)
        self.f = np.zeros((self.lattice.q, self.domain.num_fluid), dtype=self.dtype)
        self._force = None if force is None else np.asarray(force, dtype=np.float64)
        if self._force is not None and len(self._force) != self.lattice.dim:
            raise LatticeError("force must have one component per dimension")
        if self._force is None:
            self._force_term = None
        else:
            # Constant per-velocity forcing increment, computed once in
            # float64 then cast to the population dtype (the per-step
            # recomputation this replaces was also a hidden allocation).
            cf = self.lattice.velocities_as(np.float64) @ self._force  # (Q,)
            term = self.lattice.weights * cf / self.lattice.cs2_float
            self._force_term = np.ascontiguousarray(
                term[:, None], dtype=self.dtype
            )
        self.time_step = 0

    # -- setup ------------------------------------------------------------

    def initialize(self, rho: float | np.ndarray, u: np.ndarray | None = None) -> None:
        """Equilibrium initialisation on the fluid nodes.

        ``rho``/``u`` may be dense arrays over the bounding box or
        constants (``u=None`` = fluid at rest).
        """
        n = self.domain.num_fluid
        if np.isscalar(rho):
            rho_s = np.full(n, float(rho))
        else:
            rho_s = self.domain.gather_from_dense(np.asarray(rho, dtype=np.float64))
        if u is None:
            u_s = np.zeros((self.lattice.dim, n))
        else:
            u = np.asarray(u, dtype=np.float64)
            u_s = np.stack([self.domain.gather_from_dense(u[a]) for a in range(3)])
        self.f = equilibrium(
            self.lattice, rho_s, u_s, order=self.collision.order, dtype=self.dtype
        )
        self.time_step = 0

    # -- stepping ------------------------------------------------------------

    def step(self) -> None:
        """One pull-stream + collide (+ simple forcing) update."""
        dom = self.domain
        streamed = self.f[dom.pull_velocity, dom.pull_from]
        self.collision.apply(streamed, out=streamed)
        if self._force_term is not None:
            # first-order (Shan-Chen style) force: shift populations'
            # momentum by F per node per step
            streamed += self._force_term
        self.f = streamed
        self.time_step += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # -- observables --------------------------------------------------------------

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-fluid-node density and velocity."""
        rho = density(self.f)
        u = momentum(self.lattice, self.f) / rho[None]
        return rho, u

    def density_dense(self) -> np.ndarray:
        """Density scattered back onto the bounding box (NaN on solid)."""
        rho, _ = self.macroscopic()
        return self.domain.scatter(rho)

    def velocity_dense(self) -> np.ndarray:
        """Velocity scattered back onto the box, shape ``(D, *shape)``."""
        _, u = self.macroscopic()
        return np.stack([self.domain.scatter(u[a], fill=0.0) for a in range(3)])

    @property
    def total_mass(self) -> float:
        return float(self.f.sum())

    @property
    def memory_bytes(self) -> int:
        """Population storage: Q x fluid nodes x itemsize (the sparse
        win; float32 halves it again, compounding with the node cut)."""
        return self.f.nbytes
