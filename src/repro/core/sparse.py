"""Indirect-addressing (sparse) fluid domains.

The paper stores its distributions so as to "set the code up for an
easy transition to the use of indirect addressing necessary for
irregular domains" (§IV) — production artery geometries keep only the
fluid nodes and walk neighbor lists instead of dense array offsets.
This module implements that representation:

* only fluid nodes are stored (populations shape ``(Q, N_fluid)``);
* streaming is one gather through a precomputed neighbor-index table;
* links that would enter a solid node are replaced by *half-way
  bounce-back* links (the index points back to the source node with the
  opposite velocity), giving no-slip walls located half a cell outside
  the last fluid node — the standard irregular-domain LBM formulation.

For a fully fluid periodic box the sparse solver reproduces the dense
:class:`~repro.core.simulation.Simulation` exactly (unit-tested); with
walls it conserves mass exactly and produces the expected channel
profiles.  Memory drops from ``Q * nx * ny * nz`` to ``Q * N_fluid`` —
the win that matters when an artery occupies a few percent of its
bounding box — and the repo's population dtype policy applies
(``dtype="float32"`` halves the per-node bytes again).

Two kernels implement the update (the sparse rung of the kernel
ladder, selectable through ``SparseSimulation(kernel=...)``, the case
registry and ``kernel="auto"``):

* :class:`LegacySparseKernel` (``"sparse-legacy"``) — the original
  fancy-index gather + :meth:`BGKCollision.apply`, allocating a fresh
  ``(Q, N_fluid)`` buffer per step;
* :class:`PlannedSparseKernel` (``"sparse-planned"``) — the domain's
  per-velocity neighbor lists flattened at plan time into one
  contiguous gather table driving a :class:`~repro.core.plan.KernelPlan`
  arena, so stream + collide (bounce-back links included — they are
  just more gather indices) runs with zero per-step heap allocations,
  exactly like the dense planned kernel.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..errors import LatticeError, StabilityError
from ..lattice import VelocitySet, get_lattice
from .collision import BGKCollision
from .equilibrium import equilibrium
from .fields import resolve_dtype
from .moments import density, momentum
from .plan import (
    AUTO_KERNEL,
    KERNEL_CACHE_DISABLE_ENV,
    KERNELS,
    PERF_MODEL_DISABLE_ENV,
    KernelPlan,
    _auto_cache_path,
    _emit_auto_verdict,
    _read_auto_cache,
    _write_auto_cache,
    kernel_cache_dir,
)
from .simulation import StepTimings

__all__ = [
    "SPARSE_AUTO_CANDIDATES",
    "LegacySparseKernel",
    "PlannedSparseKernel",
    "SparseDomain",
    "SparseSimulation",
    "auto_select_sparse_kernel",
    "build_sparse_gather_table",
    "make_sparse_kernel",
]


class SparseDomain:
    """Fluid-node list + per-velocity pull-neighbor table.

    Parameters
    ----------
    lattice:
        Velocity set.
    solid_mask:
        Boolean array over the bounding box; ``True`` = solid.  The
        complement is the fluid set.  The box is periodic; solid nodes
        block links with half-way bounce-back.
    """

    def __init__(self, lattice: VelocitySet, solid_mask: np.ndarray) -> None:
        solid_mask = np.asarray(solid_mask, dtype=bool)
        if solid_mask.ndim != lattice.dim:
            raise LatticeError(f"mask must be {lattice.dim}-D")
        if solid_mask.all():
            raise LatticeError("domain has no fluid nodes")
        self.lattice = lattice
        self.shape = solid_mask.shape
        self.solid_mask = solid_mask
        self.fluid_index = np.flatnonzero(~solid_mask.ravel())
        self.num_fluid = len(self.fluid_index)
        # dense -> sparse id (or -1 for solid)
        dense_to_sparse = np.full(solid_mask.size, -1, dtype=np.int64)
        dense_to_sparse[self.fluid_index] = np.arange(self.num_fluid)

        coords = np.array(
            np.unravel_index(self.fluid_index, self.shape)
        ).T  # (N, D)
        q = lattice.q
        self.pull_from = np.empty((q, self.num_fluid), dtype=np.int64)
        self.pull_velocity = np.empty((q, self.num_fluid), dtype=np.int64)
        opposite = lattice.opposite
        for i, c in enumerate(lattice.velocities):
            src = (coords - c[None, :]) % np.array(self.shape)[None, :]
            src_flat = np.ravel_multi_index(src.T, self.shape)
            src_sparse = dense_to_sparse[src_flat]
            blocked = src_sparse < 0
            # open links pull population i from the upstream fluid node;
            # blocked links bounce back: pull the *opposite* population
            # from this very node (half-way bounce-back).
            self.pull_from[i] = np.where(
                blocked, np.arange(self.num_fluid), src_sparse
            )
            self.pull_velocity[i] = np.where(blocked, opposite[i], i)
        #: Number of wall links (diagnostics / surface area estimate).
        self.num_wall_links = int(
            sum((self.pull_velocity[i] != i).sum() for i in range(q))
        )

    @property
    def fill_fraction(self) -> float:
        """Fluid nodes as a fraction of the bounding box (B(Q)'s fill
        term: low fill wastes dense cache lines, sparse storage does
        not — this is the knob the fill-aware perf model keys on)."""
        return self.num_fluid / self.solid_mask.size

    # -- dense <-> sparse -------------------------------------------------

    def scatter(self, sparse_values: np.ndarray, fill: float = np.nan) -> np.ndarray:
        """Sparse per-node values -> dense array over the bounding box.

        The dense result keeps the values' floating dtype, so a float32
        solve scatters to a float32 box.
        """
        sparse_values = np.asarray(sparse_values)
        dtype = sparse_values.dtype if sparse_values.dtype.kind == "f" else np.float64
        dense = np.full(self.solid_mask.size, fill, dtype=dtype)
        dense[self.fluid_index] = sparse_values
        return dense.reshape(self.shape)

    def gather_from_dense(self, dense: np.ndarray) -> np.ndarray:
        """Dense spatial array -> per-fluid-node values."""
        return dense.reshape(-1)[self.fluid_index]


def build_sparse_gather_table(domain: SparseDomain) -> np.ndarray:
    """The domain's neighbor lists flattened to one contiguous gather.

    ``table[i * N + n] = pull_velocity[i, n] * N + pull_from[i, n]``
    over the flattened ``(Q * N_fluid,)`` populations, so one
    ``np.take(f.reshape(-1), table, out=...)`` performs streaming *and*
    half-way bounce-back in the same gather — a blocked link is simply
    an index pointing at the opposite population of the source node.
    Writable on purpose: ``np.take(mode="clip")`` copies read-only index
    arrays into a fresh buffer on every call.
    """
    flat = domain.pull_velocity * domain.num_fluid + domain.pull_from
    return np.ascontiguousarray(flat.reshape(-1))


class _SparseKernel:
    """Shared construction for the sparse stream+collide kernels."""

    name = "sparse"

    def __init__(
        self,
        domain: SparseDomain,
        tau: float,
        order: int | None = None,
        dtype: "np.dtype | str | None" = None,
    ) -> None:
        self.domain = domain
        self.lattice = domain.lattice
        self.tau = float(tau)
        self.dtype = resolve_dtype(dtype)
        self.collision = BGKCollision(self.lattice, tau, order=order)

    def step(self, f: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class LegacySparseKernel(_SparseKernel):
    """The original allocating sparse update (the ladder's baseline).

    One fancy-index gather through the 2-D neighbor tables (allocates
    the streamed buffer), then :meth:`BGKCollision.apply` in place
    (allocates its moment/equilibrium temporaries).
    """

    name = "sparse-legacy"

    def step(self, f: np.ndarray) -> np.ndarray:
        dom = self.domain
        streamed = f[dom.pull_velocity, dom.pull_from]
        self.collision.apply(streamed, out=streamed)
        return streamed


class PlannedSparseKernel(_SparseKernel):
    """Zero-allocation planned sparse update.

    At plan time the domain's neighbor lists become one flat gather
    table (:func:`build_sparse_gather_table`) driving a
    :class:`~repro.core.plan.KernelPlan` whose "grid" is the 1-D fluid
    list — the arena, ``np.take(mode="clip")`` streaming and ``out=``
    collision discipline are shared verbatim with the dense planned
    kernel, so the sparse hot loop inherits its zero-per-step-heap
    guarantee (tracemalloc-asserted in the tests).  The update is in
    place: ``step`` returns the same array it was given.
    """

    name = "sparse-planned"

    def __init__(
        self,
        domain: SparseDomain,
        tau: float,
        order: int | None = None,
        dtype: "np.dtype | str | None" = None,
    ) -> None:
        super().__init__(domain, tau, order=order, dtype=dtype)
        self.plan = KernelPlan(
            self.lattice,
            (domain.num_fluid,),
            order=self.collision.order,
            dtype=self.dtype,
            gather=build_sparse_gather_table(domain),
        )

    def _check_input(self, f: np.ndarray) -> None:
        if f.dtype != self.dtype:
            raise LatticeError(
                f"planned sparse kernel is built for {self.dtype.name}, got "
                f"{f.dtype.name} populations (rebuild the kernel or cast "
                "the field explicitly)"
            )
        if not f.flags.c_contiguous:
            raise LatticeError(
                "planned sparse kernel requires C-contiguous populations "
                "(got a strided view; pass np.ascontiguousarray(f))"
            )
        if f.shape != (self.lattice.q, self.domain.num_fluid):
            raise LatticeError(
                f"populations shape {f.shape} does not match the planned "
                f"domain ({self.lattice.q}, {self.domain.num_fluid})"
            )

    def step(self, f: np.ndarray) -> np.ndarray:
        self._check_input(f)
        return self.plan.step_into(f, self.collision.omega)


#: Candidates ``kernel="auto"`` races on a sparse domain.
SPARSE_AUTO_CANDIDATES = ("sparse-legacy", "sparse-planned")

#: Short selector names accepted by ``SparseSimulation(kernel=...)`` —
#: the registry names without their ``sparse-`` prefix, mirroring how
#: the distributed path spells its ladder.
_SPARSE_ALIASES = {
    "legacy": "sparse-legacy",
    "planned": "sparse-planned",
}


def make_sparse_kernel(
    kernel: "str | _SparseKernel | None",
    domain: SparseDomain,
    tau: float,
    order: int | None = None,
    dtype: "np.dtype | str | None" = None,
    **auto_kwargs,
) -> _SparseKernel:
    """Resolve a sparse kernel selection to a ready instance.

    ``kernel`` may be ``None``/``"legacy"`` (the allocating baseline),
    ``"planned"``, ``"auto"`` (model -> cached verdict -> timing race,
    like the dense ladder), a full registry name
    (``"sparse-legacy"``/``"sparse-planned"``), or an already built
    sparse kernel instance (returned as-is).
    """
    if isinstance(kernel, _SparseKernel):
        return kernel
    key = "legacy" if kernel is None else str(kernel).lower()
    key = _SPARSE_ALIASES.get(key, key)
    if key == AUTO_KERNEL:
        return auto_select_sparse_kernel(
            domain, tau, order=order, dtype=dtype, **auto_kwargs
        )
    if key not in SPARSE_AUTO_CANDIDATES:
        raise LatticeError(
            f"unknown sparse kernel {kernel!r}; available: legacy, planned, "
            "sparse-legacy, sparse-planned (or 'auto')"
        )
    cls = LegacySparseKernel if key == "sparse-legacy" else PlannedSparseKernel
    return cls(domain, tau, order=order, dtype=dtype)


def _sparse_auto_key(
    domain: SparseDomain,
    order: int | None,
    dtype: np.dtype,
    candidates: Sequence[str],
) -> dict:
    """The identity a cached sparse verdict is valid for.

    Same host-keyed contract as the dense ``_auto_cache_key``, plus the
    sparse identity: fluid-site count, bounding box and fill fraction
    (two masks with the same N_fluid but different geometry time alike —
    the gather is one flat table either way — but the fill stamp keeps
    the verdict honest across very different geometries).
    """
    import platform

    from .equilibrium import equilibrium_order_for

    return {
        "host": platform.node(),
        "mode": "sparse",
        "lattice": domain.lattice.name,
        "shape": [int(domain.num_fluid)],
        "box": [int(s) for s in domain.shape],
        "fill": round(domain.fill_fraction, 6),
        "order": equilibrium_order_for(domain.lattice, order),
        "dtype": dtype.name,
        "candidates": list(candidates),
    }


def model_select_sparse_kernel(
    domain: SparseDomain,
    tau: float,
    order: int | None = None,
    dtype: "np.dtype | str | None" = None,
    candidates: Sequence[str] = SPARSE_AUTO_CANDIDATES,
) -> "_SparseKernel | None":
    """Resolve sparse ``kernel="auto"`` from this host's calibration.

    The fitted model predicts each candidate through the fill-aware
    B(Q) (see :func:`repro.machine.roofline.sparse_bytes_per_cell`);
    as on the dense path, a calibration that does not cover *every*
    candidate abstains and the measured race decides.
    """
    from ..perf.model import load_calibration  # late: perf builds on core

    calibration = load_calibration()
    if calibration is None:
        return None
    dtype = resolve_dtype(dtype)
    fill = domain.fill_fraction
    rates = calibration.rank_kernels(
        candidates,
        domain.lattice.name,
        dtype.name,
        shape=(domain.num_fluid,),
        fill=fill,
    )
    if set(rates) != set(candidates):
        return None
    cells = domain.num_fluid
    timings = {name: cells / (rate * 1e6) for name, rate in rates.items()}
    best = min(timings, key=lambda name: (timings[name], name))
    winner = make_sparse_kernel(best, domain, tau, order=order, dtype=dtype)
    winner.auto_timings = dict(timings)
    winner.auto_cached = False
    winner.auto_provenance = "model"
    _emit_auto_verdict(
        best,
        "model",
        domain.lattice,
        (domain.num_fluid,),
        dtype,
        timings,
        mode="sparse",
        fill=fill,
    )
    return winner


def auto_select_sparse_kernel(
    domain: SparseDomain,
    tau: float,
    order: int | None = None,
    dtype: "np.dtype | str | None" = None,
    candidates: Sequence[str] = SPARSE_AUTO_CANDIDATES,
    warmup: int = 1,
    trials: int = 2,
    clock: Callable[[], float] = time.perf_counter,
    cache: bool | None = None,
    cache_dir: "str | Path | None" = None,
    model: bool | None = None,
) -> _SparseKernel:
    """Sparse ``kernel="auto"``: model, then cached verdict, then race.

    The same three-rung ladder as :func:`repro.core.plan.auto_select_kernel`,
    sharing its verdict-cache files and ``kernel.auto`` telemetry, with
    the sparse identity (fluid count, box, fill) in the cache key and
    ``mode="sparse"``/``fill`` stamped on the verdict events so the perf
    model can fit them separately from the dense cells.
    """
    if not candidates:
        raise LatticeError("auto kernel selection needs at least one candidate")
    dtype = resolve_dtype(dtype)
    if model is None:
        model = not os.environ.get(PERF_MODEL_DISABLE_ENV)
    if model:
        winner = model_select_sparse_kernel(
            domain, tau, order=order, dtype=dtype, candidates=candidates
        )
        if winner is not None:
            return winner
    if cache is None:
        cache = not os.environ.get(KERNEL_CACHE_DISABLE_ENV)
    cache_path = None
    if cache:
        key = _sparse_auto_key(domain, order, dtype, candidates)
        cache_path = _auto_cache_path(
            Path(cache_dir) if cache_dir is not None else kernel_cache_dir(), key
        )
        record = _read_auto_cache(cache_path, key)
        if record is not None:
            winner = make_sparse_kernel(
                record["kernel"], domain, tau, order=order, dtype=dtype
            )
            winner.auto_timings = {
                str(k): float(v) for k, v in record.get("timings", {}).items()
            }
            winner.auto_cached = True
            winner.auto_provenance = "cached"
            _emit_auto_verdict(
                record["kernel"],
                "cached",
                domain.lattice,
                (domain.num_fluid,),
                dtype,
                winner.auto_timings,
                mode="sparse",
                fill=domain.fill_fraction,
            )
            return winner
    # Equilibrium at rest (f_i = w_i) on the fluid sites: numerically
    # inert under collision *and* bounce-back, so timing cannot diverge.
    q = domain.lattice.q
    f0 = np.empty((q, domain.num_fluid), dtype=dtype)
    f0[...] = domain.lattice.weights_as(dtype).reshape(q, 1)
    kernels: dict[str, _SparseKernel] = {}
    timings: dict[str, float] = {}
    for name in candidates:
        kernel = make_sparse_kernel(name, domain, tau, order=order, dtype=dtype)
        f = f0.copy()
        for _ in range(max(1, warmup)):
            f = kernel.step(f)
        start = clock()
        for _ in range(max(1, trials)):
            f = kernel.step(f)
        timings[name] = (clock() - start) / max(1, trials)
        kernels[name] = kernel
    best = min(timings, key=lambda name: (timings[name], name))
    if cache_path is not None:
        _write_auto_cache(cache_path, key, best, timings)
    winner = kernels[best]
    winner.auto_timings = dict(timings)
    winner.auto_cached = False
    winner.auto_provenance = "measured"
    _emit_auto_verdict(
        best,
        "measured",
        domain.lattice,
        (domain.num_fluid,),
        dtype,
        timings,
        mode="sparse",
        fill=domain.fill_fraction,
    )
    return winner


class SparseSimulation:
    """BGK LBM on a :class:`SparseDomain` (indirect addressing).

    The update is *pull*-form: for every fluid node and velocity, the
    post-streaming population is gathered through the neighbor table,
    then collided.  ``kernel`` selects the sparse rung —
    ``"legacy"`` (default, allocating), ``"planned"``
    (zero-allocation planned gather) or ``"auto"`` (model -> cached
    verdict -> timing race, like the dense path).
    """

    def __init__(
        self,
        lattice: VelocitySet | str,
        solid_mask: np.ndarray,
        tau: float = 1.0,
        order: int | None = None,
        force: Sequence[float] | None = None,
        dtype: "np.dtype | str | None" = None,
        kernel: "str | _SparseKernel | None" = None,
    ) -> None:
        self.lattice = get_lattice(lattice) if isinstance(lattice, str) else lattice
        if self.lattice.max_displacement != 1:
            raise LatticeError(
                "sparse half-way bounce-back supports k=1 lattices "
                f"(got {self.lattice.name} with k={self.lattice.max_displacement}); "
                "multi-speed lattices need multi-layer wall handling"
            )
        self.dtype = resolve_dtype(dtype)
        self.domain = SparseDomain(self.lattice, solid_mask)
        self.kernel = make_sparse_kernel(
            kernel, self.domain, tau, order=order, dtype=self.dtype
        )
        self.collision = self.kernel.collision
        self.f = np.zeros((self.lattice.q, self.domain.num_fluid), dtype=self.dtype)
        self._force = None if force is None else np.asarray(force, dtype=np.float64)
        if self._force is not None and len(self._force) != self.lattice.dim:
            raise LatticeError("force must have one component per dimension")
        if self._force is None:
            self._force_term = None
            self._force_scalars = None
        else:
            # Constant per-velocity forcing increment, computed once in
            # float64 then cast to the population dtype (the per-step
            # recomputation this replaces was also a hidden allocation).
            cf = self.lattice.velocities_as(np.float64) @ self._force  # (Q,)
            term = self.lattice.weights * cf / self.lattice.cs2_float
            self._force_term = np.ascontiguousarray(
                term[:, None], dtype=self.dtype
            )
            # Per-row dtype scalars: `row += scalar` adds the identical
            # value the (Q, 1) broadcast did, without numpy's broadcast
            # ufunc buffer (a hidden per-step allocation).
            self._force_scalars = tuple(self._force_term[:, 0])
        self.time_step = 0
        self.timings = StepTimings()

    # -- setup ------------------------------------------------------------

    def initialize(self, rho: float | np.ndarray, u: np.ndarray | None = None) -> None:
        """Equilibrium initialisation on the fluid nodes.

        ``rho``/``u`` may be dense arrays over the bounding box or
        constants (``u=None`` = fluid at rest).
        """
        n = self.domain.num_fluid
        if np.isscalar(rho):
            rho_s = np.full(n, float(rho))
        else:
            rho_s = self.domain.gather_from_dense(np.asarray(rho, dtype=np.float64))
        if u is None:
            u_s = np.zeros((self.lattice.dim, n))
        else:
            u = np.asarray(u, dtype=np.float64)
            u_s = np.stack([self.domain.gather_from_dense(u[a]) for a in range(3)])
        self.f = equilibrium(
            self.lattice, rho_s, u_s, order=self.collision.order, dtype=self.dtype
        )
        self.time_step = 0
        self.timings = StepTimings()

    # -- stepping ------------------------------------------------------------

    def step(self) -> None:
        """One pull-stream + collide (+ simple forcing) update."""
        t0 = time.perf_counter()
        f = self.kernel.step(self.f)
        if self._force_scalars is not None:
            # first-order (Shan-Chen style) force: shift populations'
            # momentum by F per node per step
            for row, scalar in zip(f, self._force_scalars):
                row += scalar
        self.f = f
        self.time_step += 1
        # The sparse update is fused (no separate boundary phase — walls
        # are gather indices), so the whole step books as collide time.
        self.timings.steps += 1
        self.timings.collide_seconds += time.perf_counter() - t0

    def run(
        self,
        steps: int,
        monitor: "Callable[[SparseSimulation], None] | None" = None,
        monitor_every: int = 1,
        check_stability_every: int = 0,
    ) -> None:
        """Run ``steps`` updates (same contract as the dense driver)."""
        import contextlib

        numeric_guard = (
            np.errstate(invalid="ignore", over="ignore")
            if check_stability_every
            else contextlib.nullcontext()
        )
        with numeric_guard:
            for n in range(steps):
                self.step()
                if monitor is not None and (n + 1) % monitor_every == 0:
                    monitor(self)
                if check_stability_every and (n + 1) % check_stability_every == 0:
                    self._check_finite()

    def _check_finite(self) -> None:
        if not np.isfinite(self.f).all():
            raise StabilityError(
                f"non-finite populations at step {self.time_step} "
                f"(tau={self.collision.tau}, lattice={self.lattice.name}, "
                "sparse domain)"
            )

    # -- observables --------------------------------------------------------------

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-fluid-node density and velocity."""
        rho = density(self.f)
        u = momentum(self.lattice, self.f) / rho[None]
        return rho, u

    def density_dense(self) -> np.ndarray:
        """Density scattered back onto the bounding box (NaN on solid)."""
        rho, _ = self.macroscopic()
        return self.domain.scatter(rho)

    def velocity_dense(self) -> np.ndarray:
        """Velocity scattered back onto the box, shape ``(D, *shape)``."""
        _, u = self.macroscopic()
        return np.stack([self.domain.scatter(u[a], fill=0.0) for a in range(3)])

    @property
    def num_cells(self) -> int:
        """Fluid sites — the N in the sparse MFLUP/s figure."""
        return self.domain.num_fluid

    def mflups(self) -> float:
        """Measured throughput so far (paper Eq. 4, fluid sites only)."""
        return self.timings.mflups(self.num_cells)

    @property
    def total_mass(self) -> float:
        return float(self.f.sum())

    @property
    def memory_bytes(self) -> int:
        """Population storage: Q x fluid nodes x itemsize (the sparse
        win; float32 halves it again, compounding with the node cut)."""
        return self.f.nbytes


# Register the sparse rungs in the shared kernel registry so cached
# verdicts validate and `available_kernels()` lists the full ladder.
# Dense construction paths never reach these (make_kernel routes
# sparse names through make_sparse_kernel, which needs a domain).
KERNELS.setdefault("sparse-legacy", LegacySparseKernel)
KERNELS.setdefault("sparse-planned", PlannedSparseKernel)
