"""Boundary conditions.

The paper's performance study uses periodic cubes exclusively ("all
simulations in this work are of a cubic fluid system with periodic
boundary conditions", §IV) — periodic behaviour is built into
:func:`~repro.core.streaming.stream_periodic` and needs no operator here.

The boundary operators below support the *application* side of the paper
(artery flow, microfluidics, finite-Kn channels):

* :class:`BounceBackWalls` — full-way bounce-back on an arbitrary solid
  mask: no-slip walls for continuum flows (artery example).
* :class:`DiffuseWallPair` — Maxwell diffuse-reflection planes for
  rarefied flows, where the wall re-emits particles thermalised at the
  wall velocity.  This is the standard kinetic boundary condition for
  the finite-Kn regimes D3Q39 exists to simulate.

Operators are applied *after* streaming and *before* collision; each
exposes ``apply(f_post_stream, f_pre_stream)``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet
from .equilibrium import equilibrium

__all__ = [
    "BoundaryCondition",
    "BounceBackWalls",
    "DiffuseWallPair",
    "MovingWallBounceBack",
]


class BoundaryCondition:
    """Interface: mutate post-stream populations in place."""

    def apply(self, f_new: np.ndarray, f_old: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclasses.dataclass
class BounceBackWalls(BoundaryCondition):
    """Full-way bounce-back at solid nodes.

    Populations that streamed *into* a solid node are reversed there and
    will stream back out on the next step, producing a no-slip wall
    located halfway between solid and fluid nodes.

    Parameters
    ----------
    lattice:
        Velocity set (supplies the opposite-direction map).
    solid_mask:
        Boolean array over the spatial grid, ``True`` at solid nodes.
    """

    lattice: VelocitySet
    solid_mask: np.ndarray

    def __post_init__(self) -> None:
        self.solid_mask = np.asarray(self.solid_mask, dtype=bool)
        self._opposite = self.lattice.opposite

    def apply(self, f_new: np.ndarray, f_old: np.ndarray) -> None:
        """Reverse all populations sitting on solid nodes."""
        if self.solid_mask.shape != f_new.shape[1:]:
            raise LatticeError(
                f"solid mask shape {self.solid_mask.shape} != grid {f_new.shape[1:]}"
            )
        solid = f_new[:, self.solid_mask]  # (Q, Nsolid)
        f_new[:, self.solid_mask] = solid[self._opposite]


@dataclasses.dataclass
class MovingWallBounceBack(BounceBackWalls):
    """Full-way bounce-back at solid nodes moving tangentially.

    The standard momentum-injecting correction for a wall translating
    with velocity ``u_w`` (Ladd 1994): after the populations on the wall
    nodes are reversed, each direction ``i`` gains
    ``2 w_i rho0 (c_i . u_w) / cs^2``.  Summed over directions the
    correction carries zero mass (``sum_i w_i c_i = 0``) and injects
    momentum ``2 rho0 u_w`` per wall node per step — a no-slip wall that
    drags the adjacent fluid (lid-driven cavity case).

    Parameters
    ----------
    wall_velocity:
        Wall velocity in lattice units (need not be axis-aligned).
    rho0:
        Reference density of the fluid at the wall.
    """

    wall_velocity: tuple[float, ...] = (0.0, 0.0, 0.0)
    rho0: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        uw = np.asarray(self.wall_velocity, dtype=np.float64)
        if uw.shape != (self.lattice.dim,):
            raise LatticeError(
                f"wall_velocity must have {self.lattice.dim} components"
            )
        c = self.lattice.velocities_as(np.float64)
        self._correction = (
            2.0 * self.rho0 * self.lattice.weights * (c @ uw) / self.lattice.cs2_float
        )

    def apply(self, f_new: np.ndarray, f_old: np.ndarray) -> None:
        """Reverse wall-node populations, then add the momentum term."""
        super().apply(f_new, f_old)
        f_new[:, self.solid_mask] += self._correction[:, None]


@dataclasses.dataclass
class DiffuseWallPair(BoundaryCondition):
    """Maxwell diffuse-reflection walls on the two faces of one axis.

    Models a channel of width ``H = shape[axis]`` whose walls move
    tangentially with ``wall_velocity_low`` / ``wall_velocity_high``.
    After streaming, the populations entering the fluid from each wall
    are replaced by the equilibrium at the wall velocity, scaled so the
    wall emits exactly as much mass as it absorbed (zero net mass flux —
    the defining property of a diffuse wall).

    This is the kinetic boundary condition under which slip velocity and
    Knudsen-layer structure appear at finite Kn; the D3Q39 model resolves
    these, D3Q19 cannot (examples/microchannel_knudsen.py).

    Notes
    -----
    The wall planes sit on the outermost lattice layers of ``axis``.
    Periodic wrap along that axis must be neutralised, which this
    operator does by rebuilding the incoming populations at both walls
    from scratch each step.
    """

    lattice: VelocitySet
    axis: int
    wall_velocity_low: tuple[float, ...] = (0.0, 0.0, 0.0)
    wall_velocity_high: tuple[float, ...] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if not 0 <= self.axis < self.lattice.dim:
            raise LatticeError(f"axis {self.axis} out of range")
        for v, name in (
            (self.wall_velocity_low, "wall_velocity_low"),
            (self.wall_velocity_high, "wall_velocity_high"),
        ):
            if len(v) != self.lattice.dim:
                raise LatticeError(f"{name} must have {self.lattice.dim} components")
            if abs(v[self.axis]) > 0:
                raise LatticeError(f"{name} must be tangential to the wall")
        # For a lattice with max displacement k, a population at layer l
        # (counted from the wall) with wall-normal speed m crosses the wall
        # iff m > l.  Precompute, per layer, which velocity indices (a) were
        # wrongly wrapped in from beyond the wall (must be re-emitted) and
        # (b) will cross into the wall next step (counted as absorbed).
        c_axis = self.lattice.velocities[:, self.axis]
        k = self.lattice.max_displacement
        self._k = k
        self._emitted: list[np.ndarray] = []  # index arrays per layer
        self._absorbed: list[np.ndarray] = []
        for layer in range(k):
            self._emitted.append(np.flatnonzero(c_axis > layer))
            self._absorbed.append(np.flatnonzero(-c_axis > layer))

    def _layer_view(self, f: np.ndarray, layer: int) -> np.ndarray:
        idx: list[slice | int] = [slice(None)] * f.ndim
        idx[1 + self.axis] = layer
        return f[tuple(idx)]

    def _unit_equilibrium(
        self, wall_shape: tuple[int, ...], wall_velocity: tuple[float, ...]
    ) -> np.ndarray:
        lat = self.lattice
        uw = np.array(wall_velocity, dtype=np.float64)
        uw_field = np.broadcast_to(
            uw.reshape((lat.dim,) + (1,) * len(wall_shape)), (lat.dim,) + wall_shape
        )
        return equilibrium(lat, np.ones(wall_shape), uw_field, order=None)

    def _apply_one_wall(
        self,
        f_new: np.ndarray,
        f_old: np.ndarray,
        flip: bool,
        wall_velocity: tuple[float, ...],
    ) -> None:
        """Re-emit absorbed mass at one wall.

        ``flip`` selects the high wall: layers are counted inward from the
        far face and the roles of +/- normal velocities swap.  The mass
        the wall absorbed is read from the *pre-stream* populations — the
        ones that actually crossed the wall plane during this streaming
        step — so that total mass is conserved exactly every step (the
        emission at one wall replaces precisely the populations that
        wrapped around from the opposite wall).
        """
        n = f_new.shape[1 + self.axis]
        layers = [n - 1 - j for j in range(self._k)] if flip else list(range(self._k))
        new_views = [self._layer_view(f_new, layer) for layer in layers]
        old_views = [self._layer_view(f_old, layer) for layer in layers]
        wall_shape = new_views[0].shape[1:]
        feq_w = self._unit_equilibrium(wall_shape, wall_velocity)

        emitted = self._absorbed if flip else self._emitted
        absorbed = self._emitted if flip else self._absorbed

        # Mass crossing the wall this step, column by column along the wall.
        absorbed_mass = np.zeros(wall_shape)
        emitted_unit = np.zeros(wall_shape)
        for old_view, em_idx, ab_idx in zip(old_views, emitted, absorbed):
            absorbed_mass += old_view[ab_idx].sum(axis=0)
            emitted_unit += feq_w[em_idx].sum(axis=0)
        scale = absorbed_mass / emitted_unit
        for new_view, em_idx in zip(new_views, emitted):
            new_view[em_idx] = feq_w[em_idx] * scale[None]

    def apply(self, f_new: np.ndarray, f_old: np.ndarray) -> None:
        """Re-emit absorbed mass diffusely at both walls (mass-exact)."""
        self._apply_one_wall(f_new, f_old, False, self.wall_velocity_low)
        self._apply_one_wall(f_new, f_old, True, self.wall_velocity_high)
