"""Single-domain simulation driver.

Implements the paper's Fig. 2 loop::

    read initial distr
    for n < max_steps:
        distr_adv = stream(distr)
        distr     = collide(distr_adv)

on one periodic domain (the distributed version lives in
:mod:`repro.parallel.distributed`).  The driver owns the two population
arrays (``distr`` / ``distr_adv``), applies boundary conditions between
streaming and collision, couples an optional body force, and records
wall-clock throughput in MFlup/s (million fluid lattice-point updates
per second, paper Eq. 4).
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Sequence

import numpy as np

from ..errors import LatticeError, StabilityError
from ..lattice import VelocitySet, get_lattice
from ..telemetry.recorder import NullTelemetry, Telemetry, get_telemetry
from .boundary import BoundaryCondition
from .collision import BGKCollision
from .fields import LAYOUT_SOA, DistributionField, resolve_dtype, resolve_layout
from .forcing import GuoForcing
from .kernels import LBMKernel
from .moments import density, macroscopic, momentum
from .streaming import stream_periodic

__all__ = ["Simulation", "StepTimings"]


class StepTimings:
    """Cumulative wall-clock accounting for one simulation."""

    def __init__(self) -> None:
        self.stream_seconds = 0.0
        self.collide_seconds = 0.0
        self.boundary_seconds = 0.0
        self.steps = 0

    @property
    def total_seconds(self) -> float:
        return self.stream_seconds + self.collide_seconds + self.boundary_seconds

    def mflups(self, num_cells: int) -> float:
        """Measured MFlup/s (paper Eq. 4): ``steps * N / (T * 1e6)``."""
        if self.total_seconds == 0:
            return float("nan")
        return self.steps * num_cells / (self.total_seconds * 1e6)


class Simulation:
    """A single-block periodic LBM simulation.

    Parameters
    ----------
    lattice:
        A :class:`VelocitySet` or a lattice name (``"D3Q19"``/``"D3Q39"``).
    shape:
        Spatial grid shape, e.g. ``(64, 64, 64)``.
    tau:
        BGK relaxation time (ignored when ``collision`` is given).
    order:
        Hermite equilibrium order (``None`` = lattice native).
    collision:
        Custom collision operator exposing ``apply(f, out=None)`` and
        ``omega``; default :class:`BGKCollision`.
    boundaries:
        Boundary conditions applied after streaming, in order.
    forcing:
        Optional :class:`GuoForcing` body force (BGK collisions only).
    kernel:
        Which stream/collide implementation advances the populations: a
        registry name (``"roll"``, ``"fused-gather"``, ``"planned"``,
        ``"naive"``), ``"auto"`` (measured selection on this very
        shape/lattice/dtype), an :class:`~repro.core.kernels.LBMKernel`
        instance, or ``None`` for the legacy default pair
        (``stream_periodic`` + the collision operator).  Kernels own a
        BGK collision, so ``kernel`` and a custom ``collision`` are
        mutually exclusive; with ``forcing``, the kernel streams and
        the Guo-forced collision path collides.
    dtype:
        Population dtype policy, ``"float64"`` (default) or
        ``"float32"`` (halves B(Q) bytes per cell; see README).
    layout:
        Physical memory order of the persistent field: ``"soa"``
        (default, velocity-major — the paper's collision-optimized
        layout) or ``"aos"`` (cell-major, paper §IV's
        propagation-optimized alternative).  AoS requires the planned
        kernel (its plan remaps the gather table per layout); results
        are byte-identical per dtype because every layout transform is
        an exact permutation and the collision arithmetic is shared.
    telemetry:
        Structured-event recorder (:class:`~repro.telemetry.Telemetry`).
        ``None`` uses the ambient recorder
        (:func:`repro.telemetry.get_telemetry` — the no-op default
        unless enabled).  When enabled, :meth:`run` emits per-phase
        spans (``phase.stream``/``phase.collide``/``phase.boundary``)
        derived from the same :class:`StepTimings` clocks as ever.
    """

    def __init__(
        self,
        lattice: VelocitySet | str,
        shape: Sequence[int],
        tau: float = 1.0,
        order: int | None = None,
        collision=None,
        boundaries: Sequence[BoundaryCondition] = (),
        forcing: GuoForcing | None = None,
        kernel: "str | LBMKernel | None" = None,
        dtype: "str | np.dtype | None" = None,
        layout: "str | None" = None,
        telemetry: "Telemetry | NullTelemetry | None" = None,
    ) -> None:
        self.lattice = get_lattice(lattice) if isinstance(lattice, str) else lattice
        self.shape = tuple(int(s) for s in shape)
        self.dtype = resolve_dtype(dtype)
        self.layout = resolve_layout(layout)
        self.kernel: LBMKernel | None = None
        if kernel is not None:
            if collision is not None:
                raise LatticeError(
                    "kernel and collision are mutually exclusive: a kernel "
                    "owns its own BGK collision operator"
                )
            from .plan import make_kernel  # late import: plan builds on kernels

            self.kernel = make_kernel(
                kernel,
                self.lattice,
                tau,
                order=order,
                dtype=self.dtype,
                shape=self.shape,
                layout=self.layout,
            )
            self.collision = self.kernel.collision
        else:
            if self.layout != LAYOUT_SOA:
                raise LatticeError(
                    "layout='aos' requires a kernel (pass kernel='planned'); "
                    "the legacy stream/collide pair is velocity-major only"
                )
            self.collision = collision or BGKCollision(self.lattice, tau, order=order)
        self.boundaries = list(boundaries)
        self.forcing = forcing
        if forcing is not None and not isinstance(self.collision, BGKCollision):
            raise NotImplementedError("forcing is only coupled to BGK collisions")
        # The persistent field carries the layout; the advection scratch
        # stays SoA under either layout (the kernel streams AoS -> SoA
        # and scatters back after collision), so boundary conditions see
        # the same contiguous post-streaming array as ever.
        self.field = DistributionField.zeros(
            self.lattice, self.shape, dtype=self.dtype, layout=self.layout
        )
        self._adv = DistributionField.zeros(self.lattice, self.shape, dtype=self.dtype)
        self.time_step = 0
        self.timings = StepTimings()
        self.telemetry = get_telemetry() if telemetry is None else telemetry

    # -- setup ------------------------------------------------------------

    def set_telemetry(self, telemetry: "Telemetry | NullTelemetry") -> None:
        """Install a structured-event recorder on this simulation."""
        self.telemetry = telemetry

    def initialize(self, rho: np.ndarray | float, u: np.ndarray) -> None:
        """Set populations to the equilibrium of ``(rho, u)``; reset clock."""
        rho_arr = np.broadcast_to(np.asarray(rho, dtype=np.float64), self.shape)
        self.field = DistributionField.from_equilibrium(
            self.lattice,
            np.array(rho_arr),
            u,
            order=self.collision.order,
            dtype=self.dtype,
            layout=self.layout,
        )
        self._adv = DistributionField.zeros(self.lattice, self.shape, dtype=self.dtype)
        self.time_step = 0
        self.timings = StepTimings()

    # -- observables --------------------------------------------------------

    @property
    def f(self) -> np.ndarray:
        """Current populations, shape ``(Q, *shape)``, velocity-major.

        Under ``layout="aos"`` this is a contiguous SoA *copy* (mutate
        ``field.data`` to write populations in place): observables and
        checkpoints must reduce over identical bytes in identical order
        for the layouts' results to stay byte-identical, and whole-array
        reductions on a strided view may legally reorder.
        """
        if self.layout == LAYOUT_SOA:
            return self.field.data
        return self.field.as_soa()

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Density and (force-corrected) velocity fields."""
        rho, u = macroscopic(self.lattice, self.f)
        if self.forcing is not None:
            u = u + self.forcing.velocity_shift(rho)
        return rho, u

    @property
    def num_cells(self) -> int:
        return self.field.num_cells

    def mflups(self) -> float:
        """Measured throughput so far (paper Eq. 4)."""
        return self.timings.mflups(self.num_cells)

    # -- stepping -------------------------------------------------------------

    def _collide(self, f: np.ndarray, out: np.ndarray) -> None:
        if self.forcing is None:
            if self.kernel is not None:
                self.kernel.collide(f, out=out)
            else:
                self.collision.apply(f, out=out)
            return
        # Guo-forced BGK: correct the velocity by F/2 before building feq,
        # relax (shared fusion in BGKCollision.relax_into), then add the
        # source term.
        rho = density(f)
        u = momentum(self.lattice, f) / rho[None]
        u += self.forcing.velocity_shift(rho)
        feq = self.collision.equilibrium(rho, u)
        self.collision.relax_into(f, feq, out)
        out += self.forcing.source_term(u, self.collision.omega)

    def step(self) -> None:
        """Advance one time step: stream, boundaries, collide."""
        f_old = self.field.data
        f_new = self._adv.data

        t0 = time.perf_counter()
        if self.kernel is not None:
            self.kernel.stream(f_old, out=f_new)
        else:
            stream_periodic(self.lattice, f_old, out=f_new)
        t1 = time.perf_counter()
        for bc in self.boundaries:
            bc.apply(f_new, f_old)
        t2 = time.perf_counter()
        self._collide(f_new, out=f_old)
        t3 = time.perf_counter()

        # distr (f_old) now holds the post-collision state; buffers swap
        # implicitly because we collided back into the original array.
        self.time_step += 1
        self.timings.steps += 1
        self.timings.stream_seconds += t1 - t0
        self.timings.boundary_seconds += t2 - t1
        self.timings.collide_seconds += t3 - t2

    def run(
        self,
        steps: int,
        monitor: Callable[["Simulation"], None] | None = None,
        monitor_every: int = 1,
        check_stability_every: int = 0,
    ) -> None:
        """Run ``steps`` time steps.

        Parameters
        ----------
        monitor:
            Callback invoked every ``monitor_every`` steps with the
            simulation (after the step).
        check_stability_every:
            If positive, verify all populations are finite at that period
            and raise :class:`StabilityError` otherwise.

        With an enabled recorder, one span per phase is emitted for the
        steps this call actually ran (sourced from the :class:`StepTimings`
        deltas, so the hot :meth:`step` path carries no telemetry code
        and its zero-allocation guarantee is untouched).
        """
        # With stability checking on, a diverging run's last step computes
        # moments of already non-finite populations before _check_finite
        # can raise; silence numpy's invalid/overflow warnings for that
        # window so divergence is reported once, as StabilityError.
        numeric_guard = (
            np.errstate(invalid="ignore", over="ignore")
            if check_stability_every
            else contextlib.nullcontext()
        )
        if not self.telemetry.enabled:
            with numeric_guard:
                for n in range(steps):
                    self.step()
                    if monitor is not None and (n + 1) % monitor_every == 0:
                        monitor(self)
                    if check_stability_every and (n + 1) % check_stability_every == 0:
                        self._check_finite()
            return
        t = self.timings
        base = (t.stream_seconds, t.collide_seconds, t.boundary_seconds, t.steps)
        try:
            with numeric_guard:
                for n in range(steps):
                    self.step()
                    if monitor is not None and (n + 1) % monitor_every == 0:
                        monitor(self)
                    if check_stability_every and (n + 1) % check_stability_every == 0:
                        self._check_finite()
        finally:
            done = t.steps - base[3]
            if done:
                self.telemetry.record_span(
                    "phase.stream", t.stream_seconds - base[0], rank=0, steps=done
                )
                self.telemetry.record_span(
                    "phase.collide", t.collide_seconds - base[1], rank=0, steps=done
                )
                self.telemetry.record_span(
                    "phase.boundary", t.boundary_seconds - base[2], rank=0, steps=done
                )

    def _check_finite(self) -> None:
        if not self.field.is_finite():
            raise StabilityError(
                f"non-finite populations at step {self.time_step} "
                f"(tau={getattr(self.collision, 'tau', '?')}, "
                f"lattice={self.lattice.name})"
            )
