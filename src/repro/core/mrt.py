"""Hermite-space multiple-relaxation-time (MRT) collision.

An extension beyond the paper (which uses "the most common collision
operator", BGK).  The populations are decomposed onto the tensor
Hermite modes the lattice quadrature supports and each physical mode
group relaxes at its own rate:

* order 0/1 (density, momentum) — conserved, never relaxed;
* order 2 trace (bulk/acoustic mode) — ``tau_bulk``;
* order 2 traceless (shear stress)  — ``tau_shear`` (sets viscosity);
* order 3 (heat-flux-like modes, D3Q39 only) — ``tau_third``;
* anything beyond the supported order — projected out entirely
  (equivalent to relaxing ghost modes at rate 1), which is the
  regularization filter of
  :class:`~repro.core.collision.RegularizedBGKCollision`.

With all rates equal this operator coincides with the regularized BGK
(unit-tested); separating the rates decouples bulk from shear viscosity
and lets the higher kinetic moments relax independently — the standard
stability/accuracy lever for finite-Kn simulations.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet, hermite_tensor
from .collision import viscosity_from_tau
from .equilibrium import equilibrium, equilibrium_order_for
from .moments import macroscopic

__all__ = ["HermiteMRTCollision"]


@dataclasses.dataclass
class HermiteMRTCollision:
    """MRT collision in the tensor-Hermite basis.

    Parameters
    ----------
    lattice:
        Velocity set (any registered lattice).
    tau_shear:
        Relaxation time of the traceless second-order modes; fixes the
        kinematic viscosity ``nu = cs2 (tau_shear - 1/2)``.
    tau_bulk:
        Relaxation time of the second-order trace (bulk viscosity);
        defaults to ``tau_shear``.
    tau_third:
        Relaxation time of the third-order modes (used only when the
        lattice supports a third-order expansion); defaults to 1
        (project to equilibrium — maximally damped).
    order:
        Hermite order (``None`` = lattice native).
    """

    lattice: VelocitySet
    tau_shear: float
    tau_bulk: float | None = None
    tau_third: float | None = None
    order: int | None = None

    def __post_init__(self) -> None:
        if self.tau_shear <= 0.5:
            raise LatticeError(f"tau_shear must exceed 0.5 (got {self.tau_shear})")
        self.tau_bulk = self.tau_shear if self.tau_bulk is None else self.tau_bulk
        self.tau_third = 1.0 if self.tau_third is None else self.tau_third
        if self.tau_bulk <= 0.5:
            raise LatticeError(f"tau_bulk must exceed 0.5 (got {self.tau_bulk})")
        if self.tau_third < 0.5:
            raise LatticeError(f"tau_third must be >= 0.5 (got {self.tau_third})")
        self.order = equilibrium_order_for(self.lattice, self.order)
        cs2 = self.lattice.cs2_float
        c = self.lattice.velocities_as(np.float64)
        self._h2 = hermite_tensor(2, c, cs2)  # (Q, D, D)
        self._h3 = hermite_tensor(3, c, cs2)  # (Q, D, D, D)
        self._eye = np.eye(self.lattice.dim)

    # -- physics ------------------------------------------------------------

    @property
    def omega(self) -> float:
        """Shear relaxation frequency (the rate the cost model sees)."""
        return 1.0 / self.tau_shear

    @property
    def viscosity(self) -> float:
        """Shear kinematic viscosity."""
        return viscosity_from_tau(self.tau_shear, self.lattice.cs2_float)

    @property
    def bulk_viscosity(self) -> float:
        """Bulk kinematic viscosity ``nu_B = (2/D) cs2 (tau_bulk - 1/2)``
        (athermal BGK-lattice convention)."""
        d = self.lattice.dim
        return (2.0 / d) * self.lattice.cs2_float * (self.tau_bulk - 0.5)

    # -- operator ---------------------------------------------------------------

    def apply(self, f: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Relax each Hermite mode group at its own rate."""
        lat = self.lattice
        cs2 = lat.cs2_float
        w = lat.weights
        d = lat.dim

        rho, u = macroscopic(lat, f)
        feq = equilibrium(lat, rho, u, order=self.order)
        fneq = f - feq

        # second-order mode: split into trace and traceless parts
        a2 = np.einsum("qab,q...->ab...", self._h2, fneq)
        trace = np.einsum("aa...->...", a2) / d
        a2_iso = np.einsum("ab,...->ab...", self._eye, trace)
        a2_dev = a2 - a2_iso

        relaxed2 = (1.0 - 1.0 / self.tau_shear) * a2_dev + (
            1.0 - 1.0 / self.tau_bulk
        ) * a2_iso
        reg = np.einsum("qab,ab...->q...", self._h2, relaxed2) / (2.0 * cs2 * cs2)

        if self.order >= 3:
            a3 = np.einsum("qabc,q...->abc...", self._h3, fneq)
            relaxed3 = (1.0 - 1.0 / self.tau_third) * a3
            reg += np.einsum("qabc,abc...->q...", self._h3, relaxed3) / (6.0 * cs2**3)

        expand = (slice(None),) + (None,) * (f.ndim - 1)
        if out is None:
            out = f
        np.add(feq, w[expand] * reg, out=out)
        return out
