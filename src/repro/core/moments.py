"""Macroscopic moments of the distribution function.

The hydrodynamic fields are velocity moments of ``f``:

* density ``rho = sum_i f_i``
* momentum ``rho u = sum_i c_i f_i``
* momentum flux ``Pi_ab = sum_i c_ia c_ib f_i``
* deviatoric (non-equilibrium) stress and heat flux, the *higher kinetic
  moments* whose contribution "is no longer negligible" beyond the
  continuum regime (paper §I) — these are what the third-order D3Q39
  expansion transports correctly.
"""

from __future__ import annotations

import numpy as np

from ..lattice import VelocitySet
from .fields import compute_dtype

__all__ = [
    "density",
    "momentum",
    "velocity",
    "macroscopic",
    "momentum_flux",
    "deviatoric_stress",
    "heat_flux",
]


def density(f: np.ndarray) -> np.ndarray:
    """Zeroth moment ``rho = sum_i f_i``; shape = spatial shape."""
    return f.sum(axis=0)


def momentum(lattice: VelocitySet, f: np.ndarray) -> np.ndarray:
    """First moment ``j = sum_i c_i f_i``; shape ``(D, *S)``."""
    c = lattice.velocities_as(compute_dtype(f))
    return np.tensordot(c.T, f, axes=([1], [0]))


def velocity(
    lattice: VelocitySet, f: np.ndarray, rho: np.ndarray | None = None
) -> np.ndarray:
    """Fluid velocity ``u = j / rho``; shape ``(D, *S)``.

    ``rho`` may be passed to avoid recomputation.
    """
    if rho is None:
        rho = density(f)
    return momentum(lattice, f) / rho[None]


def macroscopic(
    lattice: VelocitySet, f: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(rho, u)`` in one pass (paper Fig. 4 ``calc_rho_and_vel``)."""
    rho = density(f)
    u = momentum(lattice, f) / rho[None]
    return rho, u


def momentum_flux(lattice: VelocitySet, f: np.ndarray) -> np.ndarray:
    """Second moment ``Pi_ab = sum_i c_ia c_ib f_i``; shape ``(D, D, *S)``."""
    c = lattice.velocities_as(compute_dtype(f))
    cc = np.einsum("qa,qb->abq", c, c)
    return np.tensordot(cc, f, axes=([2], [0]))


def deviatoric_stress(lattice: VelocitySet, f: np.ndarray) -> np.ndarray:
    """Non-equilibrium stress ``sigma_ab = Pi_ab - Pi^eq_ab``.

    ``Pi^eq_ab = rho cs2 delta_ab + rho u_a u_b``.  This is the moment
    through which viscous physics (and, at finite Kn, its breakdown)
    enters; shape ``(D, D, *S)``.
    """
    rho, u = macroscopic(lattice, f)
    pi = momentum_flux(lattice, f)
    eye = np.eye(lattice.dim)
    spatial = (slice(None), slice(None)) + (None,) * (f.ndim - 1)
    pi_eq = lattice.cs2_float * rho[None, None] * eye[spatial]
    pi_eq = pi_eq + rho[None, None] * np.einsum("a...,b...->ab...", u, u)
    return pi - pi_eq


def heat_flux(lattice: VelocitySet, f: np.ndarray) -> np.ndarray:
    """Third central moment ``q_a = 1/2 sum_i |c_i - u|^2 (c_ia - u_a) f_i``.

    A genuinely *kinetic* moment: D3Q19's fourth-order quadrature cannot
    evolve it consistently while D3Q39's sixth-order one can — the
    physical motivation for the paper's extended model.  Shape ``(D, *S)``.
    """
    rho, u = macroscopic(lattice, f)
    c = lattice.velocities_as(compute_dtype(f))
    spatial_ndim = f.ndim - 1
    cexp = c.reshape(c.shape + (1,) * spatial_ndim)  # (Q, D, 1...)
    rel = cexp - u[None]  # (Q, D, *S)
    rel2 = np.einsum("qa...,qa...->q...", rel, rel)
    return 0.5 * np.einsum("qa...,q...,q...->a...", rel, rel2, f)
