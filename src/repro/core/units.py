"""Lattice units, dimensionless groups and flow-regime classification.

Connects solver parameters to the physics the paper targets:

* viscosity ``nu = cs2 (tau - 1/2)``,
* Mach number ``Ma = |u| / cs``,
* Reynolds number ``Re = U L / nu``,
* Knudsen number ``Kn = lambda / L`` with the BGK mean free path
  ``lambda = nu / cs * sqrt(pi/2)`` (hard-sphere convention used by the
  kinetic-LBM literature the paper builds on, e.g. Zhang–Shan–Chen 2006).

The paper's framing: Navier–Stokes is valid for ``0 <= Kn <= 0.1``;
slip flow for ``0.1 < Kn <= 1`` (approximately); transition flow beyond.
D3Q39's third-order expansion extends validity into the slip/early
transition regimes.
"""

from __future__ import annotations

import dataclasses
import enum
import math

__all__ = [
    "FlowRegime",
    "classify_regime",
    "mach_number",
    "reynolds_number",
    "mean_free_path",
    "knudsen_number",
    "tau_for_knudsen",
    "LatticeUnits",
]


class FlowRegime(enum.Enum):
    """Knudsen-number flow regimes (paper §I)."""

    CONTINUUM = "continuum"  # Kn <= 0.001: Euler/NS, no slip
    SLIP = "slip"  # 0.001 < Kn <= 0.1: NS + slip corrections
    TRANSITION = "transition"  # 0.1 < Kn <= 10: kinetic effects dominate
    FREE_MOLECULAR = "free-molecular"  # Kn > 10


def classify_regime(kn: float) -> FlowRegime:
    """Classify a Knudsen number into the standard regimes.

    The paper's statement that conventional CFD holds for "Knudsen numbers
    between 0 and 0.1" corresponds to CONTINUUM + SLIP here; D3Q39 targets
    TRANSITION (and the upper slip regime).
    """
    if kn < 0:
        raise ValueError(f"Kn must be non-negative, got {kn}")
    if kn <= 1e-3:
        return FlowRegime.CONTINUUM
    if kn <= 0.1:
        return FlowRegime.SLIP
    if kn <= 10.0:
        return FlowRegime.TRANSITION
    return FlowRegime.FREE_MOLECULAR


def mach_number(speed: float, cs2: float) -> float:
    """``Ma = |u| / c_s`` in lattice units."""
    return speed / math.sqrt(cs2)


def reynolds_number(speed: float, length: float, nu: float) -> float:
    """``Re = U L / nu`` in lattice units."""
    return speed * length / nu


def mean_free_path(nu: float, cs2: float) -> float:
    """BGK mean free path ``lambda = (nu / cs) * sqrt(pi / 2)``."""
    return nu / math.sqrt(cs2) * math.sqrt(math.pi / 2.0)


def knudsen_number(tau: float, length: float, cs2: float) -> float:
    """Knudsen number of a BGK simulation with relaxation time ``tau``.

    ``Kn = lambda / L`` with ``lambda`` from :func:`mean_free_path` and
    ``nu = cs2 (tau - 1/2)``.
    """
    nu = cs2 * (tau - 0.5)
    return mean_free_path(nu, cs2) / length


def tau_for_knudsen(kn: float, length: float, cs2: float) -> float:
    """Relaxation time that realises Knudsen number ``kn`` over ``length``."""
    lam = kn * length
    nu = lam * math.sqrt(cs2) / math.sqrt(math.pi / 2.0)
    return nu / cs2 + 0.5


@dataclasses.dataclass(frozen=True)
class LatticeUnits:
    """Conversion between physical and lattice units.

    Fixes the scaling via a physical grid spacing ``dx`` [m], time step
    ``dt`` [s] and reference density ``rho0`` [kg/m^3]; everything else
    follows from dimensional analysis.
    """

    dx: float
    dt: float
    rho0: float = 1.0

    def __post_init__(self) -> None:
        if self.dx <= 0 or self.dt <= 0 or self.rho0 <= 0:
            raise ValueError("dx, dt and rho0 must be positive")

    @property
    def velocity_scale(self) -> float:
        """Physical speed of one lattice unit [m/s]."""
        return self.dx / self.dt

    @property
    def viscosity_scale(self) -> float:
        """Physical kinematic viscosity of one lattice unit [m^2/s]."""
        return self.dx * self.dx / self.dt

    def to_physical_velocity(self, u_lat: float) -> float:
        """Lattice velocity → m/s."""
        return u_lat * self.velocity_scale

    def to_lattice_velocity(self, u_phys: float) -> float:
        """m/s → lattice velocity."""
        return u_phys / self.velocity_scale

    def to_physical_viscosity(self, nu_lat: float) -> float:
        """Lattice viscosity → m^2/s."""
        return nu_lat * self.viscosity_scale

    def to_lattice_viscosity(self, nu_phys: float) -> float:
        """m^2/s → lattice viscosity."""
        return nu_phys / self.viscosity_scale

    def to_physical_density(self, rho_lat: float) -> float:
        """Lattice density → kg/m^3."""
        return rho_lat * self.rho0

    def to_physical_time(self, steps: int) -> float:
        """Number of steps → seconds."""
        return steps * self.dt
