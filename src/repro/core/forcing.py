"""Body-force coupling (Guo et al. 2002 forcing for BGK).

A constant body force drives the Poiseuille/channel example flows (the
paper's own benchmarks are periodic and unforced; forcing supports the
application examples).  The scheme adds a source term after collision::

    S_i = w_i (1 - omega/2) [ (c_i - u)/cs2 + (c_i . u) c_i / cs2^2 ] . F

and shifts the velocity used in the equilibrium and in output by
``F/(2 rho)``, which removes the discrete lattice artifacts of naive
forcing and is second-order accurate.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import LatticeError
from ..lattice import VelocitySet

__all__ = ["GuoForcing"]


@dataclasses.dataclass
class GuoForcing:
    """Constant body force ``F`` (per unit volume) with Guo coupling.

    Parameters
    ----------
    lattice:
        Velocity set.
    force:
        Force vector, length ``D`` (lattice units).
    """

    lattice: VelocitySet
    force: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.force) != self.lattice.dim:
            raise LatticeError(
                f"force must have {self.lattice.dim} components, got {len(self.force)}"
            )
        self._f_vec = np.asarray(self.force, dtype=np.float64)

    def velocity_shift(self, rho: np.ndarray) -> np.ndarray:
        """Half-force velocity correction ``F / (2 rho)``; shape (D, *S)."""
        shift = self._f_vec.reshape((self.lattice.dim,) + (1,) * rho.ndim)
        return shift / (2.0 * rho[None])

    def source_term(self, u: np.ndarray, omega: float) -> np.ndarray:
        """Guo source ``S_i`` given the corrected velocity ``u``.

        Returns an array of shape ``(Q, *S)`` to be added to the
        post-collision populations.
        """
        lat = self.lattice
        cs2 = lat.cs2_float
        c = lat.velocities_as(np.float64)  # (Q, D)
        w = lat.weights
        spatial_ndim = u.ndim - 1

        cu = np.tensordot(c, u, axes=([1], [0]))  # (Q, *S)
        cF = np.tensordot(c, self._f_vec, axes=([1], [0]))  # (Q,)
        uF = np.tensordot(self._f_vec, u, axes=([0], [0]))  # (*S,)

        expand_q = (slice(None),) + (None,) * spatial_ndim
        term = (cF[expand_q] - uF[None]) / cs2 + cu * cF[expand_q] / (cs2 * cs2)
        return (1.0 - 0.5 * omega) * w[expand_q] * term
