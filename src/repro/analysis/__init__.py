"""Reporting: paper reference values, table rendering, ASCII plots."""

from . import paper_reference
from .ascii_plot import bar_chart
from .tables import append_column, diff_rows, render_csv, render_table

__all__ = [
    "append_column",
    "bar_chart",
    "diff_rows",
    "paper_reference",
    "render_csv",
    "render_table",
]
