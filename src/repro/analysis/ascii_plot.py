"""Minimal terminal bar charts for benchmark harness output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["bar_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (used by the figure benches).

    ``None``-valued entries render as ``(infeasible)``.
    """
    finite = [v for v in values if v is not None]
    if not finite:
        return (title or "") + "\n(no feasible data)"
    peak = max(finite)
    lines = [title] if title else []
    label_w = max(len(str(lab)) for lab in labels)
    for label, value in zip(labels, values):
        if value is None:
            lines.append(f"{str(label).rjust(label_w)} | (infeasible)")
        else:
            n = int(round(width * value / peak)) if peak > 0 else 0
            lines.append(
                f"{str(label).rjust(label_w)} | {'#' * n} {value:.4g}{unit}"
            )
    return "\n".join(lines)
