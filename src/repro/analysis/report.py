"""EXPERIMENTS.md generator: paper-vs-measured for every artifact.

``python -m repro.analysis.report > EXPERIMENTS.md`` regenerates the
record from a fresh run of every experiment, so the document can never
drift from the code.
"""

from __future__ import annotations

from . import paper_reference as ref

__all__ = ["generate_report"]


def _fmt(value, digits=2):
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _fig8_section(results) -> list[str]:
    lines = ["## Fig. 8 — optimization ladder (MFlup/s, 128 nodes)", ""]
    lines.append(
        "| machine | lattice | paper final/peak | measured | paper improvement | measured |"
    )
    lines.append("|---|---|---|---|---|---|")
    for fid, mkey in (("fig8a", "BG/P"), ("fig8b", "BG/Q")):
        c = results[fid].checks
        for lname in ("D3Q19", "D3Q39"):
            paper_frac, paper_imp = ref.FIG8_ENDPOINTS[(mkey, lname)]
            lines.append(
                f"| {mkey} | {lname} | {paper_frac:.0%} | "
                f"{c[f'{lname}/final_over_peak']:.1%} | "
                f"~{paper_imp:g}x | {c[f'{lname}/improvement']:.2f}x |"
            )
    lines += [
        "",
        "Per-level signature (measured): DH ≈ +31% on BG/P vs +75% on BG/Q; "
        "CF ≈ +145% on BG/Q ('2.5x'); SIMD is the largest late-stage gain "
        "on BG/P while on BG/Q the compiler had already captured most of "
        "it — all as reported in the paper's §V/§VI.",
        "",
    ]
    return lines


def _table2_section(results) -> list[str]:
    lines = ["## Table II — attainable MFlup/s (roofline)", ""]
    lines.append("| machine | lattice | paper P(Bm) | measured | paper P(Ppeak) | measured | paper torus LB | measured |")
    lines.append("|---|---|---|---|---|---|---|---|")
    c = results["table2"].checks
    for (mkey, lname), (_, p_bm, _, p_peak) in ref.TABLE2.items():
        torus = ref.TORUS_LOWER_BOUNDS[(mkey, lname)]
        lines.append(
            f"| {mkey} | {lname} | {p_bm:g} | {c[f'{mkey}/{lname}/p_bm']:.1f} | "
            f"{p_peak:g} | {c[f'{mkey}/{lname}/p_peak']:.1f} | "
            f"{torus:g} | {c[f'{mkey}/{lname}/torus']:.1f} |"
        )
    lines += ["", "Every configuration is bandwidth-limited, as in the paper.", ""]
    return lines


def _fig9_section(results) -> list[str]:
    lines = ["## Fig. 9 — communication time min/median/max (s, 300 steps)", ""]
    lines.append("| lattice | schedule | measured min | median | max | paper anchor |")
    lines.append("|---|---|---|---|---|---|")
    anchors = {"NB-C": "4.8 … 40 s (D3Q19)", "NB-C & GC": "reduced", "GC-C": "3–5 s (D3Q19)"}
    s = results["fig9"].series
    for lname in ("D3Q19", "D3Q39"):
        for sched in ("NB-C", "NB-C & GC", "GC-C"):
            mn, med, mx = s[f"{lname}/{sched}"]
            anchor = anchors[sched] if lname == "D3Q19" else "—"
            lines.append(
                f"| {lname} | {sched} | {mn:.1f} | {med:.1f} | {mx:.1f} | {anchor} |"
            )
    lines += [
        "",
        "Shape reproduced: the NB-C spread (min ≈ transfer floor, max ≈ "
        "40 s) collapses by ~2x with ghost cells and by >4x with the "
        "split ghost collide, matching the paper's reading that GC-C "
        "hides message cost behind ghost-region computation.",
        "",
    ]
    return lines


def _fig10_section(results) -> list[str]:
    lines = ["## Fig. 10 — runtime vs ghost depth (normalized to GC=1)", ""]
    for fid, desc in (
        ("fig10a", "D3Q19, 2048 BG/P processors"),
        ("fig10b", "D3Q39, 16 BG/Q nodes x 16 tasks"),
    ):
        r = results[fid]
        lines.append(f"### {fid} ({desc})")
        lines.append("")
        lines.append("| size | GC=1 | GC=2 | GC=3 | GC=4 | optimal |")
        lines.append("|---|---|---|---|---|---|")
        for label, norm in r.series.items():
            cells = " | ".join("OOM" if n is None else f"{n:.3f}" for n in norm)
            lines.append(f"| {label} | {cells} | {r.checks[f'{label}/optimal']} |")
        lines.append("")
    lines += [
        "Paper shape reproduced: GC=1 optimal at small sizes (deep halos "
        "hurt via surface/volume), GC=2–3 win at the largest sizes, and "
        "the 133k D3Q19 case goes out of memory at GC=4 exactly as the "
        "paper reports.",
        "",
    ]
    return lines


def _tables34_section(results) -> list[str]:
    lines = ["## Tables III & IV — optimal ghost depth vs points/processor", ""]
    lines.append("| table | ratio | model optimal | paper |")
    lines.append("|---|---|---|---|")
    for row in results["tables34"].rows:
        lines.append("| " + " | ".join(str(x) for x in row) + " |")
    lines += [
        "",
        "**Discrepancy (documented):** the mechanistic model yields a "
        "*monotone* shallow→deep structure with the depth-2 crossover "
        "inside the paper's 32–66 (Table III) and 532–680 (Table IV) "
        "brackets.  The paper's mid-band inversion (depth 3 before "
        "depth 2) does not emerge from a clean cost model; the paper "
        "itself notes the optimum 'did not simply increase linearly "
        "... as one might naively expect'.",
        "",
    ]
    return lines


def _fig11_section(results) -> list[str]:
    lines = ["## Fig. 11 — hybrid MPI/OpenMP placements", ""]
    a = results["fig11a"].checks
    lines.append("### Fig. 11a (32 BG/P nodes; best-over-depth runtimes, s)")
    lines.append("")
    lines.append("| lattice | 1T | 4T | VN | paper claim | reproduced |")
    lines.append("|---|---|---|---|---|---|")
    lines.append(
        f"| D3Q19 | {a['D3Q19/t1_runtime']:.1f} | {a['D3Q19/t4_runtime']:.1f} | "
        f"{a['D3Q19/vn_runtime']:.1f} | 4T ≈ VN | "
        f"{'yes' if abs(a['D3Q19/t4_runtime']/a['D3Q19/vn_runtime']-1) < 0.08 else 'no'} |"
    )
    lines.append(
        f"| D3Q39 | {a['D3Q39/t1_runtime']:.1f} | {a['D3Q39/t4_runtime']:.1f} | "
        f"{a['D3Q39/vn_runtime']:.1f} | 4T (GC=2) beats VN | "
        f"{'yes (depth ' + str(a['D3Q39/t4_depth']) + ')' if a['D3Q39/t4_runtime'] < a['D3Q39/vn_runtime'] else 'no'} |"
    )
    b = results["fig11b"].checks
    lines += [
        "",
        "### Fig. 11b (16 BG/Q nodes)",
        "",
        f"Paper: optimal pairing is 4 tasks x 16 threads for both models. "
        f"Measured optimum: D3Q19 → {b['D3Q19/best'][0]}-{b['D3Q19/best'][1]}, "
        f"D3Q39 → {b['D3Q39/best'][0]}-{b['D3Q39/best'][1]}.",
        "",
    ]
    return lines


def _table1_section(results) -> list[str]:
    c = results["table1"].checks
    return [
        "## Table I — lattice parameters",
        "",
        f"Reproduced exactly (Q19 = {c['q19']} velocities, isotropy order "
        f"{c['q19_isotropy']}; Q39 = {c['q39']} velocities, isotropy order "
        f"{c['q39_isotropy']}), with one OCR correction: the (2,2,0) weight "
        "printed as '1/142' must be 1/432 (the weights then sum to 1 and "
        "the quadrature is exactly sixth-order isotropic — verified in "
        "rational arithmetic).  Note also D3Q39's fundamental halo "
        f"thickness is k = {c['q39_k']} planes (Table I includes (3,0,0)); "
        "the paper's prose says 2.",
        "",
    ]


def generate_report() -> str:
    """Run every experiment and render the paper-vs-measured record."""
    from ..experiments import available_experiments, run_experiment

    results = {eid: run_experiment(eid) for eid in available_experiments()}
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Auto-generated by `python -m repro.analysis.report` from a fresh",
        "run of every registered experiment (absolute Blue Gene numbers",
        "come from the calibrated machine model; see DESIGN.md §2).",
        "",
    ]
    lines += _table1_section(results)
    lines += _table2_section(results)
    lines += _fig8_section(results)
    lines += _fig9_section(results)
    lines += _fig10_section(results)
    lines += _tables34_section(results)
    lines += _fig11_section(results)
    lines += [
        "## Reproduction verdict",
        "",
        "Every table and figure of the evaluation is regenerated with the",
        "paper's qualitative shape intact: who wins (D3Q19 over D3Q39 by",
        "the byte ratio ~2x; tuned code over naive by ~3x on BG/P and",
        "~8x on BG/Q), where crossovers fall (deep halos pay off beyond",
        "R≈32 / R≈500 points per processor; hybrid placements win for the",
        "higher-order model), and the failure modes (GC=4 OOM at 133k).",
        "The single documented divergence is the non-monotonic mid-band",
        "of Tables III/IV (see above).",
        "",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(generate_report())
