"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_csv", "append_column"]


def append_column(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    name: str,
    values: Sequence[object],
) -> "tuple[list[str], list[list[object]]]":
    """Merge one trailing column into tabular data.

    Used e.g. to stitch the sweep executor's per-variant provenance
    (``run`` vs ``cached``) onto a comparison table.

    >>> append_column(["a"], [[1], [2]], "src", ["run", "cached"])
    (['a', 'src'], [[1, 'run'], [2, 'cached']])
    """
    if len(values) != len(rows):
        raise ValueError(
            f"column {name!r} has {len(values)} values for {len(rows)} rows"
        )
    return (
        list(headers) + [name],
        [list(row) + [value] for row, value in zip(rows, values)],
    )


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render the same tabular data as minimal CSV (comma-quoted cells)."""

    def cell(value: object) -> str:
        text = str(value)
        if "," in text or '"' in text or "\n" in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    lines += [",".join(cell(c) for c in row) for row in rows]
    return "\n".join(lines) + "\n"
