"""Plain-text table rendering and comparison for benchmark output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_csv", "append_column", "diff_rows"]


def append_column(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    name: str,
    values: Sequence[object],
) -> "tuple[list[str], list[list[object]]]":
    """Merge one trailing column into tabular data.

    Used e.g. to stitch the sweep executor's per-variant provenance
    (``run`` vs ``cached``) onto a comparison table.

    >>> append_column(["a"], [[1], [2]], "src", ["run", "cached"])
    (['a', 'src'], [[1, 'run'], [2, 'cached']])
    """
    if len(values) != len(rows):
        raise ValueError(
            f"column {name!r} has {len(values)} values for {len(rows)} rows"
        )
    return (
        list(headers) + [name],
        [list(row) + [value] for row, value in zip(rows, values)],
    )


def diff_rows(
    headers: Sequence[str],
    rows_a: Sequence[Sequence[object]],
    rows_b: Sequence[Sequence[object]],
    key_columns: int = 1,
) -> "tuple[list[str], list[list[str]]]":
    """Row-level diff of two tables sharing ``headers``.

    Rows are matched on their first ``key_columns`` cells (for sweep
    tables: the parameter columns).  The result keeps only differing
    rows, with a trailing ``change`` column: ``removed`` (key only in
    ``rows_a``), ``added`` (key only in ``rows_b``) or ``changed``
    (same key, some cell differs — rendered ``old -> new``).  An empty
    row list means the tables agree; this is the cache-diff primitive
    for comparing two sweep runs.

    >>> diff_rows(["tau", "err"], [["0.6", "1e-3"]], [["0.6", "2e-3"]])
    (['tau', 'err', 'change'], [['0.6', '1e-3 -> 2e-3', 'changed']])
    """
    if key_columns < 1 or key_columns > len(headers):
        raise ValueError(
            f"key_columns must be in 1..{len(headers)}, got {key_columns}"
        )

    def index(rows: Sequence[Sequence[object]]) -> dict:
        table = {}
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells for {len(headers)} headers"
                )
            table[tuple(str(c) for c in row[:key_columns])] = [
                str(c) for c in row
            ]
        return table

    old, new = index(rows_a), index(rows_b)
    diff: list[list[str]] = []
    for key, row in old.items():
        if key not in new:
            diff.append(row + ["removed"])
        elif new[key] != row:
            merged = [
                cell_a if cell_a == cell_b else f"{cell_a} -> {cell_b}"
                for cell_a, cell_b in zip(row, new[key])
            ]
            diff.append(merged + ["changed"])
    for key, row in new.items():
        if key not in old:
            diff.append(row + ["added"])
    return list(headers) + ["change"], diff


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render the same tabular data as minimal CSV (comma-quoted cells)."""

    def cell(value: object) -> str:
        text = str(value)
        if "," in text or '"' in text or "\n" in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    lines += [",".join(cell(c) for c in row) for row in rows]
    return "\n".join(lines) + "\n"
