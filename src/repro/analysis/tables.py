"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_csv"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render the same tabular data as minimal CSV (comma-quoted cells)."""

    def cell(value: object) -> str:
        text = str(value)
        if "," in text or '"' in text or "\n" in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(h) for h in headers)]
    lines += [",".join(cell(c) for c in row) for row in rows]
    return "\n".join(lines) + "\n"
