"""Reference values reported by the paper, for shape comparison.

Every number here is quoted from the paper text (section given in the
comment).  The benchmarks print these next to the model's output and
the shape tests assert agreement within stated tolerances.
"""

from __future__ import annotations

__all__ = [
    "TABLE2",
    "TORUS_LOWER_BOUNDS",
    "EFFICIENCY_BOUNDS",
    "FIG8_ENDPOINTS",
    "FIG9_D3Q19",
    "TABLE3",
    "TABLE4",
    "FIG10A_SIZES",
    "FIG10B_SIZES",
    "FIG11B_OPTIMUM",
]

#: Table II: (machine, lattice) -> (Bm GB/s, P(Bm) MFlup/s, Ppeak GFlop/s,
#: P(Ppeak) MFlup/s).  All rows are bandwidth-limited.
TABLE2 = {
    ("BG/P", "D3Q19"): (13.6, 29.0, 13.6, 76.4),
    ("BG/Q", "D3Q19"): (43.0, 94.0, 204.8, 1150.0),
    ("BG/P", "D3Q39"): (13.6, 14.5, 13.6, 71.5),
    ("BG/Q", "D3Q39"): (43.0, 45.0, 204.8, 1077.0),
}

#: §III-C: MFlup/s if all loads/stores ran at torus bandwidth.
TORUS_LOWER_BOUNDS = {
    ("BG/P", "D3Q19"): 11.1,
    ("BG/Q", "D3Q19"): 70.0,
    ("BG/P", "D3Q39"): 5.4,
    ("BG/Q", "D3Q39"): 34.0,
}

#: §III-C: hardware-efficiency ceilings P(Bm)/P(Ppeak) on BG/P.
EFFICIENCY_BOUNDS = {
    ("BG/P", "D3Q19"): 0.38,
    ("BG/P", "D3Q39"): 0.20,
}

#: §VI / Conclusion: (fraction of model peak at full tuning,
#: cumulative improvement Orig -> SIMD).
FIG8_ENDPOINTS = {
    ("BG/P", "D3Q19"): (0.92, 3.0),
    ("BG/P", "D3Q39"): (0.83, 3.0),
    ("BG/Q", "D3Q19"): (0.85, 7.75),
    ("BG/Q", "D3Q39"): (0.79, 7.75),
}

#: Fig. 9, D3Q19 (seconds over 300 steps): schedule -> (min, max) extremes
#: quoted in the text: "one node spends as little as 4.8 seconds in
#: communication while another spends 40"; GC-C "minimized to ranging
#: from 3-5 seconds".
FIG9_D3Q19 = {
    "NB-C": (4.8, 40.0),
    "GC-C": (3.0, 5.0),
}

#: Table III: (R_low, R_high] -> optimal ghost depth, D3Q19.
TABLE3 = [((0, 16), 1), ((16, 32), 3), ((32, 66), 2)]

#: Table IV: D3Q39 (as printed; the brackets in the paper's Table IV are
#: garbled by OCR — we read them as (256,532]->3, (532,680]->2,
#: (680,800]->2 or 3, R<256 -> 1).
TABLE4 = [((0, 256), 1), ((256, 532), 3), ((532, 680), 2), ((680, 800), (2, 3))]

#: Fig. 10a fluid sizes (x-extent over 2048 BG/P processors).
FIG10A_SIZES = (8000, 16000, 32000, 64000, 133000)

#: Fig. 10b fluid sizes (16 BG/Q nodes x 16 tasks).
FIG10B_SIZES = (16000, 32000, 64000, 133000, 170000, 200000)

#: §VI-B: "the optimal pairing of tasks and threads ... is actually four
#: tasks per node with 16 threads assigned ... true for both models".
FIG11B_OPTIMUM = (4, 16)
