"""Merge and roll up per-process telemetry event files.

A run's ``telemetry/`` directory holds one append-only JSONL file per
process (see :mod:`repro.telemetry.recorder`).  This module is the read
side: :func:`load_run` merges every file into one :class:`RunAggregate`
offering

* summed monotonic counters (``comm.bytes`` reconciles exactly against
  :meth:`~repro.parallel.DistributedSimulation.total_comm_bytes`),
* per-phase / per-rank seconds and a
  :class:`~repro.parallel.PhaseProfile` built from the same span events
  the live :class:`~repro.parallel.PhaseProfiler` reads — the two views
  are equal by construction,
* per-worker variant rollups (count, seconds, MFLUP/s via the paper's
  Eq. 4, :func:`repro.perf.metrics.mflups`),
* completion-rate ETA for the ``sweep-status`` live view,
* event filtering/formatting for the ``repro events`` tail.

Corrupt lines (a process killed mid-write) are skipped and *counted* —
an aggregate never silently pretends a truncated file was whole.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any, Iterable, Sequence

from .recorder import TELEMETRY_DIRNAME

__all__ = [
    "FleetRollup",
    "RunAggregate",
    "WorkerStats",
    "filter_events",
    "find_telemetry_dir",
    "format_event",
    "load_run",
    "read_events_file",
]


def read_events_file(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Parse one JSONL event file; returns ``(events, dropped_lines)``.

    Lines that fail to parse, or parse to something other than an event
    object, count as dropped — typically the torn final line of a
    killed process.
    """
    events: list[dict[str, Any]] = []
    dropped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                dropped += 1
                continue
            if isinstance(event, dict) and "type" in event:
                events.append(event)
            else:
                dropped += 1
    return events, dropped


def find_telemetry_dir(root: str | Path) -> Path:
    """Resolve ``root`` to a telemetry directory.

    Accepts either the telemetry directory itself or its parent (e.g. a
    sweep ``--cache-dir``, whose events live under
    ``<cache-dir>/telemetry/``).
    """
    root = Path(root)
    nested = root / TELEMETRY_DIRNAME
    if nested.is_dir():
        return nested
    return root


def load_run(root: str | Path) -> "RunAggregate":
    """Merge every per-process event file under ``root``.

    ``root`` may be the telemetry directory or its parent.  Events are
    ordered by wall-clock timestamp (stable across files).
    """
    directory = find_telemetry_dir(root)
    events: list[dict[str, Any]] = []
    files: list[Path] = []
    dropped = 0
    if directory.is_dir():
        for path in sorted(directory.glob("*.jsonl")):
            file_events, file_dropped = read_events_file(path)
            events.extend(file_events)
            dropped += file_dropped
            files.append(path)
    events.sort(key=lambda e: float(e.get("ts", 0.0)))
    return RunAggregate(events=events, files=tuple(files), dropped=dropped)


def filter_events(
    events: Iterable[dict[str, Any]],
    name: str | None = None,
    etype: str | None = None,
    process: str | None = None,
) -> list[dict[str, Any]]:
    """Events matching every given filter (substring match on ``name``
    and ``process``, exact match on ``etype``)."""
    out = []
    for event in events:
        if name is not None and name not in str(event.get("name", "")):
            continue
        if etype is not None and event.get("type") != etype:
            continue
        if process is not None and process not in str(event.get("process", "")):
            continue
        out.append(event)
    return out


def format_event(event: dict[str, Any]) -> str:
    """One human-readable line per event (the ``repro events`` view)."""
    ts = float(event.get("ts", 0.0))
    etype = str(event.get("type", "?"))
    name = str(event.get("name", "?"))
    process = str(event.get("process", "?"))
    parts = [f"{ts:.3f}", f"[{process}]", f"{etype:<5}", name]
    if etype == "span":
        parts.append(f"{float(event.get('seconds', 0.0)):.6f}s")
    elif etype == "count":
        value = event.get("value", 0)
        parts.append(f"+{value:g}" if isinstance(value, float) else f"+{value}")
    attrs = event.get("attrs") or {}
    if attrs:
        rendered = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        parts.append(rendered)
    return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class WorkerStats:
    """Per-process variant rollup (one sweep worker = one process)."""

    process: str
    variants: int
    seconds: float
    updates: float  # total cell updates: sum(steps_i * cells_i)

    @property
    def mflups(self) -> float:
        """Aggregate throughput over this worker's variants (Eq. 4)."""
        if self.seconds <= 0 or self.updates <= 0:
            return float("nan")
        from ..perf.metrics import mflups

        return mflups(1, int(self.updates), self.seconds)


@dataclasses.dataclass(frozen=True)
class FleetRollup:
    """Structured fleet-telemetry rollup behind the ``sweep-status`` view.

    Pure data: building one has no CLI or filesystem side effects, so
    the serving layer (``GET /v1/fleet``) and the CLI table render the
    exact same numbers.  ``cache_hit_rate`` / ``eta_seconds`` are
    ``None`` when unknowable (the JSON-safe spelling of ``nan``).
    """

    events: int
    files: int
    dropped: int
    cache_hit_rate: float | None
    workers: tuple[WorkerStats, ...]
    eta_seconds: float | None
    remaining: int | None
    #: ``variant.failed`` / ``variant.quarantined`` counter totals —
    #: the fleet's failure-ledger activity as seen through telemetry.
    failed: int = 0
    quarantined: int = 0

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe dict form (no NaN; worker MFLUP/s may be None)."""
        workers = {}
        for stats in self.workers:
            throughput = stats.mflups
            workers[stats.process] = {
                "variants": stats.variants,
                "seconds": stats.seconds,
                "mflups": None if math.isnan(throughput) else throughput,
            }
        return {
            "events": self.events,
            "files": self.files,
            "dropped": self.dropped,
            "cache_hit_rate": self.cache_hit_rate,
            "workers": workers,
            "eta_seconds": self.eta_seconds,
            "remaining": self.remaining,
            "failed": self.failed,
            "quarantined": self.quarantined,
        }

    def summary_lines(self) -> list[str]:
        """The enriched ``sweep-status`` block (rendering only)."""
        lines = [
            f"  telemetry: {self.events} event(s) across "
            f"{self.files} file(s)"
            + (f", {self.dropped} corrupt line(s) dropped" if self.dropped else "")
        ]
        if self.cache_hit_rate is not None:
            lines.append(f"  cache hit rate: {self.cache_hit_rate:.0%}")
        if self.failed:
            lines.append(
                f"  failures: {self.failed} failed attempt(s), "
                f"{self.quarantined} quarantined"
            )
        for stats in sorted(self.workers, key=lambda s: s.process):
            throughput = stats.mflups
            rendered = "" if math.isnan(throughput) else f", {throughput:.2f} MFLUP/s"
            lines.append(
                f"  worker {stats.process}: {stats.variants} variant(s) in "
                f"{stats.seconds:.2f}s{rendered}"
            )
        if self.remaining is not None and self.eta_seconds is not None:
            lines.append(
                f"  eta: ~{self.eta_seconds:.0f}s for "
                f"{self.remaining} remaining variant(s)"
                if self.remaining
                else "  eta: done"
            )
        return lines


@dataclasses.dataclass
class RunAggregate:
    """All of one run's events, merged across processes."""

    events: list[dict[str, Any]]
    files: tuple[Path, ...] = ()
    dropped: int = 0

    # -- generic access ----------------------------------------------------

    @property
    def counters(self) -> dict[str, float]:
        """Monotonic counters summed over every process."""
        totals: dict[str, float] = {}
        for event in self.events:
            if event.get("type") == "count":
                name = str(event.get("name"))
                totals[name] = totals.get(name, 0) + event.get("value", 0)
        return totals

    def spans(self, name: str | None = None) -> list[dict[str, Any]]:
        """Span events, optionally filtered by exact name."""
        return [
            e
            for e in self.events
            if e.get("type") == "span"
            and (name is None or e.get("name") == name)
        ]

    def kernel_auto_verdicts(
        self, provenance: str | None = None
    ) -> list[dict[str, Any]]:
        """``kernel.auto`` verdict events, optionally by provenance.

        ``provenance="measured"`` selects the verdicts that came from an
        actual timing race — the only ones the perf-model fitter
        (:func:`repro.perf.model.samples_from_events`) accepts, since
        ``cached``/``model`` resolutions restate earlier measurements or
        the model's own predictions.
        """
        return [
            e
            for e in self.events
            if e.get("type") == "event"
            and e.get("name") == "kernel.auto"
            and (
                provenance is None
                or (e.get("attrs") or {}).get("provenance") == provenance
            )
        ]

    # -- phase attribution (Fig. 9) ---------------------------------------

    def num_ranks(self) -> int:
        """Highest rank/ranks attribute seen on a phase span, plus one."""
        ranks = 0
        for event in self.spans():
            attrs = event.get("attrs") or {}
            if "ranks" in attrs:
                ranks = max(ranks, int(attrs["ranks"]))
            elif "rank" in attrs:
                ranks = max(ranks, int(attrs["rank"]) + 1)
        return ranks

    def phase_profile(self, num_ranks: int | None = None):
        """A :class:`~repro.parallel.PhaseProfile` built from the
        ``phase.*`` span events — numerically identical to what a live
        :class:`~repro.parallel.PhaseProfiler` over the same run reports
        (both read the same events)."""
        from ..parallel.instrumentation import PhaseProfile

        if num_ranks is None:
            num_ranks = max(1, self.num_ranks())
        return PhaseProfile.from_events(self.events, num_ranks)

    def phase_seconds(self) -> dict[str, float]:
        """Total seconds per phase, summed over ranks and processes."""
        totals: dict[str, float] = {}
        for event in self.spans():
            name = str(event.get("name", ""))
            if not name.startswith("phase."):
                continue
            phase = name[len("phase."):]
            totals[phase] = totals.get(phase, 0.0) + float(
                event.get("seconds", 0.0)
            )
        return totals

    # -- comm reconciliation ----------------------------------------------

    @property
    def comm_bytes(self) -> int:
        """Summed halo-exchange payload bytes (equals the fabric
        ledger's ``total_bytes`` exactly — both count ``payload.nbytes``
        at the same call site)."""
        return int(self.counters.get("comm.bytes", 0))

    # -- sweep/worker rollups ---------------------------------------------

    def variant_spans(self) -> list[dict[str, Any]]:
        return self.spans("variant")

    def worker_stats(self) -> dict[str, WorkerStats]:
        """Per-process variant rollups, keyed by process label."""
        grouped: dict[str, list[dict[str, Any]]] = {}
        for span in self.variant_spans():
            grouped.setdefault(str(span.get("process", "?")), []).append(span)
        stats: dict[str, WorkerStats] = {}
        for process, spans in grouped.items():
            seconds = sum(float(s.get("seconds", 0.0)) for s in spans)
            updates = 0.0
            for span in spans:
                attrs = span.get("attrs") or {}
                updates += float(attrs.get("steps", 0)) * float(
                    attrs.get("cells", 0)
                )
            stats[process] = WorkerStats(
                process=process,
                variants=len(spans),
                seconds=seconds,
                updates=updates,
            )
        return stats

    def cache_hit_rate(self) -> float:
        """Fraction of observed variants satisfied from cache.

        Per-variant outcomes (``variant.cached`` vs ``variant.completed``),
        not raw storage probes; ``nan`` when no variant was observed."""
        counters = self.counters
        cached = counters.get("variant.cached", 0)
        completed = counters.get("variant.completed", 0)
        total = cached + completed
        if total <= 0:
            return float("nan")
        return cached / total

    def eta_seconds(self, remaining: int) -> float:
        """Projected seconds to finish ``remaining`` variants at the
        observed completion rate (``nan`` when the rate is unknowable:
        fewer than two completions, or a zero-length window)."""
        if remaining <= 0:
            return 0.0
        spans = self.variant_spans()
        if len(spans) < 2:
            return float("nan")
        times = sorted(float(s.get("ts", 0.0)) for s in spans)
        window = times[-1] - times[0]
        if window <= 0:
            return float("nan")
        # N spans mark N completions over the window between the first
        # and last — N-1 inter-completion intervals.
        rate = (len(spans) - 1) / window
        return remaining / rate

    # -- presentation ------------------------------------------------------

    def fleet_stats(self, remaining: int | None = None) -> FleetRollup | None:
        """Structured rollup of this run's fleet view (None when no
        events were recorded — nothing to report)."""
        if not self.events:
            return None
        hit_rate = self.cache_hit_rate()
        eta: float | None = None
        if remaining is not None:
            projected = self.eta_seconds(remaining)
            eta = None if math.isnan(projected) else projected
        counters = self.counters
        return FleetRollup(
            events=len(self.events),
            files=len(self.files),
            dropped=self.dropped,
            cache_hit_rate=None if math.isnan(hit_rate) else hit_rate,
            workers=tuple(
                stats for _, stats in sorted(self.worker_stats().items())
            ),
            eta_seconds=eta,
            remaining=remaining,
            failed=int(counters.get("variant.failed", 0)),
            quarantined=int(counters.get("variant.quarantined", 0)),
        )

    def summary_lines(self, remaining: int | None = None) -> list[str]:
        """The enriched ``sweep-status`` block (empty when no events)."""
        rollup = self.fleet_stats(remaining)
        return [] if rollup is None else rollup.summary_lines()


def tail_events(
    root: str | Path,
    name: str | None = None,
    etype: str | None = None,
    process: str | None = None,
    tail: int | None = None,
) -> tuple[list[str], "RunAggregate"]:
    """Formatted, filtered event lines for the ``repro events`` CLI."""
    aggregate = load_run(root)
    events: Sequence[dict[str, Any]] = filter_events(
        aggregate.events, name=name, etype=etype, process=process
    )
    if tail is not None and tail >= 0:
        events = events[-tail:] if tail else []
    return [format_event(event) for event in events], aggregate
