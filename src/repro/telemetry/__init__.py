"""Structured telemetry: spans, counters, JSONL event files, rollups.

Write side (:mod:`~repro.telemetry.recorder`): a :class:`Telemetry`
recorder with ``span``/``count``/``event`` primitives, one append-only
JSONL file per process, and a no-op :data:`NULL_TELEMETRY` default so
uninstrumented runs pay a single attribute lookup.  Read side
(:mod:`~repro.telemetry.aggregate`): merge per-process files into
per-phase/per-rank/per-worker rollups, MFLUP/s and ETA.

This package is importable from anywhere in the tree — its modules
import nothing from ``repro`` at module level (repro imports happen
lazily inside the read-side functions), so even :mod:`repro.core` can
depend on it without cycles.
"""

from .aggregate import (
    FleetRollup,
    RunAggregate,
    WorkerStats,
    filter_events,
    find_telemetry_dir,
    format_event,
    load_run,
    read_events_file,
    tail_events,
)
from .recorder import (
    EVENT_VERSION,
    NULL_TELEMETRY,
    TELEMETRY_DIR_ENV,
    TELEMETRY_DIRNAME,
    JsonlSink,
    MemorySink,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    process_recorder,
    set_telemetry,
)

__all__ = [
    "EVENT_VERSION",
    "FleetRollup",
    "JsonlSink",
    "MemorySink",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RunAggregate",
    "TELEMETRY_DIRNAME",
    "TELEMETRY_DIR_ENV",
    "Telemetry",
    "WorkerStats",
    "filter_events",
    "find_telemetry_dir",
    "format_event",
    "get_telemetry",
    "load_run",
    "process_recorder",
    "read_events_file",
    "set_telemetry",
    "tail_events",
]
