"""Structured telemetry recording: spans, counters, point events.

The paper's whole argument rests on *measured attribution* — HPM
counters assigning per-rank time to stream/collide/communication
(Fig. 9), MFLUP/s throughput (Eq. 4), comm-byte ledgers.  This module
is the repo's equivalent substrate: a :class:`Telemetry` recorder that
every layer (simulation step loops, halo exchange, result cache, sweep
workers, kernel auto-selection) emits structured events through, and
which persists them as append-only JSONL — one file per process, so
concurrent writers never interleave — under a per-run ``telemetry/``
directory.

Three event kinds, one line each:

``span``
    A named, measured duration (``seconds``) with free-form ``attrs``
    (rank, step, fingerprint, ...).  Emitted via :meth:`Telemetry.span`
    (context manager) or :meth:`Telemetry.record_span` (pre-measured).
``count``
    A monotonic counter increment (``value``); the recorder also keeps
    in-process running totals in :attr:`Telemetry.counters`.
``event``
    A point-in-time fact (kernel-auto verdict, worker heartbeat,
    corrupt cache entry) carrying only ``attrs``.

The default recorder everywhere is :data:`NULL_TELEMETRY`, a no-op
whose ``enabled`` attribute is ``False`` — instrumented hot loops guard
on that one attribute lookup and pay nothing else when telemetry is
off (tracemalloc- and timing-asserted in the tests, preserving the
planned kernels' zero-allocation guarantees).

This module deliberately imports nothing from the rest of the package:
:mod:`repro.core.simulation` and :mod:`repro.parallel` import it at
module level, so it must sit below them in the import graph.  The read
side (merging, rollups, MFLUP/s) lives in
:mod:`repro.telemetry.aggregate`.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = [
    "EVENT_VERSION",
    "JsonlSink",
    "MemorySink",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TELEMETRY_DIRNAME",
    "TELEMETRY_DIR_ENV",
    "Telemetry",
    "create_exclusive",
    "get_telemetry",
    "process_recorder",
    "set_telemetry",
]

#: Schema version stamped on every event line.
EVENT_VERSION = 1

#: Conventional subdirectory for a run's event files (e.g. under a
#: sweep cache dir: ``<cache-dir>/telemetry/*.jsonl``).
TELEMETRY_DIRNAME = "telemetry"

#: Environment variable enabling the ambient process recorder: when
#: set, :func:`get_telemetry` returns a recorder writing JSONL there
#: instead of the no-op default.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"


def _coerce(value: Any) -> Any:
    """JSON fallback for numpy scalars and other oddballs in attrs."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


def create_exclusive(path: str | Path):
    """Open ``path`` for writing, failing if it already exists.

    The same ``O_CREAT | O_EXCL`` idiom as the claim-file primitives in
    :mod:`repro.core.io` (which this module cannot import — it sits
    below :mod:`repro.core` in the import graph): of any number of
    concurrent creators exactly one wins, so two processes can never
    share — and interleave — one event file.  Line-buffered, so every
    event line is durable as soon as it is written.
    """
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
    return os.fdopen(fd, "w", buffering=1)


class MemorySink:
    """Event sink keeping every event as a dict in a list (test/reader
    friendly; what :class:`~repro.parallel.PhaseProfiler` reads)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def write(self, event: dict[str, Any]) -> None:
        self.events.append(event)

    def flush(self) -> None:  # pragma: no cover - nothing buffered
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Append-only JSONL event file, exclusively owned by this process."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = create_exclusive(self.path)

    @classmethod
    def create(
        cls, directory: str | Path, process: str | None = None
    ) -> "JsonlSink":
        """A fresh, uniquely named event file under ``directory``.

        The name embeds the process label (sanitised) plus a nonce, and
        creation is O_EXCL with retry, so concurrent workers — even
        with colliding labels — always land in distinct files.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        label = process or f"{socket.gethostname()}-{os.getpid()}"
        label = "".join(c if c.isalnum() or c in "._-" else "-" for c in label)
        for _ in range(8):
            path = directory / f"{label}-{uuid.uuid4().hex[:8]}.jsonl"
            try:
                return cls(path)
            except FileExistsError:  # pragma: no cover - nonce collision
                continue
        raise OSError(f"could not create a unique event file under {directory}")

    def write(self, event: dict[str, Any]) -> None:
        self._handle.write(json.dumps(event, default=_coerce) + "\n")

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class _Span:
    """Context manager measuring one span; attrs may be extended via
    :meth:`set` before exit (e.g. a step count known only afterwards)."""

    __slots__ = ("_telemetry", "name", "attrs", "seconds", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict) -> None:
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.seconds: float | None = None
        self._start = 0.0

    def set(self, **attrs: Any) -> "_Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        self._start = self._telemetry.clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds = self._telemetry.clock() - self._start
        self._telemetry.record_span(self.name, self.seconds, **self.attrs)


class _NullSpan:
    """Shared no-op span so the disabled path allocates nothing."""

    __slots__ = ()
    seconds = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled recorder: every operation is a no-op.

    ``enabled`` is ``False`` — instrumented code guards its measurement
    on that single attribute lookup, so a disabled run pays neither the
    clock reads nor any allocation.
    """

    enabled = False
    counters: dict[str, float] = {}

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, seconds: float, **attrs: Any) -> None:
        pass

    def count(self, name: str, value: float = 1, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def events(self) -> list[dict[str, Any]]:
        return []

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled recorder (safe to share: it has no state).
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Structured event recorder writing to one or more sinks.

    Parameters
    ----------
    *sinks:
        Event sinks (:class:`MemorySink`, :class:`JsonlSink`, or
        anything with ``write(dict)``/``flush()``/``close()``).  At
        least one is required.
    run:
        Identity of the run these events belong to (sweep key, case
        fingerprint, ...); recorded in the leading ``meta`` event so
        files from different runs sharing a directory stay separable.
    process:
        Label of the emitting process (worker id, rank label); defaults
        to ``host:pid``.
    clock / now:
        Monotonic duration clock and wall-clock (injectable for tests).
    """

    enabled = True

    def __init__(
        self,
        *sinks: Any,
        run: str | None = None,
        process: str | None = None,
        clock: Callable[[], float] = time.perf_counter,
        now: Callable[[], float] = time.time,
    ) -> None:
        if not sinks:
            raise ValueError("Telemetry needs at least one sink")
        self.sinks = list(sinks)
        self.run = run
        self.process = process or f"{socket.gethostname()}:{os.getpid()}"
        self.clock = clock
        self.now = now
        self.counters: dict[str, float] = {}
        self.closed = False
        # One lock per recorder: the lease heartbeat thread emits events
        # concurrently with the worker's main loop.
        self._lock = threading.Lock()
        self.event(
            "meta",
            _type="meta",
            run=run,
            host=socket.gethostname(),
            pid=os.getpid(),
        )

    # -- emission ----------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        with self._lock:
            if self.closed:
                return
            for sink in self.sinks:
                sink.write(record)

    def _base(self, etype: str, name: str) -> dict[str, Any]:
        return {
            "v": EVENT_VERSION,
            "ts": self.now(),
            "type": etype,
            "name": name,
            "process": self.process,
        }

    def span(self, name: str, **attrs: Any) -> _Span:
        """Measure the ``with`` body and record it as a span."""
        return _Span(self, name, attrs)

    def record_span(self, name: str, seconds: float, **attrs: Any) -> None:
        """Record an already-measured duration (the hot-loop form: the
        caller reads the clock itself, no context-manager allocation)."""
        record = self._base("span", name)
        record["seconds"] = float(seconds)
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def count(self, name: str, value: float = 1, **attrs: Any) -> None:
        """Increment a monotonic counter (negative increments rejected)."""
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be >= 0, got {value}")
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value
        record = self._base("count", name)
        record["value"] = value
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def event(self, name: str, _type: str = "event", **attrs: Any) -> None:
        """Record a point-in-time fact carrying only attributes."""
        record = self._base(_type, name)
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    # -- access ------------------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        """The in-memory event list, when a :class:`MemorySink` is
        attached (first one wins); empty otherwise."""
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        return []

    @property
    def path(self) -> Path | None:
        """The JSONL file path, when a :class:`JsonlSink` is attached."""
        for sink in self.sinks:
            if isinstance(sink, JsonlSink):
                return sink.path
        return None

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
            for sink in self.sinks:
                sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- constructors ------------------------------------------------------

    @classmethod
    def to_dir(
        cls,
        directory: str | Path,
        run: str | None = None,
        process: str | None = None,
    ) -> "Telemetry":
        """A recorder writing a fresh JSONL file under ``directory``."""
        return cls(JsonlSink.create(directory, process), run=run, process=process)

    @classmethod
    def in_memory(
        cls, run: str | None = None, process: str | None = None
    ) -> "Telemetry":
        """A recorder collecting events in memory only."""
        return cls(MemorySink(), run=run, process=process)


# -- process-level recorders -------------------------------------------------
#
# Sweep machinery shares one recorder (one event file) per process per
# telemetry directory: the worker loop, its cache probes, and
# _execute_variant all resolve the same instance through this registry.
# Keyed by pid as well, so pool children forked from an instrumented
# parent open their *own* file instead of inheriting the parent's file
# handle (two processes appending through one fd would interleave).

_PROCESS_RECORDERS: dict[tuple[int, str], Telemetry] = {}


def process_recorder(
    directory: str | Path,
    run: str | None = None,
    process: str | None = None,
) -> Telemetry:
    """This process's shared recorder for ``directory`` (created on
    first use; re-created after :meth:`Telemetry.close`)."""
    key = (os.getpid(), str(Path(directory)))
    recorder = _PROCESS_RECORDERS.get(key)
    if recorder is None or recorder.closed:
        recorder = Telemetry.to_dir(directory, run=run, process=process)
        _PROCESS_RECORDERS[key] = recorder
    return recorder


def iter_process_recorders() -> Iterator[Telemetry]:
    """Live recorders owned by *this* process (flush/close hooks)."""
    pid = os.getpid()
    for (owner, _), recorder in list(_PROCESS_RECORDERS.items()):
        if owner == pid and not recorder.closed:
            yield recorder


# -- the ambient recorder ----------------------------------------------------

_AMBIENT: Telemetry | None = None
_AMBIENT_PID: int | None = None


def get_telemetry() -> "Telemetry | NullTelemetry":
    """The ambient recorder drivers default to.

    :data:`NULL_TELEMETRY` unless one was installed via
    :func:`set_telemetry` or ``$REPRO_TELEMETRY_DIR`` names a directory
    to write under (one file per process, created lazily).  Never
    inherited across ``fork`` — a child gets its own file.
    """
    global _AMBIENT, _AMBIENT_PID
    if _AMBIENT is not None and _AMBIENT_PID == os.getpid() and not _AMBIENT.closed:
        return _AMBIENT
    directory = os.environ.get(TELEMETRY_DIR_ENV)
    if not directory:
        return NULL_TELEMETRY
    _AMBIENT = Telemetry.to_dir(directory)
    _AMBIENT_PID = os.getpid()
    return _AMBIENT


def set_telemetry(
    recorder: "Telemetry | NullTelemetry | None",
) -> "Telemetry | NullTelemetry | None":
    """Install (or with ``None``, clear) the ambient recorder; returns
    the previously installed one so callers can restore it."""
    global _AMBIENT, _AMBIENT_PID
    previous = _AMBIENT
    _AMBIENT = None if isinstance(recorder, NullTelemetry) else recorder
    _AMBIENT_PID = os.getpid() if _AMBIENT is not None else None
    return previous
