"""Discrete velocity models (lattices) and quadrature machinery.

Public surface:

* :func:`get_lattice` / :func:`available_lattices` — obtain validated
  velocity sets by name (``"D3Q19"``, ``"D3Q39"``, ...).
* :class:`VelocitySet` — the lattice abstraction (velocities, weights,
  sound speed, shells, isotropy checks, bytes-per-cell).
* Hermite helpers for equilibrium construction and verification.
"""

from .hermite import (
    double_factorial,
    gaussian_moment,
    gaussian_moment_1d,
    hermite_tensor,
    hermite_value,
    multi_indices,
)
from .registry import available_lattices, get_lattice, register_lattice
from .shells import expand_shells, shell_size, signed_permutations
from .stencil import ShellInfo, VelocitySet, build_velocity_set

__all__ = [
    "available_lattices",
    "build_velocity_set",
    "double_factorial",
    "expand_shells",
    "gaussian_moment",
    "gaussian_moment_1d",
    "get_lattice",
    "hermite_tensor",
    "hermite_value",
    "multi_indices",
    "register_lattice",
    "shell_size",
    "ShellInfo",
    "shell_size",
    "signed_permutations",
    "VelocitySet",
]
