"""The D3Q15 lattice (extra model, not in the paper's study).

Included for completeness of the lattice substrate: rest, six first
neighbors and eight body-diagonal neighbors.  Fourth-order isotropic like
D3Q19 but with poorer rotational quality; useful as a cheap baseline in
the example applications and for exercising the generic machinery on a
third lattice.
"""

from __future__ import annotations

from fractions import Fraction

from .stencil import VelocitySet, build_velocity_set

__all__ = ["make_d3q15"]


def make_d3q15() -> VelocitySet:
    """Build the standard D3Q15 velocity set (``c_s^2 = 1/3``)."""
    return build_velocity_set(
        name="D3Q15",
        cs2=Fraction(1, 3),
        shell_weights=[
            ((0, 0, 0), Fraction(2, 9)),
            ((1, 0, 0), Fraction(1, 9)),
            ((1, 1, 1), Fraction(1, 72)),
        ],
        equilibrium_order=2,
    )
