"""The D3Q39 lattice (paper Table I, right; Shan–Yuan–Chen 2006).

Thirty-nine velocities in six shells: rest, ``(±1,0,0)``, ``(±1,±1,±1)``,
``(±2,0,0)``, ``(±2,±2,0)`` and ``(±3,0,0)`` — i.e. first through fifth
nearest neighbors.  Sound speed ``c_s^2 = 2/3``.  Sixth-order isotropic,
the minimum required by the third-order Hermite equilibrium (Eq. 3) that
captures finite-Knudsen physics beyond Navier–Stokes.

Note on Table I of the paper: the ``(2,2,0)`` shell weight is printed as
``1/142``, an OCR/typesetting corruption of the correct Shan–Yuan–Chen
value **1/432** (only 1/432 normalises the weights and yields exact
sixth-order isotropy, both of which are unit-tested).
"""

from __future__ import annotations

from fractions import Fraction

from .stencil import VelocitySet, build_velocity_set

__all__ = ["make_d3q39"]


def make_d3q39() -> VelocitySet:
    """Build the D3Q39 sixth-order Gauss–Hermite velocity set.

    Weights: rest 1/12, (1,0,0) 1/12, (1,1,1) 1/27, (2,0,0) 2/135,
    (2,2,0) 1/432, (3,0,0) 1/1620; ``c_s^2 = 2/3``.
    """
    return build_velocity_set(
        name="D3Q39",
        cs2=Fraction(2, 3),
        shell_weights=[
            ((0, 0, 0), Fraction(1, 12)),
            ((1, 0, 0), Fraction(1, 12)),
            ((1, 1, 1), Fraction(1, 27)),
            ((2, 0, 0), Fraction(2, 135)),
            ((2, 2, 0), Fraction(1, 432)),
            ((3, 0, 0), Fraction(1, 1620)),
        ],
        equilibrium_order=3,
    )
