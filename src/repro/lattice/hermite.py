"""Hermite polynomial and Gauss–Hermite quadrature machinery.

The lattice Boltzmann equilibria used in the paper are truncated Hermite
expansions of a local Maxwellian (Shan, Yuan & Chen, J. Fluid Mech. 550,
2006).  A discrete velocity set :math:`\\{\\xi_i, w_i\\}` is a *degree-n
Gauss–Hermite quadrature* if it integrates all polynomials of total degree
up to *n* exactly against the Gaussian weight

.. math::  \\omega(\\xi) = (2\\pi c_s^2)^{-D/2} \\exp(-\\xi^2 / 2 c_s^2).

This module provides

* exact Gaussian moments :math:`\\langle \\xi^\\alpha \\rangle` for arbitrary
  multi-indices ``alpha`` (used to verify quadrature/isotropy order),
* tensor Hermite polynomials :math:`\\mathcal{H}^{(n)}(\\xi)` up to fourth
  order, evaluated on arrays of velocities (used by the equilibrium
  construction and by regularized collision),
* multi-index enumeration helpers.

Everything works for general dimension ``D`` although the paper only uses
``D = 3``.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "double_factorial",
    "gaussian_moment_1d",
    "gaussian_moment",
    "multi_indices",
    "hermite_tensor",
    "hermite_value",
]


def double_factorial(n: int) -> int:
    """Return ``n!! = n (n-2) (n-4) ...`` with ``(-1)!! = 0!! = 1``.

    Only defined for ``n >= -1``.
    """
    if n < -1:
        raise ValueError(f"double factorial undefined for n={n}")
    result = 1
    while n > 1:
        result *= n
        n -= 2
    return result


def gaussian_moment_1d(order: int, cs2: Fraction | float) -> Fraction | float:
    """Exact 1-D moment ``E[xi^order]`` of ``N(0, cs2)``.

    Odd moments vanish; even moments are ``(order-1)!! * cs2**(order/2)``.
    Passing a :class:`~fractions.Fraction` for ``cs2`` keeps the result
    exact, which the isotropy-order tests rely on.
    """
    if order < 0:
        raise ValueError("moment order must be non-negative")
    if order % 2 == 1:
        return cs2 * 0  # preserves Fraction/float type
    return double_factorial(order - 1) * cs2 ** (order // 2)


def gaussian_moment(alpha: Sequence[int], cs2: Fraction | float) -> Fraction | float:
    """Exact moment ``E[prod_a xi_a^alpha_a]`` of an isotropic Gaussian.

    Components of a zero-mean isotropic Gaussian are independent, so the
    moment factorises over dimensions.

    Parameters
    ----------
    alpha:
        Multi-index, one entry per spatial dimension.
    cs2:
        Variance of each component (the squared lattice sound speed).
    """
    result = cs2 ** 0  # 1 with the same numeric type as cs2
    for a in alpha:
        m = gaussian_moment_1d(a, cs2)
        if m == 0:
            return cs2 * 0
        result = result * m
    return result


def multi_indices(dim: int, total_degree: int) -> Iterator[tuple[int, ...]]:
    """Yield all multi-indices of exactly ``total_degree`` in ``dim`` vars.

    E.g. ``multi_indices(2, 2)`` yields ``(2, 0), (1, 1), (0, 2)``.
    """
    if dim == 1:
        yield (total_degree,)
        return
    for first in range(total_degree, -1, -1):
        for rest in multi_indices(dim - 1, total_degree - first):
            yield (first,) + rest


def _as_array(xi: np.ndarray) -> np.ndarray:
    xi = np.asarray(xi, dtype=np.float64)
    if xi.ndim == 1:
        xi = xi[None, :]
    return xi


def hermite_tensor(order: int, xi: np.ndarray, cs2: float) -> np.ndarray:
    """Tensor Hermite polynomial ``H^(order)`` evaluated at velocities ``xi``.

    Uses the convention of Shan–Yuan–Chen (dimensional Hermite polynomials
    with respect to the weight ``omega(xi)`` above):

    * ``H0 = 1``
    * ``H1_a = xi_a``
    * ``H2_ab = xi_a xi_b - cs2 * delta_ab``
    * ``H3_abc = xi_a xi_b xi_c - cs2 (xi_a d_bc + xi_b d_ac + xi_c d_ab)``
    * ``H4_abcd = xi_a xi_b xi_c xi_d - cs2 (xi xi delta, 6 terms)
      + cs2^2 (delta delta, 3 terms)``

    Parameters
    ----------
    order:
        Tensor order, 0 through 4.
    xi:
        Array of shape ``(Q, D)`` (or ``(D,)`` for a single velocity).
    cs2:
        Squared sound speed of the reference Gaussian.

    Returns
    -------
    numpy.ndarray
        Shape ``(Q,)`` for order 0, ``(Q, D)`` for 1, ``(Q, D, D)`` for 2,
        etc.
    """
    xi = _as_array(xi)
    q, d = xi.shape
    eye = np.eye(d)
    if order == 0:
        return np.ones(q)
    if order == 1:
        return xi.copy()
    if order == 2:
        return np.einsum("qa,qb->qab", xi, xi) - cs2 * eye[None, :, :]
    if order == 3:
        xxx = np.einsum("qa,qb,qc->qabc", xi, xi, xi)
        sym = (
            np.einsum("qa,bc->qabc", xi, eye)
            + np.einsum("qb,ac->qabc", xi, eye)
            + np.einsum("qc,ab->qabc", xi, eye)
        )
        return xxx - cs2 * sym
    if order == 4:
        xxxx = np.einsum("qa,qb,qc,qd->qabcd", xi, xi, xi, xi)
        xx = np.einsum("qa,qb->qab", xi, xi)
        sym2 = (
            np.einsum("qab,cd->qabcd", xx, eye)
            + np.einsum("qac,bd->qabcd", xx, eye)
            + np.einsum("qad,bc->qabcd", xx, eye)
            + np.einsum("qbc,ad->qabcd", xx, eye)
            + np.einsum("qbd,ac->qabcd", xx, eye)
            + np.einsum("qcd,ab->qabcd", xx, eye)
        )
        dd = (
            np.einsum("ab,cd->abcd", eye, eye)
            + np.einsum("ac,bd->abcd", eye, eye)
            + np.einsum("ad,bc->abcd", eye, eye)
        )
        return xxxx - cs2 * sym2 + cs2**2 * dd[None]
    raise NotImplementedError(f"Hermite tensors implemented up to order 4, got {order}")


def hermite_value(alpha: Iterable[int], xi: np.ndarray, cs2: float) -> np.ndarray:
    """Scalar component ``H^(n)_alpha`` of the tensor Hermite polynomial.

    ``alpha`` is a sequence of axis labels, e.g. ``(0, 0, 1)`` selects
    ``H3_xxy``.  Convenience wrapper over :func:`hermite_tensor` used in
    tests to verify orthogonality relations component by component.
    """
    alpha = tuple(alpha)
    tensor = hermite_tensor(len(alpha), xi, cs2)
    index = (slice(None),) + alpha
    return tensor[index]


def hermite_orthogonality_defect(
    weights: np.ndarray,
    velocities: np.ndarray,
    cs2: float,
    order_a: int,
    order_b: int,
) -> float:
    """Max deviation of the discrete Hermite orthogonality relation.

    For an exact quadrature of sufficient degree,

    .. math:: \\sum_i w_i H^{(m)}_\\alpha(\\xi_i) H^{(n)}_\\beta(\\xi_i)
              = \\delta_{mn} c_s^{2n} \\, \\delta^{(n)}_{\\alpha\\beta}

    where :math:`\\delta^{(n)}_{\\alpha\\beta}` is the sum of products of
    Kronecker deltas over permutations.  This returns the max absolute
    error over all components; a sanity diagnostic for the lattices.
    """
    d = velocities.shape[1]
    ha = hermite_tensor(order_a, velocities, cs2)
    hb = hermite_tensor(order_b, velocities, cs2)
    # lhs[alpha, beta] = sum_i w_i ha[i, alpha] hb[i, beta], with the
    # tensor components flattened to single indices.
    ha_flat = ha.reshape(len(weights), -1)
    hb_flat = hb.reshape(len(weights), -1)
    lhs = np.einsum("q,qa,qb->ab", weights, ha_flat, hb_flat)
    if order_a != order_b:
        return float(np.abs(lhs).max())
    # expected: cs2^n * sum over permutations of delta products
    eye = np.eye(d)
    n = order_a
    if n == 0:
        expected = np.ones((1, 1))
    else:
        shape = (d,) * n
        expected_full = np.zeros(shape + shape)
        grid = np.indices(shape + shape)
        for perm in itertools.permutations(range(n)):
            # delta_{alpha_k, beta_perm(k)} product
            prod = np.ones(shape + shape)
            for k in range(n):
                prod = prod * eye[grid[k], grid[n + perm[k]]]
            expected_full += prod
        expected = (cs2**n) * expected_full.reshape(d**n, d**n)
    return float(np.abs(lhs - expected).max())
