"""Lattice registry: name → cached :class:`VelocitySet`.

All consumers obtain lattices through :func:`get_lattice` so that the
(immutable) velocity sets are built once per process.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from .d3q15 import make_d3q15
from .d3q19 import make_d3q19
from .d3q27 import make_d3q27
from .d3q39 import make_d3q39
from .stencil import VelocitySet

__all__ = ["get_lattice", "available_lattices", "register_lattice"]

_FACTORIES: dict[str, Callable[[], VelocitySet]] = {
    "D3Q15": make_d3q15,
    "D3Q19": make_d3q19,
    "D3Q27": make_d3q27,
    "D3Q39": make_d3q39,
}


def register_lattice(name: str, factory: Callable[[], VelocitySet]) -> None:
    """Register a custom lattice factory under ``name`` (case-insensitive).

    Raises :class:`ValueError` if the name is already taken.
    """
    key = name.upper()
    if key in _FACTORIES:
        raise ValueError(f"lattice {name!r} already registered")
    _FACTORIES[key] = factory
    _build.cache_clear()


def available_lattices() -> tuple[str, ...]:
    """Names of all registered lattices, sorted."""
    return tuple(sorted(_FACTORIES))


@lru_cache(maxsize=None)
def _build(key: str) -> VelocitySet:
    return _FACTORIES[key]()


def get_lattice(name: str) -> VelocitySet:
    """Return the (cached, validated) velocity set called ``name``.

    Lookup is case-insensitive; all spellings share one cached
    instance.  Raises :class:`KeyError` with the list of known lattices
    on a miss.
    """
    key = name.upper()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown lattice {name!r}; available: {', '.join(available_lattices())}"
        )
    return _build(key)
