"""Velocity-set abstraction used by every other subsystem.

A :class:`VelocitySet` bundles the discrete velocities, quadrature weights
and sound speed of a lattice (D3Q19, D3Q39, ...) together with derived
quantities the solver and the performance model need:

* the *opposite* index map (for bounce-back boundaries),
* per-shell metadata reproducing Table I of the paper,
* the maximum per-axis displacement ``k = max |c_x|`` which fixes the
  fundamental halo thickness for distributed streaming,
* exact isotropy-order verification against Gaussian moments,
* the bytes-per-cell figure (three sweeps of Q doubles) used by the
  roofline model (Table II).
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Sequence

import numpy as np

from .hermite import gaussian_moment, multi_indices
from .shells import expand_shells, signed_permutations

__all__ = ["ShellInfo", "VelocitySet", "build_velocity_set"]

#: Bytes per double-precision value; all distributions are float64.
BYTES_PER_VALUE = 8

#: Loads/stores per velocity per lattice update in the paper's kernel:
#: "two load operations and one store operation for every velocity mode".
SWEEPS_PER_UPDATE = 3


@dataclasses.dataclass(frozen=True)
class ShellInfo:
    """One row of the paper's Table I for a single shell."""

    base: tuple[int, ...]
    weight: Fraction
    neighbor_order: int
    distance: float
    size: int

    def as_row(self) -> tuple[str, str, int, str]:
        """Render as (velocity, weight, order, distance) strings."""
        dist2 = sum(c * c for c in self.base)
        root = int(round(dist2**0.5))
        dist_str = str(root) if root * root == dist2 else f"sqrt({dist2})"
        return (str(self.base), str(self.weight), self.neighbor_order, dist_str)


@dataclasses.dataclass(frozen=True)
class VelocitySet:
    """An immutable discrete velocity model.

    Attributes
    ----------
    name:
        Conventional name, e.g. ``"D3Q19"``.
    dim:
        Spatial dimension ``D``.
    cs2:
        Exact squared lattice sound speed (a :class:`fractions.Fraction`).
    velocities:
        Integer array of shape ``(Q, D)``.
    weights:
        Float array of shape ``(Q,)``; exact values kept in ``shells``.
    shells:
        Per-shell metadata in Table I order.
    shell_index:
        For each velocity, the index of its shell.
    equilibrium_order:
        Hermite truncation order this lattice supports (2 for D3Q19,
        3 for D3Q39) — i.e. half the guaranteed isotropy order.
    """

    name: str
    dim: int
    cs2: Fraction
    velocities: np.ndarray
    weights: np.ndarray
    shells: tuple[ShellInfo, ...]
    shell_index: np.ndarray
    equilibrium_order: int

    # -- basic derived quantities -------------------------------------

    @property
    def q(self) -> int:
        """Number of discrete velocities."""
        return len(self.weights)

    # -- dtype-cast tables ---------------------------------------------
    #
    # The hot loops (moments, equilibria, forcing) need the integer
    # velocity table as floats on every call; re-casting a (Q, D) array
    # per call is a small but entirely avoidable allocation.  The casts
    # are cached per dtype on the (frozen) instance — lattices are
    # process-wide singletons via the registry, so each cast happens
    # once per process.

    def _cast_cache(self) -> dict:
        cache = self.__dict__.get("_casts")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_casts", cache)
        return cache

    def velocities_as(self, dtype: "np.dtype | type") -> np.ndarray:
        """The ``(Q, D)`` velocity table cast to ``dtype`` (cached, read-only)."""
        dtype = np.dtype(dtype)
        cache = self._cast_cache()
        key = ("velocities", dtype)
        if key not in cache:
            cast = np.ascontiguousarray(self.velocities, dtype=dtype)
            cast.setflags(write=False)
            cache[key] = cast
        return cache[key]

    def weights_as(self, dtype: "np.dtype | type") -> np.ndarray:
        """The ``(Q,)`` weight vector cast to ``dtype`` (cached, read-only)."""
        dtype = np.dtype(dtype)
        cache = self._cast_cache()
        key = ("weights", dtype)
        if key not in cache:
            cast = np.ascontiguousarray(self.weights, dtype=dtype)
            cast.setflags(write=False)
            cache[key] = cast
        return cache[key]

    @property
    def cs2_float(self) -> float:
        return float(self.cs2)

    @property
    def rest_index(self) -> int:
        """Index of the zero velocity."""
        idx = np.flatnonzero((self.velocities == 0).all(axis=1))
        if len(idx) != 1:
            raise ValueError(f"{self.name} has {len(idx)} rest velocities")
        return int(idx[0])

    @property
    def max_displacement(self) -> int:
        """Maximum per-axis displacement ``k = max_i,a |c_ia|``.

        This is the number of lattice planes a population can cross in one
        time step and therefore the fundamental ghost-cell thickness for
        slab-decomposed streaming (k = 1 for D3Q19, k = 3 for D3Q39; the
        paper's prose says 2 for D3Q39 but its own Table I includes
        (3,0,0) — see DESIGN.md).
        """
        return int(np.abs(self.velocities).max())

    @property
    def opposite(self) -> np.ndarray:
        """Index map ``o`` with ``velocities[o[i]] == -velocities[i]``."""
        lookup = {tuple(v): i for i, v in enumerate(self.velocities.tolist())}
        return np.array(
            [lookup[tuple(-v for v in vel)] for vel in self.velocities.tolist()],
            dtype=np.int64,
        )

    # -- performance-model quantities (paper §III-B) -------------------

    @property
    def bytes_per_cell(self) -> int:
        """Main-memory traffic per lattice update (Table II input).

        Two loads plus one store of all Q double-precision populations:
        ``3 * Q * 8`` bytes — 456 for D3Q19, 936 for D3Q39.
        """
        return SWEEPS_PER_UPDATE * self.q * BYTES_PER_VALUE

    # -- exactness checks ----------------------------------------------

    def moment(self, alpha: Sequence[int]) -> float:
        """Discrete moment ``sum_i w_i prod_a c_ia^alpha_a``."""
        value = self.weights.copy()
        for axis, power in enumerate(alpha):
            if power:
                value = value * self.velocities[:, axis].astype(np.float64) ** power
        return float(value.sum())

    def moment_exact(self, alpha: Sequence[int]) -> Fraction:
        """Discrete moment computed in exact rational arithmetic."""
        total = Fraction(0)
        for shell, base in zip(self.shells, [s.base for s in self.shells]):
            for vec in signed_permutations(base):
                term = shell.weight
                for axis, power in enumerate(alpha):
                    term *= Fraction(vec[axis]) ** power
                total += term
        return total

    def moment_defect(self, order: int, exact: bool = False) -> float:
        """Max deviation of all degree-``order`` moments from Gaussian.

        Returns ``max_alpha |sum_i w_i c_i^alpha - <xi^alpha>_Gauss|`` over
        all multi-indices of total degree exactly ``order``.
        """
        worst = 0.0
        for alpha in multi_indices(self.dim, order):
            if exact:
                got = self.moment_exact(alpha)
                want = gaussian_moment(alpha, self.cs2)
                worst = max(worst, abs(float(got - want)))
            else:
                got = self.moment(alpha)
                want = float(gaussian_moment(alpha, Fraction(self.cs2)))
                worst = max(worst, abs(got - want))
        return worst

    def isotropy_order(self, max_check: int = 10, tol: float = 1e-12) -> int:
        """Largest n with all moments of degree <= n matching the Gaussian.

        The paper's premise: D3Q19 is 4th-order isotropic (enough for the
        second-order Navier-Stokes equilibrium) while D3Q39 is 6th-order
        isotropic (required by the third-order expansion, Eq. 3).
        """
        order = 0
        for n in range(1, max_check + 1):
            if self.moment_defect(n) > tol:
                break
            order = n
        return order

    def validate(self) -> None:
        """Raise :class:`ValueError` if the lattice is malformed.

        Checks weight normalisation, weight positivity, presence of the
        rest velocity, parity (closed under negation), and that the second
        moment equals ``cs2`` (the defining property of the sound speed).
        """
        if abs(self.weights.sum() - 1.0) > 1e-12:
            raise ValueError(f"{self.name}: weights sum to {self.weights.sum()!r}")
        if (self.weights <= 0).any():
            raise ValueError(f"{self.name}: non-positive weight")
        _ = self.rest_index
        _ = self.opposite  # raises KeyError -> wrapped below if not closed
        second = self.moment((2,) + (0,) * (self.dim - 1))
        if abs(second - self.cs2_float) > 1e-12:
            raise ValueError(
                f"{self.name}: second moment {second} != cs2 {self.cs2_float}"
            )

    # -- presentation ---------------------------------------------------

    def table_rows(self) -> list[tuple[str, str, int, str]]:
        """Rows reproducing this lattice's half of the paper's Table I."""
        return [s.as_row() for s in self.shells]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VelocitySet({self.name}, Q={self.q}, cs2={self.cs2}, "
            f"k={self.max_displacement})"
        )


def build_velocity_set(
    name: str,
    cs2: Fraction,
    shell_weights: Sequence[tuple[Sequence[int], Fraction]],
    equilibrium_order: int,
) -> VelocitySet:
    """Construct and validate a :class:`VelocitySet` from shell data.

    Parameters
    ----------
    name:
        Lattice name.
    cs2:
        Exact squared sound speed.
    shell_weights:
        Sequence of ``(base_vector, weight)`` pairs, one per shell, in the
        order of the paper's Table I.
    equilibrium_order:
        Hermite truncation order the lattice is built for.
    """
    bases = [tuple(b) for b, _ in shell_weights]
    velocities, shell_index = expand_shells(bases)
    weights = np.empty(len(velocities), dtype=np.float64)
    shells: list[ShellInfo] = []
    # Neighbor order: shells sorted by distance, rest = 0, then 1, 2, ...
    distances = [sum(c * c for c in b) ** 0.5 for b in bases]
    order_of = {
        si: rank
        for rank, si in enumerate(sorted(range(len(bases)), key=lambda i: distances[i]))
    }
    for si, ((base, weight), dist) in enumerate(zip(shell_weights, distances)):
        size = int((shell_index == si).sum())
        shells.append(
            ShellInfo(
                base=tuple(base),
                weight=weight,
                neighbor_order=order_of[si],
                distance=dist,
                size=size,
            )
        )
        weights[shell_index == si] = float(weight)
    vs = VelocitySet(
        name=name,
        dim=velocities.shape[1],
        cs2=cs2,
        velocities=velocities,
        weights=weights,
        shells=tuple(shells),
        shell_index=shell_index,
        equilibrium_order=equilibrium_order,
    )
    vs.velocities.setflags(write=False)
    vs.weights.setflags(write=False)
    vs.validate()
    return vs
