"""The D3Q19 lattice (paper Table I, left).

Nineteen velocities: the rest particle, the six first neighbors
``(±1,0,0)`` and the twelve second neighbors ``(±1,±1,0)``.  Sound speed
``c_s^2 = 1/3``.  Fourth-order isotropic — sufficient for the
second-order Hermite equilibrium (Eq. 2) that recovers Navier–Stokes,
insufficient for the third-order expansion (Eq. 3).
"""

from __future__ import annotations

from fractions import Fraction

from .stencil import VelocitySet, build_velocity_set

__all__ = ["make_d3q19"]


def make_d3q19() -> VelocitySet:
    """Build the standard D3Q19 velocity set.

    Weights (Table I): rest 1/3, first neighbors 1/18, second neighbors
    1/36; ``c_s^2 = 1/3``.
    """
    return build_velocity_set(
        name="D3Q19",
        cs2=Fraction(1, 3),
        shell_weights=[
            ((0, 0, 0), Fraction(1, 3)),
            ((1, 0, 0), Fraction(1, 18)),
            ((1, 1, 0), Fraction(1, 36)),
        ],
        equilibrium_order=2,
    )
