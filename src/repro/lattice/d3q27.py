"""The D3Q27 lattice (the "up to 27 neighbors" model of the paper's intro).

Full first-neighborhood cube: rest, face, edge and corner neighbors.
Fourth-order isotropic with ``c_s^2 = 1/3``.  The paper's introduction
cites 27-speed models as the prior state of the art that D3Q39 goes
beyond; we include it so benchmarks can show the cost progression
Q15 → Q19 → Q27 → Q39.
"""

from __future__ import annotations

from fractions import Fraction

from .stencil import VelocitySet, build_velocity_set

__all__ = ["make_d3q27"]


def make_d3q27() -> VelocitySet:
    """Build the standard D3Q27 velocity set (``c_s^2 = 1/3``)."""
    return build_velocity_set(
        name="D3Q27",
        cs2=Fraction(1, 3),
        shell_weights=[
            ((0, 0, 0), Fraction(8, 27)),
            ((1, 0, 0), Fraction(2, 27)),
            ((1, 1, 0), Fraction(1, 54)),
            ((1, 1, 1), Fraction(1, 216)),
        ],
        equilibrium_order=2,
    )
