"""Machine models: Blue Gene specs, torus network, memory, cache, roofline."""

from .bluegene import BLUE_GENE_P, BLUE_GENE_Q, available_machines, get_machine
from .cache import BGP_CACHE, BGQ_CACHE, CacheHierarchy, CacheLevel
from .memory import MemoryModel
from .roofline import (
    FLOPS_PER_CELL,
    Limiter,
    RooflinePoint,
    flops_per_cell,
    hardware_efficiency_bound,
    roofline,
    torus_lower_bound,
)
from .spec import MachineSpec
from .torus import TorusTopology, torus_shape_for

__all__ = [
    "available_machines",
    "BGP_CACHE",
    "BGQ_CACHE",
    "BLUE_GENE_P",
    "BLUE_GENE_Q",
    "CacheHierarchy",
    "CacheLevel",
    "flops_per_cell",
    "FLOPS_PER_CELL",
    "get_machine",
    "hardware_efficiency_bound",
    "Limiter",
    "MachineSpec",
    "MemoryModel",
    "roofline",
    "RooflinePoint",
    "torus_lower_bound",
    "TorusTopology",
    "torus_shape_for",
]
