"""IBM Blue Gene/P and Blue Gene/Q specifications (paper §III-A).

Provenance of every number:

Blue Gene/P [15]:
  * 32-bit PowerPC 450 @ 850 MHz, 4 cores/node, 1 thread/core;
  * 13.6 GFlop/s peak/node = 0.85 GHz × 4 cores × 4 flops/cycle;
  * 13.6 GB/s main-store bandwidth (Table II);
  * 2 GB/node;
  * 3-D torus, 6 bidirectional links/node, 425 MB/s hardware
    (375 MB/s software) per unidirectional link.  All 12 unidirectional
    links: 5.1 GB/s, which reproduces the paper's §III-C torus-bound
    lower bounds (11.1 MFlup/s D3Q19, 5.4 MFlup/s D3Q39).

Blue Gene/Q [16], [17]:
  * 64-bit PowerPC A2 @ 1.6 GHz, 16 cores/node, 4 threads/core;
  * 204.8 GFlop/s peak/node = 1.6 GHz × 16 × 8 flops/cycle (QPX: 4-wide
    FMA); the paper quotes the 204.8 figure directly;
  * 43 GB/s main-store bandwidth (Table II);
  * 16 GB/node;
  * 5-D torus, 2 GB/s per link direction.  The paper's §III-C lower
    bounds (70 MFlup/s D3Q19, 34 MFlup/s D3Q39) imply an effective
    aggregate of ≈32 GB/s = 16 unidirectional links × 2 GB/s — i.e. 8 of
    the 10 torus link pairs counted as usable for halo traffic; we adopt
    that effective count so the analytic section reproduces exactly.
"""

from __future__ import annotations

from .spec import MachineSpec

__all__ = ["BLUE_GENE_P", "BLUE_GENE_Q", "get_machine", "available_machines"]

BLUE_GENE_P = MachineSpec(
    name="Blue Gene/P",
    clock_ghz=0.85,
    cores_per_node=4,
    threads_per_core=1,
    flops_per_cycle_per_core=4,
    memory_bandwidth_gbs=13.6,
    memory_per_node_gb=2.0,
    torus_links=12,
    torus_link_bandwidth_gbs=0.425,
    torus_link_bandwidth_software_gbs=0.375,
    torus_dims=3,
    simd_width=2,
)

BLUE_GENE_Q = MachineSpec(
    name="Blue Gene/Q",
    clock_ghz=1.6,
    cores_per_node=16,
    threads_per_core=4,
    flops_per_cycle_per_core=8,
    memory_bandwidth_gbs=43.0,
    memory_per_node_gb=16.0,
    torus_links=16,
    torus_link_bandwidth_gbs=2.0,
    torus_link_bandwidth_software_gbs=1.8,
    torus_dims=5,
    simd_width=4,
)

_MACHINES = {"BG/P": BLUE_GENE_P, "BG/Q": BLUE_GENE_Q}


def available_machines() -> tuple[str, ...]:
    """Short names of the built-in machine specs."""
    return tuple(sorted(_MACHINES))


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by short name ("BG/P", "BG/Q") or full name."""
    key = name.upper().replace("BLUE GENE", "BG").replace(" ", "")
    for short, spec in _MACHINES.items():
        if key == short.replace(" ", "") or name == spec.name:
            return spec
    raise KeyError(f"unknown machine {name!r}; available: {available_machines()}")
