"""Cache-hierarchy effectiveness model (paper §V-B).

The paper's data-handling (DH) optimization is justified with IBM HPM
counter data: after loop reordering "there was a .4% increase in L1
d-cache and L1P buffer hits and a 1.2% increase in L2 cache hits while
DDR dropped to .01%".  This module turns such hit-rate profiles into an
*effective bandwidth multiplier* — the mechanism by which DH appears in
the cost model — using a standard weighted-latency/bandwidth blend.

Bandwidth figures per level are representative of the two architectures
(L1/L2 on-chip bandwidths from the BG/Q chip paper [16]; BG/P values
scaled from clock ratios).  The model's purpose is the *relative* change
between hit profiles, not absolute accuracy.
"""

from __future__ import annotations

import dataclasses

__all__ = ["CacheLevel", "CacheHierarchy", "BGP_CACHE", "BGQ_CACHE"]


@dataclasses.dataclass(frozen=True)
class CacheLevel:
    """One level of the memory hierarchy."""

    name: str
    bandwidth_gbs: float


@dataclasses.dataclass(frozen=True)
class CacheHierarchy:
    """An ordered hierarchy (fastest first; last level = main memory)."""

    levels: tuple[CacheLevel, ...]

    def effective_bandwidth_gbs(self, hit_fractions: tuple[float, ...]) -> float:
        """Harmonic-mean bandwidth for a given per-level hit profile.

        ``hit_fractions`` gives the fraction of accesses served by each
        level (must sum to 1).  Time per byte adds across levels
        weighted by how often each is the server, so effective bandwidth
        is the weighted harmonic mean.
        """
        if len(hit_fractions) != len(self.levels):
            raise ValueError(
                f"need {len(self.levels)} hit fractions, got {len(hit_fractions)}"
            )
        total = sum(hit_fractions)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"hit fractions must sum to 1, got {total}")
        inv = sum(
            frac / level.bandwidth_gbs
            for frac, level in zip(hit_fractions, self.levels)
            if frac > 0
        )
        return 1.0 / inv

    def speedup(
        self, before: tuple[float, ...], after: tuple[float, ...]
    ) -> float:
        """Effective-bandwidth ratio between two hit profiles."""
        return self.effective_bandwidth_gbs(after) / self.effective_bandwidth_gbs(
            before
        )


#: BG/P: L1, L2/prefetch stream, DDR2.
BGP_CACHE = CacheHierarchy(
    levels=(
        CacheLevel("L1", 27.2),
        CacheLevel("L2-stream", 13.6),
        CacheLevel("DDR", 13.6),
    )
)

#: BG/Q: L1, L1P prefetch buffer, shared L2, DDR3 (bandwidths per node).
BGQ_CACHE = CacheHierarchy(
    levels=(
        CacheLevel("L1", 820.0),
        CacheLevel("L1P", 410.0),
        CacheLevel("L2", 185.0),
        CacheLevel("DDR", 43.0),
    )
)
