"""Torus interconnect model.

Blue Gene machines use n-dimensional torus networks (3-D on BG/P, 5-D on
BG/Q) for point-to-point communication.  :class:`TorusTopology` builds
the torus as a :mod:`networkx` graph and answers the questions the
performance analysis needs: neighbor sets, hop distances,
dimension-ordered routes, bisection bandwidth, and transfer-time
estimates for halo messages.

For the paper's 1-D domain decomposition, consecutive MPI ranks map to
neighboring torus coordinates (the default ABCDET-style mapping), so
halo exchanges are single-hop — the assumption behind the §III-C torus
bound, which :meth:`TorusTopology.halo_transfer_time` implements.
"""

from __future__ import annotations

import dataclasses
import itertools
from functools import cached_property

import networkx as nx
import numpy as np

from .spec import MachineSpec

__all__ = ["TorusTopology", "torus_shape_for"]


def torus_shape_for(num_nodes: int, dims: int) -> tuple[int, ...]:
    """A near-cubic ``dims``-dimensional torus shape with >= num_nodes nodes.

    Factorises greedily: each dimension gets the smallest extent >= the
    ``dims``-th root of the remaining node count.  Used to lay out the
    paper's 128-node / 2048-processor partitions.
    """
    if num_nodes < 1 or dims < 1:
        raise ValueError("num_nodes and dims must be positive")
    shape = []
    remaining = num_nodes
    for d in range(dims, 0, -1):
        extent = max(1, round(remaining ** (1.0 / d)))
        while extent * (extent ** (d - 1)) < remaining and extent**d < remaining:
            extent += 1
        shape.append(extent)
        remaining = max(1, -(-remaining // extent))
    return tuple(shape)


@dataclasses.dataclass
class TorusTopology:
    """An n-dimensional periodic mesh of compute nodes.

    Parameters
    ----------
    shape:
        Nodes per torus dimension, e.g. ``(4, 4, 8)``.
    machine:
        The node/link specification.
    """

    shape: tuple[int, ...]
    machine: MachineSpec

    def __post_init__(self) -> None:
        self.shape = tuple(int(s) for s in self.shape)
        if any(s < 1 for s in self.shape):
            raise ValueError(f"bad torus shape {self.shape}")

    @property
    def num_nodes(self) -> int:
        return int(np.prod(self.shape))

    @cached_property
    def graph(self) -> nx.Graph:
        """The torus as an undirected graph (wrap links included).

        ``networkx.grid_graph`` interprets ``dim`` in reverse order
        relative to the node tuples it produces, so passing the reversed
        shape yields node tuples in our coordinate order.
        """
        return nx.grid_graph(dim=list(reversed(self.shape)), periodic=True)

    def coordinates(self) -> list[tuple[int, ...]]:
        """All node coordinates in lexicographic order."""
        return list(itertools.product(*(range(s) for s in self.shape)))

    def rank_to_coord(self, rank: int) -> tuple[int, ...]:
        """Default (lexicographic) rank → torus coordinate mapping."""
        if not 0 <= rank < self.num_nodes:
            raise ValueError(f"rank {rank} out of range")
        coord = []
        for extent in reversed(self.shape):
            coord.append(rank % extent)
            rank //= extent
        return tuple(reversed(coord))

    def hop_distance(self, a: tuple[int, ...], b: tuple[int, ...]) -> int:
        """Minimal hop count between two coordinates (per-dim wrap)."""
        hops = 0
        for x, y, extent in zip(a, b, self.shape):
            d = abs(x - y)
            hops += min(d, extent - d)
        return hops

    def neighbors(self, coord: tuple[int, ...]) -> list[tuple[int, ...]]:
        """Directly linked coordinates."""
        return list(self.graph.neighbors(coord))

    def ranks_are_adjacent(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks are one hop apart under the default mapping."""
        return (
            self.hop_distance(self.rank_to_coord(rank_a), self.rank_to_coord(rank_b))
            == 1
        )

    @property
    def bisection_bandwidth(self) -> float:
        """Bytes/s across the smallest balanced cut (hardware numbers).

        For a torus, cutting the longest dimension severs
        ``2 * (num_nodes / longest_extent)`` unidirectional link pairs.
        """
        longest = max(self.shape)
        links_cut = 2 * (self.num_nodes // longest)
        return links_cut * self.machine.torus_link_bandwidth_gbs * 1e9

    # -- timing ------------------------------------------------------------------

    def link_transfer_time(
        self, nbytes: int, software: bool = True, hops: int = 1
    ) -> float:
        """Seconds to move ``nbytes`` over ``hops`` store-and-forward links."""
        bw = (
            self.machine.torus_link_bandwidth_software_gbs
            if software
            else self.machine.torus_link_bandwidth_gbs
        ) * 1e9
        return hops * nbytes / bw

    def halo_transfer_time(self, nbytes_per_side: int, software: bool = True) -> float:
        """Seconds for one rank's two-sided halo exchange.

        Both directions of a bidirectional link pair move concurrently,
        so the exchange time is one side's payload over one link.
        """
        return self.link_transfer_time(nbytes_per_side, software=software, hops=1)
