"""Machine specifications (paper §III-A).

A :class:`MachineSpec` carries the per-node hardware numbers the paper's
performance model consumes: peak flop rate, main-store bandwidth, memory
capacity, threading capability and torus-link characteristics.  All
numbers come from the published system descriptions the paper cites
([15] Blue Gene/P overview, [16] BG/Q compute chip, [17] BG/Q network).
"""

from __future__ import annotations

import dataclasses

__all__ = ["MachineSpec"]

GIGA = 1.0e9


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Per-node description of a target platform.

    Attributes
    ----------
    name:
        Platform name ("Blue Gene/P", "Blue Gene/Q").
    clock_ghz:
        Core clock in GHz.
    cores_per_node:
        Physical cores per node.
    threads_per_core:
        Hardware threads per core (1 on BG/P, 4 on BG/Q).
    flops_per_cycle_per_core:
        Double-precision flops per cycle per core; both systems issue
        "a maximum of four double precision floating-point operations
        (two multiply and two add) per cycle" (§III-B).
    memory_bandwidth_gbs:
        Main-store bandwidth ``Bm`` in GB/s (13.6 / 43).
    memory_per_node_gb:
        DRAM per node in GB (2 / 16).
    torus_links:
        Number of torus links per node counted as usable, *per
        direction* pairs included (12 for BG/P's 6 bidirectional 3-D
        torus links; 16 for BG/Q — the effective usable links backed out
        of the paper's §III-C lower bounds, see bluegene.py).
    torus_link_bandwidth_gbs:
        Hardware bandwidth of one unidirectional link in GB/s.
    torus_link_bandwidth_software_gbs:
        Achievable (software) bandwidth of one link in GB/s.
    torus_dims:
        Torus dimensionality (3 for BG/P, 5 for BG/Q).
    simd_width:
        Double-precision SIMD lanes (2 = double hummer, 4 = QPX).
    """

    name: str
    clock_ghz: float
    cores_per_node: int
    threads_per_core: int
    flops_per_cycle_per_core: int
    memory_bandwidth_gbs: float
    memory_per_node_gb: float
    torus_links: int
    torus_link_bandwidth_gbs: float
    torus_link_bandwidth_software_gbs: float
    torus_dims: int
    simd_width: int

    # -- derived ---------------------------------------------------------

    @property
    def peak_gflops(self) -> float:
        """Peak node flop rate: clock × cores × flops/cycle (GFlop/s)."""
        return self.clock_ghz * self.cores_per_node * self.flops_per_cycle_per_core

    @property
    def peak_flops(self) -> float:
        """Peak node flop rate in flop/s."""
        return self.peak_gflops * GIGA

    @property
    def memory_bandwidth(self) -> float:
        """Main-store bandwidth in bytes/s."""
        return self.memory_bandwidth_gbs * GIGA

    @property
    def memory_per_node(self) -> float:
        """Node memory in bytes."""
        return self.memory_per_node_gb * GIGA

    @property
    def max_threads_per_node(self) -> int:
        """Hardware thread slots per node."""
        return self.cores_per_node * self.threads_per_core

    @property
    def torus_aggregate_bandwidth(self) -> float:
        """All usable torus links combined, bytes/s (hardware numbers)."""
        return self.torus_links * self.torus_link_bandwidth_gbs * GIGA

    @property
    def machine_balance_bytes_per_flop(self) -> float:
        """``Bm / Ppeak``: the bandwidth/compute balance the paper's
        conclusion worries about (smaller = more bandwidth-starved)."""
        return self.memory_bandwidth / self.peak_flops
