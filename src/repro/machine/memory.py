"""Node-memory footprint model.

Reproduces the memory constraints the paper keeps running into:

* Fig. 10a: "For the 133,000 case, the individual nodes ran out of
  memory due to the addition of the fourth ghost cell and could not
  complete the simulation."
* §VI-A: D3Q39 deep halos on BG/P "had no performance gain" partly
  because system sizes fitting in 2 GB were too small; ratios beyond
  66 (D3Q19) / 800 (D3Q39) per node were untestable on either machine.

The footprint counts the two population arrays (``distr`` and
``distr_adv``) over local + ghost planes, matching the implementation in
:mod:`repro.parallel.distributed`.
"""

from __future__ import annotations

import dataclasses

from ..errors import OutOfMemoryModelError
from ..lattice import VelocitySet

__all__ = ["MemoryModel"]

BYTES_PER_VALUE = 8

#: Fraction of node memory available to population arrays (the rest goes
#: to the OS image, MPI buffers, and application scaffolding).
USABLE_FRACTION = 0.85

#: Population copies held resident (distr + distr_adv).
ARRAY_COPIES = 2


@dataclasses.dataclass(frozen=True)
class MemoryModel:
    """Memory feasibility checks for a slab-decomposed run."""

    lattice: VelocitySet
    memory_per_node_bytes: float

    def slab_bytes(
        self, local_nx: int, ny: int, nz: int, ghost_depth: int
    ) -> int:
        """Bytes of population storage for one rank's padded slab."""
        width = ghost_depth * self.lattice.max_displacement
        padded_nx = local_nx + 2 * width
        cells = padded_nx * ny * nz
        return ARRAY_COPIES * self.lattice.q * BYTES_PER_VALUE * cells

    def node_bytes(
        self,
        local_nx: int,
        ny: int,
        nz: int,
        ghost_depth: int,
        tasks_per_node: int,
    ) -> int:
        """Bytes used on one node hosting ``tasks_per_node`` ranks."""
        return tasks_per_node * self.slab_bytes(local_nx, ny, nz, ghost_depth)

    def fits(
        self,
        local_nx: int,
        ny: int,
        nz: int,
        ghost_depth: int,
        tasks_per_node: int = 1,
    ) -> bool:
        """Whether the configuration fits in usable node memory."""
        budget = USABLE_FRACTION * self.memory_per_node_bytes
        return self.node_bytes(local_nx, ny, nz, ghost_depth, tasks_per_node) <= budget

    def require_fits(
        self,
        local_nx: int,
        ny: int,
        nz: int,
        ghost_depth: int,
        tasks_per_node: int = 1,
    ) -> None:
        """Raise :class:`OutOfMemoryModelError` when the config cannot run."""
        if not self.fits(local_nx, ny, nz, ghost_depth, tasks_per_node):
            need = self.node_bytes(local_nx, ny, nz, ghost_depth, tasks_per_node)
            raise OutOfMemoryModelError(
                f"{self.lattice.name} slab {local_nx}x{ny}x{nz} with ghost depth "
                f"{ghost_depth} x{tasks_per_node} tasks needs {need/1e9:.2f} GB "
                f"of {USABLE_FRACTION * self.memory_per_node_bytes/1e9:.2f} GB usable"
            )

    def max_ghost_depth(
        self,
        local_nx: int,
        ny: int,
        nz: int,
        tasks_per_node: int = 1,
        ceiling: int = 16,
    ) -> int:
        """Deepest ghost level that still fits (0 = nothing fits)."""
        depth = 0
        for d in range(1, ceiling + 1):
            if self.fits(local_nx, ny, nz, d, tasks_per_node):
                depth = d
            else:
                break
        return depth
