"""The Wellein/Randles performance model (paper §III-B, Table II).

Attainable throughput in lattice updates per second is the roofline
(Eq. 5)::

    P [Flup/s] = min( Bm / B , Ppeak / F )

with ``B`` bytes moved to/from main memory per cell update (two loads +
one store of all Q populations: 456 for D3Q19, 936 for D3Q39) and ``F``
core floating-point operations per cell (178 / 190 in the paper's
implementation).  Whichever term is smaller is the *performance
limiter* — on both Blue Genes and both lattices it is the bandwidth
(the red highlights of Table II).

Also implements the §III-C refinements: the torus-bandwidth lower bound
(all loads/stores served over the network) and the hardware-efficiency
upper bound ``P(Bm) / P(Ppeak)``.
"""

from __future__ import annotations

import dataclasses
import enum

from ..lattice import VelocitySet
from .spec import MachineSpec

__all__ = [
    "Limiter",
    "RooflinePoint",
    "bytes_per_cell",
    "roofline",
    "torus_lower_bound",
    "hardware_efficiency_bound",
    "FLOPS_PER_CELL",
    "flops_per_cell",
]

#: Bytes per stored population value at each supported precision; the
#: paper's B(Q) figures assume double precision (8 bytes).
DTYPE_ITEMSIZE = {"float32": 4, "float64": 8}


def bytes_per_cell(lattice: VelocitySet, dtype: str = "float64") -> int:
    """B(Q) at a given population precision.

    The paper's Table II bytes-per-cell figures (two loads + one store
    of all Q populations: 456 for D3Q19, 936 for D3Q39) assume double
    precision; float32 storage halves them — the dtype-policy knob the
    roofline says roughly doubles bandwidth-bound throughput.
    """
    itemsize = DTYPE_ITEMSIZE.get(str(dtype))
    if itemsize is None:
        raise KeyError(
            f"unknown population dtype {dtype!r} "
            f"(known: {', '.join(sorted(DTYPE_ITEMSIZE))})"
        )
    # Scale the canonical double-precision figure; exact by construction
    # (B is a multiple of 8).
    return lattice.bytes_per_cell * itemsize // 8

#: Core floating-point operations per lattice update in the paper's
#: implementation (§III-B): "our implementation has 178 core
#: floating-point operations [D3Q19] and ... 190 [D3Q39]".  These are
#: implementation-measured constants, independent of problem size.
FLOPS_PER_CELL = {"D3Q19": 178, "D3Q39": 190}


def flops_per_cell(lattice: VelocitySet) -> int:
    """F for the roofline: the paper's constant if known, else estimated.

    For lattices outside the paper's study, F is estimated from the
    per-velocity cost of the second-order BGK collide (~9 flops/velocity
    for moments plus ~10 for the equilibrium/relaxation) — good enough
    to position D3Q15/D3Q27 on the same roofline plots.
    """
    if lattice.name in FLOPS_PER_CELL:
        return FLOPS_PER_CELL[lattice.name]
    # Linear in Q through the two paper anchors (19, 178) and (39, 190).
    return round(0.6 * lattice.q + 166.6)


class Limiter(enum.Enum):
    """Which roofline term binds."""

    BANDWIDTH = "bandwidth"
    COMPUTE = "compute"


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One row of Table II for a (machine, lattice) pair.

    All throughputs in MFlup/s per node.
    """

    machine: str
    lattice: str
    bytes_per_cell: int
    flops_per_cell: int
    p_bandwidth_mflups: float
    p_peak_mflups: float

    @property
    def attainable_mflups(self) -> float:
        """The roofline minimum (Eq. 5)."""
        return min(self.p_bandwidth_mflups, self.p_peak_mflups)

    @property
    def limiter(self) -> Limiter:
        """The binding constraint (highlighted red in Table II)."""
        return (
            Limiter.BANDWIDTH
            if self.p_bandwidth_mflups <= self.p_peak_mflups
            else Limiter.COMPUTE
        )

    @property
    def hardware_efficiency_bound(self) -> float:
        """Max fraction of peak flop/s reachable: ``P(Bm) / P(Ppeak)``.

        38% for D3Q19 and 20% for D3Q39 on BG/P (§III-C).
        """
        return self.p_bandwidth_mflups / self.p_peak_mflups


def roofline(
    machine: MachineSpec, lattice: VelocitySet, dtype: str = "float64"
) -> RooflinePoint:
    """Evaluate Eq. 5 for one machine/lattice pair (a Table II row).

    ``dtype`` positions reduced-precision variants on the same roofline:
    float32 halves B, doubling the bandwidth-bound term while leaving
    the compute term untouched (the paper's figures are all float64).
    """
    b = bytes_per_cell(lattice, dtype)
    f = flops_per_cell(lattice)
    p_bw = machine.memory_bandwidth / b / 1e6
    p_peak = machine.peak_flops / f / 1e6
    return RooflinePoint(
        machine=machine.name,
        lattice=lattice.name,
        bytes_per_cell=b,
        flops_per_cell=f,
        p_bandwidth_mflups=p_bw,
        p_peak_mflups=p_peak,
    )


def torus_lower_bound(machine: MachineSpec, lattice: VelocitySet) -> float:
    """§III-C: MFlup/s if every load/store went over the torus.

    "Assuming all loads and stores occur at the torus bandwidth provides
    a lower bound for parallel performance" — 11.1 / 70 MFlup/s for
    D3Q19 and 5.4 / 34 for D3Q39 on BG/P / BG/Q.
    """
    return machine.torus_aggregate_bandwidth / lattice.bytes_per_cell / 1e6


def hardware_efficiency_bound(machine: MachineSpec, lattice: VelocitySet) -> float:
    """Convenience wrapper for the §III-C efficiency ceiling."""
    return roofline(machine, lattice).hardware_efficiency_bound
