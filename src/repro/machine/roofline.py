"""The Wellein/Randles performance model (paper §III-B, Table II).

Attainable throughput in lattice updates per second is the roofline
(Eq. 5)::

    P [Flup/s] = min( Bm / B , Ppeak / F )

with ``B`` bytes moved to/from main memory per cell update (two loads +
one store of all Q populations: 456 for D3Q19, 936 for D3Q39) and ``F``
core floating-point operations per cell (178 / 190 in the paper's
implementation).  Whichever term is smaller is the *performance
limiter* — on both Blue Genes and both lattices it is the bandwidth
(the red highlights of Table II).

Also implements the §III-C refinements: the torus-bandwidth lower bound
(all loads/stores served over the network) and the hardware-efficiency
upper bound ``P(Bm) / P(Ppeak)``.
"""

from __future__ import annotations

import dataclasses
import enum

from ..lattice import VelocitySet
from .spec import MachineSpec

__all__ = [
    "Limiter",
    "RooflinePoint",
    "bytes_per_cell",
    "sparse_bytes_per_cell",
    "roofline",
    "torus_lower_bound",
    "hardware_efficiency_bound",
    "FLOPS_PER_CELL",
    "flops_per_cell",
]

#: Bytes per stored population value at each supported precision; the
#: paper's B(Q) figures assume double precision (8 bytes).
DTYPE_ITEMSIZE = {"float32": 4, "float64": 8}


def bytes_per_cell(lattice: VelocitySet, dtype: str = "float64") -> int:
    """B(Q) at a given population precision.

    The paper's Table II bytes-per-cell figures (two loads + one store
    of all Q populations: 456 for D3Q19, 936 for D3Q39) assume double
    precision; float32 storage halves them — the dtype-policy knob the
    roofline says roughly doubles bandwidth-bound throughput.
    """
    itemsize = DTYPE_ITEMSIZE.get(str(dtype))
    if itemsize is None:
        raise KeyError(
            f"unknown population dtype {dtype!r} "
            f"(known: {', '.join(sorted(DTYPE_ITEMSIZE))})"
        )
    # Scale the canonical double-precision figure; exact by construction
    # (B is a multiple of 8).
    return lattice.bytes_per_cell * itemsize // 8


#: Cache-line size assumed by the sparse fill penalty (bytes).  The
#: paper's machines and commodity x86 both move 64-byte (or larger)
#: lines; the exact figure only shifts the fitted beta, not the trend.
CACHE_LINE_BYTES = 64


def sparse_bytes_per_cell(
    lattice: VelocitySet, dtype: str = "float64", fill: float = 1.0
) -> float:
    """B(Q) per *fluid* cell of the indirect-addressing kernels.

    Extends the dense Table II figure with the sparse path's two extra
    traffic terms (paper §IV's indirect-addressing discussion):

    * the gather table itself — one int64 neighbor index per population
      read (``8 Q`` bytes per cell, every fill);
    * a fill-fraction term: sparse *storage* is dense in fluid cells,
      but the pull gather still walks neighbor lines shared with
      non-adjacent fluid sites, so locality degrades as the fluid set
      thins.  Modelled as the unread remainder of one cache line per
      gathered population, scaled by ``(1 - fill)`` — zero at full fill
      (the gather degenerates to dense streaming order), growing toward
      a full line of waste per value as the domain empties.

    ``fill`` is the fluid fraction of the bounding box
    (:attr:`~repro.core.sparse.SparseDomain.fill_fraction`).
    """
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill fraction must be in (0, 1], got {fill}")
    base = bytes_per_cell(lattice, dtype)
    itemsize = DTYPE_ITEMSIZE[str(dtype)]
    index_bytes = 8 * lattice.q
    line_waste = (CACHE_LINE_BYTES - itemsize) * lattice.q * (1.0 - fill)
    return float(base + index_bytes + line_waste)

#: Core floating-point operations per lattice update in the paper's
#: implementation (§III-B): "our implementation has 178 core
#: floating-point operations [D3Q19] and ... 190 [D3Q39]".  These are
#: implementation-measured constants, independent of problem size.
FLOPS_PER_CELL = {"D3Q19": 178, "D3Q39": 190}


def flops_per_cell(lattice: VelocitySet) -> int:
    """F for the roofline: the paper's constant if known, else estimated.

    For lattices outside the paper's study, F is estimated from the
    per-velocity cost of the second-order BGK collide (~9 flops/velocity
    for moments plus ~10 for the equilibrium/relaxation) — good enough
    to position D3Q15/D3Q27 on the same roofline plots.
    """
    if lattice.name in FLOPS_PER_CELL:
        return FLOPS_PER_CELL[lattice.name]
    # Linear in Q through the two paper anchors (19, 178) and (39, 190).
    return round(0.6 * lattice.q + 166.6)


class Limiter(enum.Enum):
    """Which roofline term binds."""

    BANDWIDTH = "bandwidth"
    COMPUTE = "compute"


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One row of Table II for a (machine, lattice) pair.

    All throughputs in MFlup/s per node.
    """

    machine: str
    lattice: str
    bytes_per_cell: int
    flops_per_cell: int
    p_bandwidth_mflups: float
    p_peak_mflups: float

    @property
    def attainable_mflups(self) -> float:
        """The roofline minimum (Eq. 5)."""
        return min(self.p_bandwidth_mflups, self.p_peak_mflups)

    @property
    def limiter(self) -> Limiter:
        """The binding constraint (highlighted red in Table II)."""
        return (
            Limiter.BANDWIDTH
            if self.p_bandwidth_mflups <= self.p_peak_mflups
            else Limiter.COMPUTE
        )

    @property
    def hardware_efficiency_bound(self) -> float:
        """Max fraction of peak flop/s reachable: ``P(Bm) / P(Ppeak)``.

        38% for D3Q19 and 20% for D3Q39 on BG/P (§III-C).
        """
        return self.p_bandwidth_mflups / self.p_peak_mflups


def roofline(
    machine: MachineSpec, lattice: VelocitySet, dtype: str = "float64"
) -> RooflinePoint:
    """Evaluate Eq. 5 for one machine/lattice pair (a Table II row).

    ``dtype`` positions reduced-precision variants on the same roofline:
    float32 halves B, doubling the bandwidth-bound term while leaving
    the compute term untouched (the paper's figures are all float64).
    """
    b = bytes_per_cell(lattice, dtype)
    f = flops_per_cell(lattice)
    p_bw = machine.memory_bandwidth / b / 1e6
    p_peak = machine.peak_flops / f / 1e6
    return RooflinePoint(
        machine=machine.name,
        lattice=lattice.name,
        bytes_per_cell=b,
        flops_per_cell=f,
        p_bandwidth_mflups=p_bw,
        p_peak_mflups=p_peak,
    )


def torus_lower_bound(machine: MachineSpec, lattice: VelocitySet) -> float:
    """§III-C: MFlup/s if every load/store went over the torus.

    "Assuming all loads and stores occur at the torus bandwidth provides
    a lower bound for parallel performance" — 11.1 / 70 MFlup/s for
    D3Q19 and 5.4 / 34 for D3Q39 on BG/P / BG/Q.
    """
    return machine.torus_aggregate_bandwidth / lattice.bytes_per_cell / 1e6


def hardware_efficiency_bound(machine: MachineSpec, lattice: VelocitySet) -> float:
    """Convenience wrapper for the §III-C efficiency ceiling."""
    return roofline(machine, lattice).hardware_efficiency_bound
