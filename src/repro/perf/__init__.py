"""Performance engine: metrics, cost model, optimization ladder, tuning."""

from .ablation import (
    AblationResult,
    ablate_depth_consolidation,
    ablate_gc_split_overlap,
    ablate_simd_lanes,
    run_all_ablations,
)
from .cost_model import CostModel, Placement, StepBreakdown, Workload
from .event_sim import CommSimResult, simulate_comm_times
from .hybrid_model import HybridSweepPoint, best_point, sweep_hybrid
from .metrics import mflups, parallel_efficiency, runtime_for_mflups, speedup
from .model import (
    FittedPerfModel,
    MeasuredSample,
    ModelEntry,
    Prediction,
    calibration_path,
    fit_samples,
    load_calibration,
    samples_from_bench,
    samples_from_events,
    save_calibration,
)
from .noise import JitterModel
from .optimization import (
    LADDER,
    LevelEffect,
    OptimizationLevel,
    base_params,
    effect_note,
    ladder_states,
)
from .params import CodeParams
from .scaling import ScalingPoint, strong_scaling, weak_scaling
from .tuner import (
    DepthSweepResult,
    depth_table,
    optimal_depth,
    sweep_ghost_depth,
    tuned_params_for_depth_study,
)

__all__ = [
    "ablate_depth_consolidation",
    "ablate_gc_split_overlap",
    "ablate_simd_lanes",
    "AblationResult",
    "base_params",
    "run_all_ablations",
    "best_point",
    "CodeParams",
    "CommSimResult",
    "CostModel",
    "depth_table",
    "DepthSweepResult",
    "effect_note",
    "calibration_path",
    "fit_samples",
    "FittedPerfModel",
    "load_calibration",
    "MeasuredSample",
    "ModelEntry",
    "Prediction",
    "samples_from_bench",
    "samples_from_events",
    "save_calibration",
    "HybridSweepPoint",
    "JitterModel",
    "LADDER",
    "ladder_states",
    "LevelEffect",
    "mflups",
    "optimal_depth",
    "OptimizationLevel",
    "parallel_efficiency",
    "Placement",
    "runtime_for_mflups",
    "simulate_comm_times",
    "speedup",
    "StepBreakdown",
    "sweep_ghost_depth",
    "sweep_hybrid",
    "tuned_params_for_depth_study",
    "Workload",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
]
