"""Throughput metrics (paper §III-B, Eq. 4).

"A more meaningful metric is the work done per unit time.  For LBM, this
means the number of lattice points updated per second ... MFlup/s, or
million lattice point updates per second."
"""

from __future__ import annotations

__all__ = ["mflups", "runtime_for_mflups", "parallel_efficiency", "speedup"]


def mflups(steps: int, num_fluid_cells: int, elapsed_seconds: float) -> float:
    """Eq. 4: ``P = s * Nfl / (T(s) * 1e6)``.

    Parameters
    ----------
    steps:
        Time steps simulated (``s``).
    num_fluid_cells:
        Fluid cells in the domain (``Nfl``).
    elapsed_seconds:
        Wall-clock time for the ``steps`` updates (``T(s)``).
    """
    if steps < 0 or num_fluid_cells < 0:
        raise ValueError("steps and cell count must be non-negative")
    if elapsed_seconds <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_seconds}")
    return steps * num_fluid_cells / (elapsed_seconds * 1e6)


def runtime_for_mflups(steps: int, num_fluid_cells: int, p_mflups: float) -> float:
    """Invert Eq. 4: wall-clock seconds implied by a throughput."""
    if p_mflups <= 0:
        raise ValueError(f"throughput must be positive, got {p_mflups}")
    return steps * num_fluid_cells / (p_mflups * 1e6)


def speedup(baseline_seconds: float, optimized_seconds: float) -> float:
    """Plain runtime ratio (the paper's '3x' / '7.5x' improvements)."""
    if optimized_seconds <= 0:
        raise ValueError("optimized time must be positive")
    return baseline_seconds / optimized_seconds


def parallel_efficiency(p_measured: float, p_upper_bound: float) -> float:
    """Fraction of the model's attainable throughput achieved.

    The paper reports 92%/83% (BG/P) and 85%/79% (BG/Q) for
    D3Q19/D3Q39 at the top of the optimization ladder.
    """
    if p_upper_bound <= 0:
        raise ValueError("upper bound must be positive")
    return p_measured / p_upper_bound
