"""Calibrated performance model: predicted MFLUP/s from fitted parameters.

The paper's central claim is that LB throughput is *predictable*: the
roofline (§III-B, Eq. 5) bounds attainable MFLUP/s by ``Bm / B(Q)``
with nothing but machine bandwidth and the lattice's bytes-per-cell
figure.  This module turns that arithmetic into an operational model
for *this* host: every measured throughput sample — committed
``BENCH_*.json`` history rows, telemetry ``kernel.auto`` verdict
events — is reduced to the **effective bandwidth** it achieved,

    beta = P * B(Q, dtype) * 1e6        [bytes/s]

(the SNIPPETS WSE-2 SUMMA shape: pure work x fitted overhead factor,
validated against measurement).  Fitted betas are grouped per
``(kernel, mode, dtype, lattice)`` and pooled hierarchically, so a
prediction for a *measured* cell replays its fitted overhead exactly,
while an *unseen* cell (new lattice, new dtype) extrapolates along the
roofline's B(Q) scaling from the nearest pooled group:

1. ``exact``   — this very (kernel, mode, dtype, lattice) was measured;
2. ``dtype``   — pooled over lattices of the same (kernel, mode, dtype),
   least-squares on ``P = beta / (B * 1e6)``;
3. ``kernel``  — pooled over everything measured for (kernel, mode).

Calibrations are host-keyed (a timing fit from one machine says nothing
about another) and persist as one JSON file per host under
``$REPRO_KERNEL_CACHE_DIR``'s ``perf-model/`` subdirectory, next to the
measured ``kernel="auto"`` verdict cache they replace: with a
calibration present, :func:`repro.core.plan.auto_select_kernel`
resolves from the model without running a timing race, the sweep
scheduler packs variants onto workers by predicted cost
(:meth:`FittedPerfModel.predict_case_seconds`), and
``benchmarks/compare_bench.py --model`` flags "measured << predicted"
rows as regressions even when no baseline row exists for that cell.

The fit itself is deliberately tiny — closed-form least squares on a
one-parameter-per-group linear model — so it is exactly reproducible
from the committed history (``repro perf-model fit BENCH_*.json``) and
mirrored stdlib-only inside ``compare_bench.py``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import re
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..errors import ReproError
from ..lattice import available_lattices, get_lattice
from ..machine.roofline import bytes_per_cell, sparse_bytes_per_cell

__all__ = [
    "CALIBRATION_SCHEMA",
    "FittedPerfModel",
    "MeasuredSample",
    "ModelEntry",
    "Prediction",
    "calibration_path",
    "fit",
    "fit_samples",
    "load_calibration",
    "samples_from_bench",
    "samples_from_events",
    "save_calibration",
]

#: Version stamped on calibration files; bump on incompatible layout.
CALIBRATION_SCHEMA = 1

#: Single-domain kernels vs the slab-decomposed distributed pair vs the
#: indirect-addressing sparse pair: the populations time very
#: differently (halo exchange, gather tables, fill-dependent locality),
#: so their fits never mix.
SINGLE = "single"
DISTRIBUTED = "distributed"
SPARSE = "sparse"

#: Schema-1 bench records name kernels by class; later schemas stamp
#: the registry name into ``extra_info``.
_LEGACY_KERNEL_NAMES = {
    "naivekernel": "naive",
    "rollkernel": "roll",
    "fusedgatherkernel": "fused-gather",
    "plannedkernel": "planned",
}

_LATTICE_RE = re.compile(r"D3Q\d+", re.IGNORECASE)


class PerfModelError(ReproError):
    """A calibration could not be fitted, parsed, or persisted."""


@dataclasses.dataclass(frozen=True)
class MeasuredSample:
    """One measured throughput observation, the fitter's unit of input.

    ``bytes_per_cell`` may be carried from the record (bench rows stamp
    it) or left ``None`` to be derived from ``(lattice, dtype)``;
    ``host=None`` marks a legacy record with no host stamp (schema <= 3
    exports), which the fitter accepts as unattributed history.
    ``fill`` is the fluid fraction behind a sparse sample: samples of
    ``mode="sparse"`` resolve their bytes-per-cell through the sparse
    B(Q, fill) extension, so one fitted beta spans every fill.
    """

    kernel: str
    lattice: str
    dtype: str
    mflups: float
    mode: str = SINGLE
    bytes_per_cell: float | None = None
    host: str | None = None
    source: str = ""
    fill: float | None = None

    def resolved_bytes_per_cell(self) -> float:
        if self.bytes_per_cell is not None:
            return float(self.bytes_per_cell)
        lattice = get_lattice(self.lattice)
        if self.mode == SPARSE:
            fill = 1.0 if self.fill is None else float(self.fill)
            return float(sparse_bytes_per_cell(lattice, self.dtype, fill=fill))
        return float(bytes_per_cell(lattice, self.dtype))


@dataclasses.dataclass(frozen=True)
class ModelEntry:
    """The fitted overhead state of one (kernel, mode, dtype, lattice).

    ``beta`` is the effective bandwidth (bytes/s) least-squares fitted
    over the group's samples; ``mflups`` the sample mean it reproduces;
    ``spread`` the largest relative deviation of any sample from that
    mean — the empirical run-to-run noise band a consumer should treat
    predictions within.
    """

    kernel: str
    mode: str
    dtype: str
    lattice: str
    bytes_per_cell: float
    beta: float
    mflups: float
    n: int
    spread: float

    @property
    def key(self) -> tuple[str, str, str, str]:
        return (self.kernel, self.mode, self.dtype, self.lattice)

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, raw: Mapping[str, Any]) -> "ModelEntry":
        return cls(
            kernel=str(raw["kernel"]),
            mode=str(raw["mode"]),
            dtype=str(raw["dtype"]),
            lattice=str(raw["lattice"]),
            bytes_per_cell=float(raw["bytes_per_cell"]),
            beta=float(raw["beta"]),
            mflups=float(raw["mflups"]),
            n=int(raw["n"]),
            spread=float(raw["spread"]),
        )


@dataclasses.dataclass(frozen=True)
class Prediction:
    """One model answer: the rate, and how directly it was fitted."""

    mflups: float
    level: str  # "exact" | "dtype" | "kernel"
    kernel: str
    mode: str

    @property
    def seconds_per_update(self) -> float:
        return 1.0 / (self.mflups * 1e6)


# -- sample extraction -------------------------------------------------------


def _kernel_from_bench_name(name: str) -> str | None:
    """The registry kernel name encoded in a schema-1 benchmark id."""
    lowered = name.lower()
    for legacy, kernel in _LEGACY_KERNEL_NAMES.items():
        if legacy in lowered:
            return kernel
    return None


def samples_from_bench(
    record: Mapping[str, Any], source: str = ""
) -> tuple[list[MeasuredSample], int]:
    """Extract fit samples from one exported bench record.

    Returns ``(samples, skipped)`` where ``skipped`` counts throughput
    rows that could not be attributed to a (kernel, lattice) cell —
    legacy rows with unparseable names are skipped, never fatal.  Rows
    without an ``mflups`` figure (flop-ratio probes, overhead timers)
    are not samples and do not count as skipped.  Schema >= 4 records
    stamp the measuring ``host``; older records yield unattributed
    (``host=None``) samples.
    """
    host = record.get("host")
    samples: list[MeasuredSample] = []
    skipped = 0
    for name, entry in sorted(record.get("kernels", {}).items()):
        if not isinstance(entry, Mapping) or "mflups" not in entry:
            continue
        try:
            mflups = float(entry["mflups"])
        except (TypeError, ValueError):
            skipped += 1
            continue
        lowered = str(name).lower()
        kernel = entry.get("kernel") or _kernel_from_bench_name(str(name))
        match = _LATTICE_RE.search(str(name))
        lattice = match.group(0).upper() if match else entry.get("lattice")
        if not kernel or not lattice or mflups <= 0:
            skipped += 1
            continue
        dtype = str(
            entry.get("dtype") or ("float32" if "float32" in lowered else "float64")
        )
        raw_b = entry.get("bytes_per_cell")
        raw_fill = entry.get("fill")
        if "distributed" in lowered:
            mode = DISTRIBUTED
        elif raw_fill is not None or "sparse" in str(kernel).lower():
            mode = SPARSE
        else:
            mode = SINGLE
        samples.append(
            MeasuredSample(
                kernel=str(kernel),
                lattice=str(lattice),
                dtype=dtype,
                mflups=mflups,
                mode=mode,
                bytes_per_cell=float(raw_b) if raw_b is not None else None,
                host=str(host) if host else None,
                source=source,
                fill=float(raw_fill) if raw_fill is not None else None,
            )
        )
    return samples, skipped


def samples_from_events(
    events: Iterable[Mapping[str, Any]], source: str = ""
) -> list[MeasuredSample]:
    """Fit samples from telemetry ``kernel.auto`` verdict events.

    Only *measured* verdicts feed the fit: ``cached`` replays and
    ``model`` resolutions are downstream of earlier measurements (or of
    this very model), and folding them back in would let the model
    confirm itself.  Every candidate's measured rate is a sample, not
    just the winner's — a race over three kernels is three observations.
    """
    samples: list[MeasuredSample] = []
    for event in events:
        if event.get("type") != "event" or event.get("name") != "kernel.auto":
            continue
        attrs = event.get("attrs") or {}
        if attrs.get("provenance") != "measured":
            continue
        lattice, dtype = attrs.get("lattice"), attrs.get("dtype")
        if not lattice or not dtype:
            continue
        mode = str(attrs.get("mode") or SINGLE)
        raw_fill = attrs.get("fill")
        for kernel, rate in sorted((attrs.get("mflups") or {}).items()):
            try:
                mflups = float(rate)
            except (TypeError, ValueError):
                continue
            if mflups <= 0:
                continue
            samples.append(
                MeasuredSample(
                    kernel=str(kernel),
                    lattice=str(lattice).upper(),
                    dtype=str(dtype),
                    mflups=mflups,
                    mode=mode,
                    source=source,
                    fill=float(raw_fill) if raw_fill is not None else None,
                )
            )
    return samples


# -- fitting -----------------------------------------------------------------


def _pooled_beta(entries: Sequence[ModelEntry]) -> float:
    """Least-squares beta over every sample behind ``entries``.

    The underlying model is linear, ``P_r = beta * x_r`` with
    ``x_r = 1 / (B_r * 1e6)``, so the pooled least-squares solution is
    ``sum(P_r x_r) / sum(x_r^2)``.  Within one entry all samples share
    ``B`` and ``mflups`` is their mean, so the per-sample sums
    reconstruct exactly from ``(n, mflups, B)`` — no sample retention
    needed.
    """
    num = 0.0
    den = 0.0
    for entry in entries:
        x = 1.0 / (entry.bytes_per_cell * 1e6)
        num += entry.n * entry.mflups * x
        den += entry.n * x * x
    if den <= 0:
        return float("nan")
    return num / den


def fit_samples(
    samples: Iterable[MeasuredSample],
    host: str | None = None,
    sources: Sequence[str] = (),
    skipped: int = 0,
) -> "FittedPerfModel":
    """Fit a :class:`FittedPerfModel` for ``host`` from ``samples``.

    Samples stamped with a *different* host are excluded (and counted
    in the model's ``skipped``); unattributed samples (``host=None``,
    i.e. legacy bench records) are accepted — all committed history
    predates host stamping.
    """
    host = host or platform.node()
    groups: dict[tuple[str, str, str, str], list[MeasuredSample]] = {}
    for sample in samples:
        if sample.host is not None and sample.host != host:
            skipped += 1
            continue
        key = (sample.kernel, sample.mode, sample.dtype, sample.lattice)
        groups.setdefault(key, []).append(sample)
    entries = []
    for (kernel, mode, dtype, lattice), group in sorted(groups.items()):
        bs = [s.resolved_bytes_per_cell() for s in group]
        b = bs[0]
        rates = [s.mflups for s in group]
        mean = sum(rates) / len(rates)
        if all(other == b for other in bs):
            # Uniform B: the least-squares solution collapses to the
            # sample mean; keep the closed form (historical behaviour).
            beta = mean * b * 1e6
            spread = max(abs(rate - mean) for rate in rates) / mean if mean else 0.0
        else:
            # Mixed B within a group (sparse samples at different fill
            # fractions): per-sample least squares on P_r = beta * x_r,
            # x_r = 1 / (B_r * 1e6), so one beta spans the fill axis.
            xs = [1.0 / (b_r * 1e6) for b_r in bs]
            den = sum(x * x for x in xs)
            beta = sum(p * x for p, x in zip(rates, xs)) / den if den else 0.0
            spread = max(
                abs(p - beta * x) / (beta * x) if beta * x else 0.0
                for p, x in zip(rates, xs)
            )
        entries.append(
            ModelEntry(
                kernel=kernel,
                mode=mode,
                dtype=dtype,
                lattice=lattice,
                bytes_per_cell=b,
                beta=beta,
                mflups=mean,
                n=len(group),
                spread=spread,
            )
        )
    return FittedPerfModel(
        host=host,
        entries=tuple(entries),
        fitted_at=time.time(),
        sources=tuple(sources),
        skipped=skipped,
    )


def fit(
    bench_paths: Sequence[str | Path] = (),
    telemetry_roots: Sequence[str | Path] = (),
    host: str | None = None,
) -> "FittedPerfModel":
    """Fit from bench record files plus telemetry event directories."""
    samples: list[MeasuredSample] = []
    sources: list[str] = []
    skipped = 0
    for path in bench_paths:
        path = Path(path)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise PerfModelError(f"unreadable bench record {path}: {exc}") from exc
        found, bad = samples_from_bench(record, source=path.name)
        samples.extend(found)
        skipped += bad
        sources.append(path.name)
    for root in telemetry_roots:
        from ..telemetry.aggregate import load_run  # perf sits below telemetry's
        # read side only here; recorder stays import-free of perf.

        aggregate = load_run(root)
        samples.extend(samples_from_events(aggregate.events, source=str(root)))
        sources.append(str(root))
    if not samples:
        raise PerfModelError(
            "no usable throughput samples in "
            f"{[str(p) for p in bench_paths] + [str(r) for r in telemetry_roots]}"
        )
    return fit_samples(samples, host=host, sources=sources, skipped=skipped)


# -- the model ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FittedPerfModel:
    """Fitted per-host overhead factors over the roofline B(Q) model."""

    host: str
    entries: tuple[ModelEntry, ...]
    fitted_at: float = 0.0
    sources: tuple[str, ...] = ()
    skipped: int = 0

    def __post_init__(self) -> None:
        index = {entry.key: entry for entry in self.entries}
        object.__setattr__(self, "_index", index)

    # -- lookup ------------------------------------------------------------

    def _beta(
        self, kernel: str, mode: str, dtype: str, lattice: str
    ) -> tuple[float, str] | None:
        """The most specific fitted beta for a cell, with its level."""
        exact = self._index.get((kernel, mode, dtype, lattice))
        if exact is not None:
            return exact.beta, "exact"
        pooled = [
            e
            for e in self.entries
            if (e.kernel, e.mode, e.dtype) == (kernel, mode, dtype)
        ]
        if pooled:
            return _pooled_beta(pooled), "dtype"
        pooled = [e for e in self.entries if (e.kernel, e.mode) == (kernel, mode)]
        if pooled:
            return _pooled_beta(pooled), "kernel"
        return None

    def covers(
        self,
        kernels: Iterable[str],
        mode: str = SINGLE,
    ) -> bool:
        """Whether every kernel has at least one fitted entry in ``mode``."""
        fitted = {(e.kernel, e.mode) for e in self.entries}
        return all((kernel, mode) in fitted for kernel in kernels)

    def predict(
        self,
        kernel: str,
        lattice: str,
        dtype: str = "float64",
        shape: Sequence[int] | None = None,
        ranks: int = 1,
        fill: float | None = None,
    ) -> Prediction | None:
        """Predicted MFLUP/s for one cell, or ``None`` when unfitted.

        ``shape`` participates through B(Q) only (the model is
        per-update); it is accepted so callers can pass a full problem
        description and feed :meth:`predict_case_seconds`.  ``ranks``
        selects the population: 1 predicts the single-domain kernels,
        >1 the slab-decomposed distributed pair, whose fits include the
        halo-exchange overhead the single-domain numbers lack.  A
        ``fill`` (fluid fraction) selects the sparse population and
        positions the prediction on the fill-extended B(Q, fill) curve.
        """
        if fill is not None:
            mode = SPARSE
        else:
            mode = DISTRIBUTED if ranks > 1 else SINGLE
        found = self._beta(str(kernel), mode, str(dtype), str(lattice).upper())
        if found is None:
            return None
        beta, level = found
        if lattice.upper() in available_lattices():
            if mode == SPARSE:
                b = float(
                    sparse_bytes_per_cell(get_lattice(lattice), dtype, fill=fill)
                )
            else:
                b = float(bytes_per_cell(get_lattice(lattice), dtype))
        else:
            exact = self._index.get((kernel, mode, dtype, lattice.upper()))
            if exact is None:
                return None
            b = exact.bytes_per_cell
        return Prediction(
            mflups=beta / (b * 1e6), level=level, kernel=str(kernel), mode=mode
        )

    def predict_mflups(
        self,
        kernel: str,
        lattice: str,
        dtype: str = "float64",
        shape: Sequence[int] | None = None,
        ranks: int = 1,
        fill: float | None = None,
    ) -> float:
        """Predicted MFLUP/s, ``nan`` when the model has no coverage."""
        prediction = self.predict(
            kernel, lattice, dtype, shape=shape, ranks=ranks, fill=fill
        )
        return float("nan") if prediction is None else prediction.mflups

    def predict_case_seconds(
        self,
        kernel: str,
        lattice: str,
        dtype: str,
        shape: Sequence[int],
        steps: int,
        ranks: int = 1,
    ) -> float:
        """Predicted wall-clock seconds for a whole case (inverse Eq. 4)."""
        prediction = self.predict(kernel, lattice, dtype, shape=shape, ranks=ranks)
        if prediction is None:
            return float("nan")
        cells = 1
        for extent in shape:
            cells *= int(extent)
        return steps * cells / (prediction.mflups * 1e6)

    def rank_kernels(
        self,
        candidates: Sequence[str],
        lattice: str,
        dtype: str = "float64",
        shape: Sequence[int] | None = None,
        ranks: int = 1,
        fill: float | None = None,
    ) -> dict[str, float]:
        """Predicted MFLUP/s per candidate (covered candidates only)."""
        rates: dict[str, float] = {}
        for kernel in candidates:
            prediction = self.predict(
                kernel, lattice, dtype, shape=shape, ranks=ranks, fill=fill
            )
            if prediction is not None:
                rates[kernel] = prediction.mflups
        return rates

    # -- persistence -------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": CALIBRATION_SCHEMA,
            "host": self.host,
            "fitted_at": self.fitted_at,
            "sources": list(self.sources),
            "skipped": self.skipped,
            "entries": [entry.to_json() for entry in self.entries],
        }

    @classmethod
    def from_json(cls, raw: Mapping[str, Any]) -> "FittedPerfModel":
        if raw.get("schema") != CALIBRATION_SCHEMA:
            raise PerfModelError(
                f"calibration schema {raw.get('schema')!r} is not "
                f"{CALIBRATION_SCHEMA} (refit with `repro perf-model fit`)"
            )
        return cls(
            host=str(raw.get("host", "")),
            entries=tuple(ModelEntry.from_json(e) for e in raw.get("entries", [])),
            fitted_at=float(raw.get("fitted_at", 0.0)),
            sources=tuple(str(s) for s in raw.get("sources", [])),
            skipped=int(raw.get("skipped", 0)),
        )

    def summary_lines(self) -> list[str]:
        """The ``repro perf-model show`` report."""
        lines = [
            f"calibration for host {self.host!r}: {len(self.entries)} fitted "
            f"cell(s) from {sum(e.n for e in self.entries)} sample(s)"
            + (f", {self.skipped} skipped" if self.skipped else "")
        ]
        if self.sources:
            lines.append(f"  sources: {', '.join(self.sources)}")
        for entry in self.entries:
            lines.append(
                f"  {entry.kernel:>12s} {entry.mode:>11s} {entry.dtype} "
                f"{entry.lattice}: {entry.mflups:7.2f} MFLUP/s "
                f"(beta {entry.beta / 1e9:.2f} GB/s, n={entry.n}, "
                f"spread {entry.spread:.0%})"
            )
        return lines


# -- persistence -------------------------------------------------------------


def _host_slug(host: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "-" for c in host) or "unknown"


def calibration_path(host: str | None = None) -> Path:
    """Where ``host``'s calibration lives: one JSON per host under the
    kernel cache directory (``$REPRO_KERNEL_CACHE_DIR`` honoured)."""
    from ..core.plan import kernel_cache_dir  # late: core.plan loads us lazily

    return (
        kernel_cache_dir()
        / "perf-model"
        / f"{_host_slug(host or platform.node())}.json"
    )


def save_calibration(
    model: FittedPerfModel, path: str | Path | None = None
) -> Path:
    """Atomically persist ``model`` (default: its host's standard path)."""
    path = Path(path) if path is not None else calibration_path(model.host)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(model.to_json(), indent=1, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_calibration(
    path: str | Path | None = None, host: str | None = None
) -> FittedPerfModel | None:
    """The persisted calibration, or ``None`` when absent/corrupt.

    Corrupt or schema-mismatched files read as "no calibration" — every
    consumer has a measured fallback (the verdict cache, the timing
    race), so a broken file must degrade, not crash.  An explicit
    ``path`` with an explicit problem still surfaces via ``repro
    perf-model show``, which calls :meth:`FittedPerfModel.from_json`
    directly.
    """
    path = Path(path) if path is not None else calibration_path(host)
    try:
        raw = json.loads(path.read_text())
        model = FittedPerfModel.from_json(raw)
    except (OSError, ValueError, PerfModelError, KeyError):
        return None
    if host is not None and model.host != host:
        return None
    return model
