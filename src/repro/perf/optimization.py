"""The paper's optimization ladder (§V, Fig. 8).

Eight cumulative states per (machine, lattice):

``Orig → GC → DH → CF → LoBr → NB-C → GC_C → SIMD``

Each ladder entry is a :class:`LevelEffect` — a set of multiplicative /
override changes to the :class:`~repro.perf.params.CodeParams` — with a
``note`` quoting the paper observation it encodes.  The numbers are
calibrated so the cost model reproduces the paper's reported endpoints
(92%/83% of the model bound on BG/P, 85%/79% on BG/Q; ~3x cumulative on
BG/P, ~7.5-8x on BG/Q) and per-level statements (DH = +30% BG/P / +75%
BG/Q; CF = 2.5x on BG/Q; SIMD large on BG/P, modest on BG/Q; GC_C
largest for D3Q39 on BG/P); see tests/perf/test_fig8_calibration.py.
"""

from __future__ import annotations

import dataclasses
import enum

from ..lattice import VelocitySet
from ..machine.spec import MachineSpec
from ..parallel.schedules import ExchangeSchedule
from .params import CodeParams

__all__ = ["OptimizationLevel", "LevelEffect", "ladder_states", "base_params"]


class OptimizationLevel(enum.Enum):
    """Fig. 8 x-axis, in ladder order."""

    ORIG = "Orig"
    GC = "GC"
    DH = "DH"
    CF = "CF"
    LOBR = "LoBr"
    NB_C = "NB-C"
    GC_C = "GC_C"
    SIMD = "SIMD"


LADDER: tuple[OptimizationLevel, ...] = tuple(OptimizationLevel)


@dataclasses.dataclass(frozen=True)
class LevelEffect:
    """Parameter deltas applied when a ladder level is reached."""

    bw_mult: float = 1.0
    issue_mult: float = 1.0
    overhead_mult: float = 1.0
    latency_mult: float = 1.0
    simd_lanes: float | None = None
    schedule: ExchangeSchedule | None = None
    ghost_depth: int | None = None
    note: str = ""

    def apply(self, p: CodeParams) -> CodeParams:
        return p.replace(
            bandwidth_fraction=min(1.0, p.bandwidth_fraction * self.bw_mult),
            issue_fraction=min(1.0, p.issue_fraction * self.issue_mult),
            work_overhead=max(1.0, p.work_overhead * self.overhead_mult),
            message_latency_s=p.message_latency_s * self.latency_mult,
            simd_lanes_used=self.simd_lanes or p.simd_lanes_used,
            schedule=self.schedule or p.schedule,
            ghost_depth=self.ghost_depth
            if self.ghost_depth is not None
            else p.ghost_depth,
        )


def _machine_key(machine: MachineSpec) -> str:
    return "BG/Q" if "Q" in machine.name.split("/")[-1] else "BG/P"


#: Orig-state parameters.  Keyed (machine, lattice).
_BASE: dict[tuple[str, str], CodeParams] = {
    # BG/P: the original code was collide(flop)-limited — low issue rate,
    # heavy division/branching overhead — with a blocking exchange.
    ("BG/P", "D3Q19"): CodeParams(
        bandwidth_fraction=0.54,
        issue_fraction=0.42,
        simd_lanes_used=1.0,
        work_overhead=1.35,
        schedule=ExchangeSchedule.BLOCKING,
        ghost_depth=0,
        message_latency_s=60e-6,
        jitter_fraction=0.040,
    ),
    ("BG/P", "D3Q39"): CodeParams(
        bandwidth_fraction=0.53,
        issue_fraction=0.24,
        simd_lanes_used=1.0,
        work_overhead=1.40,
        schedule=ExchangeSchedule.BLOCKING,
        ghost_depth=0,
        message_latency_s=60e-6,
        jitter_fraction=0.044,
    ),
    # BG/Q: "almost no loads during the collide function hit in the L2
    # cache" originally — a very low achieved-bandwidth fraction.
    ("BG/Q", "D3Q19"): CodeParams(
        bandwidth_fraction=0.14,
        issue_fraction=0.16,
        simd_lanes_used=1.0,
        work_overhead=1.40,
        schedule=ExchangeSchedule.BLOCKING,
        ghost_depth=0,
        message_latency_s=25e-6,
        jitter_fraction=0.0058,
    ),
    ("BG/Q", "D3Q39"): CodeParams(
        bandwidth_fraction=0.13,
        issue_fraction=0.14,
        simd_lanes_used=1.0,
        work_overhead=1.45,
        schedule=ExchangeSchedule.BLOCKING,
        ghost_depth=0,
        message_latency_s=25e-6,
        jitter_fraction=0.0058,
    ),
}


_EFFECTS: dict[tuple[str, str, OptimizationLevel], LevelEffect] = {}


def _add(machine: str, lattice: str, level: OptimizationLevel, effect: LevelEffect):
    _EFFECTS[(machine, lattice, level)] = effect


# --- GC: add the ghost-cell layer (both machines, both lattices) ----------
for _m in ("BG/P", "BG/Q"):
    for _l in ("D3Q19", "D3Q39"):
        _add(
            _m,
            _l,
            OptimizationLevel.GC,
            LevelEffect(
                ghost_depth=1,
                note="§V-A: ghost layer lets border data be exchanged as a "
                "block; collide no longer blocks on the neighbor's stream "
                "every plane (sync exposure drops from the no-GC regime).",
            ),
        )

# --- DH: data handling / cache-optimal loop order -------------------------
for _l in ("D3Q19", "D3Q39"):
    _add(
        "BG/P",
        _l,
        OptimizationLevel.DH,
        LevelEffect(
            bw_mult=1.30,
            issue_mult=1.12,
            overhead_mult=0.85,
            note="§V-B: 'a moderate impact on performance on the Blue "
            "Gene/P architecture, 30%' (better cache reuse also removes "
            "load stalls from the in-order PPC450 pipeline).",
        ),
    )
    _add(
        "BG/Q",
        _l,
        OptimizationLevel.DH,
        LevelEffect(
            bw_mult=1.75,
            overhead_mult=0.90,
            note="§V-B: 'a very significant impact of an 75% increase in "
            "MFlup/s on Blue Gene/Q ... due to the extensive cache "
            "hierarchy'.",
        ),
    )

# --- CF: compiler flags ----------------------------------------------------
for _l in ("D3Q19", "D3Q39"):
    _add(
        "BG/P",
        _l,
        OptimizationLevel.CF,
        LevelEffect(
            bw_mult=1.10,
            issue_mult=1.45,
            note="§V-C: O5 + qipa=2 whole-program alias analysis — "
            "'significant performance gain' on BG/P.",
        ),
    )
    _add(
        "BG/Q",
        _l,
        OptimizationLevel.CF,
        LevelEffect(
            bw_mult=2.50,
            issue_mult=1.80,
            note="§V-C: on BG/Q the right compiler settings 'increased the "
            "produced MFlup/s by 2.5x' (automatic unrolling + FP "
            "scheduling).",
        ),
    )

# --- LoBr: loop restructuring + branch removal ------------------------------
for _m, _bw in (("BG/P", 1.06), ("BG/Q", 1.25)):
    for _l in ("D3Q19", "D3Q39"):
        _add(
            _m,
            _l,
            OptimizationLevel.LOBR,
            LevelEffect(
                bw_mult=_bw,
                overhead_mult=0.88,
                note="§V-D: region-separated loops 'better take advantage "
                "of the cache and minimize index calculation'; inner-loop "
                "ifs replaced by stall-free for loops.",
            ),
        )

# --- NB-C: non-blocking communication ---------------------------------------
for _m in ("BG/P", "BG/Q"):
    for _l in ("D3Q19", "D3Q39"):
        _add(
            _m,
            _l,
            OptimizationLevel.NB_C,
            LevelEffect(
                schedule=ExchangeSchedule.NONBLOCKING_GC,
                latency_mult=0.8,
                note="§V-E: Irecv posted before the local stream, Isend at "
                "its completion — 'a small reduction in the communication "
                "overhead'.",
            ),
        )

# --- GC_C: split collide for ghost regions ------------------------------------
for _m in ("BG/P", "BG/Q"):
    for _l in ("D3Q19", "D3Q39"):
        _add(
            _m,
            _l,
            OptimizationLevel.GC_C,
            LevelEffect(
                schedule=ExchangeSchedule.GC_SPLIT,
                note="§V-F: border collided and sent before the ghost-region "
                "collide, 'hid[ing] the message latency by overlapping it "
                "with the ghost cell computation'.",
            ),
        )

# --- SIMD: intrinsics ----------------------------------------------------------
for _l in ("D3Q19", "D3Q39"):
    _add(
        "BG/P",
        _l,
        OptimizationLevel.SIMD,
        LevelEffect(
            simd_lanes=2.0,
            bw_mult=1.22 if _l == "D3Q19" else 1.16,
            issue_mult=1.05,
            note="§V-G: explicit double-hummer fpmadd intrinsics with "
            "16-byte alignment and #pragma disjoint (scalar code 'cut our "
            "potential hardware efficiency already in half').",
        ),
    )
    _add(
        "BG/Q",
        _l,
        OptimizationLevel.SIMD,
        LevelEffect(
            simd_lanes=2.0,
            bw_mult=1.22 if _l == "D3Q19" else 1.18,
            issue_mult=1.25,
            note="§V-G/§VI: QPX quad-word loads/stores and FMAs 'but were "
            "more limited' — 'the intrinsics provided less of an impact' "
            "on BG/Q since the compiler had already captured most of it; "
            "the wider D3Q39 inner loop vectorized slightly worse "
            "('without moving to vector doubles, we were not able to "
            "fully exploit QPX').",
        ),
    )


def base_params(machine: MachineSpec, lattice: VelocitySet) -> CodeParams:
    """Orig-state :class:`CodeParams` for a machine/lattice pair."""
    key = (_machine_key(machine), lattice.name)
    try:
        return _BASE[key]
    except KeyError:
        raise KeyError(
            f"no calibration for {machine.name} + {lattice.name}; the ladder "
            "covers the paper's D3Q19/D3Q39 on BG/P and BG/Q"
        ) from None


def ladder_states(
    machine: MachineSpec, lattice: VelocitySet
) -> list[tuple[OptimizationLevel, CodeParams]]:
    """Cumulative code states in Fig. 8 order (Orig first)."""
    mkey = _machine_key(machine)
    params = base_params(machine, lattice)
    states = [(OptimizationLevel.ORIG, params)]
    for level in LADDER[1:]:
        effect = _EFFECTS.get((mkey, lattice.name, level))
        if effect is not None:
            params = effect.apply(params)
        states.append((level, params))
    return states


def effect_note(
    machine: MachineSpec, lattice: VelocitySet, level: OptimizationLevel
) -> str:
    """The provenance note attached to one ladder entry."""
    eff = _EFFECTS.get((_machine_key(machine), lattice.name, level))
    return eff.note if eff else ""
