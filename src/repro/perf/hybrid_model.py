"""Hybrid MPI/OpenMP threading study (paper §VI-B, Fig. 11).

For a fixed global problem, sweeps tasks-per-node × threads-per-task
placements and reports the best runtime over ghost depths for each —
the paper plots "the time of the minimal ghost cell implementation".

The competing mechanisms (all in the cost model):

* more threads → saturate the node's memory system (a single thread
  drives only a fraction of ``Bm``), but pay OpenMP team overhead;
* more tasks → smaller subdomains, more ghost planes, more halo
  pack/copy traffic and on-node messages ("the number of ghost cells in
  a simulation is equal to the area of the cross sections of the number
  of domains multiplied by 2n");
* D3Q39's k = 3 halo makes the task-count penalty roughly three times
  the D3Q19 one, which is why hybrid placements win more clearly for
  the higher-order model (the paper's headline Fig. 11 observation).
"""

from __future__ import annotations

import dataclasses

from ..errors import DecompositionError, OutOfMemoryModelError
from ..lattice import VelocitySet
from ..machine.spec import MachineSpec
from .cost_model import CostModel, Placement, Workload
from .params import CodeParams

__all__ = ["HybridSweepPoint", "sweep_hybrid"]


@dataclasses.dataclass(frozen=True)
class HybridSweepPoint:
    """Best-over-depth runtime for one tasks×threads placement."""

    tasks_per_node: int
    threads_per_task: int
    runtime_s: float | None  # None = infeasible (memory or decomposition)
    best_depth: int | None

    @property
    def label(self) -> str:
        """Fig. 11b style axis label, e.g. ``"4-16"``."""
        return f"{self.tasks_per_node}-{self.threads_per_task}"


def sweep_hybrid(
    machine: MachineSpec,
    lattice: VelocitySet,
    params: CodeParams,
    workload: Workload,
    nodes: int,
    combos: tuple[tuple[int, int], ...],
    depths: tuple[int, ...] = (1, 2, 3, 4),
    check_memory: bool = True,
) -> list[HybridSweepPoint]:
    """Evaluate every tasks×threads combination on a fixed workload.

    Placements that oversubscribe the node's hardware threads, break
    the decomposition, or exceed node memory are returned with
    ``runtime_s=None`` rather than raising, so the harness can show the
    feasibility boundary the way the paper's figure does.
    """
    model = CostModel(machine, lattice)
    points: list[HybridSweepPoint] = []
    for tasks, threads in combos:
        placement = Placement(
            nodes=nodes, tasks_per_node=tasks, threads_per_task=threads
        )
        if tasks * threads > machine.max_threads_per_node:
            points.append(HybridSweepPoint(tasks, threads, None, None))
            continue
        best: tuple[float, int] | None = None
        for depth in depths:
            try:
                t = model.runtime_seconds(
                    params,
                    workload,
                    placement,
                    ghost_depth=depth,
                    check_memory=check_memory,
                )
            except (OutOfMemoryModelError, DecompositionError):
                continue
            if best is None or t < best[0]:
                best = (t, depth)
        if best is None:
            points.append(HybridSweepPoint(tasks, threads, None, None))
        else:
            points.append(HybridSweepPoint(tasks, threads, best[0], best[1]))
    return points


def best_point(points: list[HybridSweepPoint]) -> HybridSweepPoint:
    """The feasible placement with the smallest runtime."""
    feasible = [p for p in points if p.runtime_s is not None]
    if not feasible:
        raise ValueError("no feasible placement in sweep")
    return min(feasible, key=lambda p: p.runtime_s)
