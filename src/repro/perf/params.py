"""Mechanistic code-state parameters for the performance model.

A :class:`CodeParams` captures *how well the implementation uses the
hardware* at one point of the paper's optimization ladder.  The cost
model (:mod:`repro.perf.cost_model`) turns a ``CodeParams`` plus a
machine/lattice/workload into predicted step times and MFlup/s; the
ladder tables in :mod:`repro.perf.optimization` supply the per-level
parameter changes, each annotated with the paper sentence it encodes.

These are *calibrated constants* (see DESIGN.md §2): the paper measured
its C code on real Blue Genes; we carry the measured per-optimization
effects as data and let the mechanistic model produce every derived
curve (ladders, depth sweeps, threading sweeps) from them.
"""

from __future__ import annotations

import dataclasses

from ..parallel.schedules import ExchangeSchedule

__all__ = ["CodeParams"]


@dataclasses.dataclass(frozen=True)
class CodeParams:
    """State of the code at one optimization level.

    Attributes
    ----------
    bandwidth_fraction:
        Fraction of the node's main-store bandwidth ``Bm`` the
        stream/collide sweeps achieve (cache-friendliness; raised by the
        DH and CF levels).
    issue_fraction:
        Fraction of a core's scalar issue rate achieved in the collide
        ("max issue rate per core rose from 16.19% to 29.52%", §VI).
    simd_lanes_used:
        SIMD lanes effectively exploited (1 = scalar; raised by the SIMD
        level to the machine's width on BG/P, partially on BG/Q).
    work_overhead:
        Multiplier >= 1 on per-cell work for branches, redundant index
        arithmetic and divisions (reduced by DH and LoBr).
    schedule:
        Communication schedule (see
        :class:`~repro.parallel.schedules.ExchangeSchedule`).
    ghost_depth:
        Deep-halo depth; 0 = no ghost cells at all (the pre-GC state
        where the collide waits on neighbor borders every step).
    message_latency_s:
        Effective per-message software overhead (send/recv posting,
        matching, first-byte latency).
    jitter_fraction:
        Magnitude of per-rank compute-time imbalance feeding the
        event simulator (reduced by communication tuning only insofar
        as waits, not the jitter itself, are restructured).
    """

    bandwidth_fraction: float
    issue_fraction: float
    simd_lanes_used: float
    work_overhead: float
    schedule: ExchangeSchedule
    ghost_depth: int
    message_latency_s: float
    jitter_fraction: float

    def __post_init__(self) -> None:
        if not 0 < self.bandwidth_fraction <= 1:
            raise ValueError(f"bandwidth_fraction {self.bandwidth_fraction} not in (0,1]")
        if not 0 < self.issue_fraction <= 1:
            raise ValueError(f"issue_fraction {self.issue_fraction} not in (0,1]")
        if self.simd_lanes_used < 1:
            raise ValueError("simd_lanes_used must be >= 1")
        if self.work_overhead < 1:
            raise ValueError("work_overhead must be >= 1")
        if self.ghost_depth < 0:
            raise ValueError("ghost_depth must be >= 0")
        if self.message_latency_s < 0 or self.jitter_fraction < 0:
            raise ValueError("latency and jitter must be non-negative")

    def replace(self, **changes) -> "CodeParams":
        """Functional update (used by the ladder builder)."""
        return dataclasses.replace(self, **changes)
