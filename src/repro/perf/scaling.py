"""Strong- and weak-scaling predictions from the cost model.

Not a figure in the paper, but the question its §III-C torus analysis
answers implicitly: how far do the models scale before halo traffic and
imbalance dominate?  Used by ``examples/scaling_study.py`` and the
scaling shape tests.
"""

from __future__ import annotations

import dataclasses

from ..lattice import VelocitySet
from ..machine.spec import MachineSpec
from .cost_model import CostModel, Placement, Workload
from .params import CodeParams

__all__ = ["ScalingPoint", "strong_scaling", "weak_scaling"]


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One node count of a scaling sweep."""

    nodes: int
    mflups: float
    efficiency: float
    comm_fraction: float


def strong_scaling(
    machine: MachineSpec,
    lattice: VelocitySet,
    params: CodeParams,
    workload: Workload,
    node_counts: tuple[int, ...],
    tasks_per_node: int = 1,
    threads_per_task: int = 1,
) -> list[ScalingPoint]:
    """Fixed global problem, growing node count.

    Efficiency is relative to ideal scaling from the smallest count.
    """
    model = CostModel(machine, lattice)
    points: list[ScalingPoint] = []
    base_per_node: float | None = None
    for nodes in node_counts:
        placement = Placement(nodes, tasks_per_node, threads_per_task)
        b = model.step_breakdown(params, workload, placement)
        agg = b.mflups_per_node * nodes
        if base_per_node is None:
            base_per_node = agg / nodes
        efficiency = agg / (base_per_node * nodes)
        points.append(
            ScalingPoint(nodes, agg, efficiency, b.comm_fraction)
        )
    return points


def weak_scaling(
    machine: MachineSpec,
    lattice: VelocitySet,
    params: CodeParams,
    planes_per_node: int,
    cross_section: tuple[int, int],
    node_counts: tuple[int, ...],
    tasks_per_node: int = 1,
    threads_per_task: int = 1,
    steps: int = 300,
) -> list[ScalingPoint]:
    """Fixed per-node work, growing node count (and problem)."""
    model = CostModel(machine, lattice)
    ny, nz = cross_section
    points: list[ScalingPoint] = []
    base_per_node: float | None = None
    for nodes in node_counts:
        workload = Workload(lattice, (planes_per_node * nodes, ny, nz), steps=steps)
        placement = Placement(nodes, tasks_per_node, threads_per_task)
        b = model.step_breakdown(params, workload, placement)
        agg = b.mflups_per_node * nodes
        if base_per_node is None:
            base_per_node = agg / nodes
        efficiency = (agg / nodes) / base_per_node
        points.append(ScalingPoint(nodes, agg, efficiency, b.comm_fraction))
    return points
