"""Mechanistic per-step cost model.

Turns (machine, lattice, code state, workload, placement) into a
predicted time-step breakdown and MFlup/s.  The model is the paper's
§III-B roofline extended with the terms its §V/§VI optimizations act on:

``t_step = max(t_mem, t_flop) + t_ghost + t_pack + t_comm_exposed + t_sync``

* ``t_mem``   — population traffic at the achieved bandwidth fraction;
* ``t_flop``  — collide arithmetic at the achieved issue rate / SIMD
  width, with SMT and OpenMP efficiency for hybrid placements;
* ``t_ghost`` — the extra lattice updates of deep-halo ghost regions
  ("this requires extra computation to update the ghost cells", §V-A);
* ``t_pack``  — halo pack/unpack plus on-node copies between tasks;
* ``t_comm_exposed`` — off-node transfer + per-message latency, divided
  by the exchange period and scaled by the schedule's overlap;
* ``t_sync``  — load-imbalance waiting, the quantity Fig. 9 plots,
  scaled by how much slack the schedule gives (blocking collide-waits
  versus end-of-step sends versus GC-split overlap).

Everything is per *node* (the paper's Fig. 8 y-axis is aggregate over
128 nodes; multiply by ``placement.nodes``).
"""

from __future__ import annotations

import dataclasses

from ..errors import DecompositionError
from ..lattice import VelocitySet
from ..machine.memory import MemoryModel
from ..machine.roofline import flops_per_cell
from ..machine.spec import MachineSpec
from ..parallel.schedules import ExchangeSchedule
from .params import CodeParams

__all__ = ["Workload", "Placement", "StepBreakdown", "CostModel"]


@dataclasses.dataclass(frozen=True)
class Workload:
    """A periodic cubic LBM problem (paper §IV)."""

    lattice: VelocitySet
    global_shape: tuple[int, int, int]
    steps: int = 300

    @property
    def cells(self) -> int:
        nx, ny, nz = self.global_shape
        return nx * ny * nz

    @property
    def cross_section(self) -> int:
        """Cells per x plane (the decomposed axis)."""
        return self.global_shape[1] * self.global_shape[2]


@dataclasses.dataclass(frozen=True)
class Placement:
    """Nodes × tasks × threads (paper §VI-B)."""

    nodes: int
    tasks_per_node: int = 1
    threads_per_task: int = 1

    @property
    def total_ranks(self) -> int:
        return self.nodes * self.tasks_per_node

    @property
    def threads_per_node(self) -> int:
        return self.tasks_per_node * self.threads_per_task


@dataclasses.dataclass(frozen=True)
class StepBreakdown:
    """Per-node seconds spent in each phase of one time step."""

    compute_s: float
    ghost_s: float
    pack_s: float
    comm_exposed_s: float
    sync_s: float
    cells_per_node: float

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.ghost_s
            + self.pack_s
            + self.comm_exposed_s
            + self.sync_s
        )

    @property
    def mflups_per_node(self) -> float:
        """Owned-cell updates per second (ghost updates are overhead)."""
        return self.cells_per_node / self.total_s / 1e6

    @property
    def comm_fraction(self) -> float:
        """Share of the step spent in exposed communication + waiting."""
        return (self.comm_exposed_s + self.sync_s) / self.total_s


#: Per-core throughput multiplier from hardware threading (BG/Q A2 cores
#: need ≥2 threads to keep the issue pipes busy; BG/P has 1 thread/core).
_SMT_GAIN = {1: 1.0, 2: 1.45, 3: 1.65, 4: 1.85}

#: Single-thread achievable fraction of node bandwidth, and the thread
#: count at which the memory system saturates.
_BW_SATURATION = {
    "Blue Gene/P": (0.45, 4),
    "Blue Gene/Q": (0.08, 32),
}

#: OpenMP team overhead: efficiency 1/(1 + a(t-1) + b(t-1)^2).  Nearly
#: free for small teams (4 threads on BG/P: ~99%), increasingly costly
#: for huge teams (64 threads on BG/Q: ~40%) — fork/join, false sharing
#: and loop-scheduling imbalance grow superlinearly.
_OMP_ALPHA = 0.001
_OMP_BETA = 0.0004

#: Additional multiplicative compute tax per extra OpenMP thread
#: (synchronization at loop boundaries; favors moderate team sizes).
_OMP_TAX = 0.00042

#: On-node (shared-memory) message latency per message.
_SHM_LATENCY_S = 3e-6

#: Load-imbalance waits grow with partition size (max over more ranks);
#: logarithmic Gumbel-style scaling anchored at 128 ranks.
def _rank_noise_factor(total_ranks: int) -> float:
    import math

    return max(1.0, 1.0 + 0.8 * math.log(max(total_ranks, 1) / 128.0))

#: Load-imbalance exposure multipliers: how much of the per-rank compute
#: jitter turns into communication waiting under each schedule, without
#: and with ghost cells (paper Fig. 9's three curve families).
_SYNC_MULTIPLIER = {
    False: {  # no ghost cells: collide blocks on neighbor stream
        ExchangeSchedule.BLOCKING: 2.2,
        ExchangeSchedule.NONBLOCKING: 1.3,
        ExchangeSchedule.NONBLOCKING_GC: 1.3,
        ExchangeSchedule.GC_SPLIT: 1.3,
    },
    True: {  # ghost cells: sends at end of step / overlapped
        ExchangeSchedule.BLOCKING: 0.9,
        ExchangeSchedule.NONBLOCKING: 0.55,
        ExchangeSchedule.NONBLOCKING_GC: 0.45,
        ExchangeSchedule.GC_SPLIT: 0.12,
    },
}


class CostModel:
    """Predicts step times for one (machine, lattice) pair."""

    def __init__(self, machine: MachineSpec, lattice: VelocitySet) -> None:
        self.machine = machine
        self.lattice = lattice
        self.flops = flops_per_cell(lattice)
        self.bytes = lattice.bytes_per_cell
        self.memory = MemoryModel(lattice, machine.memory_per_node)

    # -- capability terms ------------------------------------------------

    def omp_efficiency(self, threads_per_task: int) -> float:
        """Parallel efficiency of one OpenMP team."""
        extra = threads_per_task - 1
        return 1.0 / (1.0 + _OMP_ALPHA * extra + _OMP_BETA * extra * extra)

    def effective_threads(self, placement: Placement) -> float:
        """Usable hardware threads per node after OpenMP overhead."""
        eff = placement.threads_per_node * self.omp_efficiency(
            placement.threads_per_task
        )
        return min(eff, self.machine.max_threads_per_node)

    def bandwidth_saturation(self, placement: Placement) -> float:
        """Fraction of node bandwidth reachable with this thread count."""
        sigma1, sat = _BW_SATURATION.get(
            self.machine.name, (1.0 / self.machine.cores_per_node, self.machine.cores_per_node)
        )
        t = self.effective_threads(placement)
        if sat <= 1:
            return 1.0
        return min(1.0, sigma1 + (1.0 - sigma1) * (t - 1) / (sat - 1))

    def node_bandwidth(self, params: CodeParams, placement: Placement) -> float:
        """Achieved main-store bandwidth, bytes/s."""
        return (
            self.machine.memory_bandwidth
            * params.bandwidth_fraction
            * self.bandwidth_saturation(placement)
        )

    def node_flops(self, params: CodeParams, placement: Placement) -> float:
        """Achieved flop rate, flop/s."""
        total = self.effective_threads(placement)
        cores = self.machine.cores_per_node
        active_cores = min(cores, total)
        tpc = max(1, int(round(total / active_cores))) if active_cores else 1
        tpc = min(tpc, self.machine.threads_per_core)
        smt = _SMT_GAIN.get(tpc, _SMT_GAIN[4])
        lanes = min(params.simd_lanes_used, self.machine.simd_width)
        fma = 2.0  # multiply + add per lane per cycle
        return (
            self.machine.clock_ghz
            * 1e9
            * active_cores
            * smt
            * fma
            * lanes
            * params.issue_fraction
        )

    # -- per-step phases ----------------------------------------------------

    def _local_planes(self, workload: Workload, placement: Placement) -> float:
        nx = workload.global_shape[0]
        if nx < placement.total_ranks:
            raise DecompositionError(
                f"{nx} planes over {placement.total_ranks} ranks"
            )
        return nx / placement.total_ranks

    def step_breakdown(
        self,
        params: CodeParams,
        workload: Workload,
        placement: Placement,
        ghost_depth: int | None = None,
        check_memory: bool = False,
    ) -> StepBreakdown:
        """Predict one time step's per-node phase times."""
        depth = params.ghost_depth if ghost_depth is None else ghost_depth
        has_gc = depth > 0
        depth_eff = max(1, depth)
        k = self.lattice.max_displacement
        width = depth_eff * k
        area = workload.cross_section
        q = self.lattice.q

        local_nx = self._local_planes(workload, placement)
        if check_memory:
            ny, nz = workload.global_shape[1], workload.global_shape[2]
            self.memory.require_fits(
                int(round(local_nx)), ny, nz, depth_eff, placement.tasks_per_node
            )

        cells_node = workload.cells / placement.nodes

        bw = self.node_bandwidth(params, placement)
        fl = self.node_flops(params, placement)
        t_cell = max(self.bytes / bw, self.flops * params.work_overhead / fl)
        # Per-iteration OpenMP synchronization tax on the compute sweeps.
        t_cell *= 1.0 + _OMP_TAX * (placement.threads_per_task - 1)
        t_compute = cells_node * t_cell

        # Ghost-region updates: the padded sweep streams through the
        # halo every step (k planes per side even at depth 1) and, for
        # deep halos, collides the shrinking validity window — on
        # average k*(d-1) extra collided planes plus 2k streamed ghost
        # planes per rank per step, i.e. k*(d+1) plane-updates of
        # overhead.  This is the cost the paper's §III-B model leaves
        # out ("the ghost cell implementation will add computation
        # cycles not accounted for in the flop/flup ratio").
        ghost_planes = k * (depth_eff + 1)
        t_ghost = placement.tasks_per_node * ghost_planes * area * t_cell

        # Pack and unpack both borders every exchange (deep-halo
        # payloads are strided across velocity blocks, so the unpack
        # cannot fold into the stream sweep), plus one-copy
        # shared-memory halo moves between tasks on the same node,
        # amortised over the exchange period.
        pack_bytes = 3.0 * width * area * q * 8
        copy_bytes = 1.0 * (placement.tasks_per_node - 1) * width * area * q * 8
        t_pack = (placement.tasks_per_node * pack_bytes + copy_bytes) / (
            self.machine.memory_bandwidth
        ) / depth_eff

        # Off-node transfer: the slab chain crosses each node boundary
        # once per direction; both directions run concurrently on the
        # bidirectional link pair.  On-node neighbor pairs exchange
        # through shared memory at a much smaller per-message latency.
        link_bw = self.machine.torus_link_bandwidth_software_gbs * 1e9
        bytes_side = width * area * q * 8
        t_transfer = bytes_side / link_bw
        latency = 2.0 * params.message_latency_s + 2.0 * (
            placement.tasks_per_node - 1
        ) * _SHM_LATENCY_S
        overlap = params.schedule.overlap_fraction if has_gc else 0.0
        t_comm = (1.0 - overlap) * (latency + t_transfer) / depth_eff

        # Load-imbalance waiting (the Fig. 9 quantity).  Per-step jitter
        # between exchanges partially cancels (random-walk), so waits
        # consolidate as 1/sqrt(depth) rather than 1/depth — the
        # mechanism that makes deep halos pay off for large subdomains
        # (Fig. 10 / Tables III-IV) but not small ones.
        # More tasks per node means more subdomain boundaries waiting
        # independently — exposure grows ~sqrt(tasks) (max of more
        # correlated waits).
        sync_mult = _SYNC_MULTIPLIER[has_gc][params.schedule]
        t_sync = (
            params.jitter_fraction
            * _rank_noise_factor(placement.total_ranks)
            * placement.tasks_per_node**0.5
            * (t_compute + t_ghost)
            * sync_mult
            / depth_eff**0.5
        )

        return StepBreakdown(
            compute_s=t_compute,
            ghost_s=t_ghost,
            pack_s=t_pack,
            comm_exposed_s=t_comm,
            sync_s=t_sync,
            cells_per_node=cells_node,
        )

    # -- top-level predictions ---------------------------------------------

    def mflups_aggregate(
        self,
        params: CodeParams,
        workload: Workload,
        placement: Placement,
        ghost_depth: int | None = None,
    ) -> float:
        """Aggregate MFlup/s over all nodes (Fig. 8 y-axis)."""
        b = self.step_breakdown(params, workload, placement, ghost_depth)
        return b.mflups_per_node * placement.nodes

    def runtime_seconds(
        self,
        params: CodeParams,
        workload: Workload,
        placement: Placement,
        ghost_depth: int | None = None,
        check_memory: bool = False,
    ) -> float:
        """Wall-clock for the whole run (Figs. 10/11 y-axis)."""
        b = self.step_breakdown(
            params, workload, placement, ghost_depth, check_memory=check_memory
        )
        return b.total_s * workload.steps
