"""Load-imbalance and jitter models for the event simulator.

The paper's Fig. 9 shows a spread of per-rank communication time from
4.8 s to 40 s over 300 steps under plain non-blocking communication —
"strong load imbalance".  On Blue Gene systems the compute cores are
nearly noise-free; such imbalance comes from persistent per-rank skew
(topology/route contention, partition edges) plus sporadic slow events
(I/O, daemons on I/O-forwarding paths).  We model both:

* ``persistent_skew`` — a per-rank multiplicative factor, most ranks
  within a few percent, a small straggler population markedly slower;
* ``spikes`` — per-(rank, step) exponential slow events with small
  probability.

All draws are deterministic given the seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["JitterModel"]


@dataclasses.dataclass(frozen=True)
class JitterModel:
    """Stochastic per-rank compute-time perturbations.

    Parameters
    ----------
    skew_sigma:
        Std-dev of the lognormal persistent per-rank skew.
    straggler_fraction:
        Fraction of ranks drawn as stragglers.
    straggler_slowdown:
        Mean extra slowdown of a straggler (e.g. 0.5 = +50%).
    spike_probability:
        Per-(rank, step) probability of a slow event.
    spike_scale_s:
        Mean duration of a slow event in seconds.
    seed:
        RNG seed (deterministic results).
    """

    skew_sigma: float = 0.005
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 0.0
    spike_probability: float = 0.01
    spike_scale_s: float = 0.05
    hotspot_fraction: float = 0.10
    hotspot_probability: float = 0.10
    hotspot_scale_s: float = 0.06
    contention_median_mult: float = 3.5
    contention_sigma: float = 0.9
    contention_max_mult: float = 20.0
    seed: int = 2013

    def persistent_skew(self, num_ranks: int) -> np.ndarray:
        """Per-rank multiplicative slowdown factors (>= ~1)."""
        rng = np.random.default_rng(self.seed)
        skew = np.exp(rng.normal(0.0, self.skew_sigma, size=num_ranks))
        stragglers = rng.random(num_ranks) < self.straggler_fraction
        skew = skew * np.where(
            stragglers,
            1.0 + rng.exponential(max(self.straggler_slowdown, 1e-12), size=num_ranks),
            1.0,
        )
        return skew

    def hotspot_mask(self, num_ranks: int) -> np.ndarray:
        """Boolean mask of ranks inside the noisy (contended) region.

        A contiguous block of ranks — e.g. sharing an I/O-forwarding
        path or a congested torus region — experiences frequent slow
        events; the rest of the partition is quiet.  This spatial
        structure is what produces the paper's wide min-to-max spread
        (4.8 s vs 40 s) under schedules without slack.
        """
        rng = np.random.default_rng(self.seed + 2)
        size = max(1, int(round(self.hotspot_fraction * num_ranks)))
        start = int(rng.integers(0, num_ranks))
        mask = np.zeros(num_ranks, dtype=bool)
        idx = (start + np.arange(size)) % num_ranks
        mask[idx] = True
        return mask

    def spikes(self, num_ranks: int, steps: int) -> np.ndarray:
        """Additive slow events, shape ``(steps, num_ranks)`` seconds."""
        rng = np.random.default_rng(self.seed + 1)
        hot = self.hotspot_mask(num_ranks)
        prob = np.where(hot, self.hotspot_probability, self.spike_probability)
        scale = np.where(hot, self.hotspot_scale_s, self.spike_scale_s)
        hit = rng.random((steps, num_ranks)) < prob[None, :]
        magnitude = rng.exponential(1.0, size=(steps, num_ranks)) * scale[None, :]
        return np.where(hit, magnitude, 0.0)

    def compute_times(
        self, base_seconds: float, num_ranks: int, steps: int
    ) -> np.ndarray:
        """Per-(step, rank) compute durations in seconds."""
        skew = self.persistent_skew(num_ranks)
        return base_seconds * skew[None, :] + self.spikes(num_ranks, steps)

    def message_contention(self, num_ranks: int, transfer_seconds: float) -> np.ndarray:
        """Per-rank per-message software/route cost in seconds.

        On a shared torus, ranks differ widely in per-message cost —
        adaptive-route detours, shared links with I/O traffic, rendezvous
        protocol stalls.  This is the heterogeneity behind the paper's
        Fig. 9 spread: the *same* message pattern costs one node
        4.8 s and another 40 s of MPI time over 300 steps.  Schedules
        with overlap hide this cost behind computation, which is exactly
        how GC/GC-C compress the spread ("the latency of the message
        passing can be hidden by the time for computing the ghost
        cells", §V-F).  Modelled as a lognormal multiple of the wire
        transfer time, deterministic per seed.
        """
        rng = np.random.default_rng(self.seed + 3)
        mult = self.contention_median_mult * np.exp(
            rng.normal(0.0, self.contention_sigma, size=num_ranks)
        )
        mult = np.minimum(mult, self.contention_max_mult)
        return transfer_seconds * mult
