"""Per-rank discrete-event timeline simulator (paper Fig. 9).

Simulates ``R`` ranks in the periodic 1-D exchange chain over ``T``
steps and records, per rank, the total time spent waiting in
``MPI_Waitall`` plus transferring — the paper's "time in communication".
Three schedule families, matching Fig. 9's legend:

* **NB-C** — non-blocking without ghost cells: the collide of step ``t``
  needs both neighbors' *stream* results of step ``t``; a slow neighbor
  stalls the rank mid-step and the stall cascades 1 hop/step along the
  chain.
* **NB-C & GC** — ghost cells: border data for step ``t+1`` is sent at
  the *end* of step ``t``, giving one collide of slack; only skew that
  outlives the slack is exposed.
* **GC-C** — split ghost collide: sends are posted *before* the
  ghost-region collide and receives are consumed *after* the next
  interior collide, widening the slack window at both ends so only
  extreme events surface (Fig. 7 of the paper).

The simulation is exact discrete-event bookkeeping over the supplied
per-(step, rank) compute times; the stochastic inputs come from
:class:`~repro.perf.noise.JitterModel`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..parallel.schedules import ExchangeSchedule
from .noise import JitterModel

__all__ = ["CommSimResult", "simulate_comm_times"]

#: Fraction of a step spent in stream (sends post after it under NB-C).
STREAM_FRACTION = 0.55

#: Fraction of a step spent colliding the ghost region (GC-C overlap window).
GHOST_COLLIDE_FRACTION = 0.10

#: Interior work done before ghost data is first consumed when the sweep
#: is ordered interior-first (slack window of the NB-C & GC schedule).
INTERIOR_SLACK_FRACTION = 0.40


@dataclasses.dataclass(frozen=True)
class CommSimResult:
    """Per-rank communication-time totals for one schedule."""

    schedule: ExchangeSchedule
    comm_seconds: np.ndarray  # (R,)
    elapsed_seconds: float

    @property
    def min(self) -> float:
        return float(self.comm_seconds.min())

    @property
    def median(self) -> float:
        return float(np.median(self.comm_seconds))

    @property
    def max(self) -> float:
        return float(self.comm_seconds.max())

    def summary(self) -> tuple[float, float, float]:
        """(min, median, max) — the paper's Fig. 9 triplet."""
        return (self.min, self.median, self.max)


def _neighbors(values: np.ndarray) -> np.ndarray:
    """Elementwise max of the two chain neighbors (periodic)."""
    return np.maximum(np.roll(values, 1), np.roll(values, -1))


def simulate_comm_times(
    schedule: ExchangeSchedule,
    num_ranks: int = 128,
    steps: int = 300,
    base_step_seconds: float = 0.11,
    transfer_seconds: float = 0.007,
    jitter: JitterModel | None = None,
    ghost_depth: int = 1,
) -> CommSimResult:
    """Run the timeline simulation for one schedule.

    Parameters
    ----------
    schedule:
        One of NB-C (``NONBLOCKING``), NB-C & GC (``NONBLOCKING_GC``),
        GC-C (``GC_SPLIT``) or ``BLOCKING``.
    num_ranks, steps:
        Chain length and number of time steps (Fig. 9 uses 300 steps).
    base_step_seconds:
        Nominal per-rank compute time per step.
    transfer_seconds:
        Wire time per exchange (both directions concurrent).
    jitter:
        Noise model; defaults to the calibrated :class:`JitterModel`.
    ghost_depth:
        Deep-halo depth: exchanges happen every ``ghost_depth`` steps
        (> 1 consolidates waits; used by the depth ablation bench).
    """
    jitter = jitter or JitterModel()
    compute = jitter.compute_times(base_step_seconds, num_ranks, steps)
    # Per-rank per-message software/route cost; the fraction not hidden
    # by the schedule's overlap is exposed on every exchange.
    contention = jitter.message_contention(num_ranks, transfer_seconds)
    exposed_contention = (1.0 - schedule.overlap_fraction) * contention

    end_prev = np.zeros(num_ranks)  # completion time of previous step
    send_prev = np.zeros(num_ranks)  # when the previous step's sends posted
    comm = np.zeros(num_ranks)

    for t in range(steps):
        c = compute[t]
        exchange_step = (t % ghost_depth) == 0
        if exchange_step:
            # Exposed route/software cost is charged to the rank's MPI
            # time but (to first order) does not shift the global
            # timeline: it is spent inside the network stack while
            # neighbors progress independently.
            comm += exposed_contention
        if schedule in (ExchangeSchedule.BLOCKING, ExchangeSchedule.NONBLOCKING):
            # Collide needs the neighbors' stream of *this* step.
            stream_done = end_prev + STREAM_FRACTION * c
            if exchange_step:
                # Blocking posts sends only when the exchange begins
                # (after stream); non-blocking pre-posts receives, which
                # shaves the transfer serialization, modelled as a
                # single vs double transfer charge.
                serial = 2.0 if schedule is ExchangeSchedule.BLOCKING else 1.0
                data_ready = _neighbors(stream_done) + serial * transfer_seconds
                wait = np.maximum(0.0, data_ready - stream_done)
                comm += wait + transfer_seconds
            else:
                wait = 0.0
            end = stream_done + wait + (1.0 - STREAM_FRACTION) * c
        elif schedule is ExchangeSchedule.NONBLOCKING_GC:
            # Sends were posted at the end of the previous step.  The
            # sweep is ordered interior-first, so the ghost data is only
            # consumed part-way into this step's stream — that interior
            # work is slack that absorbs neighbor delays.
            if exchange_step and t > 0:
                data_ready = _neighbors(send_prev) + transfer_seconds
                consume_at = end_prev + INTERIOR_SLACK_FRACTION * c
                wait = np.maximum(0.0, data_ready - consume_at)
                comm += wait + transfer_seconds
            else:
                wait = 0.0
            end = end_prev + wait + c
            send_prev = end  # posted at end of step
        elif schedule is ExchangeSchedule.GC_SPLIT:
            # Sends post before the ghost collide of the previous step
            # (earlier) and receives are consumed only after this step's
            # interior stream+collide (later) — slack on both sides
            # covering nearly the whole step (Fig. 7).
            if exchange_step and t > 0:
                data_ready = _neighbors(send_prev) + transfer_seconds
                consume_at = end_prev + (1.0 - GHOST_COLLIDE_FRACTION) * c
                wait = np.maximum(0.0, data_ready - consume_at)
                comm += wait + transfer_seconds
            else:
                wait = 0.0
            end = end_prev + wait + c
            send_prev = end - GHOST_COLLIDE_FRACTION * c
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unknown schedule {schedule}")
        end_prev = end

    return CommSimResult(
        schedule=schedule,
        comm_seconds=comm,
        elapsed_seconds=float(end_prev.max()),
    )
