"""Ghost-cell depth auto-tuning (paper §VI-A, Fig. 10, Tables III-IV).

Sweeps the deep-halo depth for a given workload/placement and reports
runtimes normalized to depth 1 — exactly the quantity the paper's
Fig. 10 plots — plus the optimal depth per fluid-size/processor ratio
(Tables III and IV).  Configurations whose padded slabs exceed the
machine-model memory budget are reported as out-of-memory, reproducing
the paper's observation that the 133k D3Q19 case "ran out of memory due
to the addition of the fourth ghost cell".
"""

from __future__ import annotations

import dataclasses

from ..errors import OutOfMemoryModelError
from ..lattice import VelocitySet
from ..machine.spec import MachineSpec
from ..parallel.schedules import ExchangeSchedule
from .cost_model import CostModel, Placement, Workload
from .params import CodeParams

__all__ = ["DepthSweepResult", "sweep_ghost_depth", "optimal_depth", "depth_table"]


@dataclasses.dataclass(frozen=True)
class DepthSweepResult:
    """Runtimes across ghost depths for one fluid size."""

    size_label: str
    depths: tuple[int, ...]
    runtimes_s: tuple[float | None, ...]  # None = out of memory

    @property
    def normalized(self) -> tuple[float | None, ...]:
        """Runtimes normalized to the depth-1 runtime (Fig. 10 y-axis)."""
        base = self.runtimes_s[self.depths.index(1)]
        if base is None:
            raise OutOfMemoryModelError(f"{self.size_label}: depth 1 does not fit")
        return tuple(r / base if r is not None else None for r in self.runtimes_s)

    @property
    def optimal_depth(self) -> int:
        """Depth with the smallest runtime among feasible ones."""
        feasible = [
            (r, d) for d, r in zip(self.depths, self.runtimes_s) if r is not None
        ]
        if not feasible:
            raise OutOfMemoryModelError(f"{self.size_label}: nothing fits")
        return min(feasible)[1]

    @property
    def oom_depths(self) -> tuple[int, ...]:
        """Depths that exceeded node memory."""
        return tuple(
            d for d, r in zip(self.depths, self.runtimes_s) if r is None
        )


def sweep_ghost_depth(
    machine: MachineSpec,
    lattice: VelocitySet,
    params: CodeParams,
    workload: Workload,
    placement: Placement,
    depths: tuple[int, ...] = (1, 2, 3, 4),
    size_label: str | None = None,
    check_memory: bool = True,
) -> DepthSweepResult:
    """Predict runtime at each ghost depth for one fluid system size.

    The depth study isolates the halo-depth trade-off: extra ghost-plane
    updates and memory versus d-fold fewer messages and consolidated
    (sqrt(d)) imbalance waits.
    """
    model = CostModel(machine, lattice)
    runtimes: list[float | None] = []
    for depth in depths:
        try:
            runtimes.append(
                model.runtime_seconds(
                    params,
                    workload,
                    placement,
                    ghost_depth=depth,
                    check_memory=check_memory,
                )
            )
        except OutOfMemoryModelError:
            runtimes.append(None)
    return DepthSweepResult(
        size_label=size_label or f"{workload.global_shape[0]}",
        depths=tuple(depths),
        runtimes_s=tuple(runtimes),
    )


def optimal_depth(
    machine: MachineSpec,
    lattice: VelocitySet,
    params: CodeParams,
    ratio: int,
    cross_section: tuple[int, int],
    placement: Placement,
    depths: tuple[int, ...] = (1, 2, 3, 4),
    steps: int = 300,
) -> int:
    """Optimal ghost depth for ``ratio`` lattice planes per processor."""
    ny, nz = cross_section
    workload = Workload(
        lattice, (ratio * placement.total_ranks, ny, nz), steps=steps
    )
    sweep = sweep_ghost_depth(
        machine,
        lattice,
        params,
        workload,
        placement,
        depths=depths,
        size_label=f"R={ratio}",
    )
    return sweep.optimal_depth


def depth_table(
    machine: MachineSpec,
    lattice: VelocitySet,
    params: CodeParams,
    ratios: tuple[int, ...],
    cross_section: tuple[int, int],
    placement: Placement,
    depths: tuple[int, ...] = (1, 2, 3, 4),
) -> list[tuple[int, int]]:
    """(ratio, optimal depth) rows — the reproduction of Tables III/IV.

    Note (DESIGN.md): the mechanistic model yields a *monotone*
    small-ratio→shallow / large-ratio→deep structure; the paper's
    measured tables contain a non-monotonic detail (depth 3 before
    depth 2 in the middle band) that does not emerge from a clean cost
    model and is reported as a discrepancy in EXPERIMENTS.md.
    """
    return [
        (
            r,
            optimal_depth(
                machine, lattice, params, r, cross_section, placement, depths
            ),
        )
        for r in ratios
    ]


def tuned_params_for_depth_study(params: CodeParams) -> CodeParams:
    """Code state used for the depth sweeps.

    The paper's Fig. 10 isolates the ghost-depth trade-off under the
    non-blocking + ghost-cell schedule (the GC-split overlap would mask
    the message cost the study varies), with everything else fully
    tuned.
    """
    return params.replace(schedule=ExchangeSchedule.NONBLOCKING_GC)
