"""Ablations of the cost model's design choices (DESIGN.md §3).

The model embeds three non-obvious mechanisms; each ablation removes
one and reports what breaks, in the spirit of "why is the model built
this way":

* **sqrt-depth wait consolidation** — per-step jitter between deep-halo
  exchanges partially cancels, so waits shrink like ``1/sqrt(d)``
  rather than ``1/d``.  Without it (full ``1/d``) deep halos look far
  too attractive and the Fig. 10 crossovers move well below the paper's
  ratio bands; with no consolidation at all (``1/1``) depth never pays.
* **GC-split overlap** — the Fig. 7 schedule hides ~90% of exposed
  message cost behind the ghost-region collide.  Removing it erases
  most of the GC_C ladder step.
* **SIMD lanes** — the paper: scalar code "cut our potential hardware
  efficiency already in half" on BG/P.  Forcing one lane at the top of
  the ladder shows the flop roofline re-binding.
"""

from __future__ import annotations

import dataclasses

from ..lattice import get_lattice
from ..machine import BLUE_GENE_P
from ..machine.spec import MachineSpec
from ..parallel.schedules import ExchangeSchedule
from .cost_model import CostModel, Placement, Workload
from .optimization import OptimizationLevel, ladder_states
from .tuner import sweep_ghost_depth, tuned_params_for_depth_study

__all__ = [
    "AblationResult",
    "ablate_depth_consolidation",
    "ablate_gc_split_overlap",
    "ablate_simd_lanes",
    "run_all_ablations",
]


@dataclasses.dataclass(frozen=True)
class AblationResult:
    """Outcome of one ablation."""

    name: str
    baseline: float
    ablated: float
    unit: str
    conclusion: str

    @property
    def change(self) -> float:
        """Relative change caused by the ablation."""
        return self.ablated / self.baseline - 1.0


def _optimal_depth_with_exponent(exponent: float) -> int:
    """Optimal Fig.-10a depth at the largest size under a modified
    wait-consolidation law ``1/d**exponent``."""
    import repro.perf.cost_model as cm

    lattice = get_lattice("D3Q19")
    params = tuned_params_for_depth_study(
        dict(ladder_states(BLUE_GENE_P, lattice))[OptimizationLevel.SIMD]
    )
    workload = Workload(lattice, (133000, 140, 140))
    placement = Placement(512, 4)

    original = cm.CostModel.step_breakdown

    def patched(self, p, wl, pl, ghost_depth=None, check_memory=False):
        depth = p.ghost_depth if ghost_depth is None else ghost_depth
        b = original(self, p, wl, pl, ghost_depth, check_memory)
        depth_eff = max(1, depth)
        # re-scale the sync term from 1/sqrt(d) to 1/d**exponent
        corrected = b.sync_s * depth_eff**0.5 / depth_eff**exponent
        return dataclasses.replace(b, sync_s=corrected)

    cm.CostModel.step_breakdown = patched
    try:
        sweep = sweep_ghost_depth(
            BLUE_GENE_P, lattice, params, workload, placement, depths=(1, 2, 3)
        )
        return sweep.optimal_depth
    finally:
        cm.CostModel.step_breakdown = original


def ablate_depth_consolidation() -> AblationResult:
    """Replace the sqrt-d wait consolidation with no consolidation."""
    baseline = _optimal_depth_with_exponent(0.5)
    ablated = _optimal_depth_with_exponent(0.0)
    return AblationResult(
        name="sqrt-depth wait consolidation",
        baseline=float(baseline),
        ablated=float(ablated),
        unit="optimal depth @133k",
        conclusion=(
            "without consolidated waits, deep halos lose their benefit and "
            "the Fig. 10 crossover disappears (optimal depth collapses to 1)"
        ),
    )


def ablate_gc_split_overlap(
    machine: MachineSpec = BLUE_GENE_P, lname: str = "D3Q39"
) -> AblationResult:
    """Remove the GC-split overlap from the final ladder state."""
    lattice = get_lattice(lname)
    states = dict(ladder_states(machine, lattice))
    params = states[OptimizationLevel.SIMD]
    model = CostModel(machine, lattice)
    placement = Placement(128, 4)
    workload = Workload(lattice, (placement.total_ranks * 96, 48, 48))
    baseline = model.mflups_aggregate(params, workload, placement)
    no_overlap = params.replace(schedule=ExchangeSchedule.NONBLOCKING_GC)
    ablated = model.mflups_aggregate(no_overlap, workload, placement)
    return AblationResult(
        name="GC-split communication overlap",
        baseline=baseline,
        ablated=ablated,
        unit="MFlup/s (128 BG/P nodes, D3Q39)",
        conclusion="reverting GC_C to plain non-blocking+GC costs throughput",
    )


def ablate_simd_lanes(
    machine: MachineSpec = BLUE_GENE_P, lname: str = "D3Q19"
) -> AblationResult:
    """Force scalar issue at the top of the ladder (paper §V-G)."""
    lattice = get_lattice(lname)
    params = dict(ladder_states(machine, lattice))[OptimizationLevel.SIMD]
    model = CostModel(machine, lattice)
    placement = Placement(128, 4)
    workload = Workload(lattice, (placement.total_ranks * 64, 128, 128))
    baseline = model.mflups_aggregate(params, workload, placement)
    scalar = params.replace(simd_lanes_used=1.0)
    ablated = model.mflups_aggregate(scalar, workload, placement)
    return AblationResult(
        name="SIMD lanes (double hummer)",
        baseline=baseline,
        ablated=ablated,
        unit="MFlup/s (128 BG/P nodes, D3Q19)",
        conclusion=(
            "scalar issue re-binds the flop roofline, losing a large "
            "fraction of the tuned throughput ('cut our potential hardware "
            "efficiency already in half')"
        ),
    )


def run_all_ablations() -> list[AblationResult]:
    """All ablations, for the bench harness."""
    return [
        ablate_depth_consolidation(),
        ablate_gc_split_overlap(),
        ablate_simd_lanes(),
    ]
