"""Exception types shared across the library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "LatticeError",
    "DecompositionError",
    "HaloValidityError",
    "OutOfMemoryModelError",
    "ScenarioError",
    "StabilityError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class LatticeError(ReproError):
    """A velocity set is malformed or used beyond its supported order."""


class DecompositionError(ReproError):
    """A domain cannot be decomposed as requested (too small, bad counts)."""


class HaloValidityError(ReproError):
    """A distributed step would read ghost cells whose data has expired."""


class OutOfMemoryModelError(ReproError):
    """The machine-model memory capacity would be exceeded.

    Mirrors the paper's Fig. 10 observation that the 133k D3Q19 case with
    ghost depth 4 'ran out of memory ... and could not complete'.
    """


class ScenarioError(ReproError):
    """A scenario case is misdeclared, unknown, or restored inconsistently."""


class StabilityError(ReproError):
    """The solver produced non-finite populations (unstable parameters)."""
