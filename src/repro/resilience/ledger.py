"""Durable failure ledger for the sweep fleet.

``failures.json`` lives beside ``queue.json`` in the sweep cache
directory and records every failed attempt at a variant, keyed by the
variant's content fingerprint.  Workers append attempt records under a
short-lived :func:`~repro.core.io.claim_lock` (the same claim-file
primitives that back leases, so it is safe across processes and hosts)
and the file itself is rewritten atomically — readers never see a torn
ledger.

Once a fingerprint accumulates ``max_attempts`` failures it is
**quarantined**: every worker skips it, the sweep terminates, and the
merge layer renders an explicit ``FAILED`` row instead of hanging or
crash-looping the fleet.  A successful run clears the fingerprint's
record, so transient failures leave no scar tissue.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import socket
import time
import traceback
from pathlib import Path
from typing import Any

from ..core.io import claim_lock

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "FAILURES_FILENAME",
    "FailureAttempt",
    "FailureLedger",
    "FailureRecord",
    "describe_exception",
]

FAILURES_FILENAME = "failures.json"
DEFAULT_MAX_ATTEMPTS = 3
_LEDGER_VERSION = 1
_MESSAGE_LIMIT = 500


def describe_exception(exc: BaseException) -> tuple[str, str, str]:
    """``(class name, truncated message, traceback digest)`` for *exc*.

    The digest is a short stable hash of the formatted traceback so the
    ledger can show *which* failure mode repeated without shipping whole
    tracebacks into a shared JSON file.
    """
    name = type(exc).__name__
    message = str(exc)
    if len(message) > _MESSAGE_LIMIT:
        message = message[: _MESSAGE_LIMIT - 3] + "..."
    formatted = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    digest = hashlib.sha256(formatted.encode()).hexdigest()[:16]
    return name, message, digest


@dataclasses.dataclass(frozen=True)
class FailureAttempt:
    """One failed attempt at a variant."""

    worker: str
    host: str
    pid: int
    exception: str
    message: str
    digest: str
    at: float

    def to_payload(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FailureAttempt":
        return cls(
            worker=str(payload.get("worker", "")),
            host=str(payload.get("host", "")),
            pid=int(payload.get("pid", 0)),
            exception=str(payload.get("exception", "")),
            message=str(payload.get("message", "")),
            digest=str(payload.get("digest", "")),
            at=float(payload.get("at", 0.0)),
        )


@dataclasses.dataclass
class FailureRecord:
    """All recorded attempts at one fingerprint."""

    fingerprint: str
    attempts: list[FailureAttempt] = dataclasses.field(default_factory=list)
    quarantined_at: float | None = None

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def quarantined(self) -> bool:
        return self.quarantined_at is not None

    @property
    def last(self) -> FailureAttempt | None:
        return self.attempts[-1] if self.attempts else None

    def next_retry_at(self, backoff: float, cap: float = 60.0) -> float:
        """Earliest time this variant should be retried.

        Exponential in the attempt count — ``backoff * 2**(n-1)``
        seconds after the latest failure, capped at ``cap``.
        """
        last = self.last
        if last is None or backoff <= 0:
            return 0.0
        delay = min(backoff * (2.0 ** (self.attempt_count - 1)), cap)
        return last.at + delay

    def to_payload(self) -> dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "attempts": [attempt.to_payload() for attempt in self.attempts],
            "quarantined_at": self.quarantined_at,
        }

    @classmethod
    def from_payload(
        cls, fingerprint: str, payload: dict[str, Any]
    ) -> "FailureRecord":
        raw_attempts = payload.get("attempts", [])
        attempts = [
            FailureAttempt.from_payload(item)
            for item in raw_attempts
            if isinstance(item, dict)
        ]
        quarantined_at = payload.get("quarantined_at")
        return cls(
            fingerprint=fingerprint,
            attempts=attempts,
            quarantined_at=(
                float(quarantined_at) if quarantined_at is not None else None
            ),
        )


class FailureLedger:
    """Read/write view of one sweep's ``failures.json``.

    Construction touches nothing on disk; reading a missing or corrupt
    ledger yields an empty view (a torn ledger must never take the
    fleet down with it).  Writes go through a claim lock plus an atomic
    temp-file rename.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.path = self.root / FAILURES_FILENAME
        self.lock_path = self.root / (FAILURES_FILENAME + ".lock")
        self.max_attempts = int(max_attempts)

    # -- reading -----------------------------------------------------------

    def load(self) -> dict[str, FailureRecord]:
        """Every record on file (tolerant: absent/corrupt -> empty)."""
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        failures = raw.get("failures")
        if not isinstance(failures, dict):
            return {}
        records: dict[str, FailureRecord] = {}
        for fingerprint, payload in failures.items():
            if isinstance(payload, dict):
                records[str(fingerprint)] = FailureRecord.from_payload(
                    str(fingerprint), payload
                )
        return records

    def record(self, fingerprint: str) -> FailureRecord | None:
        return self.load().get(fingerprint)

    def attempt_count(self, fingerprint: str) -> int:
        record = self.record(fingerprint)
        return 0 if record is None else record.attempt_count

    def is_quarantined(self, fingerprint: str) -> bool:
        record = self.record(fingerprint)
        return record is not None and record.quarantined

    def quarantined(self) -> dict[str, FailureRecord]:
        """Quarantined records only, keyed by fingerprint."""
        return {
            fingerprint: record
            for fingerprint, record in self.load().items()
            if record.quarantined
        }

    # -- writing -----------------------------------------------------------

    def record_failure(
        self,
        fingerprint: str,
        exc: BaseException,
        *,
        worker: str = "",
    ) -> FailureRecord:
        """Append one failed attempt; quarantine at ``max_attempts``.

        Returns the updated record (check ``.quarantined`` to learn
        whether this attempt was the variant's last).
        """
        exception, message, digest = describe_exception(exc)
        attempt = FailureAttempt(
            worker=worker,
            host=socket.gethostname(),
            pid=os.getpid(),
            exception=exception,
            message=message,
            digest=digest,
            at=time.time(),
        )
        with claim_lock(self.lock_path):
            records = self.load()
            record = records.setdefault(fingerprint, FailureRecord(fingerprint))
            record.attempts.append(attempt)
            if (
                record.quarantined_at is None
                and record.attempt_count >= self.max_attempts
            ):
                record.quarantined_at = attempt.at
            self._save(records)
        return record

    def clear(self, fingerprint: str) -> bool:
        """Drop a fingerprint's record after a successful run."""
        if not self.path.exists():
            return False
        with claim_lock(self.lock_path):
            records = self.load()
            if fingerprint not in records:
                return False
            del records[fingerprint]
            self._save(records)
        return True

    def _save(self, records: dict[str, FailureRecord]) -> None:
        payload = {
            "version": _LEDGER_VERSION,
            "failures": {
                fingerprint: record.to_payload()
                for fingerprint, record in sorted(records.items())
            },
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, self.path)
