"""Deterministic fault injection for the sweep fleet.

A :class:`FaultPlan` is a JSON document (usually pointed at by the
``$REPRO_FAULT_PLAN`` environment variable) listing faults to fire at
fixed points in the worker loop.  Nothing is random: each fault matches
on the variant (by fingerprint prefix or queue index), the injection
site, the attempt number and/or the worker id, and fires a bounded
number of ``times``.  The firing budget is enforced with ``O_EXCL``
marker files under ``<cache-dir>/fault-state/`` written *before* the
action runs, so even a ``crash`` fault fires exactly once across any
number of competing worker processes — chaos runs replay identically
and their surviving tables can be asserted byte-for-byte against clean
runs.

Plan schema (``"version": 1``)::

    {"version": 1, "faults": [
        {"id": "crash-once",         # unique name (marker-file key)
         "action": "crash",          # crash|raise|slow|corrupt-write|lose-lease
         "site": "run",              # claim|run|commit   (default "run")
         "index": 0,                 # match queue item index ...
         "fingerprint": "ab12",      # ... and/or fingerprint prefix
         "attempt": 1,               # only this attempt number
         "worker": "w1",             # only this worker id
         "times": 1,                 # firing budget (null = unlimited)
         "seconds": 0.5,             # slow: sleep duration
         "message": "injected"}      # raise: exception text
    ]}

Actions:

* ``crash`` — ``os._exit(137)``: the worker dies without releasing its
  lease, exercising stale-lease reclamation.
* ``raise`` — raise :class:`InjectedFault`, exercising the failure
  ledger / retry / quarantine path.
* ``slow`` — sleep ``seconds``, exercising timeouts and reclaim races.
* ``corrupt-write`` — truncate the variant's just-written cache entry,
  exercising corrupt-entry quarantine and re-warm.
* ``lose-lease`` — delete the worker's own lease file, exercising the
  lost-lease path.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Any

from ..errors import ReproError

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_STATE_DIRNAME",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
FAULT_STATE_DIRNAME = "fault-state"
_PLAN_VERSION = 1

SITES = ("claim", "run", "commit")
ACTIONS = ("crash", "raise", "slow", "corrupt-write", "lose-lease")


class InjectedFault(ReproError):
    """An exception raised on purpose by a fault plan."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault: where it fires, what it does, and its budget."""

    id: str
    action: str
    site: str = "run"
    fingerprint: str | None = None
    index: int | None = None
    attempt: int | None = None
    worker: str | None = None
    times: int | None = 1
    seconds: float = 0.0
    message: str = "injected fault"

    def matches(
        self,
        site: str,
        *,
        fingerprint: str,
        index: int | None,
        attempt: int,
        worker: str,
    ) -> bool:
        if site != self.site:
            return False
        if self.fingerprint is not None and not fingerprint.startswith(
            self.fingerprint
        ):
            return False
        if self.index is not None and index != self.index:
            return False
        if self.attempt is not None and attempt != self.attempt:
            return False
        if self.worker is not None and worker != self.worker:
            return False
        return True

    @classmethod
    def from_payload(cls, payload: dict[str, Any], position: int) -> "FaultSpec":
        known = {
            "id",
            "action",
            "site",
            "fingerprint",
            "index",
            "attempt",
            "worker",
            "times",
            "seconds",
            "message",
        }
        unknown = set(payload) - known
        if unknown:
            raise ReproError(
                f"fault #{position}: unknown key(s) {sorted(unknown)}"
            )
        action = payload.get("action")
        if action not in ACTIONS:
            raise ReproError(
                f"fault #{position}: action must be one of {ACTIONS}, "
                f"got {action!r}"
            )
        site = payload.get("site", "run")
        if site not in SITES:
            raise ReproError(
                f"fault #{position}: site must be one of {SITES}, got {site!r}"
            )
        times = payload.get("times", 1)
        if times is not None:
            times = int(times)
            if times < 1:
                raise ReproError(f"fault #{position}: times must be >= 1")
        seconds = float(payload.get("seconds", 0.0))
        if seconds < 0:
            raise ReproError(f"fault #{position}: seconds must be >= 0")
        index = payload.get("index")
        attempt = payload.get("attempt")
        return cls(
            id=str(payload.get("id", f"fault{position}")),
            action=str(action),
            site=str(site),
            fingerprint=(
                None
                if payload.get("fingerprint") is None
                else str(payload["fingerprint"])
            ),
            index=None if index is None else int(index),
            attempt=None if attempt is None else int(attempt),
            worker=(
                None if payload.get("worker") is None else str(payload["worker"])
            ),
            times=times,
            seconds=seconds,
            message=str(payload.get("message", "injected fault")),
        )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A validated, immutable set of faults."""

    faults: tuple[FaultSpec, ...]
    path: Path | None = None

    @classmethod
    def from_payload(
        cls, payload: dict[str, Any], path: Path | None = None
    ) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ReproError("fault plan must be a JSON object")
        version = payload.get("version", _PLAN_VERSION)
        if version != _PLAN_VERSION:
            raise ReproError(f"unsupported fault plan version {version!r}")
        raw_faults = payload.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ReproError("fault plan 'faults' must be a list")
        faults = []
        seen: set[str] = set()
        for position, item in enumerate(raw_faults):
            if not isinstance(item, dict):
                raise ReproError(f"fault #{position}: must be an object")
            spec = FaultSpec.from_payload(item, position)
            if spec.id in seen:
                raise ReproError(f"duplicate fault id {spec.id!r}")
            seen.add(spec.id)
            faults.append(spec)
        return cls(faults=tuple(faults), path=path)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise ReproError(f"cannot read fault plan {path}: {exc}") from exc
        except ValueError as exc:
            raise ReproError(f"invalid JSON in fault plan {path}: {exc}") from exc
        return cls.from_payload(payload, path=path)

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> "FaultPlan | None":
        """The plan named by ``$REPRO_FAULT_PLAN``, or ``None``."""
        env = os.environ if environ is None else environ
        path = env.get(FAULT_PLAN_ENV, "").strip()
        return cls.load(path) if path else None

    def arm(self, root: str | Path) -> "FaultInjector":
        """Bind this plan to a sweep cache dir (holds the marker state)."""
        return FaultInjector(self, root)


class FaultInjector:
    """Fires a plan's faults at the worker's injection points."""

    def __init__(self, plan: FaultPlan, root: str | Path) -> None:
        self.plan = plan
        self.state_dir = Path(root) / FAULT_STATE_DIRNAME

    def fire(
        self,
        site: str,
        *,
        fingerprint: str,
        index: int | None = None,
        attempt: int = 1,
        worker: str = "",
        cache: Any = None,
        board: Any = None,
    ) -> None:
        """Execute every matching fault with remaining budget."""
        for fault in self.plan.faults:
            if not fault.matches(
                site,
                fingerprint=fingerprint,
                index=index,
                attempt=attempt,
                worker=worker,
            ):
                continue
            if not self._claim_firing(fault, fingerprint, worker):
                continue
            self._execute(fault, fingerprint=fingerprint, cache=cache, board=board)

    def _claim_firing(self, fault: FaultSpec, fingerprint: str, worker: str) -> bool:
        """Atomically consume one unit of the fault's firing budget.

        The marker is written *before* the action runs so a ``crash``
        fault cannot fire again on the reclaiming worker.
        """
        if fault.times is None:
            return True
        self.state_dir.mkdir(parents=True, exist_ok=True)
        for firing in range(fault.times):
            marker = self.state_dir / f"{fault.id}.{firing}.fired"
            try:
                fd = os.open(marker, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(
                    json.dumps(
                        {
                            "fault": fault.id,
                            "firing": firing,
                            "fingerprint": fingerprint,
                            "worker": worker,
                            "at": time.time(),
                        },
                        sort_keys=True,
                    )
                )
            return True
        return False

    def _execute(
        self,
        fault: FaultSpec,
        *,
        fingerprint: str,
        cache: Any,
        board: Any,
    ) -> None:
        if fault.action == "crash":
            os._exit(137)
        if fault.action == "raise":
            raise InjectedFault(f"{fault.message} [{fault.id}]")
        if fault.action == "slow":
            time.sleep(fault.seconds)
            return
        if fault.action == "corrupt-write":
            if cache is None:
                return
            path = Path(cache.entry_path(fingerprint))
            try:
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])
            except OSError:
                pass
            return
        if fault.action == "lose-lease":
            if board is None:
                return
            try:
                Path(board.path(fingerprint)).unlink()
            except OSError:
                pass
            return
