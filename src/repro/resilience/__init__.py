"""Fault tolerance for the sweep fleet.

Two halves:

* :mod:`repro.resilience.ledger` — the durable **failure ledger**
  (``failures.json`` beside ``queue.json``): per-fingerprint attempt
  records and poison-variant quarantine, shared by every worker via the
  same claim-file primitives that back leases.
* :mod:`repro.resilience.faults` — **deterministic fault injection**
  (``$REPRO_FAULT_PLAN``): crashes, injected exceptions, slow steps,
  torn cache writes and lost leases fired at fixed points so chaos runs
  are exactly reproducible.
"""

from .faults import (
    FAULT_PLAN_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from .ledger import (
    DEFAULT_MAX_ATTEMPTS,
    FAILURES_FILENAME,
    FailureAttempt,
    FailureLedger,
    FailureRecord,
)

__all__ = [
    "DEFAULT_MAX_ATTEMPTS",
    "FAILURES_FILENAME",
    "FAULT_PLAN_ENV",
    "FailureAttempt",
    "FailureLedger",
    "FailureRecord",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
]
