"""One module per reproduced paper artifact + registry."""

from .base import ExperimentResult
from .registry import EXPERIMENTS, available_experiments, run_all, run_experiment

__all__ = [
    "available_experiments",
    "EXPERIMENTS",
    "ExperimentResult",
    "run_all",
    "run_experiment",
]
