"""Registry of all reproduced paper artifacts.

Maps the experiment ids of DESIGN.md's per-experiment index to the
callables that regenerate them.
"""

from __future__ import annotations

from typing import Callable

from . import fig8, fig9, fig10, fig11, table1, table2, tables34
from .base import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "available_experiments", "run_all"]

EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig8a": lambda: fig8.run("BG/P"),
    "fig8b": lambda: fig8.run("BG/Q"),
    "fig9": fig9.run,
    "fig10a": lambda: fig10.run("fig10a"),
    "fig10b": lambda: fig10.run("fig10b"),
    "tables34": tables34.run,
    "fig11a": lambda: fig11.run("fig11a"),
    "fig11b": lambda: fig11.run("fig11b"),
}


def available_experiments() -> tuple[str, ...]:
    """Sorted ids of every reproduced table/figure."""
    return tuple(sorted(EXPERIMENTS))


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id; raises ``KeyError`` with hints on a miss."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(available_experiments())}"
        ) from None
    return runner()


def run_all() -> dict[str, ExperimentResult]:
    """Run every registered experiment (used by ``python -m repro``)."""
    return {eid: run_experiment(eid) for eid in available_experiments()}
