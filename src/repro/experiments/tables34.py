"""Tables III & IV — optimal ghost depth vs lattice points per processor."""

from __future__ import annotations

from ..analysis.paper_reference import TABLE3, TABLE4
from ..lattice import get_lattice
from ..machine import BLUE_GENE_P, BLUE_GENE_Q
from ..perf import Placement, depth_table, ladder_states
from ..perf.optimization import OptimizationLevel
from ..perf.tuner import tuned_params_for_depth_study
from .base import ExperimentResult

__all__ = ["run"]

#: Ratios probed (per-processor plane counts within the paper's ranges).
TABLE3_RATIOS = (4, 8, 16, 24, 32, 48, 64)
TABLE4_RATIOS = (128, 256, 400, 532, 680, 800)


def _paper_depth(table, ratio):
    for (lo, hi), depth in table:
        if lo < ratio <= hi:
            return depth
    return None


def run() -> ExperimentResult:
    """Regenerate the optimal-depth tables for both lattices."""
    rows = []
    checks: dict[str, object] = {}

    lat19 = get_lattice("D3Q19")
    params19 = tuned_params_for_depth_study(
        dict(ladder_states(BLUE_GENE_P, lat19))[OptimizationLevel.SIMD]
    )
    for ratio, depth in depth_table(
        BLUE_GENE_P, lat19, params19, TABLE3_RATIOS, (140, 140), Placement(512, 4)
    ):
        paper = _paper_depth(TABLE3, ratio)
        rows.append(["III (D3Q19)", ratio, depth, paper])
        checks[f"t3/{ratio}"] = depth

    lat39 = get_lattice("D3Q39")
    params39 = tuned_params_for_depth_study(
        dict(ladder_states(BLUE_GENE_Q, lat39))[OptimizationLevel.SIMD]
    )
    for ratio, depth in depth_table(
        BLUE_GENE_Q, lat39, params39, TABLE4_RATIOS, (40, 40), Placement(16, 16)
    ):
        paper = _paper_depth(TABLE4, ratio)
        rows.append(["IV (D3Q39)", ratio, depth, paper])
        checks[f"t4/{ratio}"] = depth

    return ExperimentResult(
        experiment_id="tables34",
        title="Tables III & IV: optimal ghost depth vs lattice points/processor",
        headers=["table", "points/proc", "model optimal", "paper"],
        rows=rows,
        checks=checks,
        notes=(
            "The mechanistic model reproduces the monotone structure "
            "(shallow at small ratios, depth>=2 beyond the paper's "
            "crossover band).  The paper's mid-band non-monotonicity "
            "(depth 3 before depth 2) does not emerge from a clean cost "
            "model; see EXPERIMENTS.md."
        ),
    )
