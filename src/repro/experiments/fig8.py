"""Fig. 8 — MFlup/s across the optimization ladder, 128 nodes.

Canonical workloads (cross-section and planes-per-rank chosen to match
the paper's machine memory budgets; see DESIGN.md):

* BG/P runs in virtual-node mode (4 tasks/node), as the paper's 2048-
  processor studies do; BG/Q runs 32 tasks/node unthreaded ("128 nodes
  using 32 tasks per node with an unthreaded implementation", §VI).
"""

from __future__ import annotations

from ..analysis.paper_reference import FIG8_ENDPOINTS
from ..lattice import get_lattice
from ..machine import BLUE_GENE_P, BLUE_GENE_Q, roofline
from ..perf import CostModel, Placement, Workload, ladder_states
from .base import ExperimentResult

__all__ = ["run", "FIG8_CONFIGS"]

#: (machine, placement, planes per rank, cross-section edge)
FIG8_CONFIGS = {
    ("BG/P", "D3Q19"): (BLUE_GENE_P, Placement(128, 4), 64, 128),
    ("BG/P", "D3Q39"): (BLUE_GENE_P, Placement(128, 4), 96, 48),
    ("BG/Q", "D3Q19"): (BLUE_GENE_Q, Placement(128, 32), 64, 128),
    ("BG/Q", "D3Q39"): (BLUE_GENE_Q, Placement(128, 32), 128, 64),
}


def run(machine_key: str = "BG/P") -> ExperimentResult:
    """Regenerate Fig. 8a (``"BG/P"``) or Fig. 8b (``"BG/Q"``)."""
    if machine_key not in ("BG/P", "BG/Q"):
        raise ValueError(f"machine_key must be 'BG/P' or 'BG/Q', got {machine_key!r}")
    rows = []
    series: dict[str, list[float]] = {}
    checks: dict[str, float] = {}
    for lname in ("D3Q19", "D3Q39"):
        machine, placement, r_per_rank, area = FIG8_CONFIGS[(machine_key, lname)]
        lat = get_lattice(lname)
        model = CostModel(machine, lat)
        workload = Workload(lat, (placement.total_ranks * r_per_rank, area, area))
        peak = roofline(machine, lat).attainable_mflups * placement.nodes
        values = []
        for level, params in ladder_states(machine, lat):
            agg = model.mflups_aggregate(params, workload, placement)
            values.append(agg)
            rows.append([lname, level.value, f"{agg:.0f}", f"{agg / peak:.1%}"])
        series[lname] = values
        series[f"{lname}/peak"] = [peak]
        paper_frac, paper_imp = FIG8_ENDPOINTS[(machine_key, lname)]
        checks[f"{lname}/final_over_peak"] = values[-1] / peak
        checks[f"{lname}/improvement"] = values[-1] / values[0]
        checks[f"{lname}/paper_final_over_peak"] = paper_frac
        checks[f"{lname}/paper_improvement"] = paper_imp
        checks[f"{lname}/monotone"] = all(
            b > a for a, b in zip(values, values[1:])
        )
    fig_id = "fig8a" if machine_key == "BG/P" else "fig8b"
    return ExperimentResult(
        experiment_id=fig_id,
        title=f"Fig. 8 ({machine_key}): optimization ladder, aggregate MFlup/s on 128 nodes",
        headers=["lattice", "level", "MFlup/s", "of model peak"],
        rows=rows,
        series=series,
        checks=checks,
    )
