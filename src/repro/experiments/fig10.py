"""Fig. 10 — runtime vs deep-halo depth across fluid sizes.

* Fig. 10a: D3Q19 on 2048 BG/P processors (512 nodes in virtual-node
  mode), x-extents 8k..133k, cross-section 140x140 — chosen so the node
  memory budget reproduces the paper's out-of-memory failure at
  (133k, GC=4).
* Fig. 10b: D3Q39 on 16 BG/Q nodes x 16 tasks x 1 thread (the paper's
  stated configuration), x-extents 16k..200k, cross-section 40x40
  (bounded by the 16 GB/node footprint at R=800 per rank).
"""

from __future__ import annotations

from ..analysis.paper_reference import FIG10A_SIZES, FIG10B_SIZES
from ..lattice import get_lattice
from ..machine import BLUE_GENE_P, BLUE_GENE_Q
from ..perf import Placement, Workload, ladder_states, sweep_ghost_depth
from ..perf.optimization import OptimizationLevel
from ..perf.tuner import tuned_params_for_depth_study
from .base import ExperimentResult

__all__ = ["run", "FIG10_CONFIGS"]

#: (machine, placement, sizes, cross-section edge)
FIG10_CONFIGS = {
    "fig10a": ("D3Q19", BLUE_GENE_P, Placement(512, 4), FIG10A_SIZES, 140),
    "fig10b": ("D3Q39", BLUE_GENE_Q, Placement(16, 16), FIG10B_SIZES, 40),
}

DEPTHS = (1, 2, 3, 4)


def run(which: str = "fig10a") -> ExperimentResult:
    """Regenerate Fig. 10a or Fig. 10b."""
    if which not in FIG10_CONFIGS:
        raise ValueError(f"which must be 'fig10a' or 'fig10b', got {which!r}")
    lname, machine, placement, sizes, edge = FIG10_CONFIGS[which]
    lat = get_lattice(lname)
    params = tuned_params_for_depth_study(
        dict(ladder_states(machine, lat))[OptimizationLevel.SIMD]
    )
    rows = []
    series: dict[str, list] = {}
    checks: dict[str, object] = {}
    for size in sizes:
        workload = Workload(lat, (size, edge, edge), steps=300)
        sweep = sweep_ghost_depth(
            machine,
            lat,
            params,
            workload,
            placement,
            depths=DEPTHS,
            size_label=f"{size // 1000}k",
        )
        norm = sweep.normalized
        rows.append(
            [sweep.size_label]
            + ["OOM" if n is None else f"{n:.3f}" for n in norm]
            + [sweep.optimal_depth]
        )
        series[sweep.size_label] = list(norm)
        checks[f"{sweep.size_label}/optimal"] = sweep.optimal_depth
        checks[f"{sweep.size_label}/oom"] = sweep.oom_depths
    return ExperimentResult(
        experiment_id=which,
        title=(
            f"Fig. 10 ({lname} on {machine.name}): runtime vs ghost depth, "
            "normalized to GC=1"
        ),
        headers=["size"] + [f"GC={d}" for d in DEPTHS] + ["optimal"],
        rows=rows,
        series=series,
        checks=checks,
        notes=(
            "Paper shape: GC=1 optimal at small sizes; GC=2-3 win at the "
            "largest sizes; the 133k D3Q19 case runs out of memory at GC=4."
        ),
    )
