"""Fig. 11 — hybrid MPI/OpenMP threading study.

* Fig. 11a: 32 BG/P nodes; 1-4 threads on one task vs virtual-node mode
  (4 tasks x 1 thread).  Global size fixed at the paper's maximum
  ratios: 66 planes/processor (D3Q19), 800 planes/processor (D3Q39),
  relative to the 128-processor VN reference.
* Fig. 11b: 16 BG/Q nodes; the paper's tasks-threads combinations.

Each runtime is the best over ghost depths 1-4 ("the time of the
minimal ghost cell implementation is shown").
"""

from __future__ import annotations

from ..analysis.paper_reference import FIG11B_OPTIMUM
from ..lattice import get_lattice
from ..machine import BLUE_GENE_P, BLUE_GENE_Q
from ..perf import Workload, best_point, ladder_states, sweep_hybrid
from ..perf.optimization import OptimizationLevel
from .base import ExperimentResult

__all__ = ["run", "FIG11A_COMBOS", "FIG11B_COMBOS"]

FIG11A_COMBOS = ((1, 1), (1, 2), (1, 3), (1, 4), (4, 1))
FIG11A_LABELS = ("1T", "2T", "3T", "4T", "VN")

FIG11B_COMBOS = (
    (1, 64),
    (2, 32),
    (4, 1),
    (4, 4),
    (4, 8),
    (4, 16),
    (8, 8),
    (16, 1),
    (16, 2),
    (16, 3),
    (16, 4),
    (32, 1),
    (32, 2),
    (64, 1),
)

#: (lattice, machine, nodes, planes per reference processor, area edge,
#: reference processor count for the global size)
_CONFIGS = {
    "fig11a": (BLUE_GENE_P, 32, {"D3Q19": (66, 64, 128), "D3Q39": (800, 28, 128)}),
    "fig11b": (BLUE_GENE_Q, 16, {"D3Q19": (66, 128, 256), "D3Q39": (800, 40, 256)}),
}


def run(which: str = "fig11a") -> ExperimentResult:
    """Regenerate Fig. 11a or Fig. 11b."""
    if which not in _CONFIGS:
        raise ValueError(f"which must be 'fig11a' or 'fig11b', got {which!r}")
    machine, nodes, lat_cfg = _CONFIGS[which]
    combos = FIG11A_COMBOS if which == "fig11a" else FIG11B_COMBOS
    rows = []
    series: dict[str, list] = {}
    checks: dict[str, object] = {}
    for lname, (r_per_proc, edge, ref_procs) in lat_cfg.items():
        lat = get_lattice(lname)
        params = dict(ladder_states(machine, lat))[OptimizationLevel.SIMD]
        workload = Workload(lat, (r_per_proc * ref_procs, edge, edge), steps=300)
        points = sweep_hybrid(machine, lat, params, workload, nodes, combos)
        labels = (
            FIG11A_LABELS if which == "fig11a" else [p.label for p in points]
        )
        for label, p in zip(labels, points):
            rows.append(
                [
                    lname,
                    label,
                    "infeasible" if p.runtime_s is None else f"{p.runtime_s:.1f}",
                    p.best_depth if p.best_depth is not None else "-",
                ]
            )
        series[lname] = [p.runtime_s for p in points]
        best = best_point(points)
        if which == "fig11a":
            by_label = dict(zip(labels, points))
            checks[f"{lname}/t4_runtime"] = by_label["4T"].runtime_s
            checks[f"{lname}/vn_runtime"] = by_label["VN"].runtime_s
            checks[f"{lname}/t1_runtime"] = by_label["1T"].runtime_s
            checks[f"{lname}/t4_depth"] = by_label["4T"].best_depth
        else:
            checks[f"{lname}/best"] = (best.tasks_per_node, best.threads_per_task)
            checks[f"{lname}/paper_best"] = FIG11B_OPTIMUM
    return ExperimentResult(
        experiment_id=which,
        title=f"Fig. 11 ({machine.name}): hybrid tasks x threads study",
        headers=["lattice", "placement", "runtime (s)", "best depth"],
        rows=rows,
        series=series,
        checks=checks,
        notes=(
            "Paper anchors: threading helps both models; on BG/P the D3Q39 "
            "4-thread hybrid with ghost depth 2 beats virtual-node mode; on "
            "BG/Q the optimum is 4 tasks x 16 threads for both models."
        ),
    )
