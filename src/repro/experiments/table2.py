"""Table II + §III-C — roofline bounds for both machines and lattices."""

from __future__ import annotations

from ..analysis.paper_reference import TABLE2, TORUS_LOWER_BOUNDS
from ..lattice import get_lattice
from ..machine import BLUE_GENE_P, BLUE_GENE_Q, roofline, torus_lower_bound
from .base import ExperimentResult

__all__ = ["run"]

_MACHINES = {"BG/P": BLUE_GENE_P, "BG/Q": BLUE_GENE_Q}


def run() -> ExperimentResult:
    """Regenerate Table II and the §III-C torus lower bounds."""
    rows = []
    checks: dict[str, float] = {}
    for lname in ("D3Q19", "D3Q39"):
        lat = get_lattice(lname)
        for mkey, machine in _MACHINES.items():
            r = roofline(machine, lat)
            torus = torus_lower_bound(machine, lat)
            paper = TABLE2[(mkey, lname)]
            rows.append(
                [
                    lname,
                    mkey,
                    f"{machine.memory_bandwidth_gbs:g} GB/s",
                    f"{r.p_bandwidth_mflups:.1f}",
                    f"{paper[1]:.1f}",
                    f"{machine.peak_gflops:g} GF/s",
                    f"{r.p_peak_mflups:.1f}",
                    f"{paper[3]:.1f}",
                    r.limiter.value,
                    f"{torus:.1f}",
                    f"{TORUS_LOWER_BOUNDS[(mkey, lname)]:.1f}",
                ]
            )
            checks[f"{mkey}/{lname}/p_bm"] = r.p_bandwidth_mflups
            checks[f"{mkey}/{lname}/p_peak"] = r.p_peak_mflups
            checks[f"{mkey}/{lname}/torus"] = torus
            checks[f"{mkey}/{lname}/limiter"] = r.limiter.value
    return ExperimentResult(
        experiment_id="table2",
        title="Table II: attainable MFlup/s (model vs paper)",
        headers=[
            "lattice",
            "system",
            "Bm",
            "P(Bm)",
            "paper",
            "Ppeak",
            "P(Ppeak)",
            "paper",
            "limiter",
            "torus LB",
            "paper",
        ],
        rows=rows,
        checks=checks,
        notes="In all cases the code is bandwidth limited (paper Table II).",
    )
