"""Fig. 9 — per-rank communication-time distribution by schedule.

300 time steps on a 1024-rank 1-D chain with the calibrated jitter /
route-contention model; D3Q39 steps cost ~2x D3Q19's and its halo
messages are ~3x larger (k = 3) on top of the 39/19 population ratio.
"""

from __future__ import annotations

from ..parallel.schedules import ExchangeSchedule
from ..perf import simulate_comm_times
from .base import ExperimentResult

__all__ = ["run", "FIG9_SCHEDULES"]

FIG9_SCHEDULES = (
    ("NB-C", ExchangeSchedule.NONBLOCKING),
    ("NB-C & GC", ExchangeSchedule.NONBLOCKING_GC),
    ("GC-C", ExchangeSchedule.GC_SPLIT),
)

#: Per-model (base step seconds, transfer seconds): D3Q39 moves ~2x the
#: population bytes per cell and 3x the halo planes.
FIG9_MODEL_COSTS = {"D3Q19": (0.11, 0.007), "D3Q39": (0.20, 0.014)}

NUM_RANKS = 1024
STEPS = 300


def run() -> ExperimentResult:
    """Regenerate Fig. 9 (min/median/max comm seconds per schedule)."""
    rows = []
    series: dict[str, list[float]] = {}
    checks: dict[str, float] = {}
    for lname, (base, transfer) in FIG9_MODEL_COSTS.items():
        for label, schedule in FIG9_SCHEDULES:
            result = simulate_comm_times(
                schedule,
                num_ranks=NUM_RANKS,
                steps=STEPS,
                base_step_seconds=base,
                transfer_seconds=transfer,
            )
            mn, med, mx = result.summary()
            rows.append([lname, label, f"{mn:.1f}", f"{med:.1f}", f"{mx:.1f}"])
            series[f"{lname}/{label}"] = [mn, med, mx]
            checks[f"{lname}/{label}/max"] = mx
            checks[f"{lname}/{label}/min"] = mn
    return ExperimentResult(
        experiment_id="fig9",
        title="Fig. 9: time in communication (s) over 300 steps — min/median/max",
        headers=["lattice", "schedule", "min", "median", "max"],
        rows=rows,
        series=series,
        checks=checks,
        notes=(
            "Paper anchors (D3Q19): NB-C spans 4.8s..40s; GC-C compresses "
            "the spread to ~3-5s."
        ),
    )
