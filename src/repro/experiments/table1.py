"""Table I — parameters of the two discrete velocity models."""

from __future__ import annotations

from ..lattice import get_lattice
from .base import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate Table I (both halves, shell by shell)."""
    rows = []
    for name in ("D3Q19", "D3Q39"):
        lat = get_lattice(name)
        for shell in lat.shells:
            vel, weight, order, dist = shell.as_row()
            rows.append([name, str(lat.cs2), vel, weight, order, dist, shell.size])
    q19, q39 = get_lattice("D3Q19"), get_lattice("D3Q39")
    return ExperimentResult(
        experiment_id="table1",
        title="Table I: discrete velocity model parameters",
        headers=["lattice", "cs^2", "xi_i", "w_i", "neighbor order", "distance", "shell size"],
        rows=rows,
        checks={
            "q19": q19.q,
            "q39": q39.q,
            "q19_isotropy": q19.isotropy_order(),
            "q39_isotropy": q39.isotropy_order(),
            "q19_k": q19.max_displacement,
            "q39_k": q39.max_displacement,
        },
        notes=(
            "Note: the paper's printed (2,2,0) weight '1/142' is corrected "
            "to the Shan-Yuan-Chen value 1/432 (weights must sum to 1; "
            "verified by exact rational arithmetic)."
        ),
    )
