"""Hybrid MPI/OpenMP programming-model descriptions (paper §VI-B).

A :class:`HybridConfig` fixes how a node's cores are split between MPI
tasks (each owning a subdomain, hence contributing ghost cells) and
OpenMP threads (which parallelise within a subdomain without adding
ghost cells).  The paper's key observation: threading "reduces the
number of domains of interest that the problem is broken into, thus
directly reducing the number of ghost cells used" — for any depth ``n``
the total ghost-cell count is (cross-section area) × (number of domains)
× 2n.
"""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["HybridConfig"]


@dataclasses.dataclass(frozen=True)
class HybridConfig:
    """A tasks-per-node × threads-per-task placement on ``nodes`` nodes."""

    nodes: int
    tasks_per_node: int
    threads_per_task: int

    def __post_init__(self) -> None:
        if min(self.nodes, self.tasks_per_node, self.threads_per_task) < 1:
            raise ValueError("nodes, tasks and threads must all be >= 1")

    @property
    def total_ranks(self) -> int:
        """MPI ranks = subdomains = nodes × tasks."""
        return self.nodes * self.tasks_per_node

    @property
    def hardware_threads_per_node(self) -> int:
        """Hardware thread slots this placement occupies per node."""
        return self.tasks_per_node * self.threads_per_task

    def fits(self, cores_per_node: int, threads_per_core: int) -> bool:
        """Whether the placement fits the node's thread capacity."""
        return self.hardware_threads_per_node <= cores_per_node * threads_per_core

    def ghost_cells_total(self, cross_section: int, depth: int, k: int) -> int:
        """Total ghost cells in a 1-D decomposition with this placement.

        ``cross_section`` is ny×nz; each of the ``total_ranks`` domains
        carries ``2 * depth * k`` ghost planes (paper §VI-B: "the number
        of ghost cells in a simulation is equal to the area of the cross
        sections of the number of domains multiplied by 2n").
        """
        return self.total_ranks * 2 * depth * k * cross_section

    def ghost_bytes_total(
        self,
        cross_section: int,
        depth: int,
        k: int,
        q: int,
        dtype: "np.dtype | str | type" = np.float64,
    ) -> int:
        """Population bytes held in ghost cells under the dtype policy.

        ``ghost_cells_total`` × Q populations × the population dtype's
        itemsize — the storage-side counterpart of the halo exchange's
        ledger bytes, which ``dtype="float32"`` halves.
        """
        return (
            self.ghost_cells_total(cross_section, depth, k)
            * q
            * np.dtype(dtype).itemsize
        )

    @property
    def label(self) -> str:
        """Axis label in the style of the paper's Fig. 11b ("4-16")."""
        return f"{self.tasks_per_node}-{self.threads_per_task}"
