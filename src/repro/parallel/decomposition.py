"""1-D slab domain decomposition (paper §IV).

The paper deliberately restricts the study to "a three-dimensional fluid
system with one-dimensional domain decomposition" so that ghost-cell
depth effects can be analysed directly.  :class:`Slab1D` splits the x
axis of a global grid across ranks as evenly as possible (first
``nx % R`` ranks get one extra plane) with periodic neighbor topology.
"""

from __future__ import annotations

import dataclasses

from ..errors import DecompositionError

__all__ = ["Slab1D"]


@dataclasses.dataclass(frozen=True)
class Slab1D:
    """Balanced 1-D decomposition of ``global_nx`` planes over ``num_ranks``.

    Attributes
    ----------
    global_nx:
        Extent of the decomposed (x) axis.
    num_ranks:
        Number of subdomains.
    """

    global_nx: int
    num_ranks: int

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise DecompositionError("need at least one rank")
        if self.global_nx < self.num_ranks:
            raise DecompositionError(
                f"cannot split {self.global_nx} planes over {self.num_ranks} ranks"
            )

    def local_size(self, rank: int) -> int:
        """Number of x planes owned by ``rank``."""
        self._check(rank)
        base, extra = divmod(self.global_nx, self.num_ranks)
        return base + (1 if rank < extra else 0)

    def start(self, rank: int) -> int:
        """Global x index of the first plane owned by ``rank``."""
        self._check(rank)
        base, extra = divmod(self.global_nx, self.num_ranks)
        return rank * base + min(rank, extra)

    def stop(self, rank: int) -> int:
        """One past the last global x index owned by ``rank``."""
        return self.start(rank) + self.local_size(rank)

    def owner(self, global_x: int) -> int:
        """Rank owning global plane ``global_x``."""
        if not 0 <= global_x < self.global_nx:
            raise DecompositionError(f"global x {global_x} out of range")
        for rank in range(self.num_ranks):
            if self.start(rank) <= global_x < self.stop(rank):
                return rank
        raise AssertionError("unreachable")

    def left_neighbor(self, rank: int) -> int:
        """Periodic left (−x) neighbor."""
        self._check(rank)
        return (rank - 1) % self.num_ranks

    def right_neighbor(self, rank: int) -> int:
        """Periodic right (+x) neighbor."""
        self._check(rank)
        return (rank + 1) % self.num_ranks

    def validate_halo(self, halo_width: int) -> None:
        """Every rank must own at least ``halo_width`` planes.

        Otherwise a halo of that width would span more than one neighbor,
        which the 1-neighbor exchange pattern (and the paper's code)
        does not support.
        """
        min_local = min(self.local_size(r) for r in range(self.num_ranks))
        if min_local < halo_width:
            raise DecompositionError(
                f"halo width {halo_width} exceeds smallest subdomain "
                f"({min_local} planes); use fewer ranks or shallower halos"
            )

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise DecompositionError(
                f"rank {rank} out of range [0, {self.num_ranks})"
            )
