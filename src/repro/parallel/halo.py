"""Deep-halo ghost-cell management (paper §V-A).

A slab subdomain of ``L`` planes is stored padded with ``H = depth * k``
ghost planes on each x side, where

* ``k`` is the lattice's fundamental halo thickness (max planes a
  population crosses per step: 1 for D3Q19, 3 for D3Q39), and
* ``depth`` is the *ghost-cell depth* of the paper's Figs. 10/Tables
  III-IV: exchanging every ``depth`` steps instead of every step.

After an exchange the ghost data is valid for ``depth`` streaming steps;
each step consumes ``k`` planes of validity per side.  The
:class:`HaloSlab` tracks the remaining validity and exposes the slice
that may legally be collided each sub-step; reading expired ghost data
is made loud by NaN-filling in :func:`~repro.core.streaming.stream_padded`
plus an explicit :class:`~repro.errors.HaloValidityError` guard here.

The exchange itself ships, per side, the outermost ``H`` *interior*
planes to the neighbor (the same total bytes per macro-cycle as depth-1;
``depth``-fold fewer messages — asserted against the message ledger in
tests, matching the paper's §VI-A claim).  Payloads travel through
per-slab preallocated contiguous send/receive buffers at the slab's
population dtype, so the exchange makes no per-call heap allocations
and the message ledger's byte counts reflect the real payload width
(float32 halves them, exactly as the paper's B(Q) analysis predicts).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.fields import resolve_dtype
from ..errors import HaloValidityError
from ..lattice import VelocitySet

__all__ = ["HaloSpec", "HaloSlab"]

#: Message tags for the two exchange directions.
TAG_TO_RIGHT = 11
TAG_TO_LEFT = 12


@dataclasses.dataclass(frozen=True)
class HaloSpec:
    """Ghost-layer geometry for one lattice and exchange depth.

    ``depth`` follows the paper's convention: "a ghost cell depth of 2
    would include 2k additional cells at each side" (§V-A).
    """

    k: int
    depth: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"fundamental halo thickness k must be >= 1, got {self.k}")
        if self.depth < 1:
            raise ValueError(f"ghost depth must be >= 1, got {self.depth}")

    @property
    def width(self) -> int:
        """Ghost planes per side: ``depth * k``."""
        return self.depth * self.k

    @classmethod
    def for_lattice(cls, lattice: VelocitySet, depth: int = 1) -> "HaloSpec":
        """Halo spec with ``k`` taken from the lattice."""
        return cls(k=lattice.max_displacement, depth=depth)


class HaloSlab:
    """A halo-padded slab of populations for one rank.

    Storage shape is ``(Q, 2*width + L, ny, nz)``; the interior (owned)
    region is ``[width, width + L)`` along x.  ``dtype`` follows the
    repo's population dtype policy (``None`` = float64); it sizes the
    storage, the scratch buffer and the exchange payload buffers alike.
    """

    def __init__(
        self,
        lattice: VelocitySet,
        local_nx: int,
        ny: int,
        nz: int,
        spec: HaloSpec,
        dtype: "np.dtype | str | None" = None,
    ) -> None:
        if local_nx < spec.width:
            raise HaloValidityError(
                f"subdomain of {local_nx} planes cannot source a halo of "
                f"width {spec.width}"
            )
        self.lattice = lattice
        self.local_nx = local_nx
        self.spec = spec
        self.dtype = resolve_dtype(dtype)
        shape = (lattice.q, local_nx + 2 * spec.width, ny, nz)
        self.data = np.full(shape, np.nan, dtype=self.dtype)
        # The legacy stream_padded path double-buffers through `scratch`;
        # the planned slab kernel writes back in place and never touches
        # it, so it is allocated on first use.
        self._scratch: np.ndarray | None = None
        # Exchange payload buffers, one contiguous (Q, width, ny, nz)
        # block per direction: packs copy live border planes in (so the
        # fabric may hold a stable reference instead of re-copying) and
        # receives land here before being unpacked into the ghosts.
        payload_shape = (lattice.q, spec.width, ny, nz)
        self._send_right = np.empty(payload_shape, dtype=self.dtype)
        self._send_left = np.empty(payload_shape, dtype=self.dtype)
        #: Preallocated receive buffers (hand these to ``SimMPI.irecv``).
        self.recv_from_left = np.empty(payload_shape, dtype=self.dtype)
        self.recv_from_right = np.empty(payload_shape, dtype=self.dtype)
        #: Remaining valid ghost planes per side (0 .. width).
        self.validity = 0

    @property
    def scratch(self) -> np.ndarray:
        """Streaming double-buffer (legacy path only), lazily allocated."""
        if self._scratch is None:
            self._scratch = np.empty_like(self.data)
        return self._scratch

    @scratch.setter
    def scratch(self, value: np.ndarray) -> None:
        self._scratch = value

    # -- geometry ------------------------------------------------------------

    @property
    def width(self) -> int:
        return self.spec.width

    @property
    def interior(self) -> slice:
        """x slice of owned planes within the padded array."""
        return slice(self.width, self.width + self.local_nx)

    def interior_view(self) -> np.ndarray:
        """View of the owned populations, shape ``(Q, L, ny, nz)``."""
        return self.data[:, self.interior]

    def compute_window(self) -> slice:
        """x slice on which post-stream data is currently exact.

        Immediately after streaming with ``validity`` remaining, the
        exact region spans ``validity`` ghost planes on each side of the
        interior (validity already decremented by the caller).
        """
        return slice(self.width - self.validity, self.width + self.local_nx + self.validity)

    # -- exchange payloads ------------------------------------------------------

    def _check_payload(self, payload: np.ndarray) -> None:
        if payload.shape != (self.lattice.q, self.width, *self.data.shape[2:]):
            raise HaloValidityError(
                f"bad halo payload shape {payload.shape}"
            )
        if payload.dtype != self.dtype:
            raise HaloValidityError(
                f"halo payload dtype {payload.dtype.name} != slab dtype "
                f"{self.dtype.name} (the dtype policy must reach both "
                "ends of an exchange)"
            )

    def pack_to_right(self) -> np.ndarray:
        """Border planes the right neighbor needs (my last ``width``
        interior planes), copied into the preallocated contiguous send
        buffer — a stable, honestly-sized payload (``nbytes`` is exactly
        what crosses the wire at this slab's dtype), not a strided view
        of live ``data``."""
        np.copyto(
            self._send_right,
            self.data[:, self.local_nx : self.width + self.local_nx],
        )
        return self._send_right

    def pack_to_left(self) -> np.ndarray:
        """Border planes the left neighbor needs (my first ``width``
        interior planes), copied into the preallocated send buffer."""
        np.copyto(self._send_left, self.data[:, self.width : 2 * self.width])
        return self._send_left

    def unpack_from_left(self, payload: np.ndarray) -> None:
        """Fill my left ghost planes with the left neighbor's border."""
        self._check_payload(payload)
        self.data[:, : self.width] = payload

    def unpack_from_right(self, payload: np.ndarray) -> None:
        """Fill my right ghost planes with the right neighbor's border."""
        self._check_payload(payload)
        self.data[:, self.width + self.local_nx :] = payload

    def mark_exchanged(self) -> None:
        """Reset validity after a completed exchange."""
        self.validity = self.spec.width

    def consume_step(self) -> None:
        """Account one streaming step: ``k`` ghost planes expire per side.

        Raises :class:`HaloValidityError` if the ghosts are already too
        thin to support another step — the caller must exchange first.
        """
        if self.validity < self.spec.k:
            raise HaloValidityError(
                f"halo exhausted: validity {self.validity} < k {self.spec.k}; "
                "exchange required before stepping"
            )
        self.validity -= self.spec.k

    @property
    def steps_until_exchange(self) -> int:
        """How many more steps can run before an exchange is mandatory."""
        return self.validity // self.spec.k
