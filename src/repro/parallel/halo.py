"""Deep-halo ghost-cell management (paper §V-A).

A slab subdomain of ``L`` planes is stored padded with ``H = depth * k``
ghost planes on each x side, where

* ``k`` is the lattice's fundamental halo thickness (max planes a
  population crosses per step: 1 for D3Q19, 3 for D3Q39), and
* ``depth`` is the *ghost-cell depth* of the paper's Figs. 10/Tables
  III-IV: exchanging every ``depth`` steps instead of every step.

After an exchange the ghost data is valid for ``depth`` streaming steps;
each step consumes ``k`` planes of validity per side.  The
:class:`HaloSlab` tracks the remaining validity and exposes the slice
that may legally be collided each sub-step; reading expired ghost data
is made loud by NaN-filling in :func:`~repro.core.streaming.stream_padded`
plus an explicit :class:`~repro.errors.HaloValidityError` guard here.

The exchange itself ships, per side, the outermost ``H`` *interior*
planes to the neighbor (the same total bytes per macro-cycle as depth-1;
``depth``-fold fewer messages — asserted against the message ledger in
tests, matching the paper's §VI-A claim).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import HaloValidityError
from ..lattice import VelocitySet

__all__ = ["HaloSpec", "HaloSlab"]

#: Message tags for the two exchange directions.
TAG_TO_RIGHT = 11
TAG_TO_LEFT = 12


@dataclasses.dataclass(frozen=True)
class HaloSpec:
    """Ghost-layer geometry for one lattice and exchange depth.

    ``depth`` follows the paper's convention: "a ghost cell depth of 2
    would include 2k additional cells at each side" (§V-A).
    """

    k: int
    depth: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"fundamental halo thickness k must be >= 1, got {self.k}")
        if self.depth < 1:
            raise ValueError(f"ghost depth must be >= 1, got {self.depth}")

    @property
    def width(self) -> int:
        """Ghost planes per side: ``depth * k``."""
        return self.depth * self.k

    @classmethod
    def for_lattice(cls, lattice: VelocitySet, depth: int = 1) -> "HaloSpec":
        """Halo spec with ``k`` taken from the lattice."""
        return cls(k=lattice.max_displacement, depth=depth)


class HaloSlab:
    """A halo-padded slab of populations for one rank.

    Storage shape is ``(Q, 2*width + L, ny, nz)``; the interior (owned)
    region is ``[width, width + L)`` along x.
    """

    def __init__(
        self,
        lattice: VelocitySet,
        local_nx: int,
        ny: int,
        nz: int,
        spec: HaloSpec,
    ) -> None:
        if local_nx < spec.width:
            raise HaloValidityError(
                f"subdomain of {local_nx} planes cannot source a halo of "
                f"width {spec.width}"
            )
        self.lattice = lattice
        self.local_nx = local_nx
        self.spec = spec
        shape = (lattice.q, local_nx + 2 * spec.width, ny, nz)
        self.data = np.full(shape, np.nan)
        self.scratch = np.empty_like(self.data)
        #: Remaining valid ghost planes per side (0 .. width).
        self.validity = 0

    # -- geometry ------------------------------------------------------------

    @property
    def width(self) -> int:
        return self.spec.width

    @property
    def interior(self) -> slice:
        """x slice of owned planes within the padded array."""
        return slice(self.width, self.width + self.local_nx)

    def interior_view(self) -> np.ndarray:
        """View of the owned populations, shape ``(Q, L, ny, nz)``."""
        return self.data[:, self.interior]

    def compute_window(self) -> slice:
        """x slice on which post-stream data is currently exact.

        Immediately after streaming with ``validity`` remaining, the
        exact region spans ``validity`` ghost planes on each side of the
        interior (validity already decremented by the caller).
        """
        return slice(self.width - self.validity, self.width + self.local_nx + self.validity)

    # -- exchange payloads ------------------------------------------------------

    def pack_to_right(self) -> np.ndarray:
        """Border planes the right neighbor needs (my last ``width`` planes)."""
        return self.data[:, self.width + self.local_nx - self.width : self.width + self.local_nx]

    def pack_to_left(self) -> np.ndarray:
        """Border planes the left neighbor needs (my first ``width`` planes)."""
        return self.data[:, self.width : 2 * self.width]

    def unpack_from_left(self, payload: np.ndarray) -> None:
        """Fill my left ghost planes with the left neighbor's border."""
        if payload.shape != (self.lattice.q, self.width, *self.data.shape[2:]):
            raise HaloValidityError(
                f"bad halo payload shape {payload.shape}"
            )
        self.data[:, : self.width] = payload

    def unpack_from_right(self, payload: np.ndarray) -> None:
        """Fill my right ghost planes with the right neighbor's border."""
        if payload.shape != (self.lattice.q, self.width, *self.data.shape[2:]):
            raise HaloValidityError(
                f"bad halo payload shape {payload.shape}"
            )
        self.data[:, self.width + self.local_nx :] = payload

    def mark_exchanged(self) -> None:
        """Reset validity after a completed exchange."""
        self.validity = self.spec.width

    def consume_step(self) -> None:
        """Account one streaming step: ``k`` ghost planes expire per side.

        Raises :class:`HaloValidityError` if the ghosts are already too
        thin to support another step — the caller must exchange first.
        """
        if self.validity < self.spec.k:
            raise HaloValidityError(
                f"halo exhausted: validity {self.validity} < k {self.spec.k}; "
                "exchange required before stepping"
            )
        self.validity -= self.spec.k

    @property
    def steps_until_exchange(self) -> int:
        """How many more steps can run before an exchange is mandatory."""
        return self.validity // self.spec.k
