"""Per-rank, per-phase timing instrumentation for the distributed solver.

The paper instruments its production runs with the IBM HPM to attribute
time to stream/collide/communication per rank (Fig. 9's raw data).  The
in-process distributed solver can be instrumented the same way: wrap it
in a :class:`PhaseProfiler` and every rank's wall-clock seconds per
phase are recorded, yielding the same min/median/max views for *real*
(host) execution.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.streaming import stream_padded
from .distributed import DistributedSimulation

__all__ = ["PhaseProfile", "PhaseProfiler"]

PHASES = ("stream", "collide", "exchange")


class PhaseProfile:
    """Accumulated per-rank seconds for each phase."""

    def __init__(self, num_ranks: int) -> None:
        self.seconds = {phase: np.zeros(num_ranks) for phase in PHASES}
        self.steps = 0

    def summary(self, phase: str) -> tuple[float, float, float]:
        """(min, median, max) over ranks — the Fig. 9 triplet."""
        values = self.seconds[phase]
        return float(values.min()), float(np.median(values)), float(values.max())

    @property
    def total_seconds(self) -> float:
        return float(sum(v.sum() for v in self.seconds.values()))

    def comm_fraction(self) -> float:
        """Share of total time spent exchanging halos."""
        total = self.total_seconds
        return float(self.seconds["exchange"].sum() / total) if total else 0.0


class PhaseProfiler:
    """Instrumented driver around a :class:`DistributedSimulation`.

    Re-implements the step loop with per-rank timers, dispatching on the
    simulation's kernel selection (legacy pair or planned slab kernel);
    physics is identical to the uninstrumented driver (unit-tested for
    both kernels).
    """

    def __init__(self, simulation: DistributedSimulation) -> None:
        self.sim = simulation
        self.profile = PhaseProfile(simulation.num_ranks)

    def _timed_exchange(self) -> None:
        # The SPMD emulation executes ranks sequentially; attribute the
        # pack/unpack cost to each rank and split the fabric time evenly.
        sim = self.sim
        t0 = time.perf_counter()
        sim.exchange()
        elapsed = time.perf_counter() - t0
        self.profile.seconds["exchange"] += elapsed / sim.num_ranks

    def step(self) -> None:
        sim = self.sim
        if any(slab.validity < sim.spec.k for slab in sim.slabs):
            self._timed_exchange()
        for rank, slab in enumerate(sim.slabs):
            kernel = sim.slab_kernel_for(slab)
            if kernel is not None:
                streamed, collided = kernel.timed_step(slab)
                self.profile.seconds["stream"][rank] += streamed
                self.profile.seconds["collide"][rank] += collided
                continue
            t0 = time.perf_counter()
            stream_padded(sim.lattice, slab.data, out=slab.scratch)
            t1 = time.perf_counter()
            slab.consume_step()
            window = slab.compute_window()
            view = slab.scratch[:, window]
            sim.collision.apply(view, out=view)
            t2 = time.perf_counter()
            slab.data, slab.scratch = slab.scratch, slab.data
            self.profile.seconds["stream"][rank] += t1 - t0
            self.profile.seconds["collide"][rank] += t2 - t1
        sim.time_step += 1
        self.profile.steps += 1

    def run(self, steps: int) -> PhaseProfile:
        """Advance ``steps`` steps and return the accumulated profile."""
        for _ in range(steps):
            self.step()
        return self.profile
