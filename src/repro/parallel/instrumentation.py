"""Per-rank, per-phase timing instrumentation for the distributed solver.

The paper instruments its production runs with the IBM HPM to attribute
time to stream/collide/communication per rank (Fig. 9's raw data).  The
in-process distributed solver is instrumented through the telemetry
subsystem: with an enabled recorder,
:meth:`~repro.parallel.distributed.DistributedSimulation.step` emits one
``phase.stream``/``phase.collide`` span per rank per step and one
``phase.exchange`` span per halo exchange.  :class:`PhaseProfiler` is a
*reader* over those events — it installs an in-memory recorder on the
simulation, drives it, and folds the spans into a :class:`PhaseProfile`
with the same min/median/max API as ever.  The same fold serves
persisted JSONL event files through
:meth:`repro.telemetry.RunAggregate.phase_profile`, so a live profile
and an after-the-fact aggregation of the same run are identical by
construction.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..telemetry.recorder import MemorySink, Telemetry
from .distributed import DistributedSimulation

__all__ = ["PhaseProfile", "PhaseProfiler"]

PHASES = ("stream", "collide", "exchange")


class PhaseProfile:
    """Accumulated per-rank seconds for each phase."""

    def __init__(self, num_ranks: int) -> None:
        self.seconds = {phase: np.zeros(num_ranks) for phase in PHASES}
        self.steps = 0

    @classmethod
    def from_events(
        cls, events: Iterable[dict[str, Any]], num_ranks: int
    ) -> "PhaseProfile":
        """Fold ``phase.*`` telemetry spans into a profile.

        Per-rank spans (``rank`` attribute) accumulate into that rank's
        row; exchange spans carry a ``ranks`` attribute and their
        elapsed time is split evenly — the SPMD emulation executes the
        whole exchange once for all ranks, so an even split is the
        per-rank attribution (matching the live profiler exactly).
        Phases outside :data:`PHASES` (e.g. the single-domain driver's
        ``phase.boundary``) are ignored.
        """
        profile = cls(num_ranks)
        steps = np.zeros(num_ranks, dtype=np.int64)
        for event in events:
            if event.get("type") != "span":
                continue
            name = str(event.get("name", ""))
            if not name.startswith("phase."):
                continue
            phase = name[len("phase."):]
            attrs = event.get("attrs") or {}
            elapsed = float(event.get("seconds", 0.0))
            if phase == "exchange":
                ranks = int(attrs.get("ranks", num_ranks) or num_ranks)
                profile.seconds["exchange"] += elapsed / ranks
            elif phase in profile.seconds:
                rank = int(attrs.get("rank", 0))
                if 0 <= rank < num_ranks:
                    profile.seconds[phase][rank] += elapsed
                    if phase == "stream":
                        steps[rank] += int(attrs.get("steps", 1))
        profile.steps = int(steps.max()) if num_ranks else 0
        return profile

    def summary(self, phase: str) -> tuple[float, float, float]:
        """(min, median, max) over ranks — the Fig. 9 triplet."""
        values = self.seconds[phase]
        return float(values.min()), float(np.median(values)), float(values.max())

    @property
    def total_seconds(self) -> float:
        return float(sum(v.sum() for v in self.seconds.values()))

    def comm_fraction(self) -> float:
        """Share of total time spent exchanging halos.

        ``nan`` when nothing was profiled (no steps, all-zero clocks):
        an empty profile has no communication share, and reporting 0.0
        would let aggregated dashboards display a fake "0% comm" run.
        """
        total = self.total_seconds
        if total == 0.0:
            return float("nan")
        return float(self.seconds["exchange"].sum() / total)


class PhaseProfiler:
    """Instrumented driver around a :class:`DistributedSimulation`.

    Installs a telemetry recorder with an in-memory sink on the
    simulation (tee-ing into any sinks an already-enabled recorder had,
    so a JSONL file and this live view observe the *same* events) and
    folds the emitted spans into a :class:`PhaseProfile` on access.
    Physics is identical to the uninstrumented driver — the instrumented
    step path runs the same kernels (unit-tested for both).
    """

    def __init__(self, simulation: DistributedSimulation) -> None:
        self.sim = simulation
        self._memory = MemorySink()
        base = simulation.telemetry
        sinks = [self._memory]
        if base.enabled:
            sinks.extend(base.sinks)
        self._recorder = Telemetry(
            *sinks,
            run=getattr(base, "run", None),
            process=getattr(base, "process", None),
        )
        simulation.set_telemetry(self._recorder)

    @property
    def telemetry(self) -> Telemetry:
        """The recorder installed on the simulation."""
        return self._recorder

    @property
    def events(self) -> list[dict[str, Any]]:
        """The raw telemetry events observed so far."""
        return self._memory.events

    @property
    def profile(self) -> PhaseProfile:
        """The accumulated profile (folded from the events on access)."""
        return PhaseProfile.from_events(self._memory.events, self.sim.num_ranks)

    def step(self) -> None:
        self.sim.step()

    def run(self, steps: int) -> PhaseProfile:
        """Advance ``steps`` steps and return the accumulated profile."""
        self.sim.run(steps)
        return self.profile
