"""Planned, zero-allocation stepping for halo-padded slab subdomains.

PR 4's :class:`~repro.core.plan.PlannedKernel` made the single-domain
hot loop allocation-free; this module carries the same transformation to
the paper's actual subject, the slab-parallel deep-halo algorithm
(§V-A/§V-E).  The deep-halo update is *windowed*: after an exchange the
ghost planes are valid for ``depth`` streaming steps, and each sub-step
may legally compute a window that shrinks by ``k`` planes per side.  A
:class:`PlannedSlabKernel` therefore precomputes one
:meth:`~repro.core.plan.KernelPlan.for_window` plan per validity level:

* a gather table that streams **and** extracts the valid window in a
  single ``np.take`` (periodic along y/z, non-wrapping along the
  decomposed x axis — every source is in-bounds by the validity
  invariant, so no fill values are ever needed),
* a window-sized scratch arena for the fused moments + equilibrium +
  relax update, run entirely through ``out=`` ufunc calls.

One step is then gather -> collide-in-arena -> one strided write-back of
the window into the slab's padded array: zero per-step heap allocations
(tracemalloc-asserted in the tests), where the legacy pair
(:func:`~repro.core.streaming.stream_padded` +
:class:`~repro.core.collision.BGKCollision.apply`) allocates several
full padded copies per step.

Planes outside the written window keep stale values instead of the
legacy path's NaN fill; the validity ledger in
:class:`~repro.parallel.halo.HaloSlab` guarantees they are never read
before the next exchange overwrites them (property-tested against the
single-domain solver across kernels, dtypes, depths and schedules).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..core.collision import BGKCollision
from ..core.fields import resolve_dtype
from ..core.plan import KernelPlan
from ..errors import HaloValidityError, LatticeError
from ..lattice import VelocitySet
from .halo import HaloSlab, HaloSpec

__all__ = ["PlannedSlabKernel"]


class PlannedSlabKernel:
    """Zero-allocation stream+collide for one slab geometry.

    Parameters
    ----------
    lattice:
        Velocity set.
    local_nx / ny / nz:
        Owned planes and cross-section of the slab this kernel serves.
    spec:
        Deep-halo geometry (width ``depth * k`` per side).
    tau / order / dtype:
        BGK relaxation time, equilibrium order, population dtype.

    A kernel instance may be shared by several slabs of identical
    geometry **stepped sequentially** (the SPMD emulation's execution
    model): the window arenas are mutable scratch, so concurrent steps
    through one instance would race.

    Each validity level owns an independent arena (``depth`` arenas per
    geometry).  Sharing one max-window arena across levels would shave
    that factor but requires carving every buffer from a flat pool to
    keep the BLAS-facing views contiguous; with the paper's depths of
    1-4 the simpler layout costs a few window-sized buffers.
    """

    name = "planned"

    def __init__(
        self,
        lattice: VelocitySet,
        local_nx: int,
        ny: int,
        nz: int,
        spec: HaloSpec,
        tau: float,
        order: int | None = None,
        dtype: "np.dtype | str | None" = None,
    ) -> None:
        self.lattice = lattice
        self.spec = spec
        self.collision = BGKCollision(lattice, tau, order=order)
        self.dtype = resolve_dtype(dtype)
        padded = (local_nx + 2 * spec.width, ny, nz)
        # One window plan per post-stream validity level: sub-step s of a
        # macro-cycle computes x in [width - v, width + local_nx + v) with
        # v = width - s*k, down to the bare interior at v = 0.
        self._plans: dict[int, KernelPlan] = {}
        #: (adv_2d, adv_4d) per validity level — the fused buffer plus a
        #: prebuilt reshaped view, so the hot loop performs no per-step
        #: reshape bookkeeping.
        self._views: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for s in range(1, spec.depth + 1):
            v = spec.width - s * spec.k
            window = slice(spec.width - v, spec.width + local_nx + v)
            plan = KernelPlan.for_window(
                lattice,
                padded,
                window,
                order=self.collision.order,
                dtype=self.dtype,
            )
            adv, _ = plan._fused_buffers()
            self._plans[v] = plan
            self._views[v] = (adv, adv.reshape(lattice.q, *plan.shape))

    @property
    def nbytes(self) -> int:
        """Bytes held by all window plans (arena + gather tables)."""
        return int(sum(plan.nbytes for plan in self._plans.values()))

    def _plan_for(self, slab: HaloSlab) -> KernelPlan:
        """The window plan for the slab's *next* sub-step, validated
        before any state is touched (a mismatched slab must fail
        side-effect-free, with the validity ledger intact)."""
        if slab.data.dtype != self.dtype:
            raise LatticeError(
                f"planned slab kernel is built for {self.dtype.name}, got "
                f"{slab.data.dtype.name} slab populations"
            )
        if slab.validity < self.spec.k:
            raise HaloValidityError(
                f"halo exhausted: validity {slab.validity} < k {self.spec.k}; "
                "exchange required before stepping"
            )
        after = slab.validity - self.spec.k
        try:
            return self._plans[after]
        except KeyError:  # geometry mismatch: wrong slab for this kernel
            raise HaloValidityError(
                f"no window plan for validity {after} (built for "
                f"depth {self.spec.depth}, k {self.spec.k})"
            ) from None

    def step(self, slab: HaloSlab) -> None:
        """One windowed stream+collide, written back into ``slab.data``.

        Consumes one step of halo validity (raising
        :class:`~repro.errors.HaloValidityError` when exhausted — the
        caller must exchange first, exactly like the legacy path).
        """
        plan = self._plan_for(slab)
        slab.consume_step()
        adv, adv_4d = self._views[slab.validity]
        plan.stream_into(slab.data, adv)
        # In-place relax is aliasing-safe: collide_into reads src only
        # for the moments, before the first write to out.
        plan.collide_into(adv, adv, self.collision.omega)
        slab.data[:, plan.window] = adv_4d

    def timed_step(
        self, slab: HaloSlab, clock: Callable[[], float] = time.perf_counter
    ) -> tuple[float, float]:
        """:meth:`step` with per-phase timing for :class:`PhaseProfiler`.

        Returns ``(stream_seconds, collide_seconds)``; the window
        write-back is attributed to the collide phase (it is the planned
        analogue of the legacy path's post-collision buffer swap).
        """
        plan = self._plan_for(slab)
        slab.consume_step()
        adv, adv_4d = self._views[slab.validity]
        t0 = clock()
        plan.stream_into(slab.data, adv)
        t1 = clock()
        plan.collide_into(adv, adv, self.collision.omega)
        slab.data[:, plan.window] = adv_4d
        t2 = clock()
        return t1 - t0, t2 - t1
