"""Simulated MPI: message-passing semantics without an MPI library.

The execution environment has no ``mpi4py``/MPI, so the distributed
solver runs all ranks inside one process (SPMD emulation: every phase is
executed for each rank in turn).  This module provides the communication
substrate with mpi4py-like semantics:

* :class:`SimMPI` — the "fabric": per-(source, dest, tag) FIFO mailboxes.
* :meth:`SimMPI.isend` / :meth:`SimMPI.irecv` / :class:`Request` /
  :meth:`SimMPI.waitall` — non-blocking API shaped after
  ``MPI_Isend``/``MPI_Irecv``/``MPI_Waitall`` used by the paper (§V-E).
* :class:`MessageLedger` — records every message (step, src, dst, tag,
  bytes).  The ledger is how tests and the performance model verify the
  paper's claims about *message counts*: deep halos of depth ``n`` must
  cut the number of exchanges by ``n`` while moving the same total bytes
  ("The same amount of data is passed, but the reduction in number of
  messages allows for easier masking of the messaging latency", §VI-A).

Payloads are copied on send (value semantics, like a real network) so a
rank cannot observe its neighbor's later in-place mutations.  Callers
that manage their own stable payload buffers — the halo exchange packs
into per-slab preallocated send buffers — may pass ``copy=False`` to
skip that defensive copy, and hand :meth:`SimMPI.irecv` a preallocated
``buffer`` to land the payload in (the ``MPI_Irecv(buf, ...)`` shape),
making a whole exchange free of heap allocations.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict, deque
from typing import Iterable

import numpy as np

from ..telemetry.recorder import NULL_TELEMETRY

__all__ = ["MessageRecord", "MessageLedger", "Request", "SimMPI"]


@dataclasses.dataclass(frozen=True)
class MessageRecord:
    """One message as seen by the fabric."""

    step: int
    source: int
    dest: int
    tag: int
    nbytes: int


class MessageLedger:
    """Append-only log of all traffic on a :class:`SimMPI` fabric."""

    def __init__(self) -> None:
        self.records: list[MessageRecord] = []

    def log(self, record: MessageRecord) -> None:
        self.records.append(record)

    @property
    def message_count(self) -> int:
        """Total number of point-to-point messages sent."""
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        """Total payload bytes moved."""
        return sum(r.nbytes for r in self.records)

    def messages_by_step(self) -> dict[int, int]:
        """Step → number of messages sent during that step."""
        out: dict[int, int] = defaultdict(int)
        for r in self.records:
            out[r.step] += 1
        return dict(out)

    def bytes_by_rank(self, num_ranks: int) -> np.ndarray:
        """Bytes *sent* per rank (load-balance diagnostics)."""
        out = np.zeros(num_ranks, dtype=np.int64)
        for r in self.records:
            out[r.source] += r.nbytes
        return out


@dataclasses.dataclass
class Request:
    """Handle for a pending non-blocking operation.

    ``kind`` is ``"send"`` or ``"recv"``.  Receives resolve at
    :meth:`SimMPI.waitall`, storing the payload in :attr:`data` — into
    the caller-provided :attr:`buffer` when one was posted with the
    receive (then ``data is buffer``), else as the matched payload
    array itself.
    """

    kind: str
    rank: int
    peer: int
    tag: int
    data: np.ndarray | None = None
    complete: bool = False
    buffer: np.ndarray | None = None


class SimMPI:
    """An in-process message fabric for ``num_ranks`` simulated ranks.

    Delivery model: a message is available to ``waitall`` as soon as the
    matching ``isend`` has executed.  Because the SPMD emulation runs
    phases rank-by-rank, posting all sends of a phase before any
    ``waitall`` of the next phase reproduces the ordering constraints of
    real non-blocking MPI.  Matching is FIFO per (source, dest, tag),
    like MPI's non-overtaking rule.
    """

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise ValueError("need at least one rank")
        self.num_ranks = num_ranks
        self._mailboxes: dict[tuple[int, int, int], deque[np.ndarray]] = defaultdict(
            deque
        )
        self.ledger = MessageLedger()
        self.step_clock = 0  # advanced by the driver; stamps ledger records
        # Structured-event recorder; the driver installs an enabled one
        # (DistributedSimulation.set_telemetry).  Counters are emitted
        # from the same `payload.nbytes` the ledger logs, so the summed
        # `comm.bytes` counter equals `ledger.total_bytes` exactly.
        self.telemetry = NULL_TELEMETRY

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")

    # -- non-blocking API ---------------------------------------------------

    def isend(
        self,
        source: int,
        dest: int,
        tag: int,
        payload: np.ndarray,
        copy: bool = True,
    ) -> Request:
        """Post a send; the payload is copied immediately (buffered send).

        ``copy=False`` enqueues the caller's array by reference — the
        zero-allocation path for callers whose payload buffer is stable
        until the matching receive completes (like a real ``MPI_Isend``
        contract).  The ledger records the same bytes either way.
        """
        self._check_rank(source)
        self._check_rank(dest)
        if copy:
            payload = np.array(payload, copy=True)
        else:
            payload = np.asarray(payload)
        self._mailboxes[(source, dest, tag)].append(payload)
        self.ledger.log(
            MessageRecord(
                step=self.step_clock,
                source=source,
                dest=dest,
                tag=tag,
                nbytes=payload.nbytes,
            )
        )
        if self.telemetry.enabled:
            self.telemetry.count("comm.bytes", payload.nbytes)
            self.telemetry.count("comm.messages", 1)
        return Request(kind="send", rank=source, peer=dest, tag=tag, complete=True)

    def irecv(
        self,
        dest: int,
        source: int,
        tag: int,
        buffer: np.ndarray | None = None,
    ) -> Request:
        """Post a receive; completes at :meth:`waitall`.

        With ``buffer``, the payload is copied into it on completion
        (``MPI_Irecv(buf, ...)`` semantics) and ``request.data`` aliases
        the buffer — no fresh array is created for the receive.
        """
        self._check_rank(source)
        self._check_rank(dest)
        return Request(kind="recv", rank=dest, peer=source, tag=tag, buffer=buffer)

    def waitall(self, requests: Iterable[Request]) -> None:
        """Complete all requests; raises if a receive has no matching send.

        Mirrors ``MPI_Waitall`` after the communication phase of a time
        step.  An unmatched receive means the exchange schedule is broken
        (e.g. a rank skipped its send) — that is a bug in the caller, so
        it raises rather than deadlocks.
        """
        for req in requests:
            if req.complete:
                continue
            if req.kind != "recv":
                raise ValueError(f"unknown request kind {req.kind!r}")
            box = self._mailboxes[(req.peer, req.rank, req.tag)]
            if not box:
                raise RuntimeError(
                    f"deadlock: rank {req.rank} waiting on message from "
                    f"{req.peer} tag {req.tag} that was never sent"
                )
            payload = box.popleft()
            if req.buffer is not None:
                if req.buffer.shape != payload.shape or req.buffer.dtype != payload.dtype:
                    raise ValueError(
                        f"receive buffer {req.buffer.dtype.name}{req.buffer.shape} "
                        f"does not match payload "
                        f"{payload.dtype.name}{payload.shape}"
                    )
                np.copyto(req.buffer, payload)
                req.data = req.buffer
            else:
                req.data = payload
            req.complete = True

    # -- convenience blocking wrappers ---------------------------------------

    def sendrecv(
        self,
        rank: int,
        dest: int,
        send_payload: np.ndarray,
        source: int,
        tag: int,
    ) -> np.ndarray:
        """Blocking exchange helper used by simple schedules."""
        self.isend(rank, dest, tag, send_payload)
        req = self.irecv(rank, source, tag)
        self.waitall([req])
        assert req.data is not None
        return req.data

    def pending_messages(self) -> int:
        """Number of sent-but-unreceived messages (0 after a clean step)."""
        return sum(len(box) for box in self._mailboxes.values())
