"""Parallel runtime: simulated MPI, decomposition, halos, distributed LBM."""

from .decomposition import Slab1D
from .distributed import DistributedSimulation
from .halo import HaloSlab, HaloSpec
from .hybrid import HybridConfig
from .instrumentation import PhaseProfile, PhaseProfiler
from .mpi_sim import MessageLedger, MessageRecord, Request, SimMPI
from .schedules import ExchangeSchedule

__all__ = [
    "DistributedSimulation",
    "ExchangeSchedule",
    "HaloSlab",
    "HaloSpec",
    "HybridConfig",
    "MessageLedger",
    "PhaseProfile",
    "PhaseProfiler",
    "MessageRecord",
    "Request",
    "SimMPI",
    "Slab1D",
]
