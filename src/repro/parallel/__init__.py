"""Parallel runtime: simulated MPI, decomposition, halos, distributed LBM."""

from .decomposition import Slab1D
from .distributed import DISTRIBUTED_KERNELS, DistributedSimulation
from .halo import HaloSlab, HaloSpec
from .hybrid import HybridConfig
from .instrumentation import PhaseProfile, PhaseProfiler
from .mpi_sim import MessageLedger, MessageRecord, Request, SimMPI
from .plan import PlannedSlabKernel
from .schedules import ExchangeSchedule

__all__ = [
    "DISTRIBUTED_KERNELS",
    "DistributedSimulation",
    "PlannedSlabKernel",
    "ExchangeSchedule",
    "HaloSlab",
    "HaloSpec",
    "HybridConfig",
    "MessageLedger",
    "PhaseProfile",
    "PhaseProfiler",
    "MessageRecord",
    "Request",
    "SimMPI",
    "Slab1D",
]
