"""Communication/computation schedules (paper §V-E, §V-F).

The paper's optimization ladder changes *when* messages are posted and
waited on relative to the stream/collide work:

* ``BLOCKING`` — the naive Fig. 2 loop: a blocking exchange between
  stream and collide; the collide cannot start until both neighbors'
  borders arrive.
* ``NONBLOCKING`` (NB-C) — ``MPI_Irecv`` posted before the local stream,
  ``MPI_Isend`` at its completion, ``MPI_Waitall`` before collide.
  Slightly relaxes ordering but still no real overlap (the collide
  depends on the neighbor's stream results).
* ``NONBLOCKING_GC`` (NB-C & GC) — with ghost cells the border data for
  the *next* step can be sent at the *end* of the current step, so the
  wait moves off the critical path of the collide.
* ``GC_SPLIT`` (GC-C) — the collide is split: interior border planes are
  collided first and sent immediately; the ghost-region collide then
  runs *while the messages are in flight*, hiding the latency (Fig. 7).

Functionally all four orders produce identical physics (asserted in
tests); they differ only in the timing structure the performance
simulator (:mod:`repro.perf.event_sim`) assigns to them.
"""

from __future__ import annotations

import enum

__all__ = ["ExchangeSchedule"]


class ExchangeSchedule(enum.Enum):
    """When sends/receives are posted relative to compute."""

    BLOCKING = "blocking"
    NONBLOCKING = "nb-c"
    NONBLOCKING_GC = "nb-c+gc"
    GC_SPLIT = "gc-c"

    @property
    def uses_ghost_cells(self) -> bool:
        """Whether the schedule requires ghost-cell storage."""
        return self in (ExchangeSchedule.NONBLOCKING_GC, ExchangeSchedule.GC_SPLIT)

    @property
    def overlap_fraction(self) -> float:
        """Fraction of message latency hidden behind computation.

        Used by the event simulator: 0 for blocking and plain
        non-blocking (the collide waits on neighbor data either way),
        partial for end-of-step sends with ghost cells, near-full when
        the ghost-region collide covers the transfer (GC-C).  The values
        encode the qualitative ordering the paper reports in Fig. 9.
        """
        return {
            ExchangeSchedule.BLOCKING: 0.0,
            ExchangeSchedule.NONBLOCKING: 0.15,
            ExchangeSchedule.NONBLOCKING_GC: 0.55,
            ExchangeSchedule.GC_SPLIT: 0.90,
        }[self]

    @property
    def label(self) -> str:
        """Legend label used in the paper's Fig. 9."""
        return {
            ExchangeSchedule.BLOCKING: "Blocking",
            ExchangeSchedule.NONBLOCKING: "NB-C",
            ExchangeSchedule.NONBLOCKING_GC: "NB-C & GC",
            ExchangeSchedule.GC_SPLIT: "GC-C",
        }[self]
