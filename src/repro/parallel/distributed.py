"""Distributed LBM on the simulated MPI fabric.

Runs the paper's parallel algorithm — 1-D slab decomposition, halo-padded
subdomains, deep-halo exchanges every ``depth`` steps — with *exact*
functional semantics: for any rank count, ghost depth, schedule, kernel
and dtype, the gathered global state equals the single-domain
:class:`~repro.core.simulation.Simulation` configured the same way (this
is unit- and property-tested; it is the correctness contract the paper's
optimizations must preserve).

Two slab kernels are selectable:

* ``"legacy"`` (the default) — :func:`~repro.core.streaming.stream_padded`
  into a scratch buffer plus :meth:`~repro.core.collision.BGKCollision.apply`
  on the valid window, allocating several padded temporaries per step;
* ``"planned"`` — :class:`~repro.parallel.plan.PlannedSlabKernel`,
  the windowed zero-allocation analogue of the single-domain planned
  kernel (gather-table streaming + preallocated arenas).

The dtype policy reaches every buffer: slab storage, scratch, and the
exchange payloads, so ``dtype="float32"`` halves the message ledger's
byte counts exactly as the paper's B(Q) bandwidth analysis predicts.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.collision import BGKCollision
from ..core.equilibrium import equilibrium
from ..core.fields import resolve_dtype
from ..core.streaming import stream_padded
from ..errors import DecompositionError, LatticeError
from ..lattice import VelocitySet, get_lattice
from ..telemetry.recorder import NullTelemetry, Telemetry, get_telemetry
from .decomposition import Slab1D
from .halo import TAG_TO_LEFT, TAG_TO_RIGHT, HaloSlab, HaloSpec
from .mpi_sim import Request, SimMPI
from .plan import PlannedSlabKernel
from .schedules import ExchangeSchedule

__all__ = ["DISTRIBUTED_KERNELS", "DistributedSimulation"]

#: Slab stepping implementations selectable by name (``None`` = legacy).
DISTRIBUTED_KERNELS = ("legacy", "planned")


class DistributedSimulation:
    """Slab-parallel periodic LBM simulation (simulated MPI).

    Parameters
    ----------
    lattice:
        Velocity set or name.
    global_shape:
        Global grid ``(nx, ny, nz)``; decomposed along x.
    tau:
        BGK relaxation time.
    num_ranks:
        Number of subdomains/ranks.
    ghost_depth:
        Deep-halo depth ``d``: halo width ``d*k`` planes per side,
        exchanges every ``d`` steps (paper §V-A).
    order:
        Hermite equilibrium order (``None`` = lattice native).
    schedule:
        Message-posting discipline (physics-neutral; affects the ledger
        ordering and the performance model only).
    fabric:
        Optional shared :class:`SimMPI` (a fresh one is made by default).
    kernel:
        Slab stepping implementation: ``"legacy"`` (or ``None``, the
        historic ``stream_padded`` + ``BGKCollision.apply`` pair) or
        ``"planned"`` (zero-allocation windowed plans).
    dtype:
        Population dtype policy, ``"float64"`` (default) or
        ``"float32"`` (halves storage *and* halo payload bytes).
    telemetry:
        Structured-event recorder (:class:`~repro.telemetry.Telemetry`).
        ``None`` uses the ambient recorder
        (:func:`repro.telemetry.get_telemetry` — the no-op default
        unless ``$REPRO_TELEMETRY_DIR`` or an installed recorder enables
        it).  When enabled, every step emits per-rank
        ``phase.stream``/``phase.collide`` spans plus ``phase.exchange``
        spans, and the fabric counts ``comm.bytes``/``comm.messages``.
    """

    def __init__(
        self,
        lattice: VelocitySet | str,
        global_shape: Sequence[int],
        tau: float = 1.0,
        num_ranks: int = 2,
        ghost_depth: int = 1,
        order: int | None = None,
        schedule: ExchangeSchedule = ExchangeSchedule.NONBLOCKING_GC,
        fabric: SimMPI | None = None,
        kernel: str | None = None,
        dtype: "np.dtype | str | None" = None,
        telemetry: "Telemetry | NullTelemetry | None" = None,
    ) -> None:
        self.lattice = get_lattice(lattice) if isinstance(lattice, str) else lattice
        self.global_shape = tuple(int(s) for s in global_shape)
        if len(self.global_shape) != 3:
            raise DecompositionError("global shape must be 3-D")
        self.kernel_name = "legacy" if kernel is None else str(kernel).lower()
        if self.kernel_name not in DISTRIBUTED_KERNELS:
            raise LatticeError(
                f"unknown distributed kernel {kernel!r}; available: "
                f"{', '.join(DISTRIBUTED_KERNELS)}"
            )
        self.dtype = resolve_dtype(dtype)
        self.decomp = Slab1D(self.global_shape[0], num_ranks)
        self.spec = HaloSpec.for_lattice(self.lattice, ghost_depth)
        self.decomp.validate_halo(self.spec.width)
        self.schedule = schedule
        self.mpi = fabric or SimMPI(num_ranks)
        self.collision = BGKCollision(self.lattice, tau, order=order)
        _, ny, nz = self.global_shape
        self.slabs = [
            HaloSlab(
                self.lattice,
                self.decomp.local_size(r),
                ny,
                nz,
                self.spec,
                dtype=self.dtype,
            )
            for r in range(num_ranks)
        ]
        # Planned slab kernels, shared across equal-geometry slabs: the
        # SPMD emulation steps ranks strictly sequentially, so the
        # mutable window arenas are never used concurrently.
        self._slab_kernels: dict[int, PlannedSlabKernel] = {}
        if self.kernel_name == "planned":
            for slab in self.slabs:
                if slab.local_nx not in self._slab_kernels:
                    self._slab_kernels[slab.local_nx] = PlannedSlabKernel(
                        self.lattice,
                        slab.local_nx,
                        ny,
                        nz,
                        self.spec,
                        tau,
                        order=order,
                        dtype=self.dtype,
                    )
        self.time_step = 0
        self.exchange_count = 0
        self.telemetry = get_telemetry() if telemetry is None else telemetry
        if self.telemetry.enabled:
            self.mpi.telemetry = self.telemetry

    # -- setup ---------------------------------------------------------------

    def set_telemetry(self, telemetry: "Telemetry | NullTelemetry") -> None:
        """Install a recorder on this simulation *and* its fabric, so
        phase spans and comm counters land in the same event stream."""
        self.telemetry = telemetry
        self.mpi.telemetry = telemetry

    @property
    def num_ranks(self) -> int:
        return self.decomp.num_ranks

    def initialize(self, rho: np.ndarray | float, u: np.ndarray) -> None:
        """Scatter the equilibrium of global ``(rho, u)`` to all slabs."""
        rho_arr = np.broadcast_to(np.asarray(rho, dtype=np.float64), self.global_shape)
        # Same evaluation as Simulation.initialize under the same dtype
        # policy, so distributed and single-domain runs start from
        # identical populations at either precision.
        f_global = equilibrium(
            self.lattice,
            np.array(rho_arr),
            u,
            order=self.collision.order,
            dtype=self.dtype,
        )
        for rank, slab in enumerate(self.slabs):
            lo, hi = self.decomp.start(rank), self.decomp.stop(rank)
            slab.interior_view()[...] = f_global[:, lo:hi]
            slab.validity = 0  # force an exchange before the first step
        self.time_step = 0
        self.exchange_count = 0

    # -- communication ---------------------------------------------------------

    def exchange(self) -> None:
        """Halo exchange for all ranks under the configured schedule.

        All schedules move identical data; they differ in posting order,
        which the message ledger records faithfully (receives are
        resolved via explicit ``waitall`` in the non-blocking modes,
        mirroring Fig. 7 of the paper).
        """
        self.mpi.step_clock = self.time_step
        if self.schedule is ExchangeSchedule.BLOCKING:
            self._exchange_blocking()
        else:
            self._exchange_nonblocking()
        for slab in self.slabs:
            slab.mark_exchanged()
        self.exchange_count += 1

    def _exchange_blocking(self) -> None:
        # Classic paired sendrecv sweep: right-going then left-going.
        # Payloads are the slabs' own preallocated send buffers (stable
        # for the whole phase), received into preallocated buffers — no
        # per-exchange array allocations anywhere in the path.
        for rank, slab in enumerate(self.slabs):
            right = self.decomp.right_neighbor(rank)
            self.mpi.isend(rank, right, TAG_TO_RIGHT, slab.pack_to_right(), copy=False)
        for rank, slab in enumerate(self.slabs):
            left = self.decomp.left_neighbor(rank)
            req = self.mpi.irecv(rank, left, TAG_TO_RIGHT, buffer=slab.recv_from_left)
            self.mpi.waitall([req])
            slab.unpack_from_left(req.data)
        for rank, slab in enumerate(self.slabs):
            left = self.decomp.left_neighbor(rank)
            self.mpi.isend(rank, left, TAG_TO_LEFT, slab.pack_to_left(), copy=False)
        for rank, slab in enumerate(self.slabs):
            right = self.decomp.right_neighbor(rank)
            req = self.mpi.irecv(rank, right, TAG_TO_LEFT, buffer=slab.recv_from_right)
            self.mpi.waitall([req])
            slab.unpack_from_right(req.data)

    def _exchange_nonblocking(self) -> None:
        # Irecv first, Isend second, one Waitall at the end (paper §V-E).
        recvs: list[tuple[int, Request, Request]] = []
        for rank in range(self.num_ranks):
            left = self.decomp.left_neighbor(rank)
            right = self.decomp.right_neighbor(rank)
            slab = self.slabs[rank]
            from_left = self.mpi.irecv(
                rank, left, TAG_TO_RIGHT, buffer=slab.recv_from_left
            )
            from_right = self.mpi.irecv(
                rank, right, TAG_TO_LEFT, buffer=slab.recv_from_right
            )
            recvs.append((rank, from_left, from_right))
        for rank, slab in enumerate(self.slabs):
            self.mpi.isend(
                rank,
                self.decomp.right_neighbor(rank),
                TAG_TO_RIGHT,
                slab.pack_to_right(),
                copy=False,
            )
            self.mpi.isend(
                rank,
                self.decomp.left_neighbor(rank),
                TAG_TO_LEFT,
                slab.pack_to_left(),
                copy=False,
            )
        for rank, from_left, from_right in recvs:
            self.mpi.waitall([from_left, from_right])
            self.slabs[rank].unpack_from_left(from_left.data)
            self.slabs[rank].unpack_from_right(from_right.data)

    # -- stepping -----------------------------------------------------------------

    def slab_kernel_for(self, slab: HaloSlab) -> PlannedSlabKernel | None:
        """The planned kernel serving ``slab``, or ``None`` on the
        legacy path (what :class:`PhaseProfiler` dispatches on)."""
        return self._slab_kernels.get(slab.local_nx) if self._slab_kernels else None

    def step(self) -> None:
        """One global time step (exchanging first if halos are exhausted).

        The disabled-telemetry cost of the instrumentation hook is this
        one attribute check — the hot path below it is untouched and
        stays allocation-free (tracemalloc-asserted in the tests).
        """
        if self.telemetry.enabled:
            return self._step_instrumented()
        if any(slab.validity < self.spec.k for slab in self.slabs):
            self.exchange()
        if self._slab_kernels:
            for slab in self.slabs:
                self._slab_kernels[slab.local_nx].step(slab)
        else:
            for slab in self.slabs:
                stream_padded(self.lattice, slab.data, out=slab.scratch)
                slab.consume_step()
                window = slab.compute_window()
                view = slab.scratch[:, window]
                self.collision.apply(view, out=view)
                slab.data, slab.scratch = slab.scratch, slab.data
        self.time_step += 1

    def _step_instrumented(self) -> None:
        """One step with per-rank phase spans (physics identical).

        The SPMD emulation executes ranks sequentially, so per-rank
        stream/collide seconds are measured directly; the exchange runs
        once for *all* ranks, so its span carries a ``ranks`` attribute
        and readers split it evenly (the Fig. 9 attribution rule shared
        with :meth:`PhaseProfile.from_events`).
        """
        telemetry = self.telemetry
        clock = time.perf_counter
        if any(slab.validity < self.spec.k for slab in self.slabs):
            t0 = clock()
            self.exchange()
            telemetry.record_span(
                "phase.exchange", clock() - t0, ranks=self.num_ranks
            )
        for rank, slab in enumerate(self.slabs):
            kernel = self.slab_kernel_for(slab)
            if kernel is not None:
                streamed, collided = kernel.timed_step(slab)
            else:
                t0 = clock()
                stream_padded(self.lattice, slab.data, out=slab.scratch)
                t1 = clock()
                slab.consume_step()
                window = slab.compute_window()
                view = slab.scratch[:, window]
                self.collision.apply(view, out=view)
                streamed, collided = t1 - t0, clock() - t1
                slab.data, slab.scratch = slab.scratch, slab.data
            telemetry.record_span("phase.stream", streamed, rank=rank)
            telemetry.record_span("phase.collide", collided, rank=rank)
        self.time_step += 1

    def run(self, steps: int) -> None:
        """Advance ``steps`` time steps."""
        for _ in range(steps):
            self.step()

    # -- output -----------------------------------------------------------------

    def gather(self) -> np.ndarray:
        """Assemble the global population array ``(Q, nx, ny, nz)``."""
        parts = [slab.interior_view() for slab in self.slabs]
        return np.concatenate(parts, axis=1)

    def message_count(self) -> int:
        """Total messages sent so far (deep halos reduce this d-fold)."""
        return self.mpi.ledger.message_count

    def total_comm_bytes(self) -> int:
        """Total payload bytes moved so far."""
        return self.mpi.ledger.total_bytes
