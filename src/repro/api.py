"""Stable programmatic facade over the scenario subsystem.

Everything a caller can do from the command line — run a case, run or
publish a sweep, drive a worker, inspect a fleet, query the perf model
— is a keyword-only function here, and the CLI, the ``repro serve``
HTTP front end and library users all go through the *same* functions.
That single-path rule is what makes the byte-identity guarantee hold:
a warm ``POST /v1/case`` body and ``repro case --json`` output are the
same bytes because both are :func:`run_case` rendered through
:func:`repro.core.io.render_response`.

Contract notes:

* No function here prints or exits; failures raise
  :class:`~repro.errors.ReproError` subclasses (the CLI maps those to
  ``error: ...`` on stderr + exit code 2, the server to structured
  400 bodies).
* Results come back as plain dataclasses with ``to_payload``-style
  JSON-safe forms where a wire shape exists.
* ``cache_dir`` always means the shared content-addressed sweep cache
  directory; fingerprints are :meth:`CaseSpec.fingerprint`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from .errors import ScenarioError
from .scenarios.cache import ResultCache
from .scenarios.executor import (
    NONDETERMINISTIC_METRICS,
    SweepExecutor,
    SweepPlan,
    case_payload,
    result_from_payload,
    usable_entry,
)
from .resilience import DEFAULT_MAX_ATTEMPTS
from .scenarios.runner import CaseResult, CaseRunner
from .scenarios.sampling import AdaptiveSampler
from .scenarios.scheduler import (
    DEFAULT_LEASE_TTL,
    SweepScheduler,
    SweepStatus,
    WorkQueue,
    sweep_status as _sweep_status,
)
from .scenarios.spec import CaseSpec
from .scenarios.sweep import Sweep, SweepResult
from .scenarios.workers import WorkerReport
from .scenarios.workers import run_worker as _run_worker
from .core.io import serialize_result_data
from .telemetry.recorder import TELEMETRY_DIRNAME

__all__ = [
    "assemble_sweep",
    "AutoKernel",
    "build_sweep",
    "CaseOutcome",
    "CaseRequest",
    "case_request",
    "check_sweep_options",
    "CostEstimate",
    "decode_overrides",
    "decode_value",
    "DEFAULT_MAX_ATTEMPTS",
    "open_cache",
    "predict_cost",
    "publish_sweep",
    "resolve_auto_kernel",
    "run_case",
    "run_sweep",
    "run_worker",
    "sweep_payload",
    "sweep_request",
    "sweep_status",
    "SweepRequest",
    "telemetry_dir",
]


def telemetry_dir(cache_dir: str | Path) -> str:
    """A run's structured-event directory: ``<cache-dir>/telemetry``."""
    return str(Path(cache_dir) / TELEMETRY_DIRNAME)


def decode_value(value: Any) -> Any:
    """Normalise one JSON-decoded override value to its spec type.

    JSON has no tuples, so fixed-arity values (``shape``, ``forcing``)
    arrive as lists from HTTP bodies and job records; retupling them
    makes the resulting spec fingerprint identical to what the CLI's
    ``--set shape=16,16,4`` produces.
    """
    from .scenarios.scheduler import _retuple

    return _retuple(value)


def decode_overrides(mapping: Mapping[str, Any]) -> dict[str, Any]:
    """:func:`decode_value` over every value of an override mapping."""
    return {str(k): decode_value(v) for k, v in mapping.items()}


# -- cases ------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AutoKernel:
    """How ``kernel="auto"`` resolved for one request.

    ``provenance`` is ``"model"`` (fitted perf-model calibration),
    ``"cached"`` (per-host verdict cache), ``"measured"`` (timing
    race run now) or ``"layout"`` (forced: the AoS layout has exactly
    one kernel, so there is nothing to race).
    """

    name: str
    provenance: str

    @property
    def label(self) -> str:
        """Human wording for the provenance (what the CLI prints)."""
        return {
            "model": "perf model",
            "cached": "cached verdict",
            "layout": "aos layout (planned is the only rung)",
        }.get(self.provenance, self.provenance)


def resolve_auto_kernel(
    name: str,
    overrides: Mapping[str, Any] | None = None,
    *,
    use_cache: bool = True,
) -> AutoKernel:
    """Resolve ``kernel="auto"`` to a concrete kernel *before* the spec.

    A fingerprinted :class:`CaseSpec` must stay deterministic, so
    ``"auto"`` never enters it; instead the resolution ladder (fitted
    perf-model calibration, then cached per-host verdict, then the
    timing race — see :func:`repro.core.plan.auto_select_kernel`) runs
    here on the case's actual lattice/shape/dtype, and the winner's
    name is what the spec records.  Pure: no printing (the CLI renders
    the returned :class:`AutoKernel` itself).
    """
    from .core.plan import auto_select_kernel
    from .lattice import get_lattice
    from .scenarios.registry import get_case

    spec = get_case(name)
    if overrides:
        spec = spec.with_overrides(**dict(overrides))
    # Collision-factory cases own tau; fall back to a safe timing tau.
    tau = float(spec.tau) if float(spec.tau) > 0.5 else 0.8
    winner = auto_select_kernel(
        get_lattice(spec.lattice),
        spec.shape,
        tau,
        order=spec.order,
        dtype=spec.dtype,
        cache=use_cache,
    )
    provenance = getattr(winner, "auto_provenance", None) or (
        "cached" if getattr(winner, "auto_cached", False) else "measured"
    )
    return AutoKernel(name=winner.name, provenance=provenance)


@dataclasses.dataclass(frozen=True)
class CaseRequest:
    """One validated case request: the spec plus how it was asked for.

    ``overrides`` is the full merged override mapping (steps/dtype and
    the resolved kernel folded in) — exactly what a remote worker needs
    to rebuild the same spec from the registry by name, and what goes
    onto a work queue item.
    """

    case: str
    overrides: dict[str, Any]
    spec: CaseSpec
    fingerprint: str
    auto_kernel: AutoKernel | None = None


def case_request(
    name: str,
    *,
    steps: int | None = None,
    overrides: Mapping[str, Any] | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
    layout: str | None = None,
    kernel_cache: bool = True,
) -> CaseRequest:
    """Validate one case invocation into a fingerprinted request.

    Builds (and thereby validates) the spec without running anything.
    ``kernel="auto"`` is resolved here — the request's ``overrides``
    record the concrete winner, never ``"auto"``.  Under
    ``layout="aos"`` the resolution is forced: the planned kernel is
    the only AoS rung, so no timing race runs.
    """
    kwargs = dict(overrides or {})
    auto: AutoKernel | None = None
    if steps is not None:
        kwargs["steps"] = steps
    if dtype is not None:
        kwargs["dtype"] = dtype
    if layout is not None:
        kwargs["layout"] = layout
    if kernel == "auto":
        if kwargs.get("layout") == "aos":
            auto = AutoKernel(name="planned", provenance="layout")
        else:
            auto = resolve_auto_kernel(name, kwargs, use_cache=kernel_cache)
        kernel = auto.name
    if kernel is not None:
        kwargs["kernel"] = kernel
    spec = CaseRunner(name, **kwargs).spec
    return CaseRequest(
        case=spec.name,
        overrides=kwargs,
        spec=spec,
        fingerprint=spec.fingerprint(),
        auto_kernel=auto,
    )


@dataclasses.dataclass(frozen=True)
class CaseOutcome:
    """What :func:`run_case` hands back.

    ``payload`` is the canonical JSON-safe result body — identical
    bytes (through :func:`repro.core.io.render_response`) whether the
    run executed here (``cached=False``) or was served from a warm
    cache entry without a single simulation step (``cached=True``).
    ``result`` is a full :class:`CaseResult` for fresh runs and a lean
    rehydrated one (no simulation attached) for cache hits.
    """

    request: CaseRequest
    payload: dict[str, Any]
    cached: bool
    result: CaseResult

    @property
    def spec(self) -> CaseSpec:
        return self.request.spec

    @property
    def fingerprint(self) -> str:
        return self.request.fingerprint

    @property
    def auto_kernel(self) -> AutoKernel | None:
        return self.request.auto_kernel

    @property
    def passed(self) -> bool:
        return self.result.passed


def run_case(
    name: str,
    *,
    steps: int | None = None,
    overrides: Mapping[str, Any] | None = None,
    checkpoint: str | None = None,
    checkpoint_every: int = 0,
    resume: str | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
    layout: str | None = None,
    kernel_cache: bool = True,
    analyze: bool = True,
    cache_dir: str | Path | None = None,
) -> CaseOutcome:
    """Run one registered case — or serve it from a warm result cache.

    With ``cache_dir``, the spec's fingerprint is probed first: a
    usable entry answers without executing a step, and a fresh run
    commits its payload back, so the next identical request (from any
    surface — CLI, HTTP, library) is free.  Checkpoint/resume are
    incompatible with ``cache_dir``: restart files are side effects a
    cached replay would silently skip.
    """
    request = case_request(
        name,
        steps=steps,
        overrides=overrides,
        kernel=kernel,
        dtype=dtype,
        layout=layout,
        kernel_cache=kernel_cache,
    )
    cache: ResultCache | None = None
    if cache_dir is not None:
        if checkpoint is not None or resume is not None:
            raise ScenarioError(
                "cache_dir cannot be combined with checkpoint/resume: "
                "restart files are side effects a cached replay would skip"
            )
        cache = ResultCache(cache_dir)
        entry = usable_entry(cache, request.fingerprint, analyze)
        if entry is not None:
            return CaseOutcome(
                request=request,
                payload=entry,
                cached=True,
                result=result_from_payload(request.spec, entry),
            )
    runner = CaseRunner(request.spec)
    result = runner.run(
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
        analyze=analyze,
    )
    payload = case_payload(result, analyze=analyze)
    if cache is not None:
        cache.put(request.fingerprint, payload)
    return CaseOutcome(
        request=request, payload=payload, cached=False, result=result
    )


# -- sweeps -----------------------------------------------------------------


def build_sweep(
    name: str,
    grid: Mapping[str, Sequence[Any]],
    *,
    steps: int | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
    layout: str | None = None,
) -> Sweep:
    """The sweep object every sweep entry point expands."""
    fixed: dict[str, Any] = {}
    if kernel is not None:
        fixed["kernel"] = kernel
    if dtype is not None:
        fixed["dtype"] = dtype
    if layout is not None:
        fixed["layout"] = layout
    return Sweep(name, dict(grid), steps=steps, overrides=fixed)


def check_sweep_options(
    *,
    cache_dir: str | Path | None,
    jobs: int,
    workers: int | None,
    publish: bool,
    resume: bool,
    adaptive: str | None,
    telemetry: bool,
) -> None:
    """The one place sweep option combinations are validated (error
    wording matches the CLI flags because that is where humans see it;
    the serve layer never exposes these combinations)."""
    if (workers is not None or publish) and cache_dir is None:
        raise ScenarioError(
            "--workers/--publish need --cache-dir: distributed workers "
            "coordinate through the shared cache directory"
        )
    if workers is not None and jobs != 1:
        raise ScenarioError(
            "--workers and --jobs are alternatives: workers are "
            "independent processes over a shared cache, jobs is one "
            "process pool (pick one)"
        )
    if adaptive is not None and (workers is not None or publish or resume):
        raise ScenarioError(
            "--adaptive picks variants from intermediate results, so it "
            "cannot be combined with --workers/--publish/--resume"
        )
    if telemetry and cache_dir is None:
        raise ScenarioError(
            "--telemetry needs --cache-dir: events are recorded under "
            "<cache-dir>/telemetry"
        )
    if telemetry and adaptive is not None:
        raise ScenarioError(
            "--telemetry is not supported with --adaptive (the sampler "
            "re-enters the executor per stage; instrument a plain sweep)"
        )


def run_sweep(
    name: str,
    grid: Mapping[str, Sequence[Any]],
    *,
    steps: int | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    workers: int | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    adaptive: str | None = None,
    coarse_stride: int = 2,
    refine_fraction: float = 0.5,
    kernel: str | None = None,
    dtype: str | None = None,
    layout: str | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    telemetry: bool = False,
) -> SweepResult:
    """Run a parameter sweep and return its merged result.

    ``jobs`` shards variants across a process pool; ``cache_dir``
    enables per-variant result caching (warm re-runs execute nothing);
    ``resume`` continues an interrupted sweep from its manifest;
    ``workers`` distributes across that many independent worker
    processes coordinating through the shared ``cache_dir``;
    ``adaptive`` samples the grid (coarse pass, then refinement where
    the named observable changes fastest) instead of enumerating it;
    ``max_attempts`` bounds fleet-wide failures per variant before it
    is quarantined into an explicit ``FAILED`` row;
    ``telemetry`` records structured JSONL events under
    ``<cache-dir>/telemetry``.

    Always executes through the executor machinery — even plain serial
    sweeps — so data columns are deterministic (wall-clock metrics
    never appear) and byte-identical across ``jobs``/``workers`` and
    cache states.
    """
    check_sweep_options(
        cache_dir=cache_dir,
        jobs=jobs,
        workers=workers,
        publish=False,
        resume=resume,
        adaptive=adaptive,
        telemetry=telemetry,
    )
    sweep = build_sweep(
        name, grid, steps=steps, kernel=kernel, dtype=dtype, layout=layout
    )
    events_dir = telemetry_dir(cache_dir) if telemetry else None
    if adaptive is not None:
        sampler = AdaptiveSampler(
            sweep,
            observable=adaptive,
            coarse_stride=coarse_stride,
            refine_fraction=refine_fraction,
            jobs=jobs,
            cache_dir=cache_dir,
        )
        return sampler.run()
    if workers is not None:
        scheduler = SweepScheduler(
            sweep,
            cache_dir,
            workers=workers,
            lease_ttl=lease_ttl,
            resume=resume,
            telemetry_dir=events_dir,
            max_attempts=max_attempts,
        )
        return scheduler.run()
    executor = SweepExecutor(
        sweep,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        telemetry_dir=events_dir,
    )
    return executor.run()


def publish_sweep(
    name: str,
    grid: Mapping[str, Sequence[Any]],
    *,
    cache_dir: str | Path | None,
    steps: int | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
    layout: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    resume: bool = False,
) -> "tuple[SweepPlan, WorkQueue]":
    """Write a sweep's work order (queue + manifest) and return it.

    Runs nothing: ``sweep-worker`` processes — on any hosts sharing
    ``cache_dir`` — claim and execute the variants.  When this host
    holds a fitted perf-model calibration, items are stamped with
    predicted costs so workers claim longest-first.
    """
    check_sweep_options(
        cache_dir=cache_dir,
        jobs=1,
        workers=None,
        publish=True,
        resume=resume,
        adaptive=None,
        telemetry=False,
    )
    sweep = build_sweep(
        name, grid, steps=steps, kernel=kernel, dtype=dtype, layout=layout
    )
    scheduler = SweepScheduler(
        sweep, cache_dir, workers=0, lease_ttl=lease_ttl, resume=resume
    )
    return scheduler.publish()


@dataclasses.dataclass(frozen=True)
class SweepRequest:
    """One validated sweep request, expanded and fingerprinted.

    ``variants`` are the grid points (what varies, for presentation);
    ``overrides`` the full per-variant override mappings (what a worker
    rebuilds the spec from); both index-aligned with ``fingerprints``.
    """

    case: str
    parameters: tuple[str, ...]
    variants: list[dict[str, Any]]
    overrides: list[dict[str, Any]]
    specs: list[CaseSpec]
    fingerprints: list[str]

    def __len__(self) -> int:
        return len(self.fingerprints)


def sweep_request(
    name: str,
    grid: Mapping[str, Sequence[Any]],
    *,
    steps: int | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
    layout: str | None = None,
) -> SweepRequest:
    """Expand and validate a sweep without running or publishing it."""
    sweep = build_sweep(
        name, grid, steps=steps, kernel=kernel, dtype=dtype, layout=layout
    )
    plan = SweepPlan.of(sweep)
    if not isinstance(plan.case_ref, str):
        raise ScenarioError(
            f"sweep requests need a registered case; {plan.case!r} does "
            "not resolve through the registry"
        )
    return SweepRequest(
        case=plan.case,
        parameters=tuple(plan.parameters),
        variants=[dict(v) for v in plan.variants],
        overrides=[dict(o) for o in plan.overrides],
        specs=list(plan.specs),
        fingerprints=list(plan.fingerprints),
    )


def assemble_sweep(
    request: SweepRequest,
    cache_dir: str | Path,
    *,
    analyze: bool = True,
) -> SweepResult | None:
    """Rebuild a sweep result purely from warm cache entries.

    ``None`` unless *every* variant has a usable entry — the serve
    layer's "is the whole sweep ready?" probe doubles as its result
    assembly.  Probes silently (no cache hit/miss counters: this is
    status derivation, not a request outcome).
    """
    cache = ResultCache(cache_dir)
    results: list[CaseResult] = []
    for spec, fingerprint in zip(request.specs, request.fingerprints):
        entry = usable_entry(cache, fingerprint, analyze, count=False)
        if entry is None:
            return None
        results.append(result_from_payload(spec, entry))
    return SweepResult(
        case=request.case,
        parameters=tuple(request.parameters),
        variants=[dict(v) for v in request.variants],
        results=results,
        fingerprints=list(request.fingerprints),
    )


def sweep_payload(result: SweepResult) -> dict[str, Any]:
    """Canonical JSON-safe body of one sweep result.

    Deterministic by construction: per-variant payloads drop the
    timing-derived metrics (:data:`NONDETERMINISTIC_METRICS`) and the
    provenance column (which worker/cache served a variant) is
    deliberately excluded, so the same grid yields byte-identical
    bodies warm or cold, CLI or HTTP.
    """
    rows = []
    for res in result.results:
        metrics = {
            k: v
            for k, v in res.metrics.items()
            if k not in NONDETERMINISTIC_METRICS
        }
        row = json.loads(
            serialize_result_data(metrics, res.series, res.checks)
        )
        row["case"] = res.spec.name
        if res.failed:
            # Quarantined placeholder: flagged only when present so
            # clean sweep bodies stay byte-identical to earlier PRs.
            row["failed"] = True
        rows.append(row)
    return {
        "case": result.case,
        "parameters": list(result.parameters),
        "variants": [dict(v) for v in result.variants],
        "fingerprints": (
            list(result.fingerprints)
            if result.fingerprints is not None
            else None
        ),
        "passed": result.passed,
        "results": rows,
    }


# -- fleet ------------------------------------------------------------------


def open_cache(
    cache_dir: str | Path, *, telemetry: Any | None = None
) -> ResultCache:
    """The content-addressed result cache under ``cache_dir``.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) makes probe
    outcomes (hit/miss/corrupt) observable; default is the silent
    no-op recorder.
    """
    cache = ResultCache(cache_dir)
    if telemetry is not None:
        cache.telemetry = telemetry
    return cache


def sweep_status(cache_dir: str | Path) -> SweepStatus:
    """Read-only snapshot of a sweep cache directory.

    Pure data, no printing: render with :meth:`SweepStatus.summary`
    (the CLI table) or :meth:`SweepStatus.to_payload` (the
    ``/v1/fleet`` JSON body) as the surface demands.
    """
    return _sweep_status(cache_dir)


def run_worker(
    cache_dir: str | Path,
    *,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = 0.5,
    max_variants: int | None = None,
    wait: bool = False,
    follow: bool = False,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff: float = 0.5,
    idle_timeout: float | None = None,
    telemetry: bool = False,
) -> WorkerReport:
    """Claim and run variants of the sweep published under ``cache_dir``.

    ``telemetry=True`` records the worker's structured events under
    ``<cache-dir>/telemetry``; see
    :func:`repro.scenarios.workers.run_worker` for the loop's
    semantics (``follow=True`` keeps serving appended work forever —
    the mode a ``repro serve`` fleet runs in; ``max_attempts`` /
    ``retry_backoff`` drive the failure ledger's retry-then-quarantine
    policy; ``idle_timeout`` lets waiting/following workers drain).
    """
    return _run_worker(
        cache_dir,
        worker_id=worker_id,
        lease_ttl=lease_ttl,
        poll=poll,
        max_variants=max_variants,
        wait=wait,
        follow=follow,
        max_attempts=max_attempts,
        retry_backoff=retry_backoff,
        idle_timeout=idle_timeout,
        telemetry_dir=telemetry_dir(cache_dir) if telemetry else None,
    )


# -- performance model ------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CostEstimate:
    """One perf-model answer: predicted throughput (and wall-clock,
    when shape+steps were given).  ``level`` is the fit quality tier
    the model answered from."""

    kernel: str
    lattice: str
    dtype: str
    ranks: int
    mflups: float
    level: str
    seconds: float | None = None

    def to_payload(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def predict_cost(
    *,
    kernel: str,
    lattice: str,
    dtype: str = "float64",
    shape: Sequence[int] | None = None,
    steps: int | None = None,
    ranks: int = 1,
    host: str | None = None,
    path: str | Path | None = None,
) -> CostEstimate | None:
    """Query the per-host performance calibration.

    ``None`` when no calibration is persisted (for ``host``/``path``)
    or the model has no coverage for the combination — callers decide
    whether that is an error (the CLI prints a hint, the server
    returns a structured 404).
    """
    from .perf import model as perf_model

    where = Path(path) if path else perf_model.calibration_path(host)
    model = perf_model.load_calibration(where)
    if model is None:
        return None
    grid = tuple(int(s) for s in shape) if shape is not None else None
    prediction = model.predict(kernel, lattice, dtype, shape=grid, ranks=ranks)
    if prediction is None:
        return None
    seconds: float | None = None
    if grid is not None and steps:
        seconds = model.predict_case_seconds(
            kernel, lattice, dtype, grid, steps, ranks=ranks
        )
        if seconds != seconds:  # NaN -> no coverage for the wall-clock
            seconds = None
    return CostEstimate(
        kernel=kernel,
        lattice=lattice,
        dtype=dtype,
        ranks=ranks,
        mflups=prediction.mflups,
        level=prediction.level,
        seconds=seconds,
    )
