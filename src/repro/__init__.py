"""repro — reproduction of Randles et al., IPDPS 2013.

*"Performance Analysis of the Lattice Boltzmann Model Beyond
Navier-Stokes"*

Subpackages
-----------
``repro.lattice``
    Discrete velocity models (D3Q15/19/27/39), Gauss-Hermite machinery.
``repro.core``
    The LBM solver: equilibria, BGK/regularized collision, streaming,
    boundary conditions, forcing, units, single-domain driver.
``repro.parallel``
    Simulated-MPI distributed solver with deep-halo ghost cells.
``repro.machine``
    Blue Gene/P & /Q machine models: roofline, torus, memory, caches.
``repro.perf``
    Performance engine: cost model, optimization ladder, event
    simulator, ghost-depth tuner, hybrid-threading model.
``repro.experiments``
    One ``run()`` per paper table/figure + registry.
``repro.scenarios``
    Declarative application workloads: case registry, runner with
    checkpoint/restart, parameter sweeps.
"""

from . import (
    analysis,
    core,
    errors,
    experiments,
    lattice,
    machine,
    parallel,
    perf,
    scenarios,
)
from . import api
from ._version import __version__
from .core import Simulation
from .experiments import run_experiment
from .lattice import get_lattice
from .parallel import DistributedSimulation
from .scenarios import run_case

__all__ = [
    "analysis",
    "api",
    "core",
    "DistributedSimulation",
    "errors",
    "experiments",
    "get_lattice",
    "lattice",
    "machine",
    "parallel",
    "perf",
    "run_case",
    "run_experiment",
    "scenarios",
    "Simulation",
    "__version__",
]
