"""Command-line front end for the scenario subsystem.

Wired into ``python -m repro`` as the ``cases``/``case``/``sweep``/
``sweep-worker``/``sweep-status``/``serve``/``events``/``perf-model``
subcommands; the thin ``examples/*.py`` wrappers call
:func:`run_case_cli` / :func:`run_sweep_cli` directly.

Pure parsing and rendering: every subcommand converts argv into
keyword arguments for :mod:`repro.api` and prints what comes back —
as text tables, or (``--json``) through
:func:`repro.core.io.render_response`, the same serializer the
``repro serve`` HTTP front end writes its bodies with.  That shared
path is what makes ``repro case --json`` output and a warm
``POST /v1/case`` body byte-identical.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from .. import api
from ..core.io import render_response
from ..errors import ReproError, ScenarioError

__all__ = [
    "main",
    "run_case_cli",
    "run_events_cli",
    "run_perf_model_cli",
    "run_serve_cli",
    "run_status_cli",
    "run_sweep_cli",
    "run_worker_cli",
]


def _parse_value(text: str) -> Any:
    """Best-effort scalar parsing for ``--set``/``--param`` values."""
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def _parse_assignments(pairs: Sequence[str]) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ScenarioError(f"expected key=value, got {pair!r}")
        if "," in value:  # e.g. --set shape=16,16,4
            overrides[key] = tuple(_parse_value(v) for v in value.split(","))
        else:
            overrides[key] = _parse_value(value)
    return overrides


def _parse_grid(pairs: Sequence[str]) -> dict[str, list[Any]]:
    grid: dict[str, list[Any]] = {}
    for pair in pairs:
        key, sep, values = pair.partition("=")
        if not sep or not key or not values:
            raise ScenarioError(f"expected key=v1,v2,..., got {pair!r}")
        grid[key] = [_parse_value(v) for v in values.split(",")]
    return grid


def run_case_cli(
    name: str,
    *,
    steps: int | None = None,
    overrides: dict[str, Any] | None = None,
    checkpoint: str | None = None,
    checkpoint_every: int = 0,
    resume: str | None = None,
    kernel: str | None = None,
    dtype: str | None = None,
    layout: str | None = None,
    kernel_cache: bool = True,
    cache_dir: str | None = None,
    as_json: bool = False,
) -> int:
    """Run one case (or serve it warm from ``cache_dir``) and print it.

    ``as_json`` renders the canonical schema-versioned envelope instead
    of the text summary — the exact bytes ``repro serve`` answers a
    warm ``POST /v1/case`` with (informational lines move to stderr so
    stdout stays pure JSON).
    """
    outcome = api.run_case(
        name,
        steps=steps,
        overrides=overrides,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
        kernel=kernel,
        dtype=dtype,
        layout=layout,
        kernel_cache=kernel_cache,
        cache_dir=cache_dir,
    )
    info = sys.stderr if as_json else sys.stdout
    auto = outcome.auto_kernel
    if auto is not None:
        print(f"kernel auto -> {auto.name} ({auto.label})", file=info)
    if outcome.cached:
        print(f"cache hit: {outcome.fingerprint} (0 steps executed)", file=info)
    if as_json:
        print(render_response("case", outcome.payload))
        return 0 if outcome.passed else 1
    result = outcome.result
    print(result.to_text())
    if result.spec.report is not None and result.simulation is not None:
        print()
        print(result.spec.report(result))
    return 0 if result.passed else 1


def run_sweep_cli(
    name: str,
    grid: dict[str, list[Any]],
    *,
    steps: int | None = None,
    csv: str | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    resume: bool = False,
    workers: int | None = None,
    publish: bool = False,
    lease_ttl: float = api.DEFAULT_LEASE_TTL,
    adaptive: str | None = None,
    coarse_stride: int = 2,
    refine_fraction: float = 0.5,
    kernel: str | None = None,
    dtype: str | None = None,
    layout: str | None = None,
    max_attempts: int = api.DEFAULT_MAX_ATTEMPTS,
    telemetry: bool = False,
    as_json: bool = False,
) -> int:
    """Run (or publish) a sweep and print the result, return an exit code.

    Pure dispatch over :func:`repro.api.run_sweep` /
    :func:`repro.api.publish_sweep` — see those for the semantics of
    ``jobs``/``cache_dir``/``resume``/``workers``/``adaptive``/
    ``telemetry``.  ``as_json`` prints the canonical sweep envelope
    (identical bytes to a warm ``POST /v1/sweep`` body) instead of the
    comparison table.
    """
    api.check_sweep_options(
        cache_dir=cache_dir,
        jobs=jobs,
        workers=workers,
        publish=publish,
        resume=resume,
        adaptive=adaptive,
        telemetry=telemetry,
    )
    if publish:
        plan, _queue = api.publish_sweep(
            name,
            grid,
            cache_dir=cache_dir,
            steps=steps,
            kernel=kernel,
            dtype=dtype,
            layout=layout,
            lease_ttl=lease_ttl,
            resume=resume,
        )
        if as_json:
            print(
                render_response(
                    "publish",
                    {
                        "case": plan.case,
                        "variants": len(plan),
                        "cache_dir": str(cache_dir),
                    },
                )
            )
            return 0
        print(f"published {len(plan)} variant(s) of {plan.case} to {cache_dir}")
        hint = " --telemetry" if telemetry else ""
        print(
            f"run workers with: python -m repro sweep-worker "
            f"--cache-dir {cache_dir}{hint}"
        )
        return 0

    result = api.run_sweep(
        name,
        grid,
        steps=steps,
        jobs=jobs,
        cache_dir=cache_dir,
        resume=resume,
        workers=workers,
        lease_ttl=lease_ttl,
        adaptive=adaptive,
        coarse_stride=coarse_stride,
        refine_fraction=refine_fraction,
        kernel=kernel,
        dtype=dtype,
        layout=layout,
        max_attempts=max_attempts,
        telemetry=telemetry,
    )

    if csv is not None:
        with open(csv, "w") as handle:
            handle.write(result.to_csv())
    if as_json:
        print(render_response("sweep", api.sweep_payload(result)))
        if csv is not None:
            print(f"wrote {csv}", file=sys.stderr)
        return 0 if result.passed else 1
    print(result.to_table(provenance=True))
    if result.provenance is not None:
        failed = result.failed_count
        cached = len(result.results) - result.runs_executed - failed
        failed_note = f", {failed} FAILED (quarantined)" if failed else ""
        print(
            f"{len(result.results)} variants: {result.runs_executed} run, "
            f"{cached} cached{failed_note}"
        )
    if result.grid_total is not None and result.stages is not None:
        coarse = sum(1 for stage in result.stages if stage == "coarse")
        refined = len(result.stages) - coarse
        print(
            f"sampled {len(result.results)}/{result.grid_total} grid "
            f"points ({coarse} coarse + {refined} refined)"
        )
    if csv is not None:
        print(f"wrote {csv}")
    return 0 if result.passed else 1


def run_status_cli(cache_dir: str, *, as_json: bool = False) -> int:
    """Print a sweep cache directory's progress/lease report."""
    status = api.sweep_status(cache_dir)
    if as_json:
        print(render_response("fleet", status.to_payload()))
    else:
        print(status.summary())
    return 0


def run_worker_cli(
    cache_dir: str,
    *,
    worker_id: str | None = None,
    lease_ttl: float = api.DEFAULT_LEASE_TTL,
    poll: float = 0.5,
    max_variants: int | None = None,
    wait: bool = False,
    follow: bool = False,
    max_attempts: int = api.DEFAULT_MAX_ATTEMPTS,
    retry_backoff: float = 0.5,
    idle_timeout: float | None = None,
    telemetry: bool = False,
    as_json: bool = False,
) -> int:
    """Run one sweep worker against a published sweep; print its report.

    ``follow`` keeps the worker alive after the queue drains, polling
    for work appended by a ``repro serve`` front end.
    """
    report = api.run_worker(
        cache_dir,
        worker_id=worker_id,
        lease_ttl=lease_ttl,
        poll=poll,
        max_variants=max_variants,
        wait=wait,
        follow=follow,
        max_attempts=max_attempts,
        retry_backoff=retry_backoff,
        idle_timeout=idle_timeout,
        telemetry=telemetry,
    )
    if as_json:
        print(render_response("worker-report", report.to_payload()))
    else:
        print(report.summary())
    return 0


def run_serve_cli(
    cache_dir: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8752,
    max_inflight: int | None = None,
    request_timeout: float | None = None,
    telemetry: bool = False,
) -> int:
    """Serve the scenario substrate over HTTP until interrupted.

    SIGTERM (and Ctrl-C) drain gracefully: the server stops admitting
    requests (503 + Retry-After), finishes the ones in flight, then
    closes the socket.
    """
    import signal
    import threading

    from ..serve import create_server

    extras: dict[str, Any] = {}
    if max_inflight is not None:
        extras["max_inflight"] = max_inflight
    if request_timeout is not None:
        extras["request_timeout"] = request_timeout
    server = create_server(
        cache_dir, host=host, port=port, telemetry=telemetry, **extras
    )
    print(f"serving {cache_dir} at {server.url}")
    print("endpoints: POST /v1/case /v1/sweep; GET /v1/health /v1/cases")
    print("           GET /v1/fleet /v1/jobs/<id> /v1/jobs/<id>/result")

    def _terminate(signum: int, frame: Any) -> None:
        server.draining = True
        # serve_forever must be stopped from another thread — shutdown()
        # blocks until the serving loop exits, which would deadlock here.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        pass  # not the main thread (tests drive this inline)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.draining = True
        drained = server.drain(timeout=10.0)
        server.server_close()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        print(
            "drained and stopped"
            if drained
            else "stopped with request(s) still in flight"
        )
    return 0


def run_events_cli(
    cache_dir: str,
    *,
    name: str | None = None,
    etype: str | None = None,
    process: str | None = None,
    tail: int | None = None,
) -> int:
    """Print a run's recorded events (filtered, one line each)."""
    from ..telemetry.aggregate import tail_events

    lines, aggregate = tail_events(
        cache_dir, name=name, etype=etype, process=process, tail=tail
    )
    if not aggregate.files:
        print(
            f"no telemetry under {cache_dir} (record some with "
            "`repro sweep ... --telemetry`)"
        )
        return 1
    for line in lines:
        print(line)
    shown = len(lines)
    summary = (
        f"{shown} of {len(aggregate.events)} event(s) from "
        f"{len(aggregate.files)} file(s)"
    )
    if aggregate.dropped:
        summary += f", {aggregate.dropped} corrupt line(s) dropped"
    print(summary)
    return 0


def run_perf_model_cli(
    action: str,
    *,
    bench: Sequence[str] = (),
    telemetry: Sequence[str] = (),
    host: str | None = None,
    path: str | None = None,
    kernel: str | None = None,
    lattice: str | None = None,
    dtype: str = "float64",
    shape: str | None = None,
    steps: int | None = None,
    ranks: int = 1,
) -> int:
    """The ``repro perf-model fit|show|predict`` workflow.

    ``fit`` least-squares the calibration from committed bench records
    (plus optional telemetry runs) and persists it to the per-host
    calibration file; ``show`` prints what is persisted; ``predict``
    answers one (kernel, lattice, dtype, shape, ranks) query from it
    via :func:`repro.api.predict_cost`.
    """
    from ..perf import model as perf_model

    if action == "fit":
        if not bench and not telemetry:
            raise ScenarioError(
                "perf-model fit needs at least one BENCH_*.json record "
                "or --telemetry directory"
            )
        fitted = perf_model.fit(bench, telemetry_roots=telemetry, host=host)
        for line in fitted.summary_lines():
            print(line)
        written = perf_model.save_calibration(fitted, path)
        print(f"wrote {written}")
        return 0

    where = Path(path) if path else perf_model.calibration_path(host)
    if action == "show":
        try:
            raw = json.loads(where.read_text())
        except OSError:
            print(
                f"no calibration at {where} — fit one with "
                "`repro perf-model fit BENCH_*.json`"
            )
            return 1
        except ValueError as exc:
            raise ScenarioError(f"corrupt calibration {where}: {exc}") from exc
        model = perf_model.FittedPerfModel.from_json(raw)
        for line in model.summary_lines():
            print(line)
        print(f"({where})")
        return 0

    # predict
    if not kernel or not lattice:
        raise ScenarioError("perf-model predict needs --kernel and --lattice")
    grid = tuple(int(s) for s in shape.split(",")) if shape else None
    estimate = api.predict_cost(
        kernel=kernel,
        lattice=lattice,
        dtype=dtype,
        shape=grid,
        steps=steps,
        ranks=ranks,
        host=host,
        path=path,
    )
    if estimate is None:
        if perf_model.load_calibration(where) is None:
            print(
                f"no calibration at {where} — fit one with "
                "`repro perf-model fit BENCH_*.json`"
            )
        else:
            print(
                f"model has no coverage for kernel={kernel} lattice={lattice} "
                f"dtype={dtype} ranks={ranks}"
            )
        return 1
    line = (
        f"{kernel} {lattice} {dtype}"
        + (f" ranks={ranks}" if ranks > 1 else "")
        + f": {estimate.mflups:.2f} MFLUP/s predicted ({estimate.level} fit)"
    )
    if grid is not None and steps and estimate.seconds is not None:
        line += (
            f", ~{estimate.seconds:.2f}s for {steps} steps on "
            f"{'x'.join(map(str, grid))}"
        )
    print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scenario subsystem: registered application workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("cases", help="list the registered case catalog")

    case = sub.add_parser("case", help="run one registered case")
    case.add_argument("name", help="case name (see `cases`)")
    case.add_argument("--steps", type=int, default=None, help="override steps")
    case.add_argument(
        "--set",
        dest="assignments",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field or case parameter (repeatable)",
    )
    case.add_argument(
        "--kernel",
        default=None,
        help="stream/collide kernel: naive, roll, fused-gather, planned, "
        "or auto (measured selection, verdict cached per host/shape/"
        "lattice/dtype)",
    )
    case.add_argument(
        "--no-kernel-cache",
        action="store_true",
        help="with --kernel auto: always re-time the candidates instead "
        "of reading/writing the per-host verdict cache",
    )
    case.add_argument(
        "--dtype",
        default=None,
        choices=("float32", "float64"),
        help="population precision (float32 halves bytes per cell)",
    )
    case.add_argument(
        "--layout",
        default=None,
        choices=("soa", "aos"),
        help="field memory layout: soa (velocity-major, default) or aos "
        "(cell-major; requires the planned kernel, results are "
        "byte-identical per dtype)",
    )
    case.add_argument("--checkpoint", default=None, help="restart file to write")
    case.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="also checkpoint every N steps (requires --checkpoint)",
    )
    case.add_argument("--resume", default=None, help="restart file to resume from")
    case.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="serve a warm fingerprint from DIR's result cache (zero "
        "steps executed) and commit fresh runs back to it",
    )
    case.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the canonical schema-versioned JSON envelope instead "
        "of the text summary (byte-identical to the serve API body)",
    )

    sweep = sub.add_parser("sweep", help="run a parameter sweep over one case")
    sweep.add_argument("name", help="case name (see `cases`)")
    sweep.add_argument(
        "--param",
        dest="params",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        required=True,
        help="parameter grid axis (repeatable)",
    )
    sweep.add_argument("--steps", type=int, default=None, help="override steps")
    sweep.add_argument(
        "--kernel",
        default=None,
        help="fixed kernel for every variant (sweep *over* kernels with "
        "--param kernel=roll,planned,...)",
    )
    sweep.add_argument(
        "--dtype",
        default=None,
        choices=("float32", "float64"),
        help="fixed population precision for every variant (sweep over "
        "precisions with --param dtype=float32,float64)",
    )
    sweep.add_argument(
        "--layout",
        default=None,
        choices=("soa", "aos"),
        help="fixed field layout for every variant (sweep over layouts "
        "with --param layout=soa,aos)",
    )
    sweep.add_argument("--csv", default=None, help="also write the table as CSV")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run variants across N worker processes (default: serial)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache per-variant results under DIR keyed by spec fingerprint",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep recorded in DIR's manifest "
        "(requires --cache-dir)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="distribute variants across N independent worker processes "
        "coordinating through --cache-dir lease files (alternative to "
        "--jobs; the same table, bit for bit)",
    )
    sweep.add_argument(
        "--publish",
        action="store_true",
        help="write the work order (queue + manifest) under --cache-dir "
        "and exit; run the variants with `sweep-worker` processes, "
        "possibly on other hosts",
    )
    sweep.add_argument(
        "--lease-ttl",
        type=float,
        default=api.DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="worker lease lifetime; must exceed the longest variant "
        f"(default: {api.DEFAULT_LEASE_TTL:g})",
    )
    sweep.add_argument(
        "--adaptive",
        default=None,
        metavar="OBSERVABLE",
        help="sample the grid adaptively instead of exhaustively: coarse "
        "pass, then refine where OBSERVABLE (a metric name or "
        "final_<series>) changes fastest",
    )
    sweep.add_argument(
        "--coarse-stride",
        type=int,
        default=2,
        metavar="K",
        help="adaptive coarse pass keeps every K-th value per axis "
        "(default: 2)",
    )
    sweep.add_argument(
        "--refine-fraction",
        type=float,
        default=0.5,
        metavar="F",
        help="fraction of refinable segments, fastest-changing first, "
        "to fill in (default: 0.5)",
    )
    sweep.add_argument(
        "--max-attempts",
        type=int,
        default=api.DEFAULT_MAX_ATTEMPTS,
        metavar="N",
        help="attempts per variant before it is quarantined and rendered "
        "as a FAILED row instead of retried (default: "
        f"{api.DEFAULT_MAX_ATTEMPTS})",
    )
    sweep.add_argument(
        "--telemetry",
        action="store_true",
        help="record structured JSONL events (variant spans, cache "
        "counters, worker heartbeats) under <cache-dir>/telemetry; "
        "inspect with `events` and `sweep-status` (requires --cache-dir)",
    )
    sweep.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the canonical sweep JSON envelope instead of the "
        "comparison table (byte-identical to the serve API body)",
    )

    status = sub.add_parser(
        "sweep-status",
        help="report a published/running sweep's progress and leases "
        "(read-only view over --cache-dir)",
    )
    status.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="the sweep's shared cache directory",
    )
    status.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the fleet rollup as a JSON envelope (the same body "
        "the serve API's GET /v1/fleet answers with)",
    )

    worker = sub.add_parser(
        "sweep-worker",
        help="claim and run variants of a sweep published with "
        "`sweep --publish` (launchable on any host sharing the cache dir)",
    )
    worker.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="the shared cache directory the sweep was published to",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        help="label recorded in leases and the manifest "
        "(default: host:pid:nonce)",
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=api.DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help="seconds before this worker's unreleased leases count as "
        "stale and peers may reclaim them",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="sleep between passes while waiting on peer-held work "
        "(with --wait)",
    )
    worker.add_argument(
        "--max-variants",
        type=int,
        default=None,
        metavar="N",
        help="exit after running N variants (default: no limit)",
    )
    worker.add_argument(
        "--wait",
        action="store_true",
        help="poll until the sweep completes instead of exiting when only "
        "peer-held work remains (also reclaims stale leases of dead peers)",
    )
    worker.add_argument(
        "--follow",
        action="store_true",
        help="never exit for lack of work: keep polling for variants "
        "appended to the queue (the mode a `repro serve` fleet runs in; "
        "implies --wait)",
    )
    worker.add_argument(
        "--max-attempts",
        type=int,
        default=api.DEFAULT_MAX_ATTEMPTS,
        metavar="N",
        help="failed attempts per variant (across the whole fleet, via "
        "the failure ledger) before it is quarantined (default: "
        f"{api.DEFAULT_MAX_ATTEMPTS})",
    )
    worker.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base delay before retrying a failed variant; doubles per "
        "attempt, capped at 60s (default: 0.5)",
    )
    worker.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --wait/--follow, exit once no variant has been claimed "
        "for this long (default: never)",
    )
    worker.add_argument(
        "--telemetry",
        action="store_true",
        help="record this worker's structured events under "
        "<cache-dir>/telemetry (one JSONL file per worker process)",
    )
    worker.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the exit report as a JSON envelope instead of text",
    )

    serve = sub.add_parser(
        "serve",
        help="serve cases and sweeps over HTTP: warm fingerprints answer "
        "from the result cache, cold ones are queued for sweep-worker "
        "processes (see README 'Serving')",
    )
    serve.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="shared cache directory answers are served from and cold "
        "work is queued under",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8752,
        help="bind port; 0 picks a free one (default: 8752)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="refuse requests with 503 + Retry-After beyond N concurrent "
        "ones (default: 32)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request socket timeout; slow or stalled clients are "
        "disconnected instead of pinning a handler thread (default: 30)",
    )
    serve.add_argument(
        "--telemetry",
        action="store_true",
        help="record request spans, serve cache counters and queue-depth "
        "events under <cache-dir>/telemetry",
    )

    events = sub.add_parser(
        "events",
        help="tail a run's structured telemetry events "
        "(read-only view over --cache-dir)",
    )
    events.add_argument(
        "--cache-dir",
        required=True,
        metavar="DIR",
        help="the run's cache directory (events live under DIR/telemetry)",
    )
    events.add_argument(
        "--name",
        default=None,
        help="only events whose name contains this substring "
        "(e.g. phase., cache., variant)",
    )
    events.add_argument(
        "--type",
        dest="etype",
        default=None,
        choices=("meta", "span", "count", "event"),
        help="only events of this type",
    )
    events.add_argument(
        "--process",
        default=None,
        help="only events from processes whose label contains this "
        "substring (worker ids, host:pid)",
    )
    events.add_argument(
        "--tail",
        type=int,
        default=None,
        metavar="N",
        help="only the last N matching events (default: all)",
    )

    perf_model = sub.add_parser(
        "perf-model",
        help="fit, inspect, or query the per-host performance calibration "
        "that resolves kernel=auto and packs sweeps by predicted cost",
    )
    perf_model.add_argument(
        "action",
        choices=("fit", "show", "predict"),
        help="fit: least-squares the calibration from bench records; "
        "show: print the persisted calibration; predict: one query",
    )
    perf_model.add_argument(
        "bench",
        nargs="*",
        metavar="BENCH.json",
        help="exported bench records to fit from (fit)",
    )
    perf_model.add_argument(
        "--telemetry",
        action="append",
        default=[],
        metavar="DIR",
        help="telemetry event directory whose measured kernel.auto "
        "verdicts also feed the fit (repeatable)",
    )
    perf_model.add_argument(
        "--host",
        default=None,
        help="calibrate/query for this host (default: this machine)",
    )
    perf_model.add_argument(
        "--path",
        default=None,
        metavar="FILE",
        help="calibration file (default: the per-host file under the "
        "kernel cache directory)",
    )
    perf_model.add_argument(
        "--kernel", default=None, help="kernel to predict for (predict)"
    )
    perf_model.add_argument(
        "--lattice", default=None, help="lattice to predict for (predict)"
    )
    perf_model.add_argument(
        "--dtype",
        default="float64",
        choices=("float32", "float64"),
        help="population precision to predict for (predict)",
    )
    perf_model.add_argument(
        "--shape",
        default=None,
        metavar="X,Y,Z",
        help="grid shape, for predicted wall-clock (predict)",
    )
    perf_model.add_argument(
        "--steps",
        type=int,
        default=None,
        help="step count, for predicted wall-clock (predict)",
    )
    perf_model.add_argument(
        "--ranks",
        type=int,
        default=1,
        help="rank count: >1 predicts the distributed slab kernels "
        "(predict)",
    )
    return parser


def main(argv: Sequence[str]) -> int:
    """Entry point for the ``cases``/``case``/``sweep`` subcommands."""
    args = build_parser().parse_args(list(argv))
    try:
        if args.command == "cases":
            from .registry import catalog_table

            print(catalog_table())
            return 0
        if args.command == "case":
            return run_case_cli(
                args.name,
                steps=args.steps,
                overrides=_parse_assignments(args.assignments),
                checkpoint=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
                kernel=args.kernel,
                dtype=args.dtype,
                layout=args.layout,
                kernel_cache=not args.no_kernel_cache,
                cache_dir=args.cache_dir,
                as_json=args.as_json,
            )
        if args.command == "sweep-status":
            return run_status_cli(args.cache_dir, as_json=args.as_json)
        if args.command == "events":
            return run_events_cli(
                args.cache_dir,
                name=args.name,
                etype=args.etype,
                process=args.process,
                tail=args.tail,
            )
        if args.command == "perf-model":
            return run_perf_model_cli(
                args.action,
                bench=args.bench,
                telemetry=args.telemetry,
                host=args.host,
                path=args.path,
                kernel=args.kernel,
                lattice=args.lattice,
                dtype=args.dtype,
                shape=args.shape,
                steps=args.steps,
                ranks=args.ranks,
            )
        if args.command == "sweep-worker":
            return run_worker_cli(
                args.cache_dir,
                worker_id=args.worker_id,
                lease_ttl=args.lease_ttl,
                poll=args.poll,
                max_variants=args.max_variants,
                wait=args.wait,
                follow=args.follow,
                max_attempts=args.max_attempts,
                retry_backoff=args.retry_backoff,
                idle_timeout=args.idle_timeout,
                telemetry=args.telemetry,
                as_json=args.as_json,
            )
        if args.command == "serve":
            return run_serve_cli(
                args.cache_dir,
                host=args.host,
                port=args.port,
                max_inflight=args.max_inflight,
                request_timeout=args.request_timeout,
                telemetry=args.telemetry,
            )
        return run_sweep_cli(
            args.name,
            _parse_grid(args.params),
            steps=args.steps,
            csv=args.csv,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            resume=args.resume,
            workers=args.workers,
            publish=args.publish,
            lease_ttl=args.lease_ttl,
            adaptive=args.adaptive,
            coarse_stride=args.coarse_stride,
            refine_fraction=args.refine_fraction,
            kernel=args.kernel,
            dtype=args.dtype,
            layout=args.layout,
            max_attempts=args.max_attempts,
            telemetry=args.telemetry,
            as_json=args.as_json,
        )
    except (ReproError, OSError) as exc:
        # ReproError covers ScenarioError plus the LatticeError family an
        # auto-kernel resolution can raise.
        print(f"error: {exc}", file=sys.stderr)
        return 2
