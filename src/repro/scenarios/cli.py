"""Command-line front end for the scenario subsystem.

Wired into ``python -m repro`` as the ``cases``/``case``/``sweep``
subcommands; the thin ``examples/*.py`` wrappers call
:func:`run_case_cli` / :func:`run_sweep_cli` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from ..errors import ScenarioError
from .executor import SweepExecutor
from .registry import catalog_table
from .runner import CaseRunner
from .sweep import Sweep

__all__ = ["main", "run_case_cli", "run_sweep_cli"]


def _parse_value(text: str) -> Any:
    """Best-effort scalar parsing for ``--set``/``--param`` values."""
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return text


def _parse_assignments(pairs: Sequence[str]) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ScenarioError(f"expected key=value, got {pair!r}")
        if "," in value:  # e.g. --set shape=16,16,4
            overrides[key] = tuple(_parse_value(v) for v in value.split(","))
        else:
            overrides[key] = _parse_value(value)
    return overrides


def _parse_grid(pairs: Sequence[str]) -> dict[str, list[Any]]:
    grid: dict[str, list[Any]] = {}
    for pair in pairs:
        key, sep, values = pair.partition("=")
        if not sep or not key or not values:
            raise ScenarioError(f"expected key=v1,v2,..., got {pair!r}")
        grid[key] = [_parse_value(v) for v in values.split(",")]
    return grid


def run_case_cli(
    name: str,
    *,
    steps: int | None = None,
    overrides: dict[str, Any] | None = None,
    checkpoint: str | None = None,
    checkpoint_every: int = 0,
    resume: str | None = None,
) -> int:
    """Run one case, print its summary (and report), return an exit code."""
    kwargs = dict(overrides or {})
    if steps is not None:
        kwargs["steps"] = steps
    runner = CaseRunner(name, **kwargs)
    result = runner.run(
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
    )
    print(result.to_text())
    if result.spec.report is not None:
        print()
        print(result.spec.report(result))
    return 0 if result.passed else 1


def run_sweep_cli(
    name: str,
    grid: dict[str, list[Any]],
    *,
    steps: int | None = None,
    csv: str | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    resume: bool = False,
) -> int:
    """Run a sweep, print the comparison table, return an exit code.

    ``jobs`` shards variants across a process pool; ``cache_dir``
    enables per-variant result caching (warm re-runs execute nothing);
    ``resume`` continues an interrupted sweep from its manifest.

    Always executes through :class:`SweepExecutor` — even plain serial
    sweeps — so the CLI's data columns are deterministic (wall-clock
    metrics never appear) and byte-identical across ``--jobs`` settings
    and cache states.
    """
    sweep = Sweep(name, grid, steps=steps)
    executor = SweepExecutor(sweep, jobs=jobs, cache_dir=cache_dir, resume=resume)
    result = executor.run()
    print(result.to_table(provenance=True))
    if result.provenance is not None:
        cached = len(result.results) - result.runs_executed
        print(
            f"{len(result.results)} variants: {result.runs_executed} run, "
            f"{cached} cached"
        )
    if csv is not None:
        with open(csv, "w") as handle:
            handle.write(result.to_csv())
        print(f"wrote {csv}")
    return 0 if result.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scenario subsystem: registered application workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("cases", help="list the registered case catalog")

    case = sub.add_parser("case", help="run one registered case")
    case.add_argument("name", help="case name (see `cases`)")
    case.add_argument("--steps", type=int, default=None, help="override steps")
    case.add_argument(
        "--set",
        dest="assignments",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field or case parameter (repeatable)",
    )
    case.add_argument("--checkpoint", default=None, help="restart file to write")
    case.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="also checkpoint every N steps (requires --checkpoint)",
    )
    case.add_argument("--resume", default=None, help="restart file to resume from")

    sweep = sub.add_parser("sweep", help="run a parameter sweep over one case")
    sweep.add_argument("name", help="case name (see `cases`)")
    sweep.add_argument(
        "--param",
        dest="params",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        required=True,
        help="parameter grid axis (repeatable)",
    )
    sweep.add_argument("--steps", type=int, default=None, help="override steps")
    sweep.add_argument("--csv", default=None, help="also write the table as CSV")
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run variants across N worker processes (default: serial)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache per-variant results under DIR keyed by spec fingerprint",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep recorded in DIR's manifest "
        "(requires --cache-dir)",
    )
    return parser


def main(argv: Sequence[str]) -> int:
    """Entry point for the ``cases``/``case``/``sweep`` subcommands."""
    args = build_parser().parse_args(list(argv))
    try:
        if args.command == "cases":
            print(catalog_table())
            return 0
        if args.command == "case":
            return run_case_cli(
                args.name,
                steps=args.steps,
                overrides=_parse_assignments(args.assignments),
                checkpoint=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                resume=args.resume,
            )
        return run_sweep_cli(
            args.name,
            _parse_grid(args.params),
            steps=args.steps,
            csv=args.csv,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            resume=args.resume,
        )
    except (ScenarioError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
