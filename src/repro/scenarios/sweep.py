"""Parameter sweeps: expand a grid of overrides into case variants.

A :class:`Sweep` takes one registered case and a mapping of parameter
name -> candidate values, expands the Cartesian product into variant
:class:`~repro.scenarios.spec.CaseSpec` instances (spec fields like
``tau``/``lattice``/``steps`` override directly; anything else lands in
``params`` for the case factories), runs each one, and renders a
comparison table through :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import dataclasses
import itertools
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..analysis.tables import append_column, render_csv, render_table
from .registry import get_case
from .runner import CaseResult, CaseRunner
from .spec import CaseSpec

__all__ = ["Sweep", "SweepResult"]

#: Metrics every run records, pinned to the front of comparison tables.
_LEADING_METRICS = ("steps_run", "mflups")


@dataclasses.dataclass
class SweepResult:
    """Outcome of one sweep: variant overrides paired with run results.

    ``provenance`` (when the sweep ran through an executor) records per
    variant whether it was freshly ``"run"``, served ``"cached"``, or
    completed by a distributed worker (``"worker:<id>"``);
    ``fingerprints`` carries the matching cache keys.  Adaptively
    sampled sweeps additionally record the full grid size in
    ``grid_total`` (the rows cover only the sampled subset) and each
    row's sampling ``stages`` entry (``"coarse"``/``"refined"``).
    """

    case: str
    parameters: tuple[str, ...]
    variants: list[dict[str, Any]]
    results: list[CaseResult]
    provenance: list[str] | None = None
    fingerprints: list[str] | None = None
    grid_total: int | None = None
    stages: list[str] | None = None

    def _columns(self) -> list[str]:
        # Collect over a *sorted* union of names so the column order is
        # a function of what the results contain, never of the order
        # they arrived in (cache hits complete out of order).
        metric_names: set[str] = set()
        observable_names: set[str] = set()
        for result in self.results:
            metric_names.update(
                name for name in result.metrics if name not in self.parameters
            )
            observable_names.update(
                name for name in result.series if name != "step"
            )
        leading = [n for n in _LEADING_METRICS if n in metric_names]
        trailing = sorted(metric_names.difference(_LEADING_METRICS))
        return leading + trailing + [
            f"final_{n}" for n in sorted(observable_names)
        ]

    @property
    def runs_executed(self) -> int:
        """How many variants actually ran (vs served from cache) —
        whether by this process (``"run"``) or a worker it launched.
        Quarantined ``"failed"`` placeholders never ran, so they do not
        count."""
        if self.provenance is None:
            return len(self.results)
        return sum(
            1 for source in self.provenance if source not in ("cached", "failed")
        )

    @property
    def failed_count(self) -> int:
        """How many variants are quarantined ``FAILED`` placeholders."""
        return sum(1 for result in self.results if result.failed)

    def rows(
        self, *, provenance: bool = False
    ) -> tuple[list[str], list[list[str]]]:
        """Comparison-table headers and rows (parameters, then outcomes).

        ``provenance=True`` merges the per-variant ``source`` column
        (``run``/``cached``).  It is opt-in because the *data* columns
        are deterministic — byte-identical between a cold serial run, a
        parallel run and a warm-cache replay — while provenance
        necessarily reflects how this particular invocation executed.
        """

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.5g}"
            if isinstance(value, bool):
                return "yes" if value else "no"
            return str(value)

        columns = self._columns()
        headers = list(self.parameters) + columns + ["checks"]
        table: list[list[str]] = []
        for overrides, result in zip(self.variants, self.results):
            row = [fmt(overrides[p]) for p in self.parameters]
            for column in columns:
                if column.startswith("final_") and column[6:] in result.series:
                    row.append(fmt(result.final(column[6:])))
                else:
                    row.append(fmt(result.metrics.get(column, "-")))
            if result.failed:
                row.append("FAILED")  # quarantined: no payload to judge
            else:
                row.append("PASS" if result.passed else "FAIL")
            table.append(row)
        if provenance and self.provenance is not None:
            headers, table = append_column(headers, table, "source", self.provenance)
        if provenance and self.stages is not None:
            headers, table = append_column(headers, table, "stage", self.stages)
        return headers, table

    def to_table(self, *, provenance: bool = False) -> str:
        headers, table = self.rows(provenance=provenance)
        return render_table(
            headers,
            table,
            title=f"Sweep over {self.case}: " + " x ".join(self.parameters),
        )

    def to_csv(self, *, provenance: bool = False) -> str:
        headers, table = self.rows(provenance=provenance)
        return render_csv(headers, table)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)


@dataclasses.dataclass
class Sweep:
    """Cartesian-product batch runner over one case.

    >>> sweep = Sweep("taylor-green", {"tau": [0.6, 0.8], "lattice":
    ...               ["D3Q19", "D3Q27"]}, steps=50)
    >>> print(sweep.run().to_table())

    Parameters
    ----------
    case:
        Registered case name or an explicit spec.
    parameters:
        Ordered mapping name -> sequence of values.  Spec fields
        (``tau``, ``lattice``, ``shape``, ``steps``...) override the
        spec; other names are case knobs routed into ``spec.params``.
    steps:
        Optional step-count override applied to every variant.
    overrides:
        Optional fixed overrides applied to every variant (e.g. the
        CLI's ``--kernel``/``--dtype`` flags).  Grid parameters win on
        a name collision; like the grid values, these flow through
        each variant's fingerprint, so the sweep cache distinguishes
        kernel/dtype choices.
    """

    case: str | CaseSpec
    parameters: Mapping[str, Sequence[Any]]
    steps: int | None = None
    overrides: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        self.parameters = {k: list(v) for k, v in self.parameters.items()}
        self.overrides = dict(self.overrides or {})
        if not self.parameters:
            raise ValueError("sweep needs at least one parameter")
        for name, values in self.parameters.items():
            if not values:
                raise ValueError(f"sweep parameter {name!r} has no values")

    @property
    def spec(self) -> CaseSpec:
        return self.case if isinstance(self.case, CaseSpec) else get_case(self.case)

    def expand(self) -> list[dict[str, Any]]:
        """All variant override dicts, last parameter varying fastest."""
        names = list(self.parameters)
        grid = itertools.product(*(self.parameters[n] for n in names))
        return [dict(zip(names, values)) for values in grid]

    def specs(self) -> list[CaseSpec]:
        """The expanded variant specs (validated)."""
        return [
            CaseRunner(self.spec, **overrides).spec
            for overrides in self.variant_overrides()
        ]

    def variant_overrides(self) -> list[dict[str, Any]]:
        """Per-variant override dicts with the sweep-level steps merged."""
        return [self._with_steps(overrides) for overrides in self.expand()]

    def fingerprints(self) -> list[str]:
        """Content hashes of every variant spec (the sweep cache keys)."""
        return [spec.fingerprint() for spec in self.specs()]

    def _with_steps(self, overrides: dict[str, Any]) -> dict[str, Any]:
        """One variant's full override dict: sweep-level fixed overrides
        (and step count), with the grid values taking precedence."""
        merged = {**self.overrides, **overrides}
        if self.steps is not None and "steps" not in merged:
            merged["steps"] = self.steps
        return merged

    def run(
        self,
        *,
        analyze: bool = True,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        resume: bool = False,
    ) -> SweepResult:
        """Run every variant and collect the comparison.

        With ``jobs > 1``, a ``cache_dir`` or ``resume``, delegates to
        :class:`~repro.scenarios.executor.SweepExecutor`: variants are
        sharded across a process pool, per-variant results are cached
        by spec fingerprint, and results come back *lean* (scalar
        outcomes only, no simulation attached, timing metrics
        stripped).  The default in-process path keeps the full
        simulations and timing metrics on each :class:`CaseResult`
        (so its tables include the nondeterministic ``mflups`` column;
        the CLI always goes through the executor instead).
        """
        if jobs != 1 or cache_dir is not None or resume:
            from .executor import SweepExecutor

            executor = SweepExecutor(
                self, jobs=jobs, cache_dir=cache_dir, resume=resume
            )
            return executor.run(analyze=analyze)
        base = self.spec
        variants = self.expand()
        results = [
            CaseRunner(base, **self._with_steps(overrides)).run(analyze=analyze)
            for overrides in variants
        ]
        return SweepResult(
            case=base.name,
            parameters=tuple(self.parameters),
            variants=variants,
            results=results,
        )
