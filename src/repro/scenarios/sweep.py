"""Parameter sweeps: expand a grid of overrides into case variants.

A :class:`Sweep` takes one registered case and a mapping of parameter
name -> candidate values, expands the Cartesian product into variant
:class:`~repro.scenarios.spec.CaseSpec` instances (spec fields like
``tau``/``lattice``/``steps`` override directly; anything else lands in
``params`` for the case factories), runs each one, and renders a
comparison table through :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Mapping, Sequence

from ..analysis.tables import render_csv, render_table
from .registry import get_case
from .runner import CaseResult, CaseRunner
from .spec import CaseSpec

__all__ = ["Sweep", "SweepResult"]


@dataclasses.dataclass
class SweepResult:
    """Outcome of one sweep: variant overrides paired with run results."""

    case: str
    parameters: tuple[str, ...]
    variants: list[dict[str, Any]]
    results: list[CaseResult]

    def _columns(self) -> list[str]:
        metric_names: list[str] = []
        observable_names: list[str] = []
        for result in self.results:
            for name in result.metrics:
                if name not in metric_names and name not in self.parameters:
                    metric_names.append(name)
            for name in result.series:
                if name != "step" and name not in observable_names:
                    observable_names.append(name)
        return metric_names + [f"final_{n}" for n in observable_names]

    def rows(self) -> tuple[list[str], list[list[str]]]:
        """Comparison-table headers and rows (parameters, then outcomes)."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.5g}"
            if isinstance(value, bool):
                return "yes" if value else "no"
            return str(value)

        columns = self._columns()
        headers = list(self.parameters) + columns + ["checks"]
        table: list[list[str]] = []
        for overrides, result in zip(self.variants, self.results):
            row = [fmt(overrides[p]) for p in self.parameters]
            for column in columns:
                if column.startswith("final_") and column[6:] in result.series:
                    row.append(fmt(result.final(column[6:])))
                else:
                    row.append(fmt(result.metrics.get(column, "-")))
            row.append("PASS" if result.passed else "FAIL")
            table.append(row)
        return headers, table

    def to_table(self) -> str:
        headers, table = self.rows()
        return render_table(
            headers,
            table,
            title=f"Sweep over {self.case}: " + " x ".join(self.parameters),
        )

    def to_csv(self) -> str:
        headers, table = self.rows()
        return render_csv(headers, table)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)


@dataclasses.dataclass
class Sweep:
    """Cartesian-product batch runner over one case.

    >>> sweep = Sweep("taylor-green", {"tau": [0.6, 0.8], "lattice":
    ...               ["D3Q19", "D3Q27"]}, steps=50)
    >>> print(sweep.run().to_table())

    Parameters
    ----------
    case:
        Registered case name or an explicit spec.
    parameters:
        Ordered mapping name -> sequence of values.  Spec fields
        (``tau``, ``lattice``, ``shape``, ``steps``...) override the
        spec; other names are case knobs routed into ``spec.params``.
    steps:
        Optional step-count override applied to every variant.
    """

    case: str | CaseSpec
    parameters: Mapping[str, Sequence[Any]]
    steps: int | None = None

    def __post_init__(self) -> None:
        self.parameters = {k: list(v) for k, v in self.parameters.items()}
        if not self.parameters:
            raise ValueError("sweep needs at least one parameter")
        for name, values in self.parameters.items():
            if not values:
                raise ValueError(f"sweep parameter {name!r} has no values")

    @property
    def spec(self) -> CaseSpec:
        return self.case if isinstance(self.case, CaseSpec) else get_case(self.case)

    def expand(self) -> list[dict[str, Any]]:
        """All variant override dicts, last parameter varying fastest."""
        names = list(self.parameters)
        grid = itertools.product(*(self.parameters[n] for n in names))
        return [dict(zip(names, values)) for values in grid]

    def specs(self) -> list[CaseSpec]:
        """The expanded variant specs (validated)."""
        return [
            CaseRunner(self.spec, **self._with_steps(overrides)).spec
            for overrides in self.expand()
        ]

    def _with_steps(self, overrides: dict[str, Any]) -> dict[str, Any]:
        if self.steps is not None and "steps" not in overrides:
            return {**overrides, "steps": self.steps}
        return overrides

    def run(self, *, analyze: bool = True) -> SweepResult:
        """Run every variant and collect the comparison."""
        base = self.spec
        variants = self.expand()
        results = [
            CaseRunner(base, **self._with_steps(overrides)).run(analyze=analyze)
            for overrides in variants
        ]
        return SweepResult(
            case=base.name,
            parameters=tuple(self.parameters),
            variants=variants,
            results=results,
        )
