"""Case registry: name -> :class:`~repro.scenarios.spec.CaseSpec`.

Mirrors :mod:`repro.experiments.registry` (paper artifacts) for
application workloads.  Cases register themselves at import time via
:func:`register_case`; the catalog is what ``python -m repro cases``
prints.
"""

from __future__ import annotations

from ..errors import ScenarioError
from .spec import CaseSpec

__all__ = [
    "CASES",
    "register_case",
    "get_case",
    "available_cases",
    "catalog_table",
]

CASES: dict[str, CaseSpec] = {}


def register_case(spec: CaseSpec) -> CaseSpec:
    """Validate ``spec`` and add it to the registry (idempotent-safe).

    Usable as a plain call or wrapped by case modules::

        SPEC = register_case(CaseSpec(name="taylor-green", ...))

    Raises
    ------
    ScenarioError
        If the spec fails validation or the name is already taken by a
        *different* spec.
    """
    spec.validate()
    existing = CASES.get(spec.name)
    if existing is not None and existing is not spec:
        raise ScenarioError(f"case {spec.name!r} is already registered")
    CASES[spec.name] = spec
    return spec


def available_cases() -> tuple[str, ...]:
    """Sorted names of every registered case."""
    _ensure_builtin_cases()
    return tuple(sorted(CASES))


def get_case(name: str) -> CaseSpec:
    """Look up one case by name; raises with hints on a miss."""
    _ensure_builtin_cases()
    try:
        return CASES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown case {name!r}; available: {', '.join(available_cases())}"
        ) from None


def catalog_table() -> str:
    """The case catalog as an aligned table (CLI ``cases`` subcommand)."""
    from ..analysis.tables import render_table

    _ensure_builtin_cases()
    rows = [
        [
            spec.name,
            spec.lattice,
            "x".join(str(s) for s in spec.shape),
            spec.steps,
            ",".join(spec.tags) or "-",
            spec.title,
        ]
        for _, spec in sorted(CASES.items())
    ]
    return render_table(
        ["case", "lattice", "grid", "steps", "tags", "title"],
        rows,
        title=f"Registered cases ({len(rows)})",
    )


def _ensure_builtin_cases() -> None:
    """Import the built-in case catalog exactly once (lazy, cycle-free)."""
    from . import cases  # noqa: F401  (registers on import)
