"""Declarative scenario specification.

A :class:`CaseSpec` is a frozen, self-contained description of one
workload: which lattice, what domain, how the geometry is built, which
boundary conditions and forcing apply, when to stop, and which scalar
observables to record along the way.  Everything the runner needs is
data or a pure factory callable — a registered case is ~30 lines of
declaration instead of a ~100-line standalone script.

Factories receive the spec itself, so case-specific knobs live in the
free-form ``params`` mapping and stay sweepable: a parameter sweep can
override ``tau``, ``lattice``, ``shape``, ``steps`` *or* any ``params``
key (e.g. the Knudsen number of the microchannel case) through
:meth:`CaseSpec.with_overrides`.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import types
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from ..core.boundary import BoundaryCondition
from ..core.simulation import Simulation
from ..errors import ScenarioError
from ..lattice import VelocitySet, available_lattices

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import CaseResult

__all__ = ["CaseSpec", "steady_state"]


def _const_token(const: Any) -> Any:
    """Canonical token of one code constant.  ``frozenset`` literals
    (set-membership tests) iterate in hash order, which varies with
    ``PYTHONHASHSEED`` — sort them so the token doesn't."""
    if hasattr(const, "co_code"):
        return _code_token(const)
    if isinstance(const, frozenset):
        return ["frozenset"] + sorted(repr(c) for c in const)
    if isinstance(const, tuple):
        return [_const_token(c) for c in const]
    return repr(const)


def _code_token(code: Any) -> list:
    """Identity of a function body: bytecode + names + consts.

    Line numbers are excluded, so two textually identical lambdas
    defined in different places agree; two same-qualname lambdas with
    *different* bodies (the classic ``<lambda>`` collision) do not.
    Nested code objects (inner functions, comprehensions) recurse.
    """
    consts = [_const_token(const) for const in code.co_consts]
    return [code.co_code.hex(), list(code.co_names), consts]


def _instance_token(obj: Any, _seen: frozenset = frozenset()) -> Any:
    """Identity of a configured object: its class plus attribute state
    (modules just contribute their name — their dict is the world)."""
    if isinstance(obj, types.ModuleType):
        return f"module:{obj.__name__}"
    if id(obj) in _seen:  # cyclic object graph
        return "recursive-instance"
    _seen = _seen | {id(obj)}
    cls = type(obj)
    state = getattr(obj, "__dict__", {})
    return [
        f"{cls.__module__}:{cls.__qualname__}",
        {str(k): _fingerprint_token(v, _seen) for k, v in sorted(state.items())},
    ]


def _fingerprint_token(value: Any, _seen: frozenset = frozenset()) -> Any:
    """Reduce one spec field to a canonical, process-stable token.

    Callables (geometry builders, observables, hooks) are identified by
    their qualified name plus their body's bytecode, so the same source
    yields the same token in every interpreter — the property that lets
    sweep workers in different processes agree on cache keys — while
    distinct same-qualname callables (two ``<lambda>``s in one scope)
    cannot collide.  Closures additionally contribute their captured
    cell values and defaults: ``steady_state(obs, rtol=1e-6)`` and
    ``rtol=1e-8`` return functions with identical qualnames and bodies
    but must not collide either.
    """
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, functools.partial):
        return [
            "partial",
            _fingerprint_token(value.func, _seen),
            [_fingerprint_token(a, _seen) for a in value.args],
            {str(k): _fingerprint_token(v, _seen) for k, v in value.keywords.items()},
        ]
    if callable(value):
        if id(value) in _seen:  # self-referential closure
            return "recursive-callable"
        _seen = _seen | {id(value)}
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if module is not None and qualname is not None:
            token: list[Any] = [f"{module}:{qualname}"]
            func = getattr(value, "__func__", value)  # bound method -> function
            code = getattr(func, "__code__", None)
            if code is not None:
                token.append(_code_token(code))
            defaults = getattr(func, "__defaults__", None) or ()
            if defaults:
                token.append([_fingerprint_token(d, _seen) for d in defaults])
            owner = getattr(value, "__self__", None)
            if owner is not None:  # bound method: instance config matters
                token.append(_instance_token(owner, _seen))
            cells = getattr(func, "__closure__", None) or ()
            captured = []
            for cell in cells:
                try:
                    captured.append(_fingerprint_token(cell.cell_contents, _seen))
                except ValueError:  # empty cell
                    captured.append("empty-cell")
            if captured:
                token.append(captured)
            return token[0] if len(token) == 1 else token
        return _instance_token(value, _seen)
    if isinstance(value, np.ndarray):
        return _fingerprint_token(value.tolist(), _seen)
    if isinstance(value, Mapping):
        return {str(k): _fingerprint_token(v, _seen) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_fingerprint_token(v, _seen) for v in value]
    if isinstance(value, (set, frozenset)):
        return ["set"] + sorted(repr(_fingerprint_token(v, _seen)) for v in value)
    text = repr(value)
    if " at 0x" in text:  # default repr embeds a memory address:
        return _instance_token(value, _seen)  # hash state, not identity
    return f"{type(value).__module__}:{type(value).__qualname__}:{text}"

# Factory signatures (all receive the spec so they can read spec.params):
GeometryBuilder = Callable[["CaseSpec"], np.ndarray]
BoundaryFactory = Callable[
    ["CaseSpec", VelocitySet, "np.ndarray | None"], Sequence[BoundaryCondition]
]
CollisionFactory = Callable[["CaseSpec", VelocitySet], Any]
InitialCondition = Callable[["CaseSpec"], "tuple[np.ndarray, np.ndarray]"]
Observable = Callable[[Simulation], float]
StopCondition = Callable[[], Callable[[Simulation], bool]]


@dataclasses.dataclass(frozen=True)
class CaseSpec:
    """Frozen declaration of one simulation workload.

    Attributes
    ----------
    name:
        Registry key (kebab-case, e.g. ``"taylor-green"``).
    title / description:
        Human-readable catalog entries.
    lattice:
        Velocity-set name (``"D3Q19"``, ``"D3Q39"``, ...).
    shape:
        Spatial grid shape.
    tau:
        BGK relaxation time (a ``collision`` factory may ignore it).
    order:
        Hermite equilibrium order (``None`` = lattice native).
    kernel:
        Stream/collide kernel name (``"roll"``, ``"fused-gather"``,
        ``"planned"``, ``"naive"``); ``None`` = the driver's legacy
        default pair.  Mutually exclusive with a ``collision`` factory.
        ``"auto"`` is rejected here — a spec must be deterministic for
        the sweep cache; use ``Simulation(kernel="auto")`` directly.
    dtype:
        Population dtype policy, ``"float64"`` (default) or
        ``"float32"``.  Fingerprint-sensitive, like ``kernel``: sweep
        cache entries distinguish kernel/dtype variants.
    layout:
        Physical memory order of the persistent field, ``"soa"``
        (default) or ``"aos"`` (requires ``kernel="planned"``).
        Fingerprint-sensitive and overridable like ``kernel``/``dtype``
        even though both layouts produce byte-identical results per
        dtype — a sweep axis over layouts measures throughput, and the
        cache must keep the variants' timings apart.
    collision:
        Optional factory ``(spec, lattice) -> operator``; default BGK.
    geometry:
        Optional factory ``(spec) -> solid bool mask`` over the grid.
    boundaries:
        Optional factory ``(spec, lattice, solid) -> [BoundaryCondition]``.
    forcing:
        Constant body-force vector, or ``None``.
    initial:
        Factory ``(spec) -> (rho, u)``; default uniform fluid at rest.
    steps:
        Maximum number of time steps.
    stop_when:
        Optional *factory* returning a fresh stopping predicate
        ``(sim) -> bool`` evaluated at monitor points (factories keep
        stateful convergence monitors from leaking between runs).
    monitor_every / check_stability_every:
        Observable-recording and stability-check periods.
    observables:
        Named scalar probes ``(sim) -> float`` recorded as time series.
    analysis:
        Optional post-run hook ``(CaseResult) -> {metric: value}``.
    checks:
        Optional pass/fail hook ``(CaseResult) -> {check: bool}``.
    report:
        Optional pretty-printer ``(CaseResult) -> str`` for the CLI.
    params:
        Free-form case knobs read by the factories; sweepable.
    tags:
        Catalog labels (``"continuum"``, ``"kinetic"``, ``"model"``...).
    """

    name: str
    title: str
    description: str = ""
    lattice: str = "D3Q19"
    shape: tuple[int, ...] = (16, 16, 16)
    tau: float = 0.8
    order: int | None = None
    kernel: str | None = None
    dtype: str = "float64"
    layout: str = "soa"
    collision: CollisionFactory | None = None
    geometry: GeometryBuilder | None = None
    boundaries: BoundaryFactory | None = None
    forcing: tuple[float, ...] | None = None
    initial: InitialCondition | None = None
    steps: int = 500
    stop_when: StopCondition | None = None
    monitor_every: int = 10
    check_stability_every: int = 100
    observables: Mapping[str, Observable] = dataclasses.field(default_factory=dict)
    analysis: Callable[["CaseResult"], Mapping[str, Any]] | None = None
    checks: Callable[["CaseResult"], Mapping[str, bool]] | None = None
    report: Callable[["CaseResult"], str] | None = None
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"case {self.name!r}: shape must be a sequence of ints, "
                f"got {self.shape!r}"
            ) from exc
        if self.forcing is not None:
            try:
                object.__setattr__(
                    self, "forcing", tuple(float(c) for c in self.forcing)
                )
            except (TypeError, ValueError) as exc:
                raise ScenarioError(
                    f"case {self.name!r}: forcing must be a sequence of "
                    f"floats, got {self.forcing!r}"
                ) from exc
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "observables", dict(self.observables))
        object.__setattr__(self, "tags", tuple(self.tags))

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ScenarioError` if the declaration is inconsistent."""
        if not self.name:
            raise ScenarioError("case name must be non-empty")
        if self.lattice not in available_lattices():
            raise ScenarioError(
                f"case {self.name!r}: unknown lattice {self.lattice!r} "
                f"(available: {', '.join(available_lattices())})"
            )
        if len(self.shape) != 3 or any(s < 1 for s in self.shape):
            raise ScenarioError(
                f"case {self.name!r}: shape must be 3 positive ints, got {self.shape}"
            )
        if not isinstance(self.tau, (int, float)):
            raise ScenarioError(
                f"case {self.name!r}: tau must be a number, got {self.tau!r}"
            )
        if self.collision is None and not self.tau > 0.5:
            raise ScenarioError(
                f"case {self.name!r}: BGK tau must exceed 0.5, got {self.tau}"
            )
        sparse = bool(self.params.get("sparse"))
        if self.kernel is not None:
            from ..core.plan import AUTO_KERNEL, available_kernels

            if self.kernel == AUTO_KERNEL:
                # A spec is a *deterministic* declaration: 'auto' picks
                # whichever kernel wins a timing race on the executing
                # host, so one fingerprint could cache different
                # kernels' (tolerance- but not bit-identical) results —
                # breaking the sweep cache's byte-identity guarantee.
                # Measured selection stays available on the driver:
                # Simulation(kernel="auto").
                raise ScenarioError(
                    f"case {self.name!r}: kernel 'auto' is per-host "
                    "timing-dependent and not allowed in a (cacheable, "
                    "fingerprinted) spec; pick one of "
                    f"{', '.join(available_kernels())}, or use "
                    "Simulation(kernel='auto') directly"
                )
            if sparse:
                # Sparse cases resolve through make_sparse_kernel, which
                # accepts short rung names alongside the registry ones.
                allowed = ("legacy", "planned", "sparse-legacy", "sparse-planned")
                if self.kernel not in allowed:
                    raise ScenarioError(
                        f"case {self.name!r}: unknown sparse kernel "
                        f"{self.kernel!r} (available: {', '.join(allowed)})"
                    )
            elif self.kernel not in available_kernels():
                raise ScenarioError(
                    f"case {self.name!r}: unknown kernel {self.kernel!r} "
                    f"(available: {', '.join(available_kernels())})"
                )
            elif self.kernel.startswith("sparse-"):
                raise ScenarioError(
                    f"case {self.name!r}: kernel {self.kernel!r} requires a "
                    "sparse domain (set params={'sparse': True} and provide "
                    "a geometry mask)"
                )
            if self.collision is not None:
                raise ScenarioError(
                    f"case {self.name!r}: kernel and collision factory are "
                    "mutually exclusive (kernels own a BGK collision)"
                )
        if self.dtype not in ("float32", "float64"):
            raise ScenarioError(
                f"case {self.name!r}: dtype must be 'float32' or 'float64', "
                f"got {self.dtype!r}"
            )
        if self.layout not in ("soa", "aos"):
            raise ScenarioError(
                f"case {self.name!r}: layout must be 'soa' or 'aos', "
                f"got {self.layout!r}"
            )
        if self.layout == "aos":
            if sparse:
                raise ScenarioError(
                    f"case {self.name!r}: layout 'aos' does not apply to "
                    "sparse cases (sparse kernels store populations per "
                    "fluid site)"
                )
            if self.kernel != "planned":
                raise ScenarioError(
                    f"case {self.name!r}: layout 'aos' requires "
                    "kernel='planned' (the plan remaps its gather table "
                    f"per layout), got kernel={self.kernel!r}"
                )
        if sparse and self.geometry is None:
            raise ScenarioError(
                f"case {self.name!r}: a sparse case needs a geometry "
                "factory (the solid mask defines the fluid set)"
            )
        for field_name in ("steps", "monitor_every", "check_stability_every"):
            if not isinstance(getattr(self, field_name), int):
                raise ScenarioError(
                    f"case {self.name!r}: {field_name} must be an int, "
                    f"got {getattr(self, field_name)!r}"
                )
        if self.steps < 1:
            raise ScenarioError(
                f"case {self.name!r}: steps must be positive, got {self.steps}"
            )
        if self.monitor_every < 1:
            raise ScenarioError(
                f"case {self.name!r}: monitor_every must be positive"
            )
        if self.forcing is not None and len(self.forcing) != len(self.shape):
            raise ScenarioError(
                f"case {self.name!r}: forcing must have {len(self.shape)} components"
            )

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Canonical content hash of this spec (sweep-cache key).

        Covers every field: two specs share a fingerprint iff they
        declare the same workload, regardless of the order their
        overrides/params were applied in and of the process computing
        it.  Factory callables contribute their qualified names, so
        editing which factory a case uses invalidates its cache entries
        while re-running an identical sweep hits them.
        """
        from ..core.io import canonical_json

        token = {
            field.name: _fingerprint_token(getattr(self, field.name))
            for field in dataclasses.fields(self)
        }
        digest = hashlib.sha256(canonical_json(token).encode("utf-8"))
        return digest.hexdigest()

    # -- derivation --------------------------------------------------------

    #: CaseSpec field names a sweep/CLI may override directly.
    OVERRIDABLE = frozenset(
        {"lattice", "shape", "tau", "order", "kernel", "dtype", "layout",
         "forcing", "steps", "monitor_every", "check_stability_every"}
    )

    def with_overrides(self, **overrides: Any) -> "CaseSpec":
        """A copy with selected fields replaced.

        Keys in :data:`OVERRIDABLE` replace the spec field; any other
        key is merged into ``params`` (unknown knobs belong to the
        case's factories, which decide what they mean).  Spec fields
        outside :data:`OVERRIDABLE` (titles, factories, hooks) are
        rejected rather than silently routed to ``params``.
        """
        fields = {k: v for k, v in overrides.items() if k in self.OVERRIDABLE}
        extra = {k: v for k, v in overrides.items() if k not in self.OVERRIDABLE}
        field_names = {f.name for f in dataclasses.fields(self)}
        blocked = sorted(set(extra) & field_names)
        if blocked:
            raise ScenarioError(
                f"case {self.name!r}: spec field(s) {', '.join(blocked)} "
                f"cannot be overridden (only {', '.join(sorted(self.OVERRIDABLE))} "
                "and free-form params)"
            )
        if extra:
            fields["params"] = {**self.params, **extra}
        return dataclasses.replace(self, **fields)


def steady_state(
    observable: Observable, rtol: float = 1e-6
) -> StopCondition:
    """Stop when ``observable`` changes by less than ``rtol`` (relative)
    between consecutive monitor points.

    Returns a *factory* so every run gets its own convergence history.
    """

    def make() -> Callable[[Simulation], bool]:
        last: list[float] = []

        def predicate(sim: Simulation) -> bool:
            value = float(observable(sim))
            converged = bool(
                last and abs(value - last[0]) <= rtol * max(abs(last[0]), 1e-300)
            )
            last[:] = [value]
            return converged

        return predicate

    return make
