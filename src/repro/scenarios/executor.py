"""Parallel sweep execution with per-variant caching and resume.

:class:`SweepExecutor` shards the expanded variants of one
:class:`~repro.scenarios.sweep.Sweep` across a
:class:`concurrent.futures.ProcessPoolExecutor` (``jobs=1`` keeps the
serial in-process path, which runs the *same* worker function so the
two paths are bit-identical), reuses any variant whose content hash
already has a valid cache entry, and records progress in a
:class:`~repro.scenarios.cache.SweepManifest` so an interrupted sweep
resumes with only the missing variants.

Results are reduced to their scalar outcomes (metrics, observable
series, checks) before crossing process or disk boundaries; wall-clock
metrics such as ``mflups`` are stripped because they can never be
deterministic, and everything else round-trips through canonical JSON
so a sweep run under ``jobs=4`` emits tables byte-identical to
``jobs=1`` and to a warm-cache replay.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Mapping

from ..core.io import serialize_result_data
from ..errors import ScenarioError
from .cache import ResultCache, SweepManifest
from .registry import get_case
from .runner import CaseResult, CaseRunner
from .spec import CaseSpec
from .sweep import Sweep, SweepResult

__all__ = ["SweepExecutor", "NONDETERMINISTIC_METRICS"]

#: Metrics derived from wall-clock timing: meaningless to cache, fatal
#: to determinism, so the executor drops them from every payload.
NONDETERMINISTIC_METRICS = frozenset({"mflups"})


@dataclasses.dataclass(frozen=True)
class _VariantTask:
    """One variant's work order, picklable for pool workers."""

    case: CaseSpec | str
    overrides: tuple[tuple[str, Any], ...]
    analyze: bool
    fingerprint: str


def _execute_variant(task: _VariantTask) -> dict[str, Any]:
    """Run one variant and reduce it to a canonical payload.

    Module-level so process pools can pickle it; recomputing the
    fingerprint in the worker doubles as a cross-process stability
    check on :meth:`CaseSpec.fingerprint`.
    """
    runner = CaseRunner(task.case, **dict(task.overrides))
    fingerprint = runner.spec.fingerprint()
    if fingerprint != task.fingerprint:
        raise ScenarioError(
            f"variant fingerprint mismatch for case {runner.spec.name!r}: "
            f"scheduler saw {task.fingerprint[:12]}, worker computed "
            f"{fingerprint[:12]} — CaseSpec.fingerprint is not process-stable"
        )
    result = runner.run(analyze=task.analyze)
    metrics = {
        k: v for k, v in result.metrics.items()
        if k not in NONDETERMINISTIC_METRICS
    }
    payload = json.loads(
        serialize_result_data(metrics, result.series, result.checks)
    )
    payload["case"] = result.spec.name
    # Recorded so a cached analyze=False payload (no analysis metrics,
    # vacuous checks) is never served to an analyze=True sweep.
    payload["analyze"] = task.analyze
    return payload


@dataclasses.dataclass
class SweepExecutor:
    """Run a sweep's variants in parallel, through a result cache.

    >>> sweep = Sweep("taylor-green", {"tau": [0.6, 0.8]}, steps=50)
    >>> result = SweepExecutor(sweep, jobs=4, cache_dir="cache").run()
    >>> result.runs_executed  # second invocation: 0 (warm cache)

    Parameters
    ----------
    sweep:
        The sweep whose expanded variants to execute.
    jobs:
        Process-pool width; ``1`` executes serially in-process.
    cache_dir:
        Directory of per-variant entries + the sweep manifest; ``None``
        disables caching (every variant runs).
    resume:
        Require a manifest from an earlier interrupted run of this
        same sweep (a safety latch: resuming a *different* sweep over
        the same directory is an error, not a silent cache mixup).
    """

    sweep: Sweep
    jobs: int = 1
    cache_dir: str | Path | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ScenarioError(f"jobs must be >= 1, got {self.jobs}")
        if self.resume and self.cache_dir is None:
            raise ScenarioError("resume requires a cache directory")

    # -- orchestration -----------------------------------------------------

    def run(self, *, analyze: bool = True) -> SweepResult:
        """Execute missing variants, reuse cached ones, keep grid order."""
        sweep = self.sweep
        base = sweep.spec
        # One expansion; overrides/specs/fingerprints are derived views
        # of it and must stay index-aligned.
        variants = sweep.expand()
        overrides = [sweep._with_steps(v) for v in variants]
        specs = [CaseRunner(base, **o).spec for o in overrides]
        fingerprints = [spec.fingerprint() for spec in specs]
        case_ref = self._portable_case_ref(base)

        cache, manifest = self._open_cache(base.name, fingerprints)
        payloads: list[dict[str, Any] | None] = [None] * len(variants)
        provenance = ["run"] * len(variants)
        if cache is not None:
            for index, fingerprint in enumerate(fingerprints):
                entry = cache.get(fingerprint)
                if entry is not None and entry.get("analyze") == analyze:
                    payloads[index] = entry
                    provenance[index] = "cached"
            if manifest is not None:
                for fingerprint, payload in zip(fingerprints, payloads):
                    if payload is not None and fingerprint not in manifest.completed:
                        manifest.completed.append(fingerprint)
                manifest.save()

        pending = [i for i, payload in enumerate(payloads) if payload is None]
        tasks = {
            i: _VariantTask(
                case=case_ref,
                overrides=tuple(sorted(overrides[i].items())),
                analyze=analyze,
                fingerprint=fingerprints[i],
            )
            for i in pending
        }
        if self._use_pool(tasks):
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_execute_variant, tasks[i]): i for i in pending}
                for future in as_completed(futures):
                    index = futures[future]
                    payload = future.result()
                    payloads[index] = payload
                    self._commit(cache, manifest, fingerprints[index], payload)
        else:
            for index in pending:
                payload = _execute_variant(tasks[index])
                payloads[index] = payload
                self._commit(cache, manifest, fingerprints[index], payload)

        results = [
            self._result_from_payload(spec, payload)
            for spec, payload in zip(specs, payloads)
        ]
        return SweepResult(
            case=base.name,
            parameters=tuple(sweep.parameters),
            variants=variants,
            results=results,
            provenance=provenance,
            fingerprints=fingerprints,
        )

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _portable_case_ref(base: CaseSpec) -> CaseSpec | str:
        """What workers rebuild the case from: the registry name when it
        resolves back to this very spec (always picklable), else the
        spec object itself."""
        try:
            if get_case(base.name) is base:
                return base.name
        except ScenarioError:
            pass
        return base

    def _use_pool(self, tasks: Mapping[int, _VariantTask]) -> bool:
        """Pool only when it helps *and* the work orders can cross a
        process boundary — unregistered specs holding closures (e.g. a
        ``steady_state`` stop condition) or closure-valued override
        values silently fall back to the serial path, which produces
        identical output."""
        if self.jobs <= 1 or len(tasks) <= 1:
            return False
        try:
            pickle.dumps(list(tasks.values()))
        except Exception:
            return False
        return True

    def _open_cache(
        self, case: str, fingerprints: list[str]
    ) -> tuple[ResultCache | None, SweepManifest | None]:
        if self.cache_dir is None:
            return None, None
        cache = ResultCache(self.cache_dir)
        parameters = list(self.sweep.parameters)
        if self.resume:
            manifest = SweepManifest.resume(
                cache.root, case, parameters, fingerprints
            )
        else:
            manifest = SweepManifest.load(cache.root)
            if manifest is None or manifest.fingerprints != fingerprints:
                manifest = SweepManifest.create(
                    cache.root, case, parameters, fingerprints
                )
        return cache, manifest

    @staticmethod
    def _commit(
        cache: ResultCache | None,
        manifest: SweepManifest | None,
        fingerprint: str,
        payload: Mapping[str, Any],
    ) -> None:
        """Persist one finished variant immediately — a crash after this
        point costs nothing on resume."""
        if cache is not None:
            cache.put(fingerprint, payload)
        if manifest is not None:
            manifest.mark_complete(fingerprint)

    @staticmethod
    def _result_from_payload(
        spec: CaseSpec, payload: Mapping[str, Any]
    ) -> CaseResult:
        """Rehydrate a lean :class:`CaseResult` (no simulation attached)."""
        return CaseResult(
            spec=spec,
            simulation=None,
            series={str(k): [float(v) for v in vs] for k, vs in payload["series"].items()},
            metrics=dict(payload["metrics"]),
            checks={str(k): bool(v) for k, v in payload["checks"].items()},
        )
