"""Parallel sweep execution with per-variant caching and resume.

:class:`SweepExecutor` shards the expanded variants of one
:class:`~repro.scenarios.sweep.Sweep` across a
:class:`concurrent.futures.ProcessPoolExecutor` (``jobs=1`` keeps the
serial in-process path, which runs the *same* worker function so the
two paths are bit-identical), reuses any variant whose content hash
already has a valid cache entry, and records progress in a
:class:`~repro.scenarios.cache.SweepManifest` so an interrupted sweep
resumes with only the missing variants.

Results are reduced to their scalar outcomes (metrics, observable
series, checks) before crossing process or disk boundaries; wall-clock
metrics such as ``mflups`` are stripped because they can never be
deterministic, and everything else round-trips through canonical JSON
so a sweep run under ``jobs=4`` emits tables byte-identical to
``jobs=1`` and to a warm-cache replay.

The building blocks live at module level so other drivers can reuse
them: :class:`SweepPlan` is the index-aligned expansion of one sweep
(variants, overrides, specs, fingerprints), and
:func:`execute_pending` runs any subset of its tasks through the same
pool-or-serial machinery.  The distributed scheduler
(:mod:`repro.scenarios.scheduler`) and the adaptive sampler
(:mod:`repro.scenarios.sampling`) are both thin layers over these.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..core.io import serialize_result_data
from ..errors import ScenarioError
from ..resilience import FailureLedger
from ..telemetry.recorder import (
    NullTelemetry,
    Telemetry,
    get_telemetry,
    process_recorder,
)
from .cache import ResultCache, SweepManifest
from .registry import get_case
from .runner import CaseResult, CaseRunner
from .spec import CaseSpec
from .sweep import Sweep, SweepResult

__all__ = [
    "SweepExecutor",
    "SweepPlan",
    "case_payload",
    "execute_pending",
    "failed_payload",
    "open_cache",
    "result_from_payload",
    "usable_entry",
    "NONDETERMINISTIC_METRICS",
]

#: Metrics derived from wall-clock timing: meaningless to cache, fatal
#: to determinism, so the executor drops them from every payload.
#: ``distributed_mflups`` is the scaling-study case's measured slab
#: throughput (PR 5), as host-dependent as the driver's own ``mflups``.
NONDETERMINISTIC_METRICS = frozenset({"mflups", "distributed_mflups"})


@dataclasses.dataclass(frozen=True)
class _VariantTask:
    """One variant's work order, picklable for pool workers."""

    case: CaseSpec | str
    overrides: tuple[tuple[str, Any], ...]
    analyze: bool
    fingerprint: str
    #: Per-run telemetry directory; set, the executing process emits a
    #: ``variant`` span + counters into its own event file there.  A
    #: plain string so the task pickles across pool forks unchanged.
    telemetry_dir: str | None = None


def _task_telemetry(task: _VariantTask) -> "Telemetry | NullTelemetry":
    """The recorder ``_execute_variant`` reports through.

    Resolved *in the executing process*: with ``task.telemetry_dir``
    the per-process file recorder (pool children forked from an
    instrumented parent get their own file, keyed by pid), else the
    ambient recorder — the no-op default, or whatever the surrounding
    worker installed.
    """
    if task.telemetry_dir:
        return process_recorder(task.telemetry_dir)
    return get_telemetry()


def _execute_variant(task: _VariantTask) -> dict[str, Any]:
    """Run one variant and reduce it to a canonical payload.

    Module-level so process pools can pickle it; recomputing the
    fingerprint in the worker doubles as a cross-process stability
    check on :meth:`CaseSpec.fingerprint`.  With telemetry enabled the
    run is wrapped in a ``variant`` span (fingerprint, case, steps,
    cells) and counted — the raw material for per-worker MFLUP/s
    rollups; the payload itself stays byte-identical either way.
    """
    runner = CaseRunner(task.case, **dict(task.overrides))
    fingerprint = runner.spec.fingerprint()
    if fingerprint != task.fingerprint:
        raise ScenarioError(
            f"variant fingerprint mismatch for case {runner.spec.name!r}: "
            f"scheduler saw {task.fingerprint[:12]}, worker computed "
            f"{fingerprint[:12]} — CaseSpec.fingerprint is not process-stable"
        )
    telemetry = _task_telemetry(task)
    with telemetry.span(
        "variant", fingerprint=fingerprint, case=runner.spec.name
    ) as span:
        result = runner.run(analyze=task.analyze)
        if telemetry.enabled:
            # Late attrs, known only after the run; recorded when the
            # span closes right below.
            steps = int(result.metrics.get("steps_run", 0))
            cells = (
                int(result.simulation.num_cells)
                if result.simulation is not None
                else int(math.prod(runner.spec.shape))
            )
            span.set(steps=steps, cells=cells)
    if telemetry.enabled:
        telemetry.count("variant.completed")
        telemetry.count("variant.updates", steps * cells)
        telemetry.count("variant.seconds", span.seconds or 0.0)
    return case_payload(result, analyze=task.analyze)


def case_payload(result: CaseResult, *, analyze: bool) -> dict[str, Any]:
    """Reduce one finished case run to its canonical cacheable payload.

    The single payload builder behind cache entries, CLI ``--json``
    output and serve HTTP bodies: timing-derived metrics are dropped
    (:data:`NONDETERMINISTIC_METRICS`) and floats round-trip through
    canonical JSON, so the same spec yields byte-identical payloads on
    any host, warm or cold.
    """
    metrics = {
        k: v for k, v in result.metrics.items()
        if k not in NONDETERMINISTIC_METRICS
    }
    payload = json.loads(
        serialize_result_data(metrics, result.series, result.checks)
    )
    payload["case"] = result.spec.name
    # Recorded so a cached analyze=False payload (no analysis metrics,
    # vacuous checks) is never served to an analyze=True sweep.
    payload["analyze"] = analyze
    return payload


def _portable_case_ref(base: CaseSpec) -> CaseSpec | str:
    """What workers rebuild the case from: the registry name when it
    resolves back to this very spec (always picklable, and resolvable
    on *other hosts*), else the spec object itself."""
    try:
        if get_case(base.name) is base:
            return base.name
    except ScenarioError:
        pass
    return base


def result_from_payload(
    spec: CaseSpec, payload: Mapping[str, Any]
) -> CaseResult:
    """Rehydrate a lean :class:`CaseResult` (no simulation attached)."""
    return CaseResult(
        spec=spec,
        simulation=None,
        series={
            str(k): [float(v) for v in vs]
            for k, vs in payload["series"].items()
        },
        metrics=dict(payload["metrics"]),
        checks={str(k): bool(v) for k, v in payload["checks"].items()},
        failed=bool(payload.get("failed", False)),
    )


def failed_payload(case: str, record: Any, *, analyze: bool) -> dict[str, Any]:
    """Placeholder payload for a quarantined variant.

    Shaped like a real :func:`case_payload` (so it rehydrates through
    :func:`result_from_payload` into an explicit ``FAILED`` row) but
    never written to the result cache — the cache stays
    content-addressed over *successful* runs only, and clearing the
    failure ledger is all it takes to retry.
    """
    last = record.last
    return {
        "case": case,
        "analyze": analyze,
        "failed": True,
        "series": {},
        "metrics": {},
        "checks": {},
        "error": {
            "exception": last.exception if last is not None else "unknown",
            "message": last.message if last is not None else "",
            "attempts": record.attempt_count,
        },
    }


def usable_entry(
    cache: ResultCache | None,
    fingerprint: str,
    analyze: bool,
    count: bool = True,
) -> dict[str, Any] | None:
    """The cached payload for one variant iff it matches this sweep's
    ``analyze`` mode (an analyze=False smoke payload has no analysis
    metrics and vacuous checks, so it must never satisfy a full run).

    The default probe goes through :meth:`ResultCache.lookup`, which
    records ``cache.hit``/``cache.miss``/``cache.corrupt`` counters on
    the cache's recorder; ``count=False`` probes silently
    (:meth:`ResultCache.get`) for read-only status checks and
    under-lease re-checks that would otherwise inflate the counters."""
    if cache is None:
        return None
    entry = cache.lookup(fingerprint).payload if count else cache.get(fingerprint)
    if entry is not None and entry.get("analyze") == analyze:
        return entry
    return None


@dataclasses.dataclass(frozen=True)
class SweepPlan:
    """Index-aligned expansion of one sweep, in grid order.

    ``variants`` are the raw grid points, ``overrides`` merge the
    sweep-level step count, ``specs`` are the validated variant specs
    and ``fingerprints`` their content hashes (the cache keys).  All
    four lists share indices; every consumer — executor, distributed
    scheduler, adaptive sampler — derives its work from one plan so
    their outputs are bit-identical over any subset.
    """

    case: str
    parameters: tuple[str, ...]
    variants: list[dict[str, Any]]
    overrides: list[dict[str, Any]]
    specs: list[CaseSpec]
    fingerprints: list[str]
    case_ref: CaseSpec | str

    @classmethod
    def of(cls, sweep: Sweep) -> "SweepPlan":
        base = sweep.spec
        # One expansion; overrides/specs/fingerprints are derived views
        # of it and must stay index-aligned.
        variants = sweep.expand()
        overrides = [sweep._with_steps(v) for v in variants]
        specs = [CaseRunner(base, **o).spec for o in overrides]
        return cls(
            case=base.name,
            parameters=tuple(sweep.parameters),
            variants=variants,
            overrides=overrides,
            specs=specs,
            fingerprints=[spec.fingerprint() for spec in specs],
            case_ref=_portable_case_ref(base),
        )

    def __len__(self) -> int:
        return len(self.variants)

    def task(
        self, index: int, analyze: bool, telemetry_dir: str | None = None
    ) -> _VariantTask:
        """The picklable work order for one variant."""
        return _VariantTask(
            case=self.case_ref,
            overrides=tuple(sorted(self.overrides[index].items())),
            analyze=analyze,
            fingerprint=self.fingerprints[index],
            telemetry_dir=telemetry_dir,
        )

    def result(
        self, indices: Iterable[int], payloads: Mapping[int, Mapping[str, Any]],
        provenance: Mapping[int, str], **extra: Any,
    ) -> SweepResult:
        """Assemble a :class:`SweepResult` over ``indices`` (grid order)."""
        order = sorted(indices)
        return SweepResult(
            case=self.case,
            parameters=self.parameters,
            variants=[self.variants[i] for i in order],
            results=[
                result_from_payload(self.specs[i], payloads[i]) for i in order
            ],
            provenance=[provenance[i] for i in order],
            fingerprints=[self.fingerprints[i] for i in order],
            **extra,
        )


def _pool_usable(jobs: int, tasks: Mapping[int, _VariantTask]) -> bool:
    """Pool only when it helps *and* the work orders can cross a
    process boundary — unregistered specs holding closures (e.g. a
    ``steady_state`` stop condition) or closure-valued override values
    silently fall back to the serial path, which produces identical
    output."""
    if jobs <= 1 or len(tasks) <= 1:
        return False
    try:
        pickle.dumps(list(tasks.values()))
    except Exception:
        return False
    return True


def execute_pending(
    tasks: Mapping[int, _VariantTask],
    jobs: int,
    on_done: Callable[[int, dict[str, Any]], None] | None = None,
) -> dict[int, dict[str, Any]]:
    """Run every task, pooled or serial, committing each as it lands.

    ``on_done(index, payload)`` fires immediately after each variant
    finishes (the cache/manifest commit hook), so a crash mid-batch
    loses only the in-flight runs.  Both paths run the same
    :func:`_execute_variant`, so their payloads are bit-identical.
    """
    payloads: dict[int, dict[str, Any]] = {}
    pending = list(tasks)
    if _pool_usable(jobs, tasks):
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_variant, tasks[i]): i for i in pending
            }
            for future in as_completed(futures):
                index = futures[future]
                payload = future.result()
                payloads[index] = payload
                if on_done is not None:
                    on_done(index, payload)
    else:
        for index in pending:
            payload = _execute_variant(tasks[index])
            payloads[index] = payload
            if on_done is not None:
                on_done(index, payload)
    return payloads


def open_cache(
    cache_dir: str | Path | None,
    case: str,
    parameters: Iterable[str],
    fingerprints: list[str],
    resume: bool = False,
) -> tuple[ResultCache | None, SweepManifest | None]:
    """The (cache, manifest) pair for one sweep over one directory.

    ``resume=True`` requires a manifest from an earlier interrupted run
    of this same sweep (a safety latch: resuming a *different* sweep
    over the same directory is an error, not a silent cache mixup);
    otherwise a fresh manifest is created unless a matching one exists.
    """
    if cache_dir is None:
        return None, None
    cache = ResultCache(cache_dir)
    parameters = list(parameters)
    if resume:
        manifest = SweepManifest.resume(cache.root, case, parameters, fingerprints)
    else:
        manifest = SweepManifest.load(cache.root)
        if manifest is None or manifest.fingerprints != fingerprints:
            manifest = SweepManifest.create(
                cache.root, case, parameters, fingerprints
            )
    return cache, manifest


@dataclasses.dataclass
class SweepExecutor:
    """Run a sweep's variants in parallel, through a result cache.

    >>> sweep = Sweep("taylor-green", {"tau": [0.6, 0.8]}, steps=50)
    >>> result = SweepExecutor(sweep, jobs=4, cache_dir="cache").run()
    >>> result.runs_executed  # second invocation: 0 (warm cache)

    Parameters
    ----------
    sweep:
        The sweep whose expanded variants to execute.
    jobs:
        Process-pool width; ``1`` executes serially in-process.
    cache_dir:
        Directory of per-variant entries + the sweep manifest; ``None``
        disables caching (every variant runs).
    resume:
        Require a manifest from an earlier interrupted run of this
        same sweep (a safety latch: resuming a *different* sweep over
        the same directory is an error, not a silent cache mixup).
    telemetry_dir:
        Directory of append-only JSONL event files; setting it enables
        structured telemetry for the run — a per-process recorder here,
        per-variant spans in every pool worker, and cache hit/miss
        counters.  ``None`` (default) leaves the ambient recorder in
        charge (usually the no-op).
    """

    sweep: Sweep
    jobs: int = 1
    cache_dir: str | Path | None = None
    resume: bool = False
    telemetry_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ScenarioError(f"jobs must be >= 1, got {self.jobs}")
        if self.resume and self.cache_dir is None:
            raise ScenarioError("resume requires a cache directory")

    # -- orchestration -----------------------------------------------------

    def run(self, *, analyze: bool = True) -> SweepResult:
        """Execute missing variants, reuse cached ones, keep grid order."""
        plan = SweepPlan.of(self.sweep)
        telemetry_dir = (
            str(self.telemetry_dir) if self.telemetry_dir is not None else None
        )
        recorder = (
            process_recorder(telemetry_dir) if telemetry_dir else get_telemetry()
        )
        cache, manifest = open_cache(
            self.cache_dir,
            plan.case,
            plan.parameters,
            plan.fingerprints,
            resume=self.resume,
        )
        if cache is not None:
            cache.telemetry = recorder
        payloads: list[dict[str, Any] | None] = [None] * len(plan)
        provenance = ["run"] * len(plan)
        if cache is not None:
            for index, fingerprint in enumerate(plan.fingerprints):
                entry = usable_entry(cache, fingerprint, analyze)
                if entry is not None:
                    payloads[index] = entry
                    provenance[index] = "cached"
                    # Per-variant outcome (vs the raw storage probes the
                    # cache itself counts): feeds the fleet hit rate.
                    if recorder.enabled:
                        recorder.count("variant.cached")
            if manifest is not None:
                for fingerprint, payload in zip(plan.fingerprints, payloads):
                    if payload is not None and fingerprint not in manifest.completed:
                        manifest.completed.append(fingerprint)
                manifest.save()
            # Variants the fleet quarantined become explicit FAILED rows
            # instead of being silently re-run here at merge time.
            quarantined = FailureLedger(cache.root).quarantined()
            for index, fingerprint in enumerate(plan.fingerprints):
                if payloads[index] is None and fingerprint in quarantined:
                    payloads[index] = failed_payload(
                        plan.case, quarantined[fingerprint], analyze=analyze
                    )
                    provenance[index] = "failed"

        pending = [i for i, payload in enumerate(payloads) if payload is None]
        tasks = {i: plan.task(i, analyze, telemetry_dir) for i in pending}

        def commit(index: int, payload: dict[str, Any]) -> None:
            self._commit(cache, manifest, plan.fingerprints[index], payload)

        for index, payload in execute_pending(tasks, self.jobs, commit).items():
            payloads[index] = payload

        results = [
            result_from_payload(spec, payload)
            for spec, payload in zip(plan.specs, payloads)
        ]
        return SweepResult(
            case=plan.case,
            parameters=plan.parameters,
            variants=plan.variants,
            results=results,
            provenance=provenance,
            fingerprints=plan.fingerprints,
        )

    # -- helpers -----------------------------------------------------------

    def _use_pool(self, tasks: Mapping[int, _VariantTask]) -> bool:
        return _pool_usable(self.jobs, tasks)

    @staticmethod
    def _commit(
        cache: ResultCache | None,
        manifest: SweepManifest | None,
        fingerprint: str,
        payload: Mapping[str, Any],
    ) -> None:
        """Persist one finished variant immediately — a crash after this
        point costs nothing on resume."""
        if cache is not None:
            cache.put(fingerprint, payload)
        if manifest is not None:
            manifest.mark_complete(fingerprint)
