"""Adaptive grid sampling: coarse sweep, then refine where it matters.

Full Cartesian expansion scales multiplicatively — a 5-parameter sweep
with 8 values per axis is 32768 variants.  The paper's own parameter
studies (ghost-cell depth, hybrid splits) show the response surfaces
are smooth almost everywhere and interesting in narrow regions; this
module exploits that: run a **coarse pass** over a stride-subsampled
grid, measure how fast a chosen observable changes between adjacent
coarse points, and run a **refinement pass** only over the skipped
points inside the fastest-changing segments.

Every variant is still addressed by its spec fingerprint and executed
by the same worker function as an exhaustive sweep, through the same
cache — so a sampled row is byte-identical to the exhaustive sweep's
row for that variant, and an adaptive pass over a warm exhaustive
cache executes nothing.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..errors import ScenarioError
from .cache import ResultCache
# No manifest here (unlike executor.open_cache): adaptive sweeps run a
# data-dependent subset, so a fixed-fingerprint manifest would lie.
from .executor import SweepPlan, execute_pending, usable_entry
from .sweep import Sweep, SweepResult

__all__ = ["AdaptiveSampler", "coarse_axis_indices"]


def coarse_axis_indices(size: int, stride: int) -> list[int]:
    """Every ``stride``-th index plus the last (endpoints always run)."""
    indices = list(range(0, size, stride))
    if indices[-1] != size - 1:
        indices.append(size - 1)
    return indices


@dataclasses.dataclass(frozen=True)
class _Segment:
    """Two adjacent coarse points along one axis, other axes fixed.

    ``lo``/``hi`` are *axis indices* into that axis's value list; the
    points strictly between them were skipped by the coarse pass and
    are what refinement would add.
    """

    axis: int
    lo: int
    hi: int
    fixed: tuple[int, ...]  # coarse indices of the other axes, in axis order

    def coordinate(self, at: int) -> tuple[int, ...]:
        coordinate = list(self.fixed)
        coordinate.insert(self.axis, at)
        return tuple(coordinate)

    def skipped(self) -> list[tuple[int, ...]]:
        return [self.coordinate(i) for i in range(self.lo + 1, self.hi)]


@dataclasses.dataclass
class AdaptiveSampler:
    """Run one sweep adaptively instead of exhaustively.

    >>> sampler = AdaptiveSampler(
    ...     Sweep("taylor-green", {"tau": [0.6, 0.7, 0.8, 0.9, 1.0],
    ...                            "shape": [(8, 8, 4), (16, 16, 4)]}),
    ...     observable="final_kinetic_energy",
    ... )
    >>> result = sampler.run()
    >>> result.grid_total, len(result.results)  # e.g. (10, 8)

    Parameters
    ----------
    sweep:
        The full Cartesian sweep to sample.
    observable:
        What "changes fastest" is measured on: a metric name
        (``steps_run``, an analysis metric) or ``final_<series>`` for
        the last value of a recorded observable series.
    coarse_stride:
        Keep every k-th value per axis in the coarse pass (endpoints
        always kept).
    refine_fraction:
        Fraction of refinable segments (those with skipped points),
        fastest-changing first, whose skipped points run in the
        refinement pass.  ``1.0`` refines every segment — still fewer
        runs than exhaustive whenever more than one segment exists and
        the grid has interior points on some axis.
    jobs / cache_dir:
        Forwarded to the same pool-or-serial execution machinery as
        :class:`~repro.scenarios.executor.SweepExecutor`.
    """

    sweep: Sweep
    observable: str
    coarse_stride: int = 2
    refine_fraction: float = 0.5
    jobs: int = 1
    cache_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.coarse_stride < 2:
            raise ScenarioError(
                f"coarse stride must be >= 2 (got {self.coarse_stride}); "
                "stride 1 is just the exhaustive sweep"
            )
        if not 0.0 <= self.refine_fraction <= 1.0:
            raise ScenarioError(
                f"refine fraction must be in [0, 1], got {self.refine_fraction}"
            )
        if self.jobs < 1:
            raise ScenarioError(f"jobs must be >= 1, got {self.jobs}")

    # -- passes ------------------------------------------------------------

    def run(self, *, analyze: bool = True) -> SweepResult:
        """Coarse pass, pick segments, refinement pass, merged result.

        The result covers only the executed subset (in grid order) and
        carries ``grid_total`` (the exhaustive count) plus per-row
        ``stages`` (``"coarse"``/``"refined"``).
        """
        plan = SweepPlan.of(self.sweep)
        sizes = [len(values) for values in self.sweep.parameters.values()]
        coordinates = list(itertools.product(*(range(n) for n in sizes)))
        flat = {coordinate: i for i, coordinate in enumerate(coordinates)}

        cache = ResultCache(self.cache_dir) if self.cache_dir is not None else None

        coarse_axes = [coarse_axis_indices(size, self.coarse_stride) for size in sizes]
        coarse = [flat[c] for c in itertools.product(*coarse_axes)]
        payloads: dict[int, dict[str, Any]] = {}
        provenance: dict[int, str] = {}
        self._execute(plan, coarse, cache, analyze, payloads, provenance)

        values = {index: self._observable_value(payloads[index]) for index in coarse}
        segments = self._segments(coarse_axes)
        chosen = self._fastest(segments, values, flat)
        refined: list[int] = []
        seen = set(coarse)
        for segment in chosen:
            for coordinate in segment.skipped():
                index = flat[coordinate]
                if index not in seen:
                    seen.add(index)
                    refined.append(index)
        self._execute(plan, refined, cache, analyze, payloads, provenance)

        stages = {index: "coarse" for index in coarse}
        stages.update({index: "refined" for index in refined})
        order = sorted(seen)
        result = plan.result(
            order,
            payloads,
            provenance,
            grid_total=len(plan),
            stages=[stages[i] for i in order],
        )
        return result

    # -- helpers -----------------------------------------------------------

    def _execute(
        self,
        plan: SweepPlan,
        indices: Sequence[int],
        cache: ResultCache | None,
        analyze: bool,
        payloads: dict[int, dict[str, Any]],
        provenance: dict[int, str],
    ) -> None:
        """Run one pass's variants through the cache, recording both."""
        pending = []
        for index in indices:
            entry = usable_entry(cache, plan.fingerprints[index], analyze)
            if entry is not None:
                payloads[index] = entry
                provenance[index] = "cached"
            else:
                pending.append(index)
        tasks = {index: plan.task(index, analyze) for index in pending}

        def commit(index: int, payload: dict[str, Any]) -> None:
            if cache is not None:
                cache.put(plan.fingerprints[index], payload)

        for index, payload in execute_pending(tasks, self.jobs, commit).items():
            payloads[index] = payload
            provenance[index] = "run"

    def _observable_value(self, payload: Mapping[str, Any]) -> float:
        name = self.observable
        metrics = payload.get("metrics", {})
        series = payload.get("series", {})
        if name in metrics:
            return float(metrics[name])
        if name.startswith("final_") and name[6:] in series:
            return float(series[name[6:]][-1])
        if name in series:
            return float(series[name][-1])
        available = sorted(metrics) + sorted(
            f"final_{s}" for s in series if s != "step"
        )
        raise ScenarioError(
            f"unknown observable {name!r} for adaptive sampling; "
            f"available: {', '.join(available)}"
        )

    def _segments(self, coarse_axes: list[list[int]]) -> list[_Segment]:
        """All refinable adjacent-coarse-point pairs, deterministic order."""
        segments: list[_Segment] = []
        for axis, indices in enumerate(coarse_axes):
            others = [coarse_axes[a] for a in range(len(coarse_axes)) if a != axis]
            for lo, hi in zip(indices, indices[1:]):
                if hi - lo <= 1:
                    continue  # coarse pass already ran everything here
                for fixed in itertools.product(*others):
                    segments.append(_Segment(axis, lo, hi, tuple(fixed)))
        return segments

    def _fastest(
        self,
        segments: list[_Segment],
        values: Mapping[int, float],
        flat: Mapping[tuple[int, ...], int],
    ) -> list[_Segment]:
        """The top ``refine_fraction`` of segments by observable change.

        NaN deltas sort as infinitely fast — an observable blowing up
        inside a segment is exactly the region to look at more closely.
        Ties and ordering are broken by (axis, lo, fixed), so the
        selection is deterministic across processes and hosts.
        """
        if not segments or self.refine_fraction == 0.0:
            return []

        def delta(segment: _Segment) -> float:
            lo = values[flat[segment.coordinate(segment.lo)]]
            hi = values[flat[segment.coordinate(segment.hi)]]
            change = abs(hi - lo)
            return math.inf if math.isnan(change) else change

        ranked = sorted(
            segments,
            key=lambda s: (-delta(s), s.axis, s.lo, s.fixed),
        )
        keep = max(1, math.ceil(self.refine_fraction * len(ranked)))
        return ranked[:keep]
