"""Per-variant result cache and sweep progress manifest.

The sweep executor keys each variant by its spec's content hash
(:meth:`~repro.scenarios.spec.CaseSpec.fingerprint`) and stores the
variant's scalar outcomes — metrics, observable series, checks — as a
checksummed JSON entry.  Entries are content-addressed: a warm cache
makes re-running an identical sweep (or a superset sweep sharing some
variants) free, and the checksum catches truncated or hand-edited
entries so they are transparently re-run instead of poisoning tables.

A :class:`SweepManifest` sits next to the entries and records which
variants of one particular sweep have completed, so an interrupted
``python -m repro sweep --cache-dir ... --resume`` can prove it is
continuing the same sweep and report what remains.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.io import canonical_json
from ..errors import ScenarioError
from ..resilience.ledger import FAILURES_FILENAME
from ..telemetry.recorder import NULL_TELEMETRY, NullTelemetry, Telemetry

__all__ = [
    "CORRUPT_DIRNAME",
    "CacheDiff",
    "CacheLookup",
    "ResultCache",
    "SweepManifest",
    "sweep_key",
]

logger = logging.getLogger(__name__)

_ENTRY_VERSION = 1

#: Name of the distributed work order file (written by
#: :class:`repro.scenarios.scheduler.WorkQueue`); reserved alongside the
#: manifest so cache key listings never mistake it for an entry.
QUEUE_FILENAME = "queue.json"

#: Sidecar directory corrupt entries are renamed into (see
#: :meth:`ResultCache.quarantine_corrupt`).
CORRUPT_DIRNAME = "corrupt"


def _atomic_write(path: Path, text: str) -> None:
    """Write via a sibling temp file + rename so readers never see a
    half-written entry (a crashed sweep must not leave corrupt state
    that a resume would trust)."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _checksum(data: Any) -> str:
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def sweep_key(case: str, fingerprints: Sequence[str]) -> str:
    """Identity of one sweep: the case plus its ordered variant hashes."""
    return _checksum({"case": case, "fingerprints": list(fingerprints)})


@dataclasses.dataclass(frozen=True)
class CacheLookup:
    """One cache probe's outcome: a status plus the payload on a hit.

    ``status`` distinguishes what :meth:`ResultCache.get` historically
    conflated: ``"hit"`` (valid entry), ``"miss"`` (no entry at all) and
    ``"corrupt"`` (an entry exists but is truncated, tampered, or filed
    under the wrong key) — so corrupt counters are truthful and corrupt
    paths get logged instead of silently re-run.
    """

    status: str  # "hit" | "miss" | "corrupt"
    payload: dict[str, Any] | None = None

    @property
    def hit(self) -> bool:
        return self.status == "hit"


class ResultCache:
    """Content-addressed store of per-variant sweep results.

    Each entry lives at ``<root>/<fingerprint>.json`` as::

        {"version": 1, "fingerprint": ..., "checksum": ..., "data": {...}}

    where ``data`` holds the serialisable outcome payload and
    ``checksum`` is the SHA-256 of its canonical JSON.  :meth:`get`
    returns ``None`` for missing, truncated, tampered or mismatched
    entries — the caller simply re-runs those variants.  :meth:`lookup`
    is the observable variant: it distinguishes missing from corrupt,
    logs corrupt entry paths, and counts ``cache.hit`` /
    ``cache.miss`` / ``cache.corrupt`` on the attached recorder.
    """

    def __init__(
        self,
        root: str | Path,
        telemetry: "Telemetry | NullTelemetry | None" = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry

    def entry_path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def _load(self, fingerprint: str) -> CacheLookup:
        """Read and validate one entry (no counters — the shared
        validator behind both :meth:`get` and :meth:`lookup`)."""
        path = self.entry_path(fingerprint)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return CacheLookup("miss")
        except OSError:
            return CacheLookup("corrupt")
        try:
            envelope = json.loads(text)
        except ValueError:
            return CacheLookup("corrupt")
        if not isinstance(envelope, dict):
            return CacheLookup("corrupt")
        data = envelope.get("data")
        if (
            envelope.get("version") != _ENTRY_VERSION
            or envelope.get("fingerprint") != fingerprint
            or not isinstance(data, dict)
            or envelope.get("checksum") != _checksum(data)
        ):
            return CacheLookup("corrupt")
        return CacheLookup("hit", data)

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The cached payload for one variant, or ``None`` if unusable."""
        return self._load(fingerprint).payload

    def lookup(self, fingerprint: str) -> CacheLookup:
        """Probe one entry, counting and logging the outcome.

        Counters record storage-level probe outcomes (``cache.hit``,
        ``cache.miss``, ``cache.corrupt``); a corrupt entry additionally
        logs its path — a tampered or torn entry is worth an operator's
        attention even though it is transparently re-run.
        """
        found = self._load(fingerprint)
        if found.status == "corrupt":
            path = self.entry_path(fingerprint)
            moved = self.quarantine_corrupt(fingerprint)
            logger.warning(
                "corrupt cache entry at %s (quarantined to %s; will re-run)",
                path,
                moved,
            )
            self.telemetry.count("cache.corrupt", path=str(path))
        else:
            self.telemetry.count(f"cache.{found.status}")
        return found

    def quarantine_corrupt(self, fingerprint: str) -> Path | None:
        """Move a corrupt entry aside so the slot is cheaply rewritable.

        An atomic rename into the ``corrupt/`` sidecar directory: later
        probes of this fingerprint are plain misses instead of re-paying
        the parse-and-log cost, :meth:`put` re-warms the slot normally,
        and the torn bytes stay on disk for postmortems.  Racing peers
        are fine — exactly one rename wins, the rest return ``None``.
        """
        path = self.entry_path(fingerprint)
        sidecar = self.root / CORRUPT_DIRNAME
        try:
            sidecar.mkdir(parents=True, exist_ok=True)
            target = sidecar / path.name
            os.replace(path, target)
        except OSError:
            return None
        return target

    def put(self, fingerprint: str, data: Mapping[str, Any]) -> Path:
        """Store one variant's payload (atomically; overwrites)."""
        text = canonical_json(data)  # canonicalise once: checksum + data
        envelope = {
            "version": _ENTRY_VERSION,
            "fingerprint": fingerprint,
            "checksum": hashlib.sha256(text.encode("utf-8")).hexdigest(),
            "data": json.loads(text),
        }
        path = self.entry_path(fingerprint)
        _atomic_write(path, json.dumps(envelope, sort_keys=True, indent=1))
        return path

    def keys(self) -> tuple[str, ...]:
        """Fingerprints of every readable-looking entry on disk."""
        reserved = {SweepManifest.FILENAME, QUEUE_FILENAME, FAILURES_FILENAME}
        return tuple(
            sorted(p.stem for p in self.root.glob("*.json") if p.name not in reserved)
        )

    def checksum(self, fingerprint: str) -> str | None:
        """The payload checksum of one valid entry, else ``None``.

        Validity is exactly :meth:`get`'s — one validator, two views."""
        data = self.get(fingerprint)
        return None if data is None else _checksum(data)

    def diff(self, other: "ResultCache") -> "CacheDiff":
        """Compare two sweep caches entry-by-entry.

        Entries are matched by fingerprint and compared by payload
        checksum, so two caches populated by different hosts/processes
        from the same sweep diff as identical — the cache-aware
        analysis primitive behind "what changed between these two sweep
        runs?".  Invalid entries count as missing.
        """
        mine = {fp: self.checksum(fp) for fp in self.keys()}
        theirs = {fp: other.checksum(fp) for fp in other.keys()}
        mine = {fp: c for fp, c in mine.items() if c is not None}
        theirs = {fp: c for fp, c in theirs.items() if c is not None}
        shared = set(mine) & set(theirs)
        return CacheDiff(
            only_self=tuple(sorted(set(mine) - set(theirs))),
            only_other=tuple(sorted(set(theirs) - set(mine))),
            differing=tuple(
                sorted(fp for fp in shared if mine[fp] != theirs[fp])
            ),
            matching=tuple(
                sorted(fp for fp in shared if mine[fp] == theirs[fp])
            ),
        )


@dataclasses.dataclass(frozen=True)
class CacheDiff:
    """Outcome of :meth:`ResultCache.diff`, as sorted fingerprint sets."""

    only_self: tuple[str, ...]
    only_other: tuple[str, ...]
    differing: tuple[str, ...]
    matching: tuple[str, ...]

    @property
    def identical(self) -> bool:
        return not (self.only_self or self.only_other or self.differing)

    def summary(self) -> str:
        return (
            f"{len(self.matching)} matching, {len(self.differing)} differing, "
            f"{len(self.only_self)} only-left, {len(self.only_other)} only-right"
        )


@dataclasses.dataclass
class SweepManifest:
    """Progress record of one sweep over one cache directory.

    ``completed`` lists variant fingerprints in completion order; the
    executor updates it after every variant so a crash loses at most
    the in-flight runs.  ``workers`` attributes each completion to the
    worker that ran it (distributed sweeps only; the in-process
    executor leaves it empty).
    """

    path: Path
    case: str
    parameters: list[str]
    fingerprints: list[str]
    completed: list[str] = dataclasses.field(default_factory=list)
    workers: dict[str, str] = dataclasses.field(default_factory=dict)

    FILENAME = "manifest.json"

    @property
    def key(self) -> str:
        return sweep_key(self.case, self.fingerprints)

    def missing(self) -> list[str]:
        done = set(self.completed)
        return [fp for fp in self.fingerprints if fp not in done]

    @property
    def complete(self) -> bool:
        return not self.missing()

    def mark_complete(self, fingerprint: str) -> None:
        if fingerprint not in self.completed:
            self.completed.append(fingerprint)
        self.save()

    def record_completion(self, fingerprint: str, worker: str | None = None) -> None:
        """Merge-save one completion from a possibly concurrent writer.

        Distributed workers share one manifest file; a plain
        read-modify-write would let two workers erase each other's
        completions.  Re-reading the on-disk state and unioning before
        the atomic save narrows the lost-update window to near zero —
        and a lost update is *only* cosmetic anyway, because completion
        is always recomputable from the content-addressed cache
        entries, which each worker writes before recording here.
        """
        latest = SweepManifest.load(self.path.parent)
        if latest is not None and latest.key == self.key:
            for done in latest.completed:
                if done not in self.completed:
                    self.completed.append(done)
            for done, owner in latest.workers.items():
                self.workers.setdefault(done, owner)
        if fingerprint not in self.completed:
            self.completed.append(fingerprint)
        if worker is not None:
            self.workers[fingerprint] = worker
        self.save()

    def save(self) -> Path:
        _atomic_write(
            self.path,
            json.dumps(
                {
                    "key": self.key,
                    "case": self.case,
                    "parameters": self.parameters,
                    "fingerprints": self.fingerprints,
                    "completed": self.completed,
                    "workers": self.workers,
                },
                indent=1,
            ),
        )
        return self.path

    @classmethod
    def create(
        cls,
        root: str | Path,
        case: str,
        parameters: Sequence[str],
        fingerprints: Sequence[str],
    ) -> "SweepManifest":
        manifest = cls(
            path=Path(root) / cls.FILENAME,
            case=case,
            parameters=list(parameters),
            fingerprints=list(fingerprints),
        )
        manifest.save()
        return manifest

    @classmethod
    def load(cls, root: str | Path) -> "SweepManifest | None":
        """Read the manifest under ``root``; ``None`` if absent/corrupt."""
        path = Path(root) / cls.FILENAME
        try:
            raw = json.loads(path.read_text())
            manifest = cls(
                path=path,
                case=str(raw["case"]),
                parameters=[str(p) for p in raw["parameters"]],
                fingerprints=[str(f) for f in raw["fingerprints"]],
                completed=[str(f) for f in raw["completed"]],
                workers={
                    str(k): str(v) for k, v in raw.get("workers", {}).items()
                },
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return manifest

    @classmethod
    def resume(
        cls,
        root: str | Path,
        case: str,
        parameters: Sequence[str],
        fingerprints: Sequence[str],
    ) -> "SweepManifest":
        """The manifest of an interrupted run of *this* sweep.

        Raises :class:`ScenarioError` when there is nothing to resume
        or the on-disk manifest belongs to a different sweep.
        """
        manifest = cls.load(root)
        if manifest is None:
            raise ScenarioError(
                f"nothing to resume: no sweep manifest under {root}"
            )
        if manifest.key != sweep_key(case, fingerprints):
            raise ScenarioError(
                f"cannot resume: manifest under {root} records a different "
                f"sweep (case {manifest.case!r} over "
                f"{', '.join(manifest.parameters)})"
            )
        return manifest
