"""Built-in case catalog.

Each case is a ~30-line declarative registration.  The first five port
the historical ``examples/`` scripts (artery flow, microchannel Knudsen,
microfluidic clogging, deep-halo tuning, scaling study); the rest are
new workloads (Taylor–Green with analytic error norms, Poiseuille
channel, lid-driven cavity, porous-medium Darcy flow).

The ``examples/*.py`` scripts are thin wrappers over these entries.
"""

from __future__ import annotations

import functools

import numpy as np

from ..core.boundary import BounceBackWalls, DiffuseWallPair, MovingWallBounceBack
from ..core.collision import RegularizedBGKCollision
from ..core.initial_conditions import shear_wave, taylor_green
from ..core.moments import macroscopic
from ..core.observables import (
    enstrophy,
    kinetic_energy,
    max_speed,
    total_mass,
    velocity_profile,
)
from ..core.obstacles import (
    channel_walls_mask,
    momentum_exchange_force,
    sphere_mask,
)
from ..core.streaming import stream_periodic
from ..core.units import mach_number, reynolds_number, tau_for_knudsen
from .registry import register_case
from .runner import CaseResult
from .spec import CaseSpec, steady_state

__all__ = ["ALL_CASES"]


# -- shared observables ----------------------------------------------------


def _mass(sim) -> float:
    return total_mass(sim.f)


def _kinetic_energy(sim) -> float:
    return kinetic_energy(sim.lattice, sim.f)


def _max_speed(sim) -> float:
    return max_speed(sim.lattice, sim.f)


def _enstrophy(sim) -> float:
    return enstrophy(sim.lattice, sim.f)


BASE_OBSERVABLES = {
    "total_mass": _mass,
    "kinetic_energy": _kinetic_energy,
    "max_speed": _max_speed,
}


def _viscosity(result: CaseResult) -> float:
    """Kinematic viscosity of the run's collision operator."""
    return float(result.simulation.collision.viscosity)


def _mass_drift(result: CaseResult) -> float:
    m0 = result.initial("total_mass")
    return abs(result.final("total_mass") - m0) / m0


def _mass_rtol(result: CaseResult) -> float:
    """Mass-conservation tolerance under the run's dtype policy.

    Streaming and BGK relaxation conserve mass up to accumulated
    rounding, which scales with the population dtype's machine epsilon:
    1e-10 keeps the historic float64 bound; float32 (eps ~ 1.2e-7)
    drifts a few 1e-6 over hundreds of steps, so its bound is 1e-4.
    """
    return 1e-10 if result.spec.dtype == "float64" else 1e-4


def _distributed_kernel(spec: CaseSpec) -> str:
    """Map the spec's single-domain kernel onto the slab path.

    The distributed solver has two implementations: the planned
    windowed kernel (selected when the spec runs planned) and the
    legacy pair (everything else — roll/fused-gather/naive share the
    legacy pair's arithmetic to rounding, so it is the faithful
    counterpart for them).
    """
    return "planned" if spec.kernel == "planned" else "legacy"


def _gather_tol(spec: CaseSpec) -> float:
    """Distributed-vs-single-domain population tolerance per dtype.

    float64 keeps the historic near-bit-exact 1e-13 bound; float32
    carries ~1e-7 relative rounding per step, so a short run is bounded
    by 2e-5.
    """
    return 1e-13 if spec.dtype == "float64" else 2e-5


# -- taylor-green: analytic decay norms ------------------------------------


def _tg_initial(spec: CaseSpec):
    return taylor_green(spec.shape, u0=float(spec.params.get("u0", 1e-3)))


def _tg_analysis(result: CaseResult) -> dict:
    n = result.spec.shape[0]
    nu = _viscosity(result)
    k = 2.0 * np.pi / n
    # decay over the window this run actually recorded (restart-safe)
    t = result.series["step"][-1] - result.series["step"][0]
    expected = float(np.exp(-4.0 * nu * k * k * t))
    measured = result.final("kinetic_energy") / result.initial("kinetic_energy")
    return {
        "decay_measured": measured,
        "decay_theory": expected,
        "decay_error": abs(measured / expected - 1.0),
    }


def _tg_checks(result: CaseResult) -> dict:
    return {
        "decay_matches_viscous_theory": result.metrics["decay_error"] < 0.1,
        "mass_conserved": _mass_drift(result) < _mass_rtol(result),
    }


TAYLOR_GREEN = register_case(
    CaseSpec(
        name="taylor-green",
        title="Taylor-Green vortex with analytic energy-decay norm",
        description=(
            "Periodic 2-D vortex sheet (z-invariant); kinetic energy must "
            "decay as exp(-4 nu k^2 t), pinning the solver's viscosity to "
            "cs2 (tau - 1/2)."
        ),
        lattice="D3Q19",
        shape=(32, 32, 4),
        tau=0.7,
        initial=_tg_initial,
        steps=200,
        monitor_every=20,
        observables={**BASE_OBSERVABLES, "enstrophy": _enstrophy},
        analysis=_tg_analysis,
        checks=_tg_checks,
        params={"u0": 1e-3},
        tags=("continuum", "validation", "fast"),
    )
)


# -- poiseuille-channel: analytic profile norm -----------------------------


def _channel_geometry(spec: CaseSpec) -> np.ndarray:
    return channel_walls_mask(spec.shape, axis=1)


def _bounce_back(spec: CaseSpec, lattice, solid):
    return [BounceBackWalls(lattice, solid)]


def _poiseuille_analysis(result: CaseResult) -> dict:
    spec = result.spec
    sim = result.simulation
    h = spec.shape[1]
    force = spec.forcing[0]
    nu = _viscosity(result)
    profile = velocity_profile(sim.lattice, sim.f, flow_axis=0, across_axis=1)
    y = np.arange(1, h - 1, dtype=np.float64)
    measured = profile[1 : h - 1]
    # The exact steady profile is a parabola with curvature -F/nu; the
    # effective wall plane of full-way bounce-back is viscosity-dependent
    # (between the solid node and the first fluid node), so fit the
    # parabola and validate curvature, shape and wall placement.
    coeffs = np.polyfit(y, measured, 2)
    residual = float(
        np.linalg.norm(measured - np.polyval(coeffs, y))
        / np.linalg.norm(measured)
    )
    wall_lo, wall_hi = sorted(np.roots(coeffs).real)
    return {
        "peak_velocity": float(measured.max()),
        "curvature_error": abs(float(coeffs[0]) * 2.0 * nu / force + 1.0),
        "parabola_residual": residual,
        "wall_position_low": float(wall_lo),
        "wall_position_high": float(wall_hi),
    }


def _poiseuille_checks(result: CaseResult) -> dict:
    m = result.metrics
    h = result.spec.shape[1]
    return {
        "viscous_curvature_matches": m["curvature_error"] < 0.02,
        "profile_is_parabolic": m["parabola_residual"] < 0.005,
        "walls_near_solid_nodes": -1.0 < m["wall_position_low"] < 1.5
        and h - 2.5 < m["wall_position_high"] < h,
        "mass_conserved": _mass_drift(result) < _mass_rtol(result),
    }


POISEUILLE = register_case(
    CaseSpec(
        name="poiseuille-channel",
        title="Body-force Poiseuille flow vs the exact parabola",
        description=(
            "Plane channel with full-way bounce-back walls driven by a "
            "uniform body force; converges (steady-state stop criterion) "
            "to the analytic parabolic profile."
        ),
        lattice="D3Q19",
        shape=(4, 15, 4),
        tau=1.0,
        geometry=_channel_geometry,
        boundaries=_bounce_back,
        forcing=(1e-5, 0.0, 0.0),
        steps=2000,
        stop_when=steady_state(_max_speed, rtol=1e-7),
        monitor_every=25,
        observables=dict(BASE_OBSERVABLES),
        analysis=_poiseuille_analysis,
        checks=_poiseuille_checks,
        tags=("continuum", "validation", "fast"),
    )
)


# -- artery-flow (ported example) ------------------------------------------


def _vessel_geometry(spec: CaseSpec) -> np.ndarray:
    """Solid mask of a curved tube along x (sinusoidally meandering)."""
    nx, ny, nz = spec.shape
    radius = float(spec.params["radius"])
    meander = float(spec.params["meander"])
    x = np.arange(nx)[:, None, None]
    y = np.arange(ny)[None, :, None]
    z = np.arange(nz)[None, None, :]
    cy = ny / 2.0 + meander * np.sin(2 * np.pi * x / nx)
    cz = nz / 2.0 + meander * np.cos(2 * np.pi * x / nx)
    r2 = (y - cy) ** 2 + (z - cz) ** 2
    return r2 > radius * radius


def _artery_analysis(result: CaseResult) -> dict:
    spec = result.spec
    sim = result.simulation
    lattice = sim.lattice
    solid = result.solid
    fluid_cells = int((~solid).sum())
    _, u = macroscopic(lattice, sim.f)
    axial = np.where(~solid, u[0], 0.0)
    flow_rate = float(axial.sum(axis=(1, 2)).mean())
    peak = float(axial.max())
    mean_speed = float(axial.sum() / fluid_cells)
    nu = _viscosity(result)
    wall_adjacent = (~solid) & (
        np.roll(solid, 1, 1)
        | np.roll(solid, -1, 1)
        | np.roll(solid, 1, 2)
        | np.roll(solid, -1, 2)
    )
    return {
        "flow_rate": flow_rate,
        "peak_velocity": peak,
        "peak_mach": mach_number(peak, lattice.cs2_float),
        "reynolds": reynolds_number(
            mean_speed, 2 * float(spec.params["radius"]), nu
        ),
        "near_wall_fraction": float(axial[wall_adjacent].mean()) / peak,
        "mass_drift": _mass_drift(result),
    }


def _artery_checks(result: CaseResult) -> dict:
    m = result.metrics
    return {
        "positive_flow": m["flow_rate"] > 0,
        "no_slip_at_wall": m["near_wall_fraction"] < 0.35,
        "mass_conserved": m["mass_drift"] < _mass_rtol(result),
        "low_mach": m["peak_mach"] < 0.3,
    }


ARTERY = register_case(
    CaseSpec(
        name="artery-flow",
        title="Pressure-driven flow in a synthetic curved vessel",
        description=(
            "Meandering tube voxelised with bounce-back walls, driven by a "
            "body force (the pressure-gradient surrogate for the paper's "
            "cardiovascular application)."
        ),
        lattice="D3Q19",
        shape=(48, 21, 21),
        tau=0.8,
        geometry=_vessel_geometry,
        boundaries=_bounce_back,
        forcing=(4e-6, 0.0, 0.0),
        steps=600,
        monitor_every=50,
        observables=dict(BASE_OBSERVABLES),
        analysis=_artery_analysis,
        checks=_artery_checks,
        params={"radius": 7.0, "meander": 2.5},
        tags=("continuum", "application"),
    )
)


# -- microchannel-knudsen (ported example) ---------------------------------


def _knudsen_collision(spec: CaseSpec, lattice):
    kn = float(spec.params["kn"])
    tau = tau_for_knudsen(kn, spec.shape[1], lattice.cs2_float)
    return RegularizedBGKCollision(lattice, tau)


def _diffuse_walls(spec: CaseSpec, lattice, solid):
    wall_speed = float(spec.params["wall_speed"])
    return [
        DiffuseWallPair(
            lattice,
            axis=1,
            wall_velocity_low=(0.0, 0.0, 0.0),
            wall_velocity_high=(wall_speed, 0.0, 0.0),
        )
    ]


def _knudsen_analysis(result: CaseResult) -> dict:
    spec = result.spec
    sim = result.simulation
    h = spec.shape[1]
    kn = float(spec.params["kn"])
    wall_speed = float(spec.params["wall_speed"])
    profile = velocity_profile(sim.lattice, sim.f, flow_axis=0, across_axis=1)
    y = np.arange(h)
    bulk = slice(5, h - 5)  # linear Couette core, outside Knudsen layers
    fit = np.polyfit(y[bulk], profile[bulk], 1)
    u_at_wall = float(np.polyval(fit, h - 0.5))
    slip = 1.0 - u_at_wall / wall_speed
    theory = kn / (1.0 + 2.0 * kn)
    return {
        "kn": kn,
        "slip_measured": slip,
        "slip_theory": theory,
        "slip_error": abs(slip - theory),
    }


def _knudsen_checks(result: CaseResult) -> dict:
    return {
        "slip_tracks_kinetic_theory": result.metrics["slip_error"] < 0.05,
    }


MICROCHANNEL = register_case(
    CaseSpec(
        name="microchannel-knudsen",
        title="Rarefied Couette flow: wall slip at finite Knudsen number",
        description=(
            "Couette flow between diffuse Maxwell walls; the measured wall "
            "slip must track the first-order kinetic-theory prediction "
            "Kn/(1+2Kn) — the physics D3Q39's third-order quadrature "
            "exists to capture (sweep `kn` and `lattice` to reproduce the "
            "full example table)."
        ),
        lattice="D3Q39",
        shape=(4, 17, 4),
        tau=0.8,  # unused: the collision factory derives tau from Kn
        collision=_knudsen_collision,
        boundaries=_diffuse_walls,
        steps=1200,
        monitor_every=100,
        observables=dict(BASE_OBSERVABLES),
        analysis=_knudsen_analysis,
        checks=_knudsen_checks,
        params={"kn": 0.1, "wall_speed": 0.005},
        tags=("kinetic", "application"),
    )
)


# -- microfluidic-clogging (ported example) --------------------------------


def _clog_mask(spec: CaseSpec) -> np.ndarray:
    radius = float(spec.params["clog_radius"])
    nx, ny, nz = spec.shape
    if radius <= 0:
        return np.zeros(spec.shape, dtype=bool)
    return sphere_mask(spec.shape, (nx // 2, ny // 2, nz // 2), radius)


def _clogged_channel_geometry(spec: CaseSpec) -> np.ndarray:
    return channel_walls_mask(spec.shape, axis=1) | _clog_mask(spec)


def _clogging_analysis(result: CaseResult) -> dict:
    spec = result.spec
    sim = result.simulation
    lattice = sim.lattice
    solid = result.solid
    clog = _clog_mask(spec)
    _, u = macroscopic(lattice, sim.f)
    axial = np.where(~solid, u[0], 0.0)
    adv = stream_periodic(lattice, sim.f)
    drag_clog = (
        float(momentum_exchange_force(lattice, adv, clog)[0]) if clog.any() else 0.0
    )
    drag_total = float(momentum_exchange_force(lattice, adv, solid)[0])
    injected = spec.forcing[0] * sim.num_cells
    return {
        "flow_rate": float(axial.sum(axis=(1, 2)).mean()),
        "clog_drag": drag_clog,
        "force_balance": drag_total / injected,
    }


def _clogging_checks(result: CaseResult) -> dict:
    m = result.metrics
    return {
        "positive_flow": m["flow_rate"] > 0,
        "steady_force_balance": abs(m["force_balance"] - 1.0) < 0.05,
        "mass_conserved": _mass_drift(result) < _mass_rtol(result),
    }


CLOGGING = register_case(
    CaseSpec(
        name="microfluidic-clogging",
        title="Microfluidic constriction: drag and choking from a clog",
        description=(
            "Plane channel with a spherical occlusion at its throat; "
            "measures flow reduction and the momentum-exchange drag, whose "
            "total balances the injected body force at steady state "
            "(sweep `clog_radius` to grow the clog)."
        ),
        lattice="D3Q19",
        shape=(24, 15, 15),
        tau=0.8,
        geometry=_clogged_channel_geometry,
        boundaries=_bounce_back,
        forcing=(3e-6, 0.0, 0.0),
        steps=700,
        monitor_every=50,
        observables=dict(BASE_OBSERVABLES),
        analysis=_clogging_analysis,
        checks=_clogging_checks,
        params={"clog_radius": 3.5},
        tags=("continuum", "application"),
    )
)


# -- lid-driven-cavity (new workload, moving-wall bounce-back) -------------


def _cavity_static_mask(spec: CaseSpec) -> np.ndarray:
    nx, ny, nz = spec.shape
    mask = np.zeros(spec.shape, dtype=bool)
    mask[0, :, :] = mask[-1, :, :] = True
    mask[:, 0, :] = mask[:, -1, :] = True
    mask[:, :, 0] = True  # floor; the z = nz-1 face is the moving lid
    return mask


def _cavity_lid_mask(spec: CaseSpec) -> np.ndarray:
    mask = np.zeros(spec.shape, dtype=bool)
    mask[:, :, -1] = True
    return mask & ~_cavity_static_mask(spec)


def _cavity_geometry(spec: CaseSpec) -> np.ndarray:
    return _cavity_static_mask(spec) | _cavity_lid_mask(spec)


def _cavity_boundaries(spec: CaseSpec, lattice, solid):
    lid_speed = float(spec.params["lid_speed"])
    return [
        BounceBackWalls(lattice, _cavity_static_mask(spec)),
        MovingWallBounceBack(
            lattice,
            _cavity_lid_mask(spec),
            wall_velocity=(lid_speed, 0.0, 0.0),
        ),
    ]


def _cavity_analysis(result: CaseResult) -> dict:
    sim = result.simulation
    solid = result.solid
    nz = result.spec.shape[2]
    _, u = macroscopic(sim.lattice, sim.f)
    ux = np.where(~solid, u[0], np.nan)
    under_lid = float(np.nanmean(ux[:, :, nz - 2]))
    near_floor = float(np.nanmean(ux[:, :, 1 : nz // 3]))
    return {
        "under_lid_velocity": under_lid,
        "near_floor_velocity": near_floor,
        "enstrophy": result.final("enstrophy"),
        "mass_drift": _mass_drift(result),
    }


def _cavity_checks(result: CaseResult) -> dict:
    m = result.metrics
    return {
        "lid_drags_fluid": m["under_lid_velocity"] > 0,
        "return_flow_below": m["near_floor_velocity"] < 0,
        "vortex_formed": m["enstrophy"] > 0,
        "mass_conserved": m["mass_drift"] < _mass_rtol(result),
    }


CAVITY = register_case(
    CaseSpec(
        name="lid-driven-cavity",
        title="Lid-driven cavity via moving-wall bounce-back",
        description=(
            "Closed box whose lid translates tangentially "
            "(momentum-injecting bounce-back); the classic recirculating "
            "vortex benchmark — drag under the lid, return flow below."
        ),
        lattice="D3Q19",
        shape=(20, 20, 20),
        tau=0.7,
        geometry=_cavity_geometry,
        boundaries=_cavity_boundaries,
        steps=400,
        monitor_every=50,
        observables={**BASE_OBSERVABLES, "enstrophy": _enstrophy},
        analysis=_cavity_analysis,
        checks=_cavity_checks,
        params={"lid_speed": 0.05},
        tags=("continuum", "benchmark"),
    )
)


# -- porous-darcy (new workload) -------------------------------------------


def _porous_geometry(spec: CaseSpec) -> np.ndarray:
    """Deterministic random sphere pack (never blocking the full box)."""
    rng = np.random.default_rng(int(spec.params["seed"]))
    radius = float(spec.params["grain_radius"])
    mask = np.zeros(spec.shape, dtype=bool)
    for _ in range(int(spec.params["n_grains"])):
        centre = [rng.uniform(0, n) for n in spec.shape]
        mask |= sphere_mask(spec.shape, centre, radius)
    return mask


def _darcy_analysis(result: CaseResult) -> dict:
    spec = result.spec
    sim = result.simulation
    solid = result.solid
    nu = _viscosity(result)
    force = spec.forcing[0]
    _, u = macroscopic(sim.lattice, sim.f)
    axial = np.where(~solid, u[0], 0.0)
    superficial = float(axial.mean())  # volume-averaged (Darcy) velocity
    porosity = float((~solid).mean())
    return {
        "porosity": porosity,
        "superficial_velocity": superficial,
        "permeability": nu * superficial / force,
        "mass_drift": _mass_drift(result),
    }


def _darcy_checks(result: CaseResult) -> dict:
    m = result.metrics
    return {
        "medium_percolates": m["superficial_velocity"] > 0,
        "finite_permeability": np.isfinite(m["permeability"])
        and m["permeability"] > 0,
        "mass_conserved": m["mass_drift"] < _mass_rtol(result),
    }


POROUS = register_case(
    CaseSpec(
        name="porous-darcy",
        title="Darcy flow through a random sphere pack",
        description=(
            "Body-force flow through a deterministic random porous medium; "
            "reports porosity and the Darcy permeability k = nu <u> / F "
            "(sweep `grain_radius` or `seed` for different media)."
        ),
        lattice="D3Q19",
        shape=(24, 16, 16),
        tau=0.9,
        geometry=_porous_geometry,
        boundaries=_bounce_back,
        forcing=(5e-6, 0.0, 0.0),
        steps=600,
        monitor_every=50,
        observables=dict(BASE_OBSERVABLES),
        analysis=_darcy_analysis,
        checks=_darcy_checks,
        params={"n_grains": 10, "grain_radius": 3.0, "seed": 7},
        tags=("continuum", "application"),
    )
)


# -- deep-halo-tuning (ported example) -------------------------------------


def _shear_initial(spec: CaseSpec):
    return shear_wave(spec.shape)


def _deep_halo_analysis(result: CaseResult) -> dict:
    from ..machine import BLUE_GENE_Q
    from ..parallel import DistributedSimulation
    from ..perf import Placement, Workload, ladder_states, sweep_ghost_depth
    from ..perf.optimization import OptimizationLevel
    from ..perf.tuner import tuned_params_for_depth_study

    spec = result.spec
    sim = result.simulation
    lattice = sim.lattice
    steps = sim.time_step
    rho, u = spec.initial(spec)
    metrics: dict = {}
    # Functional equivalence: deep halos change messages, not physics.
    # The distributed runs ride the spec's kernel/dtype selection, so a
    # planned/float32 case exercises the planned slab path end-to-end.
    for depth in (1, 2):
        dist = DistributedSimulation(
            lattice,
            spec.shape,
            tau=spec.tau,
            num_ranks=int(spec.params["num_ranks"]),
            ghost_depth=depth,
            kernel=_distributed_kernel(spec),
            dtype=spec.dtype,
        )
        dist.initialize(rho, u)
        dist.run(steps)
        metrics[f"halo_error_depth{depth}"] = float(
            np.abs(
                dist.gather().astype(np.float64) - sim.f.astype(np.float64)
            ).max()
        )
        metrics[f"messages_depth{depth}"] = dist.message_count()
        metrics[f"comm_bytes_depth{depth}"] = dist.total_comm_bytes()
    # Model tuning: runtime-optimal depth for a large production run.
    params = tuned_params_for_depth_study(
        dict(ladder_states(BLUE_GENE_Q, lattice))[OptimizationLevel.SIMD]
    )
    placement = Placement(nodes=16, tasks_per_node=16)
    workload = Workload(lattice, tuple(spec.params["model_shape"]), steps=300)
    sweep = sweep_ghost_depth(
        BLUE_GENE_Q, lattice, params, workload, placement, size_label="200k"
    )
    metrics["optimal_depth"] = sweep.optimal_depth
    return metrics


def _deep_halo_checks(result: CaseResult) -> dict:
    m = result.metrics
    return {
        "halo_depth_preserves_physics": max(
            m["halo_error_depth1"], m["halo_error_depth2"]
        )
        < _gather_tol(result.spec),
        "fewer_messages_with_depth": m["messages_depth2"]
        < m["messages_depth1"],
        "model_picks_a_depth": m["optimal_depth"] >= 1,
    }


def _deep_halo_report(result: CaseResult) -> str:
    m = result.metrics
    lines = ["functional check (distributed vs single-domain):"]
    for depth in (1, 2):
        lines.append(
            f"  depth {depth}: max |error| = "
            f"{m[f'halo_error_depth{depth}']:.2e}, "
            f"messages = {m[f'messages_depth{depth}']}"
        )
    lines.append(f"chosen ghost depth: {m['optimal_depth']}")
    return "\n".join(lines)


DEEP_HALO = register_case(
    CaseSpec(
        name="deep-halo-tuning",
        title="Deep-halo ghost cells: bit-exact physics, fewer messages",
        description=(
            "Shear-wave workload checked between the single-domain and the "
            "2-rank distributed solver at ghost depths 1-2, then the "
            "calibrated BG/Q cost model picks the runtime-optimal depth "
            "for a 200k-plane production run (paper Fig. 10)."
        ),
        lattice="D3Q39",
        shape=(36, 5, 5),
        tau=0.8,
        initial=_shear_initial,
        steps=8,
        monitor_every=4,
        observables=dict(BASE_OBSERVABLES),
        analysis=_deep_halo_analysis,
        checks=_deep_halo_checks,
        report=_deep_halo_report,
        params={"num_ranks": 2, "model_shape": (200_000, 40, 40)},
        tags=("parallel", "model", "fast"),
    )
)


# -- scaling-study (ported example) ----------------------------------------


@functools.lru_cache(maxsize=None)
def _scaling_model_data(lattice_name: str):
    """All cost-model outputs of the study, computed once per lattice."""
    from ..lattice import get_lattice
    from ..machine import BLUE_GENE_Q, roofline
    from ..perf import (
        CostModel,
        Placement,
        Workload,
        best_point,
        ladder_states,
        sweep_hybrid,
    )
    from ..perf.optimization import OptimizationLevel

    lattice = get_lattice(lattice_name)
    model = CostModel(BLUE_GENE_Q, lattice)
    states = ladder_states(BLUE_GENE_Q, lattice)
    params = dict(states)[OptimizationLevel.SIMD]

    ladder_placement = Placement(nodes=64, tasks_per_node=32)
    ladder_workload = Workload(lattice, (ladder_placement.total_ranks * 32, 64, 64))
    ladder = [
        (lv.value, model.mflups_aggregate(p, ladder_workload, ladder_placement))
        for lv, p in states
    ]
    peak = (
        roofline(BLUE_GENE_Q, lattice).attainable_mflups * ladder_placement.nodes
    )

    scaling_workload = Workload(lattice, (4096, 64, 64))
    base = None
    scaling = []  # (nodes, aggregate MFlup/s, efficiency)
    for nodes in (8, 16, 32, 64, 128):
        agg = model.mflups_aggregate(
            params, scaling_workload, Placement(nodes=nodes, tasks_per_node=32)
        )
        base = base or agg / nodes * 8
        scaling.append((nodes, agg, agg / (base * nodes / 8)))

    hybrid_workload = Workload(lattice, (12800, 40, 40))
    combos = ((1, 64), (2, 32), (4, 16), (8, 8), (16, 4), (32, 2), (64, 1))
    points = sweep_hybrid(
        BLUE_GENE_Q, lattice, params, hybrid_workload, 16, combos
    )
    return {
        "ladder": ladder,
        "peak": peak,
        "scaling": scaling,
        "hybrid_points": points,
        "hybrid_best": best_point(points),
    }


def _scaling_analysis(result: CaseResult) -> dict:
    import time

    from ..parallel import DistributedSimulation

    data = _scaling_model_data(result.simulation.lattice.name)
    ladder_best = max(value for _, value in data["ladder"])
    efficiency = {nodes: eff for nodes, _, eff in data["scaling"]}
    best = data["hybrid_best"]
    # Measured counterpart of the model study: re-run the same workload
    # on the in-process slab solver under the spec's kernel/dtype and
    # verify the gathered state against the single-domain run — the
    # end-to-end hook the CI distributed smoke job drives.
    spec = result.spec
    sim = result.simulation
    dist = DistributedSimulation(
        sim.lattice,
        spec.shape,
        tau=spec.tau,
        num_ranks=int(spec.params.get("num_ranks", 2)),
        ghost_depth=int(spec.params.get("ghost_depth", 1)),
        kernel=_distributed_kernel(spec),
        dtype=spec.dtype,
    )
    rho, u = spec.initial(spec)
    dist.initialize(rho, u)
    start = time.perf_counter()
    dist.run(sim.time_step)
    elapsed = time.perf_counter() - start
    gather_error = float(
        np.abs(dist.gather().astype(np.float64) - sim.f.astype(np.float64)).max()
    )
    return {
        "ladder_best_mflups": ladder_best,
        "model_peak_mflups": data["peak"],
        "ladder_fraction_of_peak": ladder_best / data["peak"],
        "scaling_efficiency_32": efficiency[32],
        "scaling_efficiency_128": efficiency[128],
        "hybrid_best": best.label,
        "hybrid_best_runtime_s": best.runtime_s,
        "distributed_mflups": sim.time_step
        * sim.num_cells
        / max(elapsed, 1e-12)
        / 1e6,
        "distributed_gather_error": gather_error,
        "distributed_comm_bytes": dist.total_comm_bytes(),
    }


def _scaling_checks(result: CaseResult) -> dict:
    m = result.metrics
    return {
        "ladder_below_roofline": m["ladder_best_mflups"]
        <= m["model_peak_mflups"],
        "scaling_efficiency_decays": 1.01
        >= m["scaling_efficiency_32"]
        > m["scaling_efficiency_128"]
        > 0.0,
        "mid_scale_efficiency_reasonable": m["scaling_efficiency_32"] > 0.5,
        "hybrid_has_feasible_best": m["hybrid_best_runtime_s"] is not None,
        "distributed_matches_single_domain": m["distributed_gather_error"]
        < _gather_tol(result.spec),
    }


def _scaling_report(result: CaseResult) -> str:
    from ..analysis import bar_chart, render_table

    name = result.simulation.lattice.name
    data = _scaling_model_data(name)
    chart = bar_chart(
        [label for label, _ in data["ladder"]],
        [value for _, value in data["ladder"]],
        title=(
            f"Optimization ladder, {name} on 64 BG/Q nodes "
            f"(model peak {data['peak']:.0f} MFlup/s)"
        ),
    )
    scaling = render_table(
        ["nodes", "MFlup/s", "scaling efficiency"],
        [[nodes, f"{agg:.0f}", f"{eff:.1%}"] for nodes, agg, eff in data["scaling"]],
        title=f"Strong scaling, {name}, 4096x64x64 grid",
    )
    best = data["hybrid_best"]
    hybrid = render_table(
        ["tasks-threads", "runtime (s)", "ghost depth", ""],
        [
            [
                p.label,
                "infeasible" if p.runtime_s is None else f"{p.runtime_s:.1f}",
                p.best_depth or "-",
                "<-- best" if p is best else "",
            ]
            for p in data["hybrid_points"]
        ],
        title=f"Hybrid placement, {name}, 16 BG/Q nodes",
    )
    return "\n\n".join([chart, scaling, hybrid])


SCALING = register_case(
    CaseSpec(
        name="scaling-study",
        title="Machine-model scaling study (ladder, strong scaling, hybrid)",
        description=(
            "Small measured run plus the calibrated Blue Gene/Q models: "
            "expected throughput per optimization level, strong-scaling "
            "efficiency, and the best hybrid tasks x threads placement "
            "(sweep `lattice` to compare D3Q19 vs D3Q39).  Also re-runs "
            "the workload on the in-process slab solver (`num_ranks`, "
            "`ghost_depth` params) under the case's kernel/dtype and "
            "checks the gathered state against the single-domain run."
        ),
        lattice="D3Q19",
        shape=(32, 32, 4),
        tau=0.7,
        initial=_tg_initial,
        steps=60,
        monitor_every=20,
        observables=dict(BASE_OBSERVABLES),
        analysis=_scaling_analysis,
        checks=_scaling_checks,
        report=_scaling_report,
        params={"u0": 1e-3, "num_ranks": 2, "ghost_depth": 1},
        tags=("model", "parallel", "fast"),
    )
)


# -- bifurcating-vessel (sparse indirect addressing) -----------------------


def _bifurcation_geometry(spec: CaseSpec) -> np.ndarray:
    """Solid mask of a channel that splits into two branches and rejoins.

    Two tubes whose centrelines diverge as ``offset * sin(pi x / nx)``
    — coincident at both ends, so the geometry is periodic in x and a
    body force drives a closed-loop flow through both branches.
    """
    nx, ny, nz = spec.shape
    radius = float(spec.params["tube_radius"])
    offset = float(spec.params["branch_offset"])
    x = np.arange(nx)[:, None, None]
    y = np.arange(ny)[None, :, None]
    z = np.arange(nz)[None, None, :]
    d = offset * np.sin(np.pi * x / nx)
    r2 = radius**2
    dz2 = (z - (nz - 1) / 2) ** 2
    upper = (y - ((ny - 1) / 2 + d)) ** 2 + dz2 <= r2
    lower = (y - ((ny - 1) / 2 - d)) ** 2 + dz2 <= r2
    return ~(upper | lower)


def _bifurcation_analysis(result: CaseResult) -> dict:
    sim = result.simulation
    _, u = sim.macroscopic()
    axial = sim.domain.scatter(u[0], fill=0.0)
    ny = result.spec.shape[1]
    mid = result.spec.shape[0] // 2
    return {
        "fill_fraction": sim.domain.fill_fraction,
        "num_fluid": sim.domain.num_fluid,
        "mean_axial_velocity": float(u[0].mean()),
        "upper_branch_flow": float(axial[mid, ny // 2 :, :].sum()),
        "lower_branch_flow": float(axial[mid, : ny // 2, :].sum()),
        "mass_drift": _mass_drift(result),
    }


def _bifurcation_checks(result: CaseResult) -> dict:
    m = result.metrics
    return {
        "upper_branch_flows": m["upper_branch_flow"] > 0,
        "lower_branch_flows": m["lower_branch_flow"] > 0,
        "sparse_fill_below_half": m["fill_fraction"] < 0.5,
        "mass_conserved": m["mass_drift"] < _mass_rtol(result),
    }


BIFURCATION = register_case(
    CaseSpec(
        name="bifurcating-vessel",
        title="Body-force flow through a bifurcating vessel (sparse domain)",
        description=(
            "A periodic channel that splits into two branches and rejoins, "
            "solved on the indirect-addressing sparse path (populations "
            "stored per fluid site, walls fused into the gather table); "
            "checks that both branches carry flow and that the fluid set "
            "stays below half the bounding box — the regime where sparse "
            "storage wins (sweep `kernel` over legacy/planned, or "
            "`branch_offset`/`tube_radius` for other vessel trees)."
        ),
        lattice="D3Q19",
        shape=(32, 20, 12),
        tau=0.8,
        kernel="planned",
        geometry=_bifurcation_geometry,
        forcing=(1e-5, 0.0, 0.0),
        steps=400,
        monitor_every=50,
        observables=dict(BASE_OBSERVABLES),
        analysis=_bifurcation_analysis,
        checks=_bifurcation_checks,
        params={"sparse": True, "tube_radius": 3.0, "branch_offset": 4.5},
        tags=("continuum", "application", "sparse"),
    )
)


ALL_CASES = (
    TAYLOR_GREEN,
    POISEUILLE,
    ARTERY,
    MICROCHANNEL,
    CLOGGING,
    CAVITY,
    POROUS,
    DEEP_HALO,
    SCALING,
    BIFURCATION,
)
