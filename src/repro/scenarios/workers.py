"""Sweep worker processes: claim variants, run them, commit results.

A worker is the unit of distribution: point any number of them — on
any hosts sharing the cache directory — at a published sweep
(:class:`~repro.scenarios.scheduler.WorkQueue`) and they divide the
variants between themselves through atomic lease files, with no
coordinator in the loop.  ``python -m repro sweep-worker --cache-dir
DIR`` runs exactly this; ``repro sweep --workers N`` launches N of
them locally.

The loop per pass, in the queue's claim order — grid order, unless the
publisher stamped every variant with a predicted cost from its fitted
perf-model calibration, in which case claims go longest-first
(:meth:`~repro.scenarios.scheduler.WorkQueue.claim_order`):

1. skip variants with a usable cache entry (someone finished them);
2. try to acquire the variant's lease; if held by someone else, check
   staleness (expired TTL, or a dead same-host pid) and reclaim;
3. run the variant, commit the payload to the content-addressed cache,
   record completion in the shared manifest, release the lease.

A worker exits when every variant has a usable cache entry, or — by
default — when it can make no progress because live peers hold all
remaining leases (``wait=True`` polls instead, which also lets a
waiting worker pick up the leases of peers that die).  Crash recovery
follows from the commit order: the cache entry is written *before* the
lease is released, so a worker that dies mid-variant leaves a lease
that goes stale and a variant that simply re-runs elsewhere.

A variant that *raises* is never fatal to the worker: the exception is
recorded in the shared failure ledger
(:class:`~repro.resilience.FailureLedger`, ``failures.json`` beside
``queue.json``), the lease is released, and the variant is retried
with exponential backoff until ``max_attempts``, after which it is
**quarantined** — skipped by the whole fleet so the sweep terminates
with an explicit ``FAILED`` row instead of crash-looping.  Setting
``$REPRO_FAULT_PLAN`` arms deterministic fault injection
(:class:`~repro.resilience.FaultPlan`) at the claim/run/commit points
of this loop.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import threading
import time
from pathlib import Path
from typing import Iterator

from ..errors import ScenarioError
from ..resilience import DEFAULT_MAX_ATTEMPTS, FailureLedger, FaultPlan
from ..telemetry.recorder import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    process_recorder,
)
from . import executor as _executor
from .cache import ResultCache, SweepManifest
from .scheduler import DEFAULT_LEASE_TTL, LeaseBoard, WorkQueue

__all__ = ["WorkerReport", "lease_heartbeat", "run_worker", "worker_entry"]


@contextlib.contextmanager
def lease_heartbeat(
    board: LeaseBoard,
    fingerprint: str,
    telemetry: "Telemetry | NullTelemetry" = NULL_TELEMETRY,
) -> Iterator[None]:
    """Renew one held lease periodically while the body runs.

    A variant that outlives the lease TTL would otherwise go stale
    mid-run and get duplicated by every waiting peer; the heartbeat
    (every TTL/4) keeps a *live* worker's lease live however slow the
    variant is, while a killed worker's heartbeat dies with it and the
    lease expires on schedule.  If the lease is lost anyway (stolen
    after a pause longer than the TTL), the heartbeat just stops — the
    commit is idempotent, so finishing the run stays correct.

    With an enabled ``telemetry`` recorder, every renewal also emits a
    ``worker.heartbeat`` event (worker, fingerprint) — the liveness
    signal ``repro events`` and ``sweep-status`` surface for a fleet.
    """
    stop = threading.Event()
    interval = max(board.ttl / 4.0, 0.05)

    def beat() -> None:
        while not stop.wait(interval):
            if not board.renew(fingerprint):
                return  # lease lost: stop heartbeating, keep computing
            if telemetry.enabled:
                telemetry.event(
                    "worker.heartbeat", worker=board.owner, fingerprint=fingerprint
                )

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join()


@dataclasses.dataclass
class WorkerReport:
    """What one worker did before exiting.

    ``cache_hits`` and ``mflups`` are sourced from the worker's
    telemetry counters (``variant.cached`` observations and
    ``variant.updates`` / ``variant.seconds``); without an enabled
    recorder they stay at their defaults (0 and NaN).
    """

    worker_id: str
    completed: list[str] = dataclasses.field(default_factory=list)
    reclaimed: list[str] = dataclasses.field(default_factory=list)
    failed: list[str] = dataclasses.field(default_factory=list)
    quarantined: list[str] = dataclasses.field(default_factory=list)
    already_cached: int = 0
    cache_hits: int = 0
    mflups: float = float("nan")

    def to_payload(self) -> dict:
        """JSON-safe dict form (NaN throughput maps to ``None``)."""
        return {
            "worker": self.worker_id,
            "completed": list(self.completed),
            "reclaimed": list(self.reclaimed),
            "failed": list(self.failed),
            "quarantined": list(self.quarantined),
            "already_cached": self.already_cached,
            "cache_hits": self.cache_hits,
            "mflups": None if math.isnan(self.mflups) else self.mflups,
        }

    def summary(self) -> str:
        reclaim = (
            f", {len(self.reclaimed)} reclaimed from stale leases"
            if self.reclaimed
            else ""
        )
        extras = ""
        if self.failed:
            extras += f", {len(self.failed)} failed attempt(s)"
        if self.quarantined:
            extras += f", {len(self.quarantined)} quarantined"
        if self.cache_hits:
            extras += f", {self.cache_hits} cache hit(s)"
        if not math.isnan(self.mflups):
            extras += f", {self.mflups:.2f} MFLUP/s"
        return (
            f"worker {self.worker_id}: ran {len(self.completed)} variant(s)"
            f"{reclaim}, {self.already_cached} already cached{extras}"
        )


def _finalize_report(
    report: WorkerReport,
    recorder: "Telemetry | NullTelemetry",
    base: dict,
) -> None:
    """Fold the recorder's counter deltas into the exiting report.

    ``base`` is a snapshot of the counters at worker start, so a
    recorder shared across successive ``run_worker`` calls in one
    process attributes each call only its own work.  MFLUP/s follows
    paper Eq. 4 over everything this worker ran: total lattice-point
    updates over total variant seconds.
    """
    if not recorder.enabled:
        return

    def delta(name: str) -> float:
        return recorder.counters.get(name, 0) - base.get(name, 0)

    report.cache_hits = int(delta("variant.cached"))
    updates = delta("variant.updates")
    seconds = delta("variant.seconds")
    if updates and seconds > 0:
        report.mflups = updates / (seconds * 1e6)
    recorder.flush()


def run_worker(
    cache_dir: str | Path,
    *,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = 0.5,
    max_variants: int | None = None,
    wait: bool = False,
    follow: bool = False,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    retry_backoff: float = 0.5,
    idle_timeout: float | None = None,
    telemetry_dir: str | Path | None = None,
) -> WorkerReport:
    """Claim and run variants of the sweep published under ``cache_dir``.

    Parameters
    ----------
    worker_id:
        Label recorded in leases and the manifest (default: a unique
        ``host:pid:nonce`` token).
    lease_ttl:
        Seconds before an unreleased lease counts as stale.  A live
        worker heartbeats its lease every TTL/4 while a variant runs
        (:func:`lease_heartbeat`), so the TTL bounds how long a *dead*
        worker's variant stays blocked, not how slow a variant may be.
    poll:
        Initial sleep between passes when waiting on peers or
        (``follow``) on new work.  Idle passes back the sleep off
        exponentially (capped at ``max(poll, 8.0)`` seconds); any
        progress resets it to ``poll``.
    max_variants:
        Stop after running this many variants (``None`` = no limit).
    wait:
        Keep polling until the sweep completes instead of exiting when
        only peer-held work remains.
    follow:
        Never exit for lack of work: once the queue drains, keep
        polling for items appended to it (the ``repro serve`` front end
        appends cold requests to the same queue).  Implies ``wait``.
        Either way the worker re-reads a changed queue between passes,
        so appended work reaches even non-follow fleets mid-sweep.
    max_attempts:
        Failed attempts (fleet-wide, via the shared failure ledger)
        after which a variant is quarantined and skipped by everyone.
    retry_backoff:
        Base of the per-variant exponential retry delay: attempt ``n``
        is not retried until ``retry_backoff * 2**(n-1)`` seconds
        (capped at 60) after its latest failure.
    idle_timeout:
        Exit after this many consecutive seconds without completing,
        failing, or discovering work (``None`` = never).  Lets
        ``--follow`` workers drain away once a sweep is done.
    telemetry_dir:
        Directory for this worker's structured-event JSONL file.  Set,
        the worker records variant spans, cache counters and lease
        heartbeats there (process label = the worker id) and the
        returned report's ``cache_hits``/``mflups`` are filled in; the
        default leaves the ambient recorder in charge.
    """
    root = Path(cache_dir)
    queue = WorkQueue.load(root)
    cache = ResultCache(root)
    manifest = SweepManifest.load(root)
    board = LeaseBoard(root, owner=worker_id, ttl=lease_ttl)
    ledger = FailureLedger(root, max_attempts=max_attempts)
    plan = FaultPlan.from_env()
    injector = plan.arm(root) if plan is not None else None
    report = WorkerReport(worker_id=board.owner)
    telemetry_path = str(telemetry_dir) if telemetry_dir is not None else None
    recorder = (
        process_recorder(telemetry_path, process=board.owner)
        if telemetry_path
        else get_telemetry()
    )
    cache.telemetry = recorder
    counters_base = dict(recorder.counters)
    seen_cached: set[str] = set()

    def note_cached(fingerprint: str) -> None:
        """Count a variant someone *else* already finished — once,
        however many passes re-observe it (raw ``cache.hit`` probes do
        repeat), and never for this worker's own completions showing up
        cached on the next scan."""
        if (
            recorder.enabled
            and fingerprint not in seen_cached
            and fingerprint not in report.completed
        ):
            seen_cached.add(fingerprint)
            recorder.count("variant.cached")

    def count_cached() -> int:
        cached = 0
        for item in queue.items:
            if _executor.usable_entry(
                cache, item.fingerprint, queue.analyze, count=False
            ):
                cached += 1
        return cached - len(report.completed)

    claim_order = queue.claim_order()

    def refresh() -> bool:
        """Re-read a changed queue (serve appends items mid-flight).

        ``True`` iff the item list changed; reloads the manifest too so
        the ``manifest.key == queue.key`` completion guard tracks the
        appended queue instead of silently dropping attribution.
        """
        nonlocal queue, manifest, claim_order
        try:
            latest = WorkQueue.load(root)
        except ScenarioError:
            return False
        if [i.fingerprint for i in latest.items] == [
            i.fingerprint for i in queue.items
        ]:
            return False
        queue = latest
        manifest = SweepManifest.load(root)
        claim_order = queue.claim_order()
        return True

    def adopt_orphan(fingerprint: str) -> bool:
        """Finish a dead peer's commit on its behalf.

        A worker that crashes between its cache write and its manifest
        record leaves a usable entry with no completion.  Re-reading the
        on-disk manifest first keeps this from stealing attribution for
        completions a live peer recorded after our last load; the merge
        in :meth:`SweepManifest.record_completion` makes the write safe
        either way.
        """
        nonlocal manifest
        if manifest is None or manifest.key != queue.key:
            return False
        if fingerprint in manifest.completed:
            return False
        latest = SweepManifest.load(root)
        if latest is not None and latest.key == queue.key:
            manifest = latest
            if fingerprint in manifest.completed:
                return False
        manifest.record_completion(fingerprint, worker=board.owner)
        return True

    poll_cap = max(poll, 8.0)
    idle_delay = poll
    idle_since = time.monotonic()

    try:
        while True:
            ran_this_pass = 0
            failed_this_pass = 0
            blocked = 0
            retry_wait = 0
            next_retry = math.inf
            failures = ledger.load()
            for item in claim_order:
                if max_variants is not None and len(report.completed) >= max_variants:
                    report.already_cached = count_cached()
                    return report
                if _executor.usable_entry(cache, item.fingerprint, queue.analyze):
                    note_cached(item.fingerprint)
                    if adopt_orphan(item.fingerprint):
                        # the committer is dead: drop its stale lease too
                        board.reclaim(item.fingerprint)
                    continue
                record = failures.get(item.fingerprint)
                if record is not None and record.quarantined:
                    continue  # poisoned: the whole fleet skips it
                if record is not None:
                    due = record.next_retry_at(retry_backoff)
                    if time.time() < due:
                        retry_wait += 1
                        next_retry = min(next_retry, due)
                        continue
                if not board.acquire(item.fingerprint):
                    if board.reclaim(item.fingerprint):
                        report.reclaimed.append(item.fingerprint)
                    if not board.acquire(item.fingerprint):
                        blocked += 1
                        continue
                try:
                    # Re-check under the lease: a peer may have committed
                    # between our cache probe and the acquire.  Silent
                    # (count=False): the probe above already counted.
                    if _executor.usable_entry(
                        cache, item.fingerprint, queue.analyze, count=False
                    ):
                        note_cached(item.fingerprint)
                        adopt_orphan(item.fingerprint)
                        continue
                    attempt = (0 if record is None else record.attempt_count) + 1
                    try:
                        if injector is not None:
                            injector.fire(
                                "claim",
                                fingerprint=item.fingerprint,
                                index=item.index,
                                attempt=attempt,
                                worker=board.owner,
                                cache=cache,
                                board=board,
                            )
                        task = item.task(queue.case, queue.analyze, telemetry_path)
                        if injector is not None:
                            injector.fire(
                                "run",
                                fingerprint=item.fingerprint,
                                index=item.index,
                                attempt=attempt,
                                worker=board.owner,
                                cache=cache,
                                board=board,
                            )
                        with lease_heartbeat(board, item.fingerprint, recorder):
                            payload = _executor._execute_variant(task)
                        cache.put(item.fingerprint, payload)
                        if injector is not None:
                            injector.fire(
                                "commit",
                                fingerprint=item.fingerprint,
                                index=item.index,
                                attempt=attempt,
                                worker=board.owner,
                                cache=cache,
                                board=board,
                            )
                    except Exception as exc:
                        # A variant exception is never fatal to the
                        # worker: record the attempt, release the lease
                        # (finally below) and move on to other items.
                        record = ledger.record_failure(
                            item.fingerprint, exc, worker=board.owner
                        )
                        failures[item.fingerprint] = record
                        report.failed.append(item.fingerprint)
                        failed_this_pass += 1
                        if recorder.enabled:
                            recorder.count("variant.failed")
                            recorder.event(
                                "variant.failed",
                                worker=board.owner,
                                fingerprint=item.fingerprint,
                                attempt=record.attempt_count,
                                exception=type(exc).__name__,
                                message=str(exc)[:200],
                            )
                        if record.quarantined:
                            report.quarantined.append(item.fingerprint)
                            if recorder.enabled:
                                recorder.count("variant.quarantined")
                                recorder.event(
                                    "variant.quarantined",
                                    worker=board.owner,
                                    fingerprint=item.fingerprint,
                                    attempts=record.attempt_count,
                                    exception=type(exc).__name__,
                                )
                        continue
                    if record is not None:
                        ledger.clear(item.fingerprint)
                    if manifest is not None and manifest.key == queue.key:
                        manifest.record_completion(item.fingerprint, worker=board.owner)
                    if item.fingerprint not in report.completed:
                        # a torn commit re-run completes the same variant twice
                        report.completed.append(item.fingerprint)
                    ran_this_pass += 1
                finally:
                    board.release(item.fingerprint)

            report.already_cached = count_cached()
            if ran_this_pass or failed_this_pass:
                idle_delay = poll
                idle_since = time.monotonic()
                refresh()
                continue  # made progress: scan again immediately
            if refresh():
                idle_delay = poll
                idle_since = time.monotonic()
                continue  # new items appeared while we scanned
            if retry_wait == 0:
                if blocked == 0:
                    if not follow:
                        # every variant is cached or quarantined
                        return report
                elif not (wait or follow):
                    return report  # live peers hold the rest; let them finish
            if idle_timeout is not None and (
                time.monotonic() - idle_since >= idle_timeout
            ):
                return report
            delay = idle_delay
            if retry_wait and math.isfinite(next_retry):
                delay = max(0.01, min(delay, next_retry - time.time()))
            time.sleep(delay)
            idle_delay = min(idle_delay * 2.0, poll_cap)
    finally:
        _finalize_report(report, recorder, counters_base)


def worker_entry(
    cache_dir: str,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    wait: bool = False,
    telemetry_dir: str | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> None:
    """Process entry point for scheduler-launched local workers."""
    try:
        report = run_worker(
            cache_dir,
            worker_id=worker_id,
            lease_ttl=lease_ttl,
            wait=wait,
            telemetry_dir=telemetry_dir,
            max_attempts=max_attempts,
        )
    except ScenarioError as exc:  # pragma: no cover - defensive
        print(f"worker error: {exc}")
        raise SystemExit(2)
    print(report.summary())
