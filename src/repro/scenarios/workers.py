"""Sweep worker processes: claim variants, run them, commit results.

A worker is the unit of distribution: point any number of them — on
any hosts sharing the cache directory — at a published sweep
(:class:`~repro.scenarios.scheduler.WorkQueue`) and they divide the
variants between themselves through atomic lease files, with no
coordinator in the loop.  ``python -m repro sweep-worker --cache-dir
DIR`` runs exactly this; ``repro sweep --workers N`` launches N of
them locally.

The loop per pass, in the queue's grid order:

1. skip variants with a usable cache entry (someone finished them);
2. try to acquire the variant's lease; if held by someone else, check
   staleness (expired TTL, or a dead same-host pid) and reclaim;
3. run the variant, commit the payload to the content-addressed cache,
   record completion in the shared manifest, release the lease.

A worker exits when every variant has a usable cache entry, or — by
default — when it can make no progress because live peers hold all
remaining leases (``wait=True`` polls instead, which also lets a
waiting worker pick up the leases of peers that die).  Crash recovery
follows from the commit order: the cache entry is written *before* the
lease is released, so a worker that dies mid-variant leaves a lease
that goes stale and a variant that simply re-runs elsewhere.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
from pathlib import Path
from typing import Iterator

from ..errors import ScenarioError
from . import executor as _executor
from .cache import ResultCache, SweepManifest
from .scheduler import DEFAULT_LEASE_TTL, LeaseBoard, WorkQueue

__all__ = ["WorkerReport", "lease_heartbeat", "run_worker", "worker_entry"]


@contextlib.contextmanager
def lease_heartbeat(board: LeaseBoard, fingerprint: str) -> Iterator[None]:
    """Renew one held lease periodically while the body runs.

    A variant that outlives the lease TTL would otherwise go stale
    mid-run and get duplicated by every waiting peer; the heartbeat
    (every TTL/4) keeps a *live* worker's lease live however slow the
    variant is, while a killed worker's heartbeat dies with it and the
    lease expires on schedule.  If the lease is lost anyway (stolen
    after a pause longer than the TTL), the heartbeat just stops — the
    commit is idempotent, so finishing the run stays correct.
    """
    stop = threading.Event()
    interval = max(board.ttl / 4.0, 0.05)

    def beat() -> None:
        while not stop.wait(interval):
            if not board.renew(fingerprint):
                return  # lease lost: stop heartbeating, keep computing

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        yield
    finally:
        stop.set()
        thread.join()


@dataclasses.dataclass
class WorkerReport:
    """What one worker did before exiting."""

    worker_id: str
    completed: list[str] = dataclasses.field(default_factory=list)
    reclaimed: list[str] = dataclasses.field(default_factory=list)
    already_cached: int = 0

    def summary(self) -> str:
        reclaim = (
            f", {len(self.reclaimed)} reclaimed from stale leases"
            if self.reclaimed
            else ""
        )
        return (
            f"worker {self.worker_id}: ran {len(self.completed)} variant(s)"
            f"{reclaim}, {self.already_cached} already cached"
        )


def run_worker(
    cache_dir: str | Path,
    *,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = 0.5,
    max_variants: int | None = None,
    wait: bool = False,
) -> WorkerReport:
    """Claim and run variants of the sweep published under ``cache_dir``.

    Parameters
    ----------
    worker_id:
        Label recorded in leases and the manifest (default: a unique
        ``host:pid:nonce`` token).
    lease_ttl:
        Seconds before an unreleased lease counts as stale.  A live
        worker heartbeats its lease every TTL/4 while a variant runs
        (:func:`lease_heartbeat`), so the TTL bounds how long a *dead*
        worker's variant stays blocked, not how slow a variant may be.
    poll:
        Sleep between passes when ``wait=True`` and peers hold all
        remaining leases.
    max_variants:
        Stop after running this many variants (``None`` = no limit).
    wait:
        Keep polling until the sweep completes instead of exiting when
        only peer-held work remains.
    """
    root = Path(cache_dir)
    queue = WorkQueue.load(root)
    cache = ResultCache(root)
    manifest = SweepManifest.load(root)
    board = LeaseBoard(root, owner=worker_id, ttl=lease_ttl)
    report = WorkerReport(worker_id=board.owner)

    def count_cached() -> int:
        cached = 0
        for item in queue.items:
            if _executor.usable_entry(cache, item.fingerprint, queue.analyze):
                cached += 1
        return cached - len(report.completed)

    while True:
        ran_this_pass = 0
        blocked = 0
        for item in queue.items:
            if max_variants is not None and len(report.completed) >= max_variants:
                report.already_cached = count_cached()
                return report
            if _executor.usable_entry(cache, item.fingerprint, queue.analyze):
                continue
            if not board.acquire(item.fingerprint):
                if board.reclaim(item.fingerprint):
                    report.reclaimed.append(item.fingerprint)
                if not board.acquire(item.fingerprint):
                    blocked += 1
                    continue
            try:
                # Re-check under the lease: a peer may have committed
                # between our cache probe and the acquire.
                if _executor.usable_entry(cache, item.fingerprint, queue.analyze):
                    continue
                task = item.task(queue.case, queue.analyze)
                with lease_heartbeat(board, item.fingerprint):
                    payload = _executor._execute_variant(task)
                cache.put(item.fingerprint, payload)
                if manifest is not None and manifest.key == queue.key:
                    manifest.record_completion(item.fingerprint, worker=board.owner)
                report.completed.append(item.fingerprint)
                ran_this_pass += 1
            finally:
                board.release(item.fingerprint)

        report.already_cached = count_cached()
        if blocked == 0 and ran_this_pass == 0:
            return report  # every variant has a usable entry
        if blocked and ran_this_pass == 0:
            if not wait:
                return report  # live peers hold the rest; let them finish
            time.sleep(poll)
        # made progress (or reclaimed): scan again immediately


def worker_entry(
    cache_dir: str,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    wait: bool = False,
) -> None:
    """Process entry point for scheduler-launched local workers."""
    try:
        report = run_worker(
            cache_dir,
            worker_id=worker_id,
            lease_ttl=lease_ttl,
            wait=wait,
        )
    except ScenarioError as exc:  # pragma: no cover - defensive
        print(f"worker error: {exc}")
        raise SystemExit(2)
    print(report.summary())
