"""Declarative scenario subsystem.

Turn workloads into data: a :class:`CaseSpec` declares lattice, domain,
geometry, boundary conditions, forcing, stopping criteria and
observables; :func:`register_case` puts it in the catalog;
:class:`CaseRunner` executes it with checkpoint/restart; :class:`Sweep`
expands parameter grids into comparison tables.

>>> from repro.scenarios import run_case
>>> result = run_case("taylor-green", steps=100)
>>> result.passed
True

CLI: ``python -m repro cases`` / ``case <name>`` / ``sweep <name>``.
"""

from .registry import available_cases, catalog_table, get_case, register_case
from .runner import CaseResult, CaseRunner, run_case
from .spec import CaseSpec, steady_state
from .sweep import Sweep, SweepResult

__all__ = [
    "available_cases",
    "CaseResult",
    "CaseRunner",
    "CaseSpec",
    "catalog_table",
    "get_case",
    "register_case",
    "run_case",
    "steady_state",
    "Sweep",
    "SweepResult",
]
