"""Declarative scenario subsystem.

Turn workloads into data: a :class:`CaseSpec` declares lattice, domain,
geometry, boundary conditions, forcing, stopping criteria and
observables; :func:`register_case` puts it in the catalog;
:class:`CaseRunner` executes it with checkpoint/restart; :class:`Sweep`
expands parameter grids into comparison tables; :class:`SweepExecutor`
shards the variants across worker processes behind a content-addressed
:class:`ResultCache`, so interrupted sweeps resume and identical sweeps
replay for free.  :class:`SweepScheduler` distributes the same variants
across independent worker processes — on any hosts sharing the cache
directory — through atomic lease files, and :class:`AdaptiveSampler`
replaces full Cartesian expansion of large grids with a coarse pass
plus refinement where a chosen observable changes fastest.

>>> from repro.scenarios import run_case
>>> result = run_case("taylor-green", steps=100)
>>> result.passed
True

CLI: ``python -m repro cases`` / ``case <name>`` / ``sweep <name>`` /
``sweep-worker --cache-dir DIR`` / ``sweep-status --cache-dir DIR``.
"""

from .cache import CacheDiff, CacheLookup, ResultCache, SweepManifest
from .executor import SweepExecutor, SweepPlan
from .registry import available_cases, catalog_table, get_case, register_case
from .runner import CaseResult, CaseRunner, run_case
from .sampling import AdaptiveSampler
from .scheduler import (
    LeaseBoard,
    SweepScheduler,
    SweepStatus,
    WorkQueue,
    sweep_status,
)
from .spec import CaseSpec, steady_state
from .sweep import Sweep, SweepResult
from .workers import WorkerReport, run_worker

__all__ = [
    "AdaptiveSampler",
    "available_cases",
    "CacheDiff",
    "CacheLookup",
    "CaseResult",
    "CaseRunner",
    "CaseSpec",
    "catalog_table",
    "get_case",
    "LeaseBoard",
    "register_case",
    "ResultCache",
    "run_case",
    "run_worker",
    "steady_state",
    "Sweep",
    "SweepExecutor",
    "SweepManifest",
    "SweepPlan",
    "SweepResult",
    "SweepScheduler",
    "SweepStatus",
    "sweep_status",
    "WorkerReport",
    "WorkQueue",
]
