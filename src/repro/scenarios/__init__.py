"""Declarative scenario subsystem.

Turn workloads into data: a :class:`CaseSpec` declares lattice, domain,
geometry, boundary conditions, forcing, stopping criteria and
observables; :func:`register_case` puts it in the catalog;
:class:`CaseRunner` executes it with checkpoint/restart; :class:`Sweep`
expands parameter grids into comparison tables; :class:`SweepExecutor`
shards the variants across worker processes behind a content-addressed
:class:`ResultCache`, so interrupted sweeps resume and identical sweeps
replay for free.

>>> from repro.scenarios import run_case
>>> result = run_case("taylor-green", steps=100)
>>> result.passed
True

CLI: ``python -m repro cases`` / ``case <name>`` / ``sweep <name>``.
"""

from .cache import ResultCache, SweepManifest
from .executor import SweepExecutor
from .registry import available_cases, catalog_table, get_case, register_case
from .runner import CaseResult, CaseRunner, run_case
from .spec import CaseSpec, steady_state
from .sweep import Sweep, SweepResult

__all__ = [
    "available_cases",
    "CaseResult",
    "CaseRunner",
    "CaseSpec",
    "catalog_table",
    "get_case",
    "register_case",
    "ResultCache",
    "run_case",
    "steady_state",
    "Sweep",
    "SweepExecutor",
    "SweepManifest",
    "SweepResult",
]
