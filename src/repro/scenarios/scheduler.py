"""Distributed sweep scheduling over a shared cache directory.

The paper's strong-scaling study ran the lattice Boltzmann model across
hundreds of thousands of ranks; this module gives the sweep engine the
same shape at the campaign level: N independent worker processes —
launchable on different hosts — divide one sweep's variants between
them with nothing but a shared directory for coordination.

The coordination substrate is the PR 2 cache layout, extended with two
artifacts:

``queue.json``
    The published work order: case name, per-variant overrides and
    fingerprints, and the analyze mode.  Host-agnostic — a worker needs
    only this file and the case registry to rebuild each variant.
``leases/<fingerprint>.lease``
    Atomic claim files (:class:`~repro.core.io.ClaimRecord`): a worker
    that creates one owns that variant until it commits or the lease
    expires.  Stale leases — expired TTL, or a same-host owner whose
    pid is gone — are reclaimed by any other worker, so a worker killed
    mid-variant costs one re-run, never a hung sweep.

Correctness never depends on the leases: cache commits are
content-addressed and idempotent (two workers racing on one variant
write byte-identical entries), so leases are purely a
don't-duplicate-work optimisation.  That is what makes the scheduler
deterministic: ``workers=1``, ``workers=N`` and a warm-cache replay all
assemble the same payloads in grid order, so their tables are
bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import socket
import time
import uuid
from pathlib import Path
from typing import Any, Mapping

from ..core.io import (
    ClaimRecord,
    break_claim,
    read_claim,
    refresh_claim,
    release_claim,
    write_claim,
)
from ..errors import ScenarioError
from ..resilience import DEFAULT_MAX_ATTEMPTS, FailureLedger, FailureRecord
from ..telemetry.aggregate import FleetRollup
from ..telemetry.recorder import TELEMETRY_DIRNAME
from .cache import QUEUE_FILENAME, ResultCache, sweep_key
from .executor import (
    SweepPlan,
    _execute_variant,
    _VariantTask,
    failed_payload,
    open_cache,
    usable_entry,
)
from .sweep import Sweep, SweepResult

__all__ = [
    "DEFAULT_LEASE_TTL",
    "LeaseBoard",
    "SweepScheduler",
    "SweepStatus",
    "WorkItem",
    "WorkQueue",
    "lease_holder",
    "predict_spec_costs",
    "predict_variant_costs",
    "sweep_status",
]

#: Default lease lifetime.  Live workers heartbeat their lease every
#: TTL/4 while a variant runs, so this bounds how long a *killed*
#: worker's variant stays unclaimable — not how slow a variant may be.
DEFAULT_LEASE_TTL = 300.0

_QUEUE_VERSION = 1
LEASE_DIRNAME = "leases"


def _retuple(value: Any) -> Any:
    """Undo JSON's tuple->list coercion on override values.

    The CLI and ``CaseSpec`` use tuples for fixed-arity values
    (``shape``, ``forcing``); round-tripping through ``queue.json``
    must hand workers the same types the scheduler fingerprinted."""
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _retuple(v) for k, v in value.items()}
    return value


@dataclasses.dataclass(frozen=True)
class WorkItem:
    """One variant of a published sweep, as a worker sees it.

    ``cost`` is the publisher's predicted wall-clock seconds for the
    variant (from the host's fitted perf-model calibration, see
    :mod:`repro.perf.model`); ``None`` when no calibration covered it.
    Costs are advisory — they order claims, never gate them.  ``case``
    overrides the queue-level case name for this one item (how serve
    appends mix cases onto one queue); ``None`` inherits the queue's.
    """

    index: int
    overrides: dict[str, Any]
    fingerprint: str
    cost: float | None = None
    case: str | None = None

    def task(
        self, case: str, analyze: bool, telemetry_dir: str | None = None
    ) -> _VariantTask:
        return _VariantTask(
            case=self.case or case,
            overrides=tuple(sorted(self.overrides.items())),
            analyze=analyze,
            fingerprint=self.fingerprint,
            telemetry_dir=telemetry_dir,
        )


@dataclasses.dataclass
class WorkQueue:
    """The published work order one sweep exposes to its workers.

    Publishing requires a *registered* case (workers on other hosts
    rebuild variants from the registry by name) and JSON-serialisable
    overrides — closures cannot cross hosts.  The queue's ``key`` ties
    it to the manifest of the same sweep.
    """

    path: Path
    case: str
    parameters: list[str]
    analyze: bool
    items: list[WorkItem]

    @property
    def key(self) -> str:
        return sweep_key(self.case, [item.fingerprint for item in self.items])

    @classmethod
    def publish(
        cls,
        root: str | Path,
        plan: SweepPlan,
        analyze: bool,
        costs: "list[float | None] | None" = None,
    ) -> "WorkQueue":
        """Atomically write the work order for ``plan`` under ``root``.

        ``costs`` (index-aligned with the plan) stamps each item with
        its predicted wall-clock seconds so workers can claim
        longest-first; omitted or ``None`` entries publish uncosted.
        """
        if not isinstance(plan.case_ref, str):
            raise ScenarioError(
                f"distributed sweeps need a registered case; "
                f"{plan.case!r} does not resolve through the registry"
            )
        if costs is not None and len(costs) != len(plan.fingerprints):
            raise ScenarioError(
                f"costs must align with the plan: got {len(costs)} for "
                f"{len(plan.fingerprints)} variants"
            )
        try:
            items_json = [
                {"overrides": overrides, "fingerprint": fingerprint}
                for overrides, fingerprint in zip(plan.overrides, plan.fingerprints)
            ]
            if costs is not None:
                for item, cost in zip(items_json, costs):
                    if cost is not None:
                        item["cost"] = float(cost)
            text = json.dumps(
                {
                    "version": _QUEUE_VERSION,
                    "case": plan.case,
                    "parameters": list(plan.parameters),
                    "analyze": analyze,
                    "items": items_json,
                },
                indent=1,
                sort_keys=True,
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                "distributed sweeps need JSON-serialisable overrides "
                f"(case {plan.case!r}): {exc}"
            ) from exc
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        path = root / QUEUE_FILENAME
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        return cls.load(root)

    @classmethod
    def append(
        cls,
        root: str | Path,
        entries: "list[tuple[str, dict[str, Any], str, float | None]]",
        analyze: bool = True,
    ) -> "WorkQueue":
        """Merge per-case work items into the queue under ``root``.

        ``entries`` are ``(case, overrides, fingerprint, cost)`` tuples;
        each item is written with an explicit per-item ``case`` so one
        queue can carry variants of many cases (the serve front end's
        shape — anything a client asks for lands on the same fleet).
        Existing items win on fingerprint collision, so re-submitting a
        request is idempotent.  Creates the queue when none exists.

        Read-modify-write: callers must serialise concurrent appends
        themselves (the serve process does, under one lock); workers
        only ever read the queue, so appends never race them into
        corruption — at worst a worker loaded the pre-append snapshot
        and picks the new items up on its next pass.
        """
        if analyze not in (True, False):
            raise ScenarioError(f"analyze must be a bool, got {analyze!r}")
        root = Path(root)
        existing: "WorkQueue | None" = None
        if (root / QUEUE_FILENAME).is_file():
            existing = cls.load(root)
            if existing.analyze != analyze:
                raise ScenarioError(
                    f"queue under {root} was published with "
                    f"analyze={existing.analyze}; cannot append "
                    f"analyze={analyze} items"
                )
        items_json: list[dict[str, Any]] = []
        seen: set[str] = set()
        parameters: list[str] = list(existing.parameters) if existing else []
        if existing is not None:
            for item in existing.items:
                entry: dict[str, Any] = {
                    "case": item.case or existing.case,
                    "overrides": item.overrides,
                    "fingerprint": item.fingerprint,
                }
                if item.cost is not None:
                    entry["cost"] = item.cost
                items_json.append(entry)
                seen.add(item.fingerprint)
        for case, overrides, fingerprint, cost in entries:
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            entry = {
                "case": str(case),
                "overrides": dict(overrides),
                "fingerprint": str(fingerprint),
            }
            if cost is not None:
                entry["cost"] = float(cost)
            items_json.append(entry)
            for name in sorted(overrides):
                if name not in parameters:
                    parameters.append(name)
        if not items_json:
            raise ScenarioError("cannot publish an empty work queue")
        try:
            text = json.dumps(
                {
                    "version": _QUEUE_VERSION,
                    "case": existing.case if existing else str(entries[0][0]),
                    "parameters": parameters,
                    "analyze": analyze,
                    "items": items_json,
                },
                indent=1,
                sort_keys=True,
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError(
                f"work queue items need JSON-serialisable overrides: {exc}"
            ) from exc
        root.mkdir(parents=True, exist_ok=True)
        path = root / QUEUE_FILENAME
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        return cls.load(root)

    @classmethod
    def load(cls, root: str | Path) -> "WorkQueue":
        """Read the work order under ``root``; error if absent/corrupt."""
        path = Path(root) / QUEUE_FILENAME
        try:
            raw = json.loads(path.read_text())
            if raw["version"] != _QUEUE_VERSION:
                raise ScenarioError(
                    f"work queue {path} has version {raw['version']}, "
                    f"expected {_QUEUE_VERSION}"
                )
            items = [
                WorkItem(
                    index=index,
                    overrides={
                        str(k): _retuple(v)
                        for k, v in item["overrides"].items()
                    },
                    fingerprint=str(item["fingerprint"]),
                    cost=(
                        float(item["cost"]) if item.get("cost") is not None else None
                    ),
                    case=(
                        str(item["case"]) if item.get("case") is not None else None
                    ),
                )
                for index, item in enumerate(raw["items"])
            ]
            return cls(
                path=path,
                case=str(raw["case"]),
                parameters=[str(p) for p in raw["parameters"]],
                analyze=bool(raw["analyze"]),
                items=items,
            )
        except OSError as exc:
            raise ScenarioError(
                f"no published sweep under {Path(root)}: {exc} — run "
                "`repro sweep ... --cache-dir DIR --publish` first"
            ) from exc
        except (ValueError, KeyError, TypeError) as exc:
            raise ScenarioError(f"corrupt work queue {path}: {exc}") from exc

    def claim_order(self) -> list[WorkItem]:
        """The order workers should try to claim variants in.

        With a predicted cost on *every* item, claims go longest-first
        (LPT scheduling: starting the big variants early bounds the
        makespan at fleet-tail time, where grid order can strand the
        most expensive variant on the last worker).  Any uncosted item
        means the ranking would be arbitrary, so the order falls back
        to grid order wholesale.  Only claiming is reordered — merge
        (:meth:`SweepScheduler.collect`) always assembles grid order,
        so result tables stay bit-identical either way.
        """
        if any(item.cost is None for item in self.items):
            return list(self.items)
        return sorted(self.items, key=lambda item: (-item.cost, item.index))


class LeaseBoard:
    """Per-variant lease files under ``<cache root>/leases/``.

    A lease is an advisory, TTL-bounded exclusive claim: acquiring
    creates ``<fingerprint>.lease`` atomically; releasing removes it;
    a stale lease (expired, or same-host owner dead) may be reclaimed
    by anyone.  Because sweep commits are idempotent, every race here
    degrades to duplicated work, not corruption.
    """

    def __init__(
        self,
        root: str | Path,
        owner: str | None = None,
        ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        if ttl <= 0:
            raise ScenarioError(f"lease ttl must be positive, got {ttl}")
        self.dir = Path(root) / LEASE_DIRNAME
        self.dir.mkdir(parents=True, exist_ok=True)
        self.host = socket.gethostname()
        self.pid = os.getpid()
        self.owner = owner or f"{self.host}:{self.pid}:{uuid.uuid4().hex[:8]}"
        self.ttl = float(ttl)

    def path(self, fingerprint: str) -> Path:
        return self.dir / f"{fingerprint}.lease"

    def acquire(self, fingerprint: str) -> bool:
        """Claim one variant; ``False`` if someone else holds it."""
        now = time.time()
        record = ClaimRecord(
            owner=self.owner,
            resource=fingerprint,
            host=self.host,
            pid=self.pid,
            acquired_at=now,
            expires_at=now + self.ttl,
        )
        return write_claim(self.path(fingerprint), record)

    def holder(self, fingerprint: str) -> ClaimRecord | None:
        return read_claim(self.path(fingerprint))

    def renew(self, fingerprint: str) -> bool:
        """Extend our own lease's expiry; ``False`` if we lost it."""
        record = self.holder(fingerprint)
        if record is None or record.owner != self.owner:
            return False
        record.expires_at = time.time() + self.ttl
        refresh_claim(self.path(fingerprint), record)
        return True

    def release(self, fingerprint: str) -> bool:
        """Drop our own lease (no-op on a lease we no longer hold)."""
        return release_claim(self.path(fingerprint), self.owner)

    def stale(self, record: ClaimRecord) -> bool:
        """Expired TTL, or a same-host owner whose process is gone."""
        return _lease_stale(record, self.host, time.time())

    def reclaim(self, fingerprint: str) -> bool:
        """Break a *stale* lease; ``True`` iff we broke it.

        Staleness is the only criterion — deliberately including leases
        whose owner string matches ours, so a worker restarted with the
        same explicit ``--worker-id`` can recover its crashed
        predecessor's lease (a *live* own lease is never stale).  The
        caller still has to :meth:`acquire` afterwards — of many
        concurrent reclaimers exactly one succeeds in breaking, and the
        subsequent acquire is the usual atomic race.
        """
        record = self.holder(fingerprint)
        if record is None or not self.stale(record):
            return False
        return break_claim(self.path(fingerprint))

    def active(self) -> dict[str, ClaimRecord]:
        """All live (non-stale) leases on the board right now."""
        leases: dict[str, ClaimRecord] = {}
        for path in sorted(self.dir.glob("*.lease")):
            record = read_claim(path)
            if record is not None and not self.stale(record):
                leases[record.resource] = record
        return leases


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # exists but not ours
        return True
    return True


def _lease_stale(record: ClaimRecord, host: str, now: float) -> bool:
    """The one staleness rule: expired TTL, or a same-host dead owner.

    Shared by :meth:`LeaseBoard.stale` (what workers reclaim by) and
    :func:`sweep_status` (what the read-only view reports), so the two
    can never disagree about which leases are reclaimable.
    """
    if now >= record.expires_at:
        return True
    return record.host == host and not _pid_alive(record.pid)


def lease_holder(
    cache_dir: str | Path, fingerprint: str
) -> ClaimRecord | None:
    """The live holder of one variant's lease, else ``None``.

    Read-only targeted probe (one file stat, no directory scan, never
    creates ``leases/``) — how the serve job view decides a variant is
    *running* rather than merely queued.  Stale leases read as ``None``:
    a dead worker's claim is not progress.
    """
    path = Path(cache_dir) / LEASE_DIRNAME / f"{fingerprint}.lease"
    record = read_claim(path)
    if record is None:
        return None
    if _lease_stale(record, socket.gethostname(), time.time()):
        return None
    return record


@dataclasses.dataclass(frozen=True)
class SweepStatus:
    """Read-only snapshot of a sweep's coordination directory.

    Assembled by :func:`sweep_status` from the manifest, the published
    work queue (if any) and the lease files — the ``repro sweep-status``
    view an operator uses to answer "how far along is this distributed
    sweep, and who is working on what?" without touching any of it.
    """

    root: str
    case: str | None
    parameters: tuple[str, ...]
    total: int
    completed: int
    workers: dict[str, int]
    published: bool
    live_leases: tuple[ClaimRecord, ...]
    stale_leases: tuple[ClaimRecord, ...]
    #: Structured telemetry rollup (cache hit rate, per-worker
    #: throughput, ETA) when the directory has structured-event files;
    #: ``None`` when the fleet ran without telemetry.
    telemetry: FleetRollup | None = None
    #: Failure-ledger view: variants still retrying, and variants
    #: quarantined after ``max_attempts`` (rendered as ``FAILED`` rows
    #: by the merge layer).
    failing: tuple["FailureRecord", ...] = ()
    quarantined: tuple["FailureRecord", ...] = ()

    @property
    def missing(self) -> int:
        return self.total - self.completed

    @property
    def complete(self) -> bool:
        return self.total > 0 and self.completed >= self.total

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe dict form — the body behind ``sweep-status --json``
        and the serve ``GET /v1/fleet`` endpoint (same bytes, by
        construction: both render this through one serializer)."""
        return {
            "root": self.root,
            "case": self.case,
            "parameters": list(self.parameters),
            "variants": {
                "total": self.total,
                "completed": self.completed,
                "missing": self.missing,
            },
            "complete": self.complete,
            "published": self.published,
            "workers": dict(sorted(self.workers.items())),
            "leases": {
                "live": [dataclasses.asdict(r) for r in self.live_leases],
                "stale": [dataclasses.asdict(r) for r in self.stale_leases],
            },
            "telemetry": (
                None if self.telemetry is None else self.telemetry.to_payload()
            ),
            "failures": {
                "failing": [record.to_payload() for record in self.failing],
                "quarantined": [
                    record.to_payload() for record in self.quarantined
                ],
            },
        }

    def summary(self) -> str:
        """Human-readable report (what the CLI prints)."""
        if self.case is None:
            return f"{self.root}: no sweep manifest (nothing published or run here)"
        lines = [
            f"sweep over case {self.case!r} ({', '.join(self.parameters)}) "
            f"under {self.root}",
            f"  variants: {self.total} total, {self.completed} completed, "
            f"{self.missing} missing"
            + (" — complete" if self.complete else ""),
            "  work order: "
            + ("published (sweep-worker ready)" if self.published else "not published"),
        ]
        for worker, count in sorted(self.workers.items()):
            lines.append(f"  worker {worker}: {count} variant(s) completed")
        if self.live_leases:
            lines.append(f"  active leases: {len(self.live_leases)}")
            now = time.time()
            for record in self.live_leases:
                lines.append(
                    f"    {record.resource[:12]} held by {record.owner} "
                    f"({record.host}, pid {record.pid}, "
                    f"expires in {max(0.0, record.expires_at - now):.0f}s)"
                )
        else:
            lines.append("  active leases: none")
        if self.stale_leases:
            lines.append(
                f"  stale leases: {len(self.stale_leases)} "
                "(reclaimable by any worker)"
            )
        if self.failing:
            lines.append(
                f"  failing: {len(self.failing)} variant(s) retrying"
            )
        if self.quarantined:
            lines.append(
                f"  quarantined: {len(self.quarantined)} variant(s) FAILED "
                "after max attempts"
            )
            for record in self.quarantined:
                last = record.last
                detail = (
                    f"{last.exception}: {last.message}" if last is not None else "?"
                )
                lines.append(
                    f"    {record.fingerprint[:12]}: {detail} "
                    f"({record.attempt_count} attempt(s))"
                )
        if self.telemetry is not None:
            lines.extend(self.telemetry.summary_lines())
        return "\n".join(lines)


def sweep_status(cache_dir: str | Path) -> SweepStatus:
    """Inspect a sweep cache directory without mutating it.

    Unlike :class:`LeaseBoard`, this never creates the leases directory
    or breaks stale claims — it only reads what is there: the manifest's
    completion record (with per-worker attribution), whether a work
    order is published, and each lease's liveness (expired TTL, or a
    same-host owner whose pid is gone, counts as stale).
    """
    from .cache import SweepManifest

    root = Path(cache_dir)
    if not root.is_dir():
        raise ScenarioError(f"no sweep cache directory at {root}")
    manifest = SweepManifest.load(root)
    published = (root / QUEUE_FILENAME).is_file()
    host = socket.gethostname()
    now = time.time()
    live: list[ClaimRecord] = []
    stale: list[ClaimRecord] = []
    lease_dir = root / LEASE_DIRNAME
    if lease_dir.is_dir():
        for path in sorted(lease_dir.glob("*.lease")):
            record = read_claim(path)
            if record is None:
                continue
            (stale if _lease_stale(record, host, now) else live).append(record)
    workers: dict[str, int] = {}
    if manifest is not None:
        for owner in manifest.workers.values():
            workers[owner] = workers.get(owner, 0) + 1
    total = len(manifest.fingerprints) if manifest is not None else 0
    completed = len(set(manifest.completed)) if manifest is not None else 0
    telemetry: FleetRollup | None = None
    telemetry_dir = root / TELEMETRY_DIRNAME
    if telemetry_dir.is_dir():
        # Read-only like everything else here: load_run only globs and
        # parses the event files.
        from ..telemetry.aggregate import load_run

        telemetry = load_run(telemetry_dir).fleet_stats(
            remaining=total - completed
        )
    ledger_records = FailureLedger(root).load()
    failing = tuple(
        record
        for _, record in sorted(ledger_records.items())
        if not record.quarantined
    )
    quarantined = tuple(
        record
        for _, record in sorted(ledger_records.items())
        if record.quarantined
    )
    return SweepStatus(
        root=str(root),
        case=manifest.case if manifest is not None else None,
        parameters=tuple(manifest.parameters) if manifest is not None else (),
        total=total,
        completed=completed,
        workers=workers,
        published=published,
        live_leases=tuple(live),
        stale_leases=tuple(stale),
        telemetry=telemetry,
        failing=failing,
        quarantined=quarantined,
    )


def predict_spec_costs(specs) -> "list[float | None] | None":
    """Predicted wall-clock seconds per spec, from this host's
    calibration (:func:`repro.perf.model.load_calibration`).

    Returns ``None`` when no calibration exists (or the model is
    disabled via ``$REPRO_NO_PERF_MODEL``); individual specs the
    model has no coverage for come back as ``None`` entries.  Inverse
    of the paper's Eq. 4: ``steps * cells / (P * 1e6)``.
    """
    import os as _os

    if _os.environ.get("REPRO_NO_PERF_MODEL"):
        return None
    from ..core.plan import DEFAULT_KERNEL
    from ..perf.model import load_calibration

    calibration = load_calibration()
    if calibration is None:
        return None
    costs: list[float | None] = []
    for spec in specs:
        seconds = calibration.predict_case_seconds(
            spec.kernel or DEFAULT_KERNEL,
            spec.lattice,
            spec.dtype,
            spec.shape,
            spec.steps,
        )
        costs.append(None if seconds != seconds else seconds)  # NaN -> None
    return costs


def predict_variant_costs(plan: SweepPlan) -> "list[float | None] | None":
    """:func:`predict_spec_costs` over a sweep plan's variants."""
    return predict_spec_costs(plan.specs)


@dataclasses.dataclass
class SweepScheduler:
    """Publish a sweep to a shared cache dir and drive N workers over it.

    >>> sweep = Sweep("taylor-green", {"tau": [0.6, 0.7, 0.8]}, steps=50)
    >>> result = SweepScheduler(sweep, "shared-cache", workers=4).run()

    ``run()`` publishes the work order, launches ``workers`` local
    worker processes (the same loop ``repro sweep-worker`` runs on a
    remote host), waits for them, then merges: every variant's payload
    is read back from the cache in grid order, and any variant no
    worker completed — all of them crashed, say — is executed inline,
    so ``run()`` always returns the full sweep.

    Parameters
    ----------
    sweep:
        The sweep to distribute (its case must be registered).
    cache_dir:
        The shared coordination directory (cache + manifest + queue +
        leases).  Required — a distributed sweep without a shared
        directory is a contradiction.
    workers:
        How many local worker processes ``run()`` launches.  ``0``
        publishes and merges but launches none (useful when every
        worker runs on another host).
    analyze:
        Run analysis/checks hooks in workers (the payload records the
        mode; mismatched cache entries are re-run, not served).
    lease_ttl:
        Lease lifetime handed to launched workers.
    resume:
        Require the manifest of an earlier interrupted run of this
        same sweep.
    telemetry_dir:
        Directory of structured-event JSONL files; set, every launched
        worker records its spans/counters/heartbeats there (one file
        per process) and inline merge runs do too.  ``None`` disables
        fleet telemetry.
    max_attempts:
        Fleet-wide failed attempts (shared failure ledger) after which
        a variant is quarantined and merged as a ``FAILED`` row.
    """

    sweep: Sweep
    cache_dir: str | Path
    workers: int = 1
    analyze: bool = True
    lease_ttl: float = DEFAULT_LEASE_TTL
    resume: bool = False
    telemetry_dir: str | Path | None = None
    max_attempts: int = DEFAULT_MAX_ATTEMPTS

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ScenarioError(f"workers must be >= 0, got {self.workers}")
        if self.cache_dir is None:
            raise ScenarioError("a distributed sweep requires a cache directory")

    # -- lifecycle ---------------------------------------------------------

    def publish(self) -> tuple[SweepPlan, WorkQueue]:
        """Expand the sweep and write queue + manifest under the cache dir.

        When this host holds a fitted perf-model calibration, every
        variant the model covers is stamped with its predicted cost so
        workers pack longest-first (:meth:`WorkQueue.claim_order`)
        instead of walking the grid naively.
        """
        plan = SweepPlan.of(self.sweep)
        cache, manifest = open_cache(
            self.cache_dir,
            plan.case,
            plan.parameters,
            plan.fingerprints,
            resume=self.resume,
        )
        assert cache is not None and manifest is not None
        queue = WorkQueue.publish(
            cache.root, plan, self.analyze, costs=predict_variant_costs(plan)
        )
        return plan, queue

    def run(self) -> SweepResult:
        """Publish, drive the worker fleet, and merge the full sweep."""
        from .workers import worker_entry  # cycle: workers run queue items

        plan, _queue = self.publish()
        cache = ResultCache(self.cache_dir)
        # Silent probes (count=False): this pre-scan classifies
        # provenance, it is not a fleet cache outcome — the workers
        # count their own hits.
        cached_before = {
            fingerprint
            for fingerprint in plan.fingerprints
            if usable_entry(cache, fingerprint, self.analyze, count=False) is not None
        }
        telemetry_dir = (
            str(self.telemetry_dir) if self.telemetry_dir is not None else None
        )
        if self.workers and len(cached_before) < len(plan):
            processes = [
                multiprocessing.Process(
                    target=worker_entry,
                    args=(str(cache.root),),
                    kwargs={
                        "worker_id": f"w{rank + 1}",
                        "lease_ttl": self.lease_ttl,
                        "telemetry_dir": telemetry_dir,
                        "max_attempts": self.max_attempts,
                    },
                    daemon=False,
                )
                for rank in range(self.workers)
            ]
            for process in processes:
                process.start()
            for process in processes:
                process.join()
        return self.collect(plan, cached_before=cached_before)

    def collect(
        self,
        plan: SweepPlan | None = None,
        cached_before: set[str] = frozenset(),
    ) -> SweepResult:
        """Merge the sweep from the shared cache, in grid order.

        Variants the workers completed are attributed to them in the
        provenance column (``worker:<id>``); variants nobody completed
        are executed inline (``run``) — leases are ignored at this
        point because merging happens after the launched fleet exited,
        and an inline duplicate of some foreign straggler's variant is
        idempotent anyway.  Variants the fleet quarantined — or that
        keep raising inline until they hit ``max_attempts`` — merge as
        explicit ``FAILED`` placeholder rows (``"failed"`` provenance)
        so the sweep always terminates.
        """
        from .cache import SweepManifest

        if plan is None:
            plan = SweepPlan.of(self.sweep)
        cache = ResultCache(self.cache_dir)
        manifest = SweepManifest.load(cache.root)
        ledger = FailureLedger(cache.root, max_attempts=self.max_attempts)
        quarantined = ledger.quarantined()
        telemetry_dir = (
            str(self.telemetry_dir) if self.telemetry_dir is not None else None
        )
        payloads: dict[int, Mapping[str, Any]] = {}
        provenance: dict[int, str] = {}
        for index, fingerprint in enumerate(plan.fingerprints):
            # Merge reads are silent probes too (count=False).
            entry = usable_entry(cache, fingerprint, self.analyze, count=False)
            if entry is None and fingerprint in quarantined:
                payloads[index] = failed_payload(
                    plan.case, quarantined[fingerprint], analyze=self.analyze
                )
                provenance[index] = "failed"
                continue
            if entry is None:
                task = plan.task(index, self.analyze, telemetry_dir)
                record = None
                while entry is None:
                    try:
                        entry = _execute_variant(task)
                    except Exception as exc:
                        record = ledger.record_failure(fingerprint, exc)
                        if record.quarantined:
                            break
                if entry is None:
                    assert record is not None
                    payloads[index] = failed_payload(
                        plan.case, record, analyze=self.analyze
                    )
                    provenance[index] = "failed"
                    continue
                if record is not None:
                    ledger.clear(fingerprint)
                cache.put(fingerprint, entry)
                if manifest is not None and manifest.fingerprints == plan.fingerprints:
                    manifest.record_completion(fingerprint)
                provenance[index] = "run"
            elif fingerprint in cached_before:
                provenance[index] = "cached"
            else:
                worker = (manifest.workers if manifest else {}).get(fingerprint)
                provenance[index] = f"worker:{worker}" if worker else "run"
            payloads[index] = entry
        return plan.result(range(len(plan)), payloads, provenance)
