"""Drive one registered case end-to-end.

:class:`CaseRunner` turns a declarative :class:`~repro.scenarios.spec.CaseSpec`
into a configured :class:`~repro.core.simulation.Simulation`, advances it
with observable recording and optional early stopping, and supports
checkpoint/restart through :mod:`repro.core.io` — a restart rebuilds the
full driver (collision, boundaries, forcing) from the spec and restores
only the populations, so it is bit-exact.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any

import numpy as np

from ..core.forcing import GuoForcing
from ..core.initial_conditions import uniform_flow
from ..core.io import load_checkpoint_data, save_checkpoint
from ..core.simulation import Simulation
from ..errors import ScenarioError
from ..lattice import get_lattice
from .registry import get_case
from .spec import CaseSpec

__all__ = ["CaseResult", "CaseRunner", "run_case"]


@dataclasses.dataclass
class CaseResult:
    """Everything one case run produced.

    Attributes
    ----------
    spec:
        The (possibly overridden) spec that ran.
    simulation:
        The driver in its final state (populations, timings), or
        ``None`` for a *lean* result rehydrated from the sweep cache
        (scalar outcomes survive the round-trip; fields do not).
    solid:
        The geometry mask the spec built, if any.
    series:
        Observable time series, ``{"step": [...], name: [...]}``;
        row 0 is the state before the first step of this run.
    metrics:
        Scalar outcomes: steps run, MFlup/s, plus whatever the case's
        ``analysis`` hook derived.
    checks:
        Named pass/fail verdicts from the case's ``checks`` hook.
    failed:
        ``True`` only for a quarantined-variant placeholder (the run
        raised ``max_attempts`` times and never produced a payload);
        such a result carries empty series/metrics/checks and renders
        as an explicit ``FAILED`` row in sweep tables.
    """

    spec: CaseSpec
    simulation: Simulation | None
    solid: np.ndarray | None = None
    series: dict[str, list[float]] = dataclasses.field(default_factory=dict)
    metrics: dict[str, Any] = dataclasses.field(default_factory=dict)
    checks: dict[str, bool] = dataclasses.field(default_factory=dict)
    failed: bool = False

    def initial(self, observable: str) -> float:
        """First recorded value of one observable series."""
        return self.series[observable][0]

    def final(self, observable: str) -> float:
        """Last recorded value of one observable series."""
        return self.series[observable][-1]

    @property
    def passed(self) -> bool:
        """All checks hold (vacuously true when the case declares none);
        never true for a quarantined-variant placeholder."""
        return not self.failed and all(self.checks.values())

    def to_text(self) -> str:
        """Human-readable summary: metrics and checks tables."""
        from ..analysis.tables import render_table

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        reached = (
            self.simulation.time_step
            if self.simulation is not None
            else self.metrics.get("steps_run", "?")
        )
        lines = [
            f"case {self.spec.name}: {self.spec.title}",
            f"  lattice {self.spec.lattice}, grid "
            + "x".join(str(s) for s in self.spec.shape)
            + f", reached step {reached}",
        ]
        if self.metrics:
            rows = [[k, fmt(v)] for k, v in self.metrics.items()]
            lines.append(render_table(["metric", "value"], rows))
        if self.checks:
            rows = [[k, "PASS" if ok else "FAIL"] for k, ok in self.checks.items()]
            lines.append(render_table(["check", "verdict"], rows))
            lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


class CaseRunner:
    """Build and run one case, with optional field overrides.

    >>> result = CaseRunner("taylor-green", steps=100).run()
    >>> result.passed
    True
    """

    def __init__(self, spec: CaseSpec | str, **overrides: Any) -> None:
        if isinstance(spec, str):
            spec = get_case(spec)
        if overrides:
            spec = spec.with_overrides(**overrides)
        spec.validate()
        self.spec = spec

    # -- construction ------------------------------------------------------

    def build(self) -> tuple[Simulation, np.ndarray | None]:
        """Materialise the spec into an initialised simulation."""
        spec = self.spec
        lattice = get_lattice(spec.lattice)
        solid = None
        if spec.geometry is not None:
            solid = np.asarray(spec.geometry(spec), dtype=bool)
            if solid.shape != spec.shape:
                raise ScenarioError(
                    f"case {spec.name!r}: geometry mask shape {solid.shape} "
                    f"!= domain {spec.shape}"
                )
        if spec.params.get("sparse"):
            if spec.collision is not None or spec.boundaries is not None:
                raise ScenarioError(
                    f"case {spec.name!r}: sparse cases take no collision or "
                    "boundary factories (walls are fused into the gather "
                    "table as half-way bounce-back indices)"
                )
            from ..core.sparse import SparseSimulation

            sim = SparseSimulation(
                lattice,
                solid,
                tau=spec.tau,
                order=spec.order,
                force=spec.forcing,
                dtype=spec.dtype,
                kernel=spec.kernel,
            )
            rho, u = spec.initial(spec) if spec.initial else uniform_flow(spec.shape)
            sim.initialize(rho, u)
            return sim, solid
        collision = spec.collision(spec, lattice) if spec.collision else None
        boundaries = (
            list(spec.boundaries(spec, lattice, solid)) if spec.boundaries else []
        )
        forcing = (
            GuoForcing(lattice, spec.forcing) if spec.forcing is not None else None
        )
        sim = Simulation(
            lattice,
            spec.shape,
            tau=spec.tau,
            order=spec.order,
            collision=collision,
            boundaries=boundaries,
            forcing=forcing,
            kernel=spec.kernel,
            dtype=spec.dtype,
            layout=spec.layout,
        )
        rho, u = spec.initial(spec) if spec.initial else uniform_flow(spec.shape)
        sim.initialize(rho, u)
        return sim, solid

    # -- execution ---------------------------------------------------------

    def run(
        self,
        *,
        resume: str | Path | None = None,
        checkpoint: str | Path | None = None,
        checkpoint_every: int = 0,
        analyze: bool = True,
    ) -> CaseResult:
        """Advance the case to ``spec.steps`` total time steps.

        Parameters
        ----------
        resume:
            Checkpoint file to restore populations/step count from; the
            driver itself is rebuilt from the spec, so boundary
            conditions, forcing and collision model are preserved and
            the continuation is bit-identical to an uninterrupted run.
            The observable series recorded before the checkpoint is
            restored too, so the resumed result carries the full
            history, not just the post-restart tail.
        checkpoint:
            Where to save restart state — at the end of the run, or
            every ``checkpoint_every`` steps when that is positive.
        analyze:
            Run the case's ``analysis``/``checks`` hooks (disable for
            cheap smoke runs).
        """
        spec = self.spec
        if spec.params.get("sparse") and (
            resume is not None or checkpoint is not None
        ):
            raise ScenarioError(
                f"case {spec.name!r}: sparse cases do not support "
                "checkpoint/resume (the restart format stores dense "
                "(Q, *shape) populations)"
            )
        sim, solid = self.build()
        restored_series: dict[str, list[float]] = {}
        if resume is not None:
            restored_series = self._restore(sim, resume)
        result = CaseResult(spec, sim, solid)
        result.series = {k: list(v) for k, v in restored_series.items()}
        steps_seen = result.series.get("step")
        if not steps_seen or steps_seen[-1] != float(sim.time_step):
            # Fresh run, or a pre-series checkpoint: record the state we
            # are starting from (a restored series already ends here).
            self._record(result)

        stop = spec.stop_when() if spec.stop_when is not None else None
        last_saved = sim.time_step
        while sim.time_step < spec.steps:
            chunk = min(spec.monitor_every, spec.steps - sim.time_step)
            stability = (
                min(spec.check_stability_every, chunk)
                if spec.check_stability_every
                else 0
            )
            sim.run(chunk, check_stability_every=stability)
            self._record(result)
            if (
                checkpoint is not None
                and checkpoint_every > 0
                and sim.time_step - last_saved >= checkpoint_every
                and sim.time_step < spec.steps
            ):
                self.save(checkpoint, sim, series=result.series)
                last_saved = sim.time_step
            if stop is not None and stop(sim):
                break

        if checkpoint is not None:
            self.save(checkpoint, sim, series=result.series)
        result.metrics["steps_run"] = sim.time_step
        result.metrics["mflups"] = sim.mflups()
        if analyze:
            if spec.analysis is not None:
                result.metrics.update(spec.analysis(result))
            if spec.checks is not None:
                result.checks = dict(spec.checks(result))
        return result

    # -- checkpointing -----------------------------------------------------

    def save(
        self,
        path: str | Path,
        sim: Simulation,
        series: dict[str, list[float]] | None = None,
    ) -> Path:
        """Write a restart file stamped with the case name.

        ``series`` carries the observable history recorded so far, so a
        resume continues the time series instead of restarting it.
        """
        return save_checkpoint(
            path, sim, extra={"case": self.spec.name}, series=series
        )

    def _restore(self, sim: Simulation, path: str | Path) -> dict[str, list[float]]:
        data = load_checkpoint_data(path)
        stamped = data.extra.get("case")
        if stamped is not None and stamped != self.spec.name:
            raise ScenarioError(
                f"checkpoint {path} was written by case {stamped!r}, "
                f"not {self.spec.name!r}"
            )
        if data.lattice != sim.lattice.name:
            raise ScenarioError(
                f"checkpoint lattice {data.lattice} != case lattice "
                f"{sim.lattice.name}"
            )
        if data.f.shape != sim.f.shape:
            raise ScenarioError(
                f"checkpoint field shape {data.f.shape} != case field "
                f"shape {sim.f.shape}"
            )
        if str(data.f.dtype) != str(sim.f.dtype):
            raise ScenarioError(
                f"checkpoint dtype {data.f.dtype} != case dtype "
                f"{sim.f.dtype}; a cross-precision restore would not be "
                "bit-exact (override the case dtype to match)"
            )
        if data.kernel != self.spec.kernel:
            # Kernels agree only to rounding, so continuing under a
            # different one is not bit-exact — same latch as dtype.
            raise ScenarioError(
                f"checkpoint was written with kernel {data.kernel!r}, "
                f"case resumes with {self.spec.kernel!r}; a cross-kernel "
                "restore would not be bit-exact (override the case "
                "kernel to match)"
            )
        if data.time_step > self.spec.steps:
            raise ScenarioError(
                f"checkpoint is at step {data.time_step}, beyond the case's "
                f"{self.spec.steps} steps"
            )
        sim.field.data[...] = data.f
        sim.time_step = data.time_step
        return {k: [float(v) for v in vs] for k, vs in data.series.items()}

    # -- recording ---------------------------------------------------------

    def _record(self, result: CaseResult) -> None:
        sim = result.simulation
        result.series.setdefault("step", []).append(float(sim.time_step))
        for name, probe in self.spec.observables.items():
            result.series.setdefault(name, []).append(float(probe(sim)))


def run_case(name: str, *, analyze: bool = True, **overrides: Any) -> CaseResult:
    """One-call convenience: ``run_case("taylor-green", steps=100)``."""
    return CaseRunner(name, **overrides).run(analyze=analyze)
