"""Command-line entry: regenerate paper artifacts.

Usage::

    python -m repro              # run every experiment
    python -m repro fig8a fig9   # run selected experiments
    python -m repro --list       # list experiment ids
    python -m repro --report     # emit the EXPERIMENTS.md record
"""

from __future__ import annotations

import sys

from .experiments import available_experiments, run_experiment


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if "--list" in args:
        print("\n".join(available_experiments()))
        return 0
    if "--report" in args:
        from .analysis.report import generate_report

        print(generate_report())
        return 0
    ids = args or list(available_experiments())
    for eid in ids:
        result = run_experiment(eid)
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
