"""Command-line entry: paper artifacts and scenario cases.

Usage::

    python -m repro                       # run every paper experiment
    python -m repro fig8a fig9            # run selected experiments
    python -m repro --list                # list experiment ids
    python -m repro --report              # emit the EXPERIMENTS.md record

    python -m repro cases                 # list the scenario case catalog
    python -m repro case taylor-green --steps 200
    python -m repro case artery-flow --checkpoint state.npz
    python -m repro case artery-flow --resume state.npz
    python -m repro sweep taylor-green --param tau=0.6,0.8 \
        --param lattice=D3Q19,D3Q27 --steps 50
    python -m repro sweep taylor-green --param tau=0.6,0.7,0.8 \
        --jobs 4 --cache-dir sweep-cache          # parallel + cached
    python -m repro sweep taylor-green --param tau=0.6,0.7,0.8 \
        --jobs 4 --cache-dir sweep-cache --resume # finish what's missing

    python -m repro sweep taylor-green --param tau=0.6,0.7,0.8 \
        --workers 4 --cache-dir shared            # distributed: 4 workers
    python -m repro sweep taylor-green --param tau=0.6,0.7,0.8 \
        --cache-dir shared --publish              # publish work order only
    python -m repro sweep-worker --cache-dir shared   # run one worker
                                                      # (any host, any time)
    python -m repro sweep taylor-green --param tau=0.55,0.6,0.7,0.8,0.95 \
        --adaptive final_kinetic_energy           # sample, don't enumerate
    python -m repro sweep-status --cache-dir shared  # progress + leases

    python -m repro sweep taylor-green --param tau=0.6,0.7,0.8 \
        --workers 2 --cache-dir shared --telemetry  # record JSONL events
    python -m repro events --cache-dir shared --name variant --tail 20

    python -m repro case taylor-green --kernel planned --dtype float32
    python -m repro sweep taylor-green --param kernel=roll,planned \
        --param dtype=float32,float64 --steps 50  # sweep the kernel ladder

    python -m repro serve --cache-dir shared --telemetry  # HTTP front end
    python -m repro sweep-worker --cache-dir shared --follow  # drain it
    python -m repro case taylor-green --steps 50 --json --cache-dir shared

    python -m repro perf-model fit BENCH_PR4.json BENCH_PR5.json
    python -m repro perf-model show
    python -m repro perf-model predict --kernel planned --lattice D3Q19 \
        --dtype float32 --shape 32,32,32 --steps 500
"""

from __future__ import annotations

import sys

from .experiments import available_experiments, run_experiment

SCENARIO_COMMANDS = (
    "case",
    "cases",
    "sweep",
    "sweep-worker",
    "sweep-status",
    "serve",
    "events",
    "perf-model",
)


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] in SCENARIO_COMMANDS:
        from .scenarios.cli import main as scenarios_main

        return scenarios_main(args)
    if "--list" in args:
        print("\n".join(available_experiments()))
        return 0
    if "--report" in args:
        from .analysis.report import generate_report

        print(generate_report())
        return 0
    ids = args or list(available_experiments())
    for eid in ids:
        result = run_experiment(eid)
        print(result.to_text())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
