"""The ``repro serve`` HTTP/JSON front end — stdlib only.

A thin wire adapter over :mod:`repro.api` and :class:`.jobs.JobStore`:
handlers parse and validate JSON bodies, call the same facade functions
the CLI calls, and render every answer through
:func:`repro.core.io.render_response` — which is why a warm
``POST /v1/case`` body is byte-identical to ``repro case --json``
output for the same spec.

Endpoints (all bodies are schema-versioned envelopes
``{"schema": 1, "kind": ..., "data": ...}``):

=======  ======================  ==============================================
method   path                    answer
=======  ======================  ==============================================
GET      ``/v1/health``          liveness probe
GET      ``/v1/cases``           registered case catalog
GET      ``/v1/fleet``           ``sweep_status`` rollup as JSON
POST     ``/v1/case``            200 result (warm) / 202 job (enqueued)
POST     ``/v1/sweep``           200 result (all warm) / 202 job (enqueued)
GET      ``/v1/jobs/<id>``       job status (queued/running/done/lost)
GET      ``/v1/jobs/<id>/result``  200 canonical result / 409 while in flight
=======  ======================  ==============================================

Errors are structured, never tracebacks: ``kind="error"`` with a
stable ``{"status": <code>, "error": {"type": ..., "message": ...}}``
schema — including the paths the stdlib would answer with HTML pages
(bad request line, unsupported method).  The server owns no state —
kill it, restart it, run several: every answer re-derives from the
shared cache directory (see :mod:`.jobs`).

Concurrency and degradation: :class:`ThreadingHTTPServer` threads
handle requests; blocking work (a cache read, a queue append) is small
and lock-guarded in the store.  Simulations never run in the server
process — cold work goes to the sweep-worker fleet.  Every connection
carries a per-request socket timeout, at most ``max_inflight`` requests
run at once (excess get ``503`` + ``Retry-After`` instead of an
unbounded thread pile-up), and :meth:`ReproServer.drain` — wired to
SIGTERM by ``repro serve`` — stops admissions and waits for in-flight
requests so shutdowns never tear answers mid-body.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import urlsplit

from .. import api
from ..core.io import render_response
from ..errors import ReproError
from ..scenarios.registry import available_cases, get_case
from ..telemetry.recorder import NULL_TELEMETRY, process_recorder
from .jobs import JobStore

__all__ = ["ReproServer", "create_server"]

#: Request bodies larger than this are rejected outright — specs are
#: tiny; anything bigger is a mistake or abuse.
MAX_BODY_BYTES = 1 << 20

#: Default per-request socket timeout (seconds) — a stalled client
#: cannot pin a handler thread forever.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Default concurrent-request admission cap; excess requests are told
#: to come back (503 + Retry-After) instead of queueing unboundedly.
DEFAULT_MAX_INFLIGHT = 32

_JOB_PATH = re.compile(r"/v1/jobs/([^/]+)")
_JOB_RESULT_PATH = re.compile(r"/v1/jobs/([^/]+)/result")

_CASE_FIELDS = frozenset({"case", "overrides", "steps", "kernel", "dtype"})
_SWEEP_FIELDS = frozenset({"case", "grid", "steps", "kernel", "dtype"})


class ReproServer(ThreadingHTTPServer):
    """One serving process over one shared sweep cache directory."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        store: JobStore,
        telemetry=None,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        if max_inflight < 0:
            raise ReproError(f"max_inflight must be >= 0, got {max_inflight}")
        if request_timeout <= 0:
            raise ReproError(
                f"request_timeout must be positive, got {request_timeout}"
            )
        self.store = store
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.max_inflight = int(max_inflight)
        self.request_timeout = float(request_timeout)
        self.draining = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- admission / drain -------------------------------------------------

    def try_begin_request(self) -> str | None:
        """Admit one request; the refusal reason when over capacity."""
        with self._inflight_lock:
            if self.draining:
                return "server is draining (shutting down)"
            if self._inflight >= self.max_inflight:
                return (
                    f"server is at capacity "
                    f"({self.max_inflight} request(s) in flight)"
                )
            self._inflight += 1
            self._idle.clear()
            return None

    def end_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.set()

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop admitting requests; ``True`` once in-flight ones finish.

        Graceful-shutdown half: new requests get 503 + Retry-After
        while answers already being computed go out whole.
        """
        self.draining = True
        return self._idle.wait(timeout)


def create_server(
    cache_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    telemetry: bool = False,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> ReproServer:
    """Build a ready-to-run server (``port=0`` picks a free port).

    ``telemetry=True`` records request spans, serve cache-hit counters
    and queue-depth gauge events under ``<cache-dir>/telemetry`` —
    the same event stream ``repro events`` and ``/v1/fleet`` read.
    ``max_inflight`` / ``request_timeout`` bound concurrent requests
    and per-request socket stalls (see :class:`ReproServer`).
    """
    recorder = NULL_TELEMETRY
    if telemetry:
        recorder = process_recorder(
            api.telemetry_dir(cache_dir),
            process=f"serve-{socket.gethostname()}:{os.getpid()}",
        )
    store = JobStore(cache_dir, telemetry=recorder)
    return ReproServer(
        (host, port),
        store,
        recorder,
        max_inflight=max_inflight,
        request_timeout=request_timeout,
    )


def _require_str(body: dict[str, Any], field: str, required: bool = False):
    value = body.get(field)
    if value is None:
        if required:
            raise ValueError(f"{field!r} is required and must be a string")
        return None
    if not isinstance(value, str):
        raise ValueError(f"{field!r} must be a string")
    return value


def _require_steps(body: dict[str, Any]):
    steps = body.get("steps")
    if steps is None:
        return None
    if isinstance(steps, bool) or not isinstance(steps, int):
        raise ValueError("'steps' must be an integer")
    return steps


def _check_fields(body: dict[str, Any], allowed: frozenset) -> None:
    unknown = sorted(set(body) - allowed)
    if unknown:
        raise ValueError(
            f"unknown field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _check_kernel(kernel: str | None) -> str | None:
    if kernel == "auto":
        raise ValueError(
            "kernel='auto' is timing-dependent and would make identical "
            "requests fingerprint differently; resolve it client-side "
            "(`repro case ... --kernel auto`) and submit the winner"
        )
    return kernel


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    server: ReproServer  # narrowed from BaseServer for attribute access

    def setup(self) -> None:
        # Per-request socket timeout: both the header read the stdlib
        # does and our own body reads/writes are bounded, so a stalled
        # client releases its handler thread.
        self.timeout = self.server.request_timeout
        super().setup()

    # Telemetry spans replace stderr request logging.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def send_error(self, code, message=None, explain=None) -> None:
        """Stdlib error hook (bad request line, unsupported method...):
        answer with the same JSON error schema as every other path,
        never the built-in HTML page."""
        if message is None:
            message = self.responses.get(code, ("error",))[0]
        self._send_error(int(code), str(message), error_type="http")

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    # -- plumbing ----------------------------------------------------------

    def _route(self, method: str) -> None:
        refusal = self.server.try_begin_request()
        if refusal is not None:
            self._send_error(
                503, refusal, error_type="overloaded", retry_after=1
            )
            return
        try:
            self._handle_admitted(method)
        finally:
            self.server.end_request()

    def _handle_admitted(self, method: str) -> None:
        telemetry = self.server.telemetry
        path = urlsplit(self.path).path
        with telemetry.span("serve.request", method=method, path=path) as span:
            try:
                status = self._dispatch(method, path)
            except (ReproError, ValueError, KeyError, TypeError) as exc:
                status = self._send_error(
                    400, str(exc), error_type=type(exc).__name__
                )
            except (BrokenPipeError, ConnectionResetError, TimeoutError):
                # Client hung up or stalled past the request timeout;
                # nothing left to send — just drop the connection.
                self.close_connection = True
                status = 0
            except Exception as exc:  # never a traceback on the wire
                status = self._send_error(
                    500,
                    f"internal error: {type(exc).__name__}: {exc}",
                    error_type="internal",
                )
            span.set(status=status)
        if telemetry.enabled:
            telemetry.count("serve.request")

    def _dispatch(self, method: str, path: str) -> int:
        store = self.server.store
        if method == "POST":
            body = self._read_json()
            if path == "/v1/case":
                return self._post_case(body)
            if path == "/v1/sweep":
                return self._post_sweep(body)
            return self._send_error(404, f"no route for POST {path}")
        if path == "/v1/health":
            return self._send(200, "health", {"ok": True, "root": str(store.root)})
        if path == "/v1/cases":
            return self._send(200, "cases", _catalog_payload())
        if path == "/v1/fleet":
            return self._send(
                200, "fleet", api.sweep_status(store.root).to_payload()
            )
        match = _JOB_RESULT_PATH.fullmatch(path)
        if match:
            return self._get_result(match.group(1))
        match = _JOB_PATH.fullmatch(path)
        if match:
            return self._get_job(match.group(1))
        return self._send_error(404, f"no route for GET {path}")

    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required (a JSON object)")
        if length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _send(
        self,
        status: int,
        kind: str,
        data: Any,
        headers: dict[str, str] | None = None,
    ) -> int:
        body = (render_response(kind, data) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return status

    _ERROR_TYPES = {404: "not-found", 409: "conflict", 503: "overloaded"}

    def _send_error(
        self,
        status: int,
        message: str,
        *,
        error_type: str | None = None,
        retry_after: int | None = None,
    ) -> int:
        # The body may not have been fully read on a validation error;
        # don't let a broken request poison a kept-alive connection.
        self.close_connection = True
        if error_type is None:
            error_type = self._ERROR_TYPES.get(status, "error")
        headers = (
            {"Retry-After": str(retry_after)} if retry_after is not None else None
        )
        try:
            return self._send(
                status,
                "error",
                {
                    "status": status,
                    "error": {"type": error_type, "message": message},
                },
                headers=headers,
            )
        except OSError:
            # The socket died while we reported an error about it;
            # there is no one left to tell.
            return status

    # -- endpoints ---------------------------------------------------------

    def _post_case(self, body: dict[str, Any]) -> int:
        _check_fields(body, _CASE_FIELDS)
        case = _require_str(body, "case", required=True)
        overrides = body.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise ValueError("'overrides' must be an object of spec overrides")
        record, payload = self.server.store.submit_case(
            case=case,
            overrides=overrides,
            steps=_require_steps(body),
            kernel=_check_kernel(_require_str(body, "kernel")),
            dtype=_require_str(body, "dtype"),
        )
        if payload is not None:
            return self._send(200, "case", payload)
        return self._send(202, "job", self.server.store.status_payload(record))

    def _post_sweep(self, body: dict[str, Any]) -> int:
        _check_fields(body, _SWEEP_FIELDS)
        case = _require_str(body, "case", required=True)
        grid = body.get("grid")
        if not isinstance(grid, dict) or not grid:
            raise ValueError(
                "'grid' is required and must be an object of parameter "
                "-> list-of-values axes"
            )
        for key, values in grid.items():
            if not isinstance(values, list) or not values:
                raise ValueError(
                    f"grid axis {key!r} must be a non-empty list of values"
                )
        record, result = self.server.store.submit_sweep(
            case=case,
            grid=grid,
            steps=_require_steps(body),
            kernel=_check_kernel(_require_str(body, "kernel")),
            dtype=_require_str(body, "dtype"),
        )
        if result is not None:
            return self._send(200, "sweep", api.sweep_payload(result))
        return self._send(202, "job", self.server.store.status_payload(record))

    def _get_job(self, job_id: str) -> int:
        record = self.server.store.get(job_id)
        if record is None:
            return self._send_error(404, f"unknown job {job_id!r}")
        return self._send(200, "job", self.server.store.status_payload(record))

    def _get_result(self, job_id: str) -> int:
        record = self.server.store.get(job_id)
        if record is None:
            return self._send_error(404, f"unknown job {job_id!r}")
        response = self.server.store.result_response(record)
        if response is None:
            return self._send_error(
                409,
                f"job {job_id!r} is not complete; poll /v1/jobs/{job_id} "
                "until status is 'done'",
            )
        kind, payload = response
        return self._send(200, kind, payload)


def _catalog_payload() -> dict[str, Any]:
    cases = []
    for name in available_cases():
        spec = get_case(name)
        cases.append(
            {
                "name": name,
                "title": spec.title,
                "lattice": spec.lattice,
                "shape": list(spec.shape),
                "steps": spec.steps,
            }
        )
    return {"cases": cases}
