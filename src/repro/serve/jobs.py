"""Disk-backed job records and state derivation for ``repro serve``.

A "job" is just a named view over state the sweep substrate already
maintains — the server stores only the *request* (a :class:`JobRecord`
JSON file under ``<cache-dir>/jobs/``), never progress.  Status is
derived, not stored:

* a usable cache entry ⇒ the variant is **done**;
* a live lease (:func:`repro.scenarios.scheduler.lease_holder`) ⇒
  **running**;
* its fingerprint on the published queue ⇒ **queued**;
* none of the above ⇒ **lost** (the queue was wiped out from under
  the job — resubmitting re-enqueues it).

Because every input is on the shared directory, the server is
stateless: restart it (or start three of them) and every job answer
is unchanged.  Job ids are content-addressed too — the case spec's
fingerprint, or :func:`~repro.scenarios.cache.sweep_key` for sweeps —
so re-submitting an identical request yields the same id instead of a
duplicate job.
"""

from __future__ import annotations

import dataclasses
import json
import re
import threading
import time
from pathlib import Path
from typing import Any, Mapping

from .. import api
from ..errors import ScenarioError
from ..resilience import FailureLedger
from ..scenarios.cache import SweepManifest, sweep_key
from ..scenarios.executor import usable_entry
from ..scenarios.scheduler import WorkQueue, lease_holder, predict_spec_costs
from ..scenarios.sweep import SweepResult
from ..telemetry.recorder import NULL_TELEMETRY

__all__ = ["JOBS_DIRNAME", "JobRecord", "JobStore"]

JOBS_DIRNAME = "jobs"

_RECORD_VERSION = 1

#: Job ids are hex digests (spec fingerprints / sweep keys); anything
#: else in a URL is rejected before it can name a path.
_JOB_ID = re.compile(r"[0-9a-f]{8,128}")


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """One submitted request, as persisted under ``jobs/``.

    ``overrides`` holds the full per-variant override mappings (enough
    to rebuild each spec from the registry by name); ``variants`` the
    grid points (presentation); both index-aligned with
    ``fingerprints``.  Case jobs have one of each and no parameters.
    """

    id: str
    kind: str  # "case" | "sweep"
    case: str
    analyze: bool
    parameters: list[str]
    variants: list[dict[str, Any]]
    overrides: list[dict[str, Any]]
    fingerprints: list[str]
    created_at: float

    def to_json(self) -> str:
        data = dataclasses.asdict(self)
        data["version"] = _RECORD_VERSION
        return json.dumps(data, indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "JobRecord":
        raw = json.loads(text)
        if raw.get("version") != _RECORD_VERSION:
            raise ScenarioError(
                f"job record version {raw.get('version')!r}, "
                f"expected {_RECORD_VERSION}"
            )
        return cls(
            id=str(raw["id"]),
            kind=str(raw["kind"]),
            case=str(raw["case"]),
            analyze=bool(raw["analyze"]),
            parameters=[str(p) for p in raw["parameters"]],
            variants=[api.decode_overrides(v) for v in raw["variants"]],
            overrides=[api.decode_overrides(o) for o in raw["overrides"]],
            fingerprints=[str(f) for f in raw["fingerprints"]],
            created_at=float(raw["created_at"]),
        )


class JobStore:
    """Submit, persist and answer jobs over one sweep cache directory.

    Thread-safe for one server process: queue appends (the only
    read-modify-write) run under a lock.  All reads are plain
    re-derivations from disk — see the module docstring.
    """

    def __init__(self, root: str | Path, telemetry=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.jobs_dir = self.root / JOBS_DIRNAME
        self.jobs_dir.mkdir(exist_ok=True)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache = api.open_cache(self.root, telemetry=self.telemetry)
        self._lock = threading.Lock()

    # -- submission --------------------------------------------------------

    def submit_case(
        self,
        *,
        case: str,
        overrides: Mapping[str, Any] | None = None,
        steps: int | None = None,
        kernel: str | None = None,
        dtype: str | None = None,
    ) -> "tuple[JobRecord, dict[str, Any] | None]":
        """One case request: ``(record, payload)`` on a warm fingerprint
        (zero simulation steps executed), ``(record, None)`` after
        enqueueing a cold one."""
        request = api.case_request(
            case,
            steps=steps,
            overrides=api.decode_overrides(overrides or {}),
            kernel=kernel,
            dtype=dtype,
        )
        record = JobRecord(
            id=request.fingerprint,
            kind="case",
            case=request.case,
            analyze=True,
            parameters=[],
            variants=[],
            overrides=[request.overrides],
            fingerprints=[request.fingerprint],
            created_at=time.time(),
        )
        self._save(record)
        entry = usable_entry(self.cache, request.fingerprint, True)
        if entry is not None:
            if self.telemetry.enabled:
                self.telemetry.count("serve.cache.hit")
            return record, entry
        if self.telemetry.enabled:
            self.telemetry.count("serve.cache.miss")
        costs = predict_spec_costs([request.spec])
        self._enqueue(
            [
                (
                    request.case,
                    request.overrides,
                    request.fingerprint,
                    costs[0] if costs else None,
                )
            ]
        )
        return record, None

    def submit_sweep(
        self,
        *,
        case: str,
        grid: Mapping[str, Any],
        steps: int | None = None,
        kernel: str | None = None,
        dtype: str | None = None,
    ) -> "tuple[JobRecord, SweepResult | None]":
        """One sweep request: ``(record, result)`` when every variant is
        already warm, ``(record, None)`` after enqueueing the cold
        remainder (warm variants are never re-enqueued)."""
        decoded = {
            str(k): [api.decode_value(v) for v in values]
            for k, values in dict(grid).items()
        }
        request = api.sweep_request(
            case, decoded, steps=steps, kernel=kernel, dtype=dtype
        )
        record = JobRecord(
            id=sweep_key(request.case, request.fingerprints),
            kind="sweep",
            case=request.case,
            analyze=True,
            parameters=list(request.parameters),
            variants=[dict(v) for v in request.variants],
            overrides=[dict(o) for o in request.overrides],
            fingerprints=list(request.fingerprints),
            created_at=time.time(),
        )
        self._save(record)
        cold: list[tuple[str, dict[str, Any], str, float | None]] = []
        cold_specs = []
        for spec, ov, fp in zip(
            request.specs, request.overrides, request.fingerprints
        ):
            if usable_entry(self.cache, fp, True) is None:
                cold.append((request.case, ov, fp, None))
                cold_specs.append(spec)
        if self.telemetry.enabled:
            if len(request) > len(cold):
                self.telemetry.count("serve.cache.hit", len(request) - len(cold))
            if cold:
                self.telemetry.count("serve.cache.miss", len(cold))
        if not cold:
            return record, api.assemble_sweep(request, self.root)
        costs = predict_spec_costs(cold_specs)
        if costs:
            cold = [
                (case_, ov, fp, cost)
                for (case_, ov, fp, _), cost in zip(cold, costs)
            ]
        self._enqueue(cold)
        return record, None

    def _save(self, record: JobRecord) -> None:
        path = self.jobs_dir / f"{record.id}.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(record.to_json())
        tmp.replace(path)

    def _enqueue(
        self, entries: "list[tuple[str, dict[str, Any], str, float | None]]"
    ) -> None:
        """Append cold variants to the shared queue (idempotent) and keep
        the manifest's fingerprint list tracking it, so completion
        attribution and ``sweep-status`` totals include served work."""
        with self._lock:
            queue = WorkQueue.append(self.root, entries, analyze=True)
            fingerprints = [item.fingerprint for item in queue.items]
            manifest = SweepManifest.load(self.root)
            if manifest is None or manifest.fingerprints != fingerprints:
                manifest = SweepManifest(
                    path=self.root / SweepManifest.FILENAME,
                    case=queue.case,
                    parameters=list(queue.parameters),
                    fingerprints=fingerprints,
                    completed=(
                        [f for f in manifest.completed if f in set(fingerprints)]
                        if manifest is not None
                        else []
                    ),
                    workers=dict(manifest.workers) if manifest is not None else {},
                )
                manifest.save()
        if self.telemetry.enabled:
            self.telemetry.event("serve.queue.depth", depth=self.queue_depth())

    # -- derivation --------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        """Load one persisted job record (``None`` when unknown —
        including ids that are not even plausible digests)."""
        if not _JOB_ID.fullmatch(job_id):
            return None
        path = self.jobs_dir / f"{job_id}.json"
        try:
            return JobRecord.from_json(path.read_text())
        except OSError:
            return None

    def queue_depth(self) -> int:
        """Published variants still without a usable cache entry."""
        try:
            queue = WorkQueue.load(self.root)
        except ScenarioError:
            return 0
        return sum(
            1
            for item in queue.items
            if usable_entry(self.cache, item.fingerprint, queue.analyze, count=False)
            is None
        )

    def variant_states(self, record: JobRecord) -> dict[str, str]:
        """Fingerprint -> done/failed/running/queued/lost, from disk.

        ``failed`` means the fleet quarantined the variant (failure
        ledger, ``max_attempts`` exhausted) — terminal until the ledger
        entry is cleared.
        """
        try:
            queued = {i.fingerprint for i in WorkQueue.load(self.root).items}
        except ScenarioError:
            queued = set()
        quarantined = FailureLedger(self.root).quarantined()
        states: dict[str, str] = {}
        for fingerprint in record.fingerprints:
            if usable_entry(self.cache, fingerprint, record.analyze, count=False):
                states[fingerprint] = "done"
            elif fingerprint in quarantined:
                states[fingerprint] = "failed"
            elif lease_holder(self.root, fingerprint) is not None:
                states[fingerprint] = "running"
            elif fingerprint in queued:
                states[fingerprint] = "queued"
            else:
                states[fingerprint] = "lost"
        return states

    def status_payload(self, record: JobRecord) -> dict[str, Any]:
        """The ``GET /v1/jobs/<id>`` body (also the 202 response)."""
        states = self.variant_states(record)
        counts = {"done": 0, "failed": 0, "running": 0, "queued": 0, "lost": 0}
        for state in states.values():
            counts[state] += 1
        if counts["done"] == len(states):
            status = "done"
        elif counts["running"]:
            status = "running"
        elif counts["queued"]:
            status = "queued"
        elif counts["failed"]:
            status = "failed"
        else:
            status = "lost"
        return {
            "id": record.id,
            "kind": record.kind,
            "case": record.case,
            "status": status,
            "variants": {"total": len(states), **counts},
            "fingerprints": states,
            "result": f"/v1/jobs/{record.id}/result" if status == "done" else None,
        }

    def result_response(
        self, record: JobRecord
    ) -> "tuple[str, dict[str, Any]] | None":
        """``(kind, payload)`` when the job's result is fully assembled
        from cache, else ``None`` (still in flight)."""
        if record.kind == "case":
            entry = usable_entry(
                self.cache, record.fingerprints[0], record.analyze, count=False
            )
            return None if entry is None else ("case", entry)
        request = api.SweepRequest(
            case=record.case,
            parameters=tuple(record.parameters),
            variants=[dict(v) for v in record.variants],
            overrides=[dict(o) for o in record.overrides],
            specs=[
                api.case_request(record.case, overrides=ov).spec
                for ov in record.overrides
            ],
            fingerprints=list(record.fingerprints),
        )
        result = api.assemble_sweep(request, self.root, analyze=record.analyze)
        return None if result is None else ("sweep", api.sweep_payload(result))
