"""Scenario-as-a-service: the ``repro serve`` HTTP front end.

Long-lived process exposing the scenario substrate over JSON/HTTP —
warm requests answer straight from the content-addressed
:class:`~repro.scenarios.cache.ResultCache` (zero simulation steps),
cold ones are enqueued onto the same published
:class:`~repro.scenarios.scheduler.WorkQueue` the sweep-worker fleet
drains.  Stdlib only (``http.server``); all substance lives in
:mod:`repro.api` so CLI, server and library callers share one code
path and byte-identical JSON.
"""

from .http import ReproServer, create_server
from .jobs import JobRecord, JobStore

__all__ = ["JobRecord", "JobStore", "ReproServer", "create_server"]
