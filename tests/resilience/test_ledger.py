"""Failure ledger units: attempts, quarantine, clearing, claim locks."""

import json
import threading
import time

import pytest

from repro.core.io import claim_lock, read_claim, write_claim, ClaimRecord
from repro.resilience import (
    DEFAULT_MAX_ATTEMPTS,
    FAILURES_FILENAME,
    FailureLedger,
    FailureRecord,
)
from repro.resilience.ledger import describe_exception


def boom(message="kaboom"):
    try:
        raise RuntimeError(message)
    except RuntimeError as exc:
        return exc


class TestDescribeException:
    def test_class_message_and_digest(self):
        name, message, digest = describe_exception(boom())
        assert name == "RuntimeError"
        assert message == "kaboom"
        assert len(digest) == 16
        int(digest, 16)  # hex

    def test_same_failure_mode_same_digest(self):
        a = describe_exception(boom())
        b = describe_exception(boom())
        # same raise site, same message -> same digest
        assert a[2] == b[2]

    def test_long_messages_truncated(self):
        _, message, _ = describe_exception(boom("x" * 2000))
        assert len(message) == 500
        assert message.endswith("...")


class TestFailureLedger:
    def test_starts_empty_and_touches_nothing(self, tmp_path):
        ledger = FailureLedger(tmp_path)
        assert ledger.load() == {}
        assert ledger.attempt_count("fp") == 0
        assert not ledger.is_quarantined("fp")
        assert not (tmp_path / FAILURES_FILENAME).exists()

    def test_max_attempts_validated(self, tmp_path):
        with pytest.raises(ValueError, match="max_attempts"):
            FailureLedger(tmp_path, max_attempts=0)
        assert FailureLedger(tmp_path).max_attempts == DEFAULT_MAX_ATTEMPTS

    def test_attempts_accumulate_then_quarantine(self, tmp_path):
        ledger = FailureLedger(tmp_path, max_attempts=3)
        for expected in (1, 2):
            record = ledger.record_failure("fp", boom(), worker="w1")
            assert record.attempt_count == expected
            assert not record.quarantined
        record = ledger.record_failure("fp", boom(), worker="w2")
        assert record.attempt_count == 3
        assert record.quarantined
        assert ledger.is_quarantined("fp")
        assert set(ledger.quarantined()) == {"fp"}
        # attempt metadata is durable
        reread = FailureLedger(tmp_path).record("fp")
        assert [a.worker for a in reread.attempts] == ["w1", "w1", "w2"]
        assert reread.last.exception == "RuntimeError"

    def test_success_clears_the_record(self, tmp_path):
        ledger = FailureLedger(tmp_path)
        assert not ledger.clear("fp")  # nothing on file yet
        ledger.record_failure("fp", boom())
        ledger.record_failure("other", boom())
        assert ledger.clear("fp")
        assert not ledger.clear("fp")  # already gone
        assert set(ledger.load()) == {"other"}

    def test_corrupt_ledger_reads_as_empty(self, tmp_path):
        path = tmp_path / FAILURES_FILENAME
        for garbage in ("{torn", "[]", json.dumps({"failures": "nope"})):
            path.write_text(garbage)
            assert FailureLedger(tmp_path).load() == {}

    def test_writes_are_atomic_and_sorted(self, tmp_path):
        ledger = FailureLedger(tmp_path)
        ledger.record_failure("bbb", boom())
        ledger.record_failure("aaa", boom())
        raw = json.loads((tmp_path / FAILURES_FILENAME).read_text())
        assert list(raw["failures"]) == ["aaa", "bbb"]
        assert not list(tmp_path.glob("*.tmp"))

    def test_concurrent_recorders_lose_no_attempts(self, tmp_path):
        ledger = FailureLedger(tmp_path, max_attempts=1000)
        threads = [
            threading.Thread(
                target=lambda i=i: ledger.record_failure(
                    "fp", boom(), worker=f"w{i}"
                )
            )
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ledger.attempt_count("fp") == 8


class TestRetryBackoff:
    def test_backoff_doubles_and_caps(self):
        record = FailureRecord("fp")
        record.attempts.append(describe_attempt(100.0))
        assert record.next_retry_at(0.5) == 100.5
        record.attempts.append(describe_attempt(101.0))
        assert record.next_retry_at(0.5) == 102.0  # 0.5 * 2**1
        record.attempts = [describe_attempt(100.0)] * 20
        assert record.next_retry_at(0.5) == 160.0  # capped at 60s

    def test_zero_backoff_always_due(self):
        record = FailureRecord("fp")
        record.attempts.append(describe_attempt(time.time() + 1000))
        assert record.next_retry_at(0.0) == 0.0
        assert FailureRecord("fp").next_retry_at(5.0) == 0.0  # no attempts


def describe_attempt(at):
    from repro.resilience import FailureAttempt

    return FailureAttempt(
        worker="w", host="h", pid=1, exception="E", message="m",
        digest="d", at=at,
    )


class TestClaimLock:
    def test_serialises_critical_sections(self, tmp_path):
        lock = tmp_path / "x.lock"
        order = []

        def hold(tag):
            with claim_lock(lock, timeout=5.0):
                order.append(("in", tag))
                time.sleep(0.05)
                order.append(("out", tag))

        threads = [threading.Thread(target=hold, args=(t,)) for t in "ab"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # strictly nested: every "in" is followed by its own "out"
        assert [kind for kind, _ in order] == ["in", "out", "in", "out"]
        assert not lock.exists()  # released

    def test_breaks_stale_claims_of_dead_owners(self, tmp_path):
        lock = tmp_path / "x.lock"
        dead = ClaimRecord(
            owner="gone", resource=str(lock), host="nowhere", pid=1,
            acquired_at=time.time() - 100, expires_at=time.time() - 50,
        )
        assert write_claim(lock, dead)
        with claim_lock(lock, timeout=5.0):
            holder = read_claim(lock)
            assert holder is not None and holder.owner != "gone"

    def test_timeout_raises(self, tmp_path):
        lock = tmp_path / "x.lock"
        import os
        import socket

        live = ClaimRecord(
            owner="live", resource=str(lock), host=socket.gethostname(),
            pid=os.getpid(), acquired_at=time.time(),
            expires_at=time.time() + 3600,
        )
        assert write_claim(lock, live)
        with pytest.raises(TimeoutError):
            with claim_lock(lock, timeout=0.1, poll=0.02):
                pass
