"""Fault plan validation and the deterministic firing-budget machinery."""

import json

import pytest

from repro.errors import ReproError
from repro.resilience import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.resilience.faults import FAULT_STATE_DIRNAME


def plan_of(*faults, version=1):
    return FaultPlan.from_payload({"version": version, "faults": list(faults)})


class TestPlanValidation:
    def test_minimal_fault_gets_defaults(self):
        plan = plan_of({"action": "raise"})
        (fault,) = plan.faults
        assert fault.id == "fault0"
        assert fault.site == "run"
        assert fault.times == 1

    def test_unknown_key_rejected(self):
        with pytest.raises(ReproError, match="unknown key"):
            plan_of({"action": "raise", "when": "now"})

    def test_bad_action_site_times_seconds(self):
        with pytest.raises(ReproError, match="action"):
            plan_of({"action": "explode"})
        with pytest.raises(ReproError, match="site"):
            plan_of({"action": "raise", "site": "teardown"})
        with pytest.raises(ReproError, match="times"):
            plan_of({"action": "raise", "times": 0})
        with pytest.raises(ReproError, match="seconds"):
            plan_of({"action": "slow", "seconds": -1})

    def test_duplicate_ids_and_bad_version(self):
        with pytest.raises(ReproError, match="duplicate fault id"):
            plan_of({"id": "x", "action": "raise"}, {"id": "x", "action": "slow"})
        with pytest.raises(ReproError, match="version"):
            plan_of(version=2)

    def test_load_and_env(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"version": 1, "faults": []}))
        assert FaultPlan.load(path).faults == ()
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULT_PLAN_ENV: str(path)}).path == path
        with pytest.raises(ReproError, match="cannot read"):
            FaultPlan.load(tmp_path / "absent.json")
        (tmp_path / "bad.json").write_text("{nope")
        with pytest.raises(ReproError, match="invalid JSON"):
            FaultPlan.load(tmp_path / "bad.json")


class TestMatching:
    def fault(self, **kw):
        return FaultSpec(id="f", action="raise", **kw)

    def args(self, **kw):
        base = dict(fingerprint="abcdef", index=3, attempt=1, worker="w1")
        base.update(kw)
        return base

    def test_site_must_match(self):
        assert self.fault(site="commit").matches("commit", **self.args())
        assert not self.fault(site="commit").matches("run", **self.args())

    def test_fingerprint_is_a_prefix_match(self):
        assert self.fault(fingerprint="abc").matches("run", **self.args())
        assert not self.fault(fingerprint="xyz").matches("run", **self.args())

    def test_index_attempt_worker_are_exact(self):
        assert self.fault(index=3).matches("run", **self.args())
        assert not self.fault(index=2).matches("run", **self.args())
        assert not self.fault(attempt=2).matches("run", **self.args())
        assert self.fault(attempt=2).matches("run", **self.args(attempt=2))
        assert not self.fault(worker="w2").matches("run", **self.args())


class TestFiringBudget:
    def injector(self, root, *faults):
        return plan_of(*faults).arm(root)

    def test_raise_fires_exactly_times(self, tmp_path):
        injector = self.injector(
            tmp_path, {"id": "f", "action": "raise", "times": 2}
        )
        for _ in range(2):
            with pytest.raises(InjectedFault, match=r"\[f\]"):
                injector.fire("run", fingerprint="abc")
        injector.fire("run", fingerprint="abc")  # budget spent: no-op
        markers = sorted(
            p.name for p in (tmp_path / FAULT_STATE_DIRNAME).iterdir()
        )
        assert markers == ["f.0.fired", "f.1.fired"]

    def test_budget_is_shared_across_injectors(self, tmp_path):
        """A reclaiming worker arms its own injector over the same dir;
        the marker files make the budget global, so a crash fault never
        fires a second time."""
        fault = {"id": "once", "action": "raise", "times": 1}
        first = self.injector(tmp_path, fault)
        with pytest.raises(InjectedFault):
            first.fire("run", fingerprint="abc")
        second = self.injector(tmp_path, fault)
        second.fire("run", fingerprint="abc")  # no raise

    def test_unlimited_budget_writes_no_markers(self, tmp_path):
        injector = self.injector(
            tmp_path, {"id": "f", "action": "raise", "times": None}
        )
        for _ in range(5):
            with pytest.raises(InjectedFault):
                injector.fire("run", fingerprint="abc")
        assert not (tmp_path / FAULT_STATE_DIRNAME).exists()

    def test_marker_records_what_fired(self, tmp_path):
        injector = self.injector(tmp_path, {"id": "f", "action": "slow"})
        injector.fire("run", fingerprint="abc", worker="w9")
        body = json.loads(
            (tmp_path / FAULT_STATE_DIRNAME / "f.0.fired").read_text()
        )
        assert body["fault"] == "f"
        assert body["fingerprint"] == "abc"
        assert body["worker"] == "w9"


class TestActions:
    def test_corrupt_write_truncates_the_entry(self, tmp_path):
        from repro.scenarios.cache import ResultCache

        cache = ResultCache(tmp_path)
        cache.put("abc", {"metrics": {"x": 1.0}})
        clean = cache.entry_path("abc").read_bytes()
        injector = plan_of(
            {"id": "torn", "action": "corrupt-write", "site": "commit"}
        ).arm(tmp_path)
        injector.fire("commit", fingerprint="abc", cache=cache)
        torn = cache.entry_path("abc").read_bytes()
        assert torn == clean[: len(clean) // 2]
        assert cache.lookup("abc").status == "corrupt"

    def test_lose_lease_unlinks_it(self, tmp_path):
        from repro.scenarios.scheduler import LeaseBoard

        board = LeaseBoard(tmp_path, owner="w1")
        assert board.acquire("abc")
        injector = plan_of({"id": "lost", "action": "lose-lease"}).arm(tmp_path)
        injector.fire("run", fingerprint="abc", board=board)
        assert board.holder("abc") is None
        assert board.acquire("abc")  # claimable again
