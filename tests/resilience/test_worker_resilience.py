"""Fleet fault tolerance end to end: retries, quarantine, crash recovery.

Every scenario here runs under a deterministic :class:`FaultPlan`, so
the assertions can be byte-for-byte: surviving variants must produce
tables and cache entries identical to a fault-free run, and a poisoned
variant must surface as an explicit FAILED row instead of hanging the
sweep or killing workers.
"""

import json
import multiprocessing
import os

from repro.resilience import FAULT_PLAN_ENV, FailureLedger
from repro.scenarios import (
    ResultCache,
    Sweep,
    SweepExecutor,
    SweepManifest,
    SweepScheduler,
    run_worker,
)
from repro.scenarios.cache import CORRUPT_DIRNAME
from repro.scenarios.scheduler import sweep_status

TAUS = [0.6, 0.7, 0.8]


def make_sweep(taus=TAUS):
    return Sweep(
        "taylor-green", {"tau": list(taus), "shape": [(8, 8, 4)]}, steps=8
    )


def publish(root, sweep=None, **kw):
    scheduler = SweepScheduler(sweep or make_sweep(), root, workers=0, **kw)
    return scheduler, scheduler.publish()[0]


def clean_reference(root):
    """A fault-free run of the same sweep into its own cache dir."""
    return SweepExecutor(make_sweep(), jobs=1, cache_dir=root).run()


def write_plan(path, *faults):
    path.write_text(json.dumps({"version": 1, "faults": list(faults)}))
    return path


def _crashing_worker(cache_dir, plan_path):
    """Child-process entry: arm the fault plan, run until the crash."""
    os.environ[FAULT_PLAN_ENV] = str(plan_path)
    try:
        run_worker(cache_dir, worker_id="victim", lease_ttl=60.0)
    except BaseException:
        os._exit(1)
    os._exit(0)


def run_crasher(tmp_path, plan_path):
    child = multiprocessing.Process(
        target=_crashing_worker, args=(str(tmp_path), str(plan_path))
    )
    child.start()
    child.join(timeout=120)
    assert child.exitcode == 137  # died inside the injected crash
    return child


class TestPoisonQuarantine:
    def poison_plan(self, tmp_path):
        # index 0 raises on *every* attempt: a genuinely poisoned variant
        return write_plan(
            tmp_path / "plan.json",
            {
                "id": "poison",
                "action": "raise",
                "site": "run",
                "index": 0,
                "times": None,
                "message": "injected divergence",
            },
        )

    def test_worker_survives_retries_and_quarantines(
        self, tmp_path, monkeypatch
    ):
        scheduler, plan = publish(tmp_path, max_attempts=2)
        monkeypatch.setenv(FAULT_PLAN_ENV, str(self.poison_plan(tmp_path)))
        report = run_worker(
            tmp_path, worker_id="w1", max_attempts=2, retry_backoff=0.0
        )
        victim = plan.fingerprints[0]
        # the exception never killed the worker: the healthy variants ran
        assert sorted(report.completed) == sorted(plan.fingerprints[1:])
        assert report.failed == [victim, victim]
        assert report.quarantined == [victim]
        assert "2 failed attempt(s)" in report.summary()
        assert "1 quarantined" in report.summary()

        ledger = FailureLedger(tmp_path)
        record = ledger.record(victim)
        assert record.quarantined and record.attempt_count == 2
        assert record.last.exception == "InjectedFault"
        assert "injected divergence" in record.last.message

        # the whole fleet skips a quarantined variant — instantly
        late = run_worker(
            tmp_path, worker_id="w2", max_attempts=2, retry_backoff=0.0
        )
        assert late.completed == [] and late.failed == []
        assert ledger.record(victim).attempt_count == 2

    def test_merge_renders_failed_row_others_byte_identical(
        self, tmp_path, monkeypatch
    ):
        scheduler, plan = publish(tmp_path / "chaos", max_attempts=2)
        monkeypatch.setenv(
            FAULT_PLAN_ENV, str(self.poison_plan(tmp_path / "chaos"))
        )
        run_worker(
            tmp_path / "chaos",
            worker_id="w1",
            max_attempts=2,
            retry_backoff=0.0,
        )
        monkeypatch.delenv(FAULT_PLAN_ENV)
        merged = scheduler.collect(plan)
        assert merged.failed_count == 1
        assert merged.provenance[0] == "failed"
        assert not merged.results[0].passed

        reference = clean_reference(tmp_path / "clean")
        chaos_lines = merged.to_table().splitlines()
        clean_lines = reference.to_table().splitlines()
        assert len(chaos_lines) == len(clean_lines)
        diff = [
            (a, b) for a, b in zip(clean_lines, chaos_lines) if a != b
        ]
        assert len(diff) == 1  # exactly the poisoned row changed
        assert "FAILED" in diff[0][1]

    def test_status_and_fleet_surface_quarantine(self, tmp_path, monkeypatch):
        scheduler, plan = publish(tmp_path, max_attempts=1)
        monkeypatch.setenv(FAULT_PLAN_ENV, str(self.poison_plan(tmp_path)))
        run_worker(
            tmp_path,
            worker_id="w1",
            max_attempts=1,
            retry_backoff=0.0,
            telemetry_dir=tmp_path / "telemetry",
        )
        status = sweep_status(tmp_path)
        victim = plan.fingerprints[0]
        assert [r.fingerprint for r in status.quarantined] == [victim]
        assert status.failing == ()
        payload = status.to_payload()
        quarantined = payload["failures"]["quarantined"]
        assert len(quarantined) == 1
        assert quarantined[0]["fingerprint"] == victim
        assert quarantined[0]["attempts"][0]["exception"] == "InjectedFault"
        assert "quarantined: 1 variant(s) FAILED" in status.summary()
        # telemetry rollup (the GET /v1/fleet body) counts the events
        assert status.telemetry.failed == 1
        assert status.telemetry.quarantined == 1
        assert "1 quarantined" in "\n".join(status.telemetry.summary_lines())


class TestTransientRetry:
    def test_one_transient_failure_retries_to_a_clean_table(
        self, tmp_path, monkeypatch
    ):
        scheduler, plan = publish(tmp_path / "chaos")
        plan_path = write_plan(
            tmp_path / "plan.json",
            {"id": "flake", "action": "raise", "site": "run", "index": 1,
             "times": 1},
        )
        monkeypatch.setenv(FAULT_PLAN_ENV, str(plan_path))
        report = run_worker(
            tmp_path / "chaos", worker_id="w1", retry_backoff=0.0
        )
        flaky = plan.fingerprints[1]
        assert report.failed == [flaky]
        assert report.quarantined == []
        assert sorted(report.completed) == sorted(plan.fingerprints)
        # success cleared the ledger record
        assert FailureLedger(tmp_path / "chaos").load() == {}

        monkeypatch.delenv(FAULT_PLAN_ENV)
        merged = scheduler.collect(plan)
        reference = clean_reference(tmp_path / "clean")
        assert merged.to_table() == reference.to_table()
        assert merged.to_csv() == reference.to_csv()


class TestCrashRecovery:
    def test_crash_before_run_is_reclaimed_byte_identical(self, tmp_path):
        """Acceptance: worker 1 crashes on its first variant; worker 2
        reclaims the stale lease and the final table matches a
        fault-free sweep byte for byte."""
        chaos = tmp_path / "chaos"
        scheduler, plan = publish(chaos)
        plan_path = write_plan(
            tmp_path / "plan.json",
            {"id": "die", "action": "crash", "site": "run", "index": 0,
             "times": 1},
        )
        run_crasher(chaos, plan_path)
        victim = plan.fingerprints[0]
        assert ResultCache(chaos).get(victim) is None  # died before commit

        rescuer = run_worker(chaos, worker_id="rescuer", wait=True)
        assert victim in rescuer.reclaimed
        assert sorted(rescuer.completed) == sorted(plan.fingerprints)

        merged = scheduler.collect(plan)
        reference = clean_reference(tmp_path / "clean")
        assert merged.to_table() == reference.to_table()
        assert merged.to_csv() == reference.to_csv()

    def test_crash_mid_commit_leaves_one_completion(self, tmp_path):
        """Crash *after* the cache write but before the lease release:
        the reclaiming worker must adopt the orphaned entry (no re-run,
        byte-identical bytes) and the manifest must record exactly one
        completion for the variant."""
        chaos = tmp_path / "chaos"
        scheduler, plan = publish(chaos)
        plan_path = write_plan(
            tmp_path / "plan.json",
            {"id": "die-commit", "action": "crash", "site": "commit",
             "index": 0, "times": 1},
        )
        run_crasher(chaos, plan_path)
        victim = plan.fingerprints[0]
        cache = ResultCache(chaos)
        orphaned = cache.entry_path(victim).read_bytes()  # commit landed
        manifest = SweepManifest.load(chaos)
        assert victim not in manifest.completed  # ...but unrecorded

        rescuer = run_worker(chaos, worker_id="rescuer", wait=True)
        assert victim not in rescuer.completed  # adopted, not re-run
        assert cache.entry_path(victim).read_bytes() == orphaned

        manifest = SweepManifest.load(chaos)
        assert manifest.completed.count(victim) == 1
        assert manifest.workers[victim] == "rescuer"

        merged = scheduler.collect(plan)
        reference = clean_reference(tmp_path / "clean")
        assert merged.to_table() == reference.to_table()
        entry = ResultCache(tmp_path / "clean").entry_path(victim)
        assert entry.read_bytes() == orphaned  # byte-identical to clean


class TestCorruptWriteRecovery:
    def test_torn_commit_is_quarantined_and_rewarmed(
        self, tmp_path, monkeypatch
    ):
        chaos = tmp_path / "chaos"
        scheduler, plan = publish(chaos)
        plan_path = write_plan(
            tmp_path / "plan.json",
            {"id": "torn", "action": "corrupt-write", "site": "commit",
             "index": 2, "times": 1},
        )
        monkeypatch.setenv(FAULT_PLAN_ENV, str(plan_path))
        run_worker(chaos, worker_id="w1", retry_backoff=0.0)
        monkeypatch.delenv(FAULT_PLAN_ENV)

        victim = plan.fingerprints[2]
        cache = ResultCache(chaos)
        assert cache.get(victim) is not None  # re-warmed with a valid entry
        sidecar = list((chaos / CORRUPT_DIRNAME).iterdir())
        assert len(sidecar) == 1  # the torn bytes were preserved, not lost
        assert sidecar[0].name == cache.entry_path(victim).name

        merged = scheduler.collect(plan)
        reference = clean_reference(tmp_path / "clean")
        assert merged.to_table() == reference.to_table()
        assert merged.to_csv() == reference.to_csv()


class TestIdleTimeout:
    def test_follow_worker_exits_after_idle_timeout(self, tmp_path):
        _, plan = publish(tmp_path)
        run_worker(tmp_path, worker_id="w1")  # drain the sweep
        follower = run_worker(
            tmp_path,
            worker_id="tail",
            follow=True,
            poll=0.05,
            idle_timeout=0.2,
        )
        assert follower.completed == []
        assert follower.already_cached == len(plan.fingerprints)
