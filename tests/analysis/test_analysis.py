"""Tests for table rendering and ASCII plotting."""

import pytest

from repro.analysis import append_column, bar_chart, diff_rows, render_table
from repro.analysis.paper_reference import FIG8_ENDPOINTS, TABLE2


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))
        # columns aligned: separator positions identical
        assert lines[2].index("|") == lines[3].index("|")

    def test_title(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"


class TestAppendColumn:
    def test_merges_trailing_column(self):
        headers, rows = append_column(
            ["a"], [[1], [2]], "src", ["run", "cached"]
        )
        assert headers == ["a", "src"]
        assert rows == [[1, "run"], [2, "cached"]]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="src"):
            append_column(["a"], [[1]], "src", ["run", "cached"])


class TestDiffRows:
    HEADERS = ["tau", "err", "check"]
    OLD = [["0.6", "1e-3", "PASS"], ["0.8", "2e-3", "PASS"]]

    def test_identical_tables_diff_empty(self):
        headers, rows = diff_rows(self.HEADERS, self.OLD, self.OLD)
        assert headers == self.HEADERS + ["change"]
        assert rows == []

    def test_changed_cells_render_old_arrow_new(self):
        new = [["0.6", "1e-3", "PASS"], ["0.8", "5e-3", "FAIL"]]
        _, rows = diff_rows(self.HEADERS, self.OLD, new)
        assert rows == [
            ["0.8", "2e-3 -> 5e-3", "PASS -> FAIL", "changed"]
        ]

    def test_added_and_removed_keys(self):
        new = [["0.6", "1e-3", "PASS"], ["0.9", "9e-3", "PASS"]]
        _, rows = diff_rows(self.HEADERS, self.OLD, new)
        assert ["0.8", "2e-3", "PASS", "removed"] in rows
        assert ["0.9", "9e-3", "PASS", "added"] in rows
        assert len(rows) == 2

    def test_multi_column_keys(self):
        headers = ["tau", "lattice", "err"]
        old = [["0.6", "D3Q19", "1"], ["0.6", "D3Q27", "2"]]
        new = [["0.6", "D3Q19", "1"], ["0.6", "D3Q27", "3"]]
        _, rows = diff_rows(headers, old, new, key_columns=2)
        assert rows == [["0.6", "D3Q27", "2 -> 3", "changed"]]

    def test_bad_key_columns_rejected(self):
        with pytest.raises(ValueError, match="key_columns"):
            diff_rows(self.HEADERS, self.OLD, self.OLD, key_columns=0)

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            diff_rows(self.HEADERS, [["only-one"]], self.OLD)


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_infeasible_marker(self):
        out = bar_chart(["a", "b"], [1.0, None])
        assert "(infeasible)" in out

    def test_all_none(self):
        assert "no feasible data" in bar_chart(["a"], [None])

    def test_title_and_unit(self):
        out = bar_chart(["a"], [2.0], title="X", unit="s")
        assert out.splitlines()[0] == "X"
        assert "2s" in out


class TestPaperReference:
    def test_table2_is_bandwidth_limited_everywhere(self):
        for (_, _), (bm, p_bm, peak, p_peak) in TABLE2.items():
            assert p_bm < p_peak  # bandwidth always binds

    def test_fig8_fractions_are_fractions(self):
        for frac, improvement in FIG8_ENDPOINTS.values():
            assert 0 < frac < 1
            assert improvement > 1
