"""Tests for the per-rank phase profiler."""

import numpy as np
import pytest

from repro.core import Simulation, shear_wave
from repro.parallel import DistributedSimulation, PhaseProfiler


@pytest.fixture
def dist():
    d = DistributedSimulation("D3Q19", (24, 6, 6), tau=0.8, num_ranks=3, ghost_depth=2)
    rho, u = shear_wave((24, 6, 6))
    d.initialize(rho, u)
    return d


class TestProfiler:
    def test_physics_unchanged(self, dist):
        ref = Simulation("D3Q19", (24, 6, 6), tau=0.8)
        rho, u = shear_wave((24, 6, 6))
        ref.initialize(rho, u)
        ref.run(8)
        profiler = PhaseProfiler(dist)
        profiler.run(8)
        assert np.allclose(dist.gather(), ref.f, atol=1e-13)

    def test_phases_accumulate(self, dist):
        profile = PhaseProfiler(dist).run(6)
        assert profile.steps == 6
        assert (profile.seconds["stream"] > 0).all()
        assert (profile.seconds["collide"] > 0).all()
        assert profile.seconds["exchange"].sum() > 0
        assert profile.total_seconds > 0

    def test_summary_triplet(self, dist):
        profile = PhaseProfiler(dist).run(4)
        mn, med, mx = profile.summary("stream")
        assert mn <= med <= mx

    def test_comm_fraction_bounded(self, dist):
        profile = PhaseProfiler(dist).run(4)
        assert 0 < profile.comm_fraction() < 1

    def test_exchange_period_respected(self, dist):
        profiler = PhaseProfiler(dist)
        profiler.run(6)
        # depth 2 -> 3 exchanges in 6 steps
        assert dist.exchange_count == 3
