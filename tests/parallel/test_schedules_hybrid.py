"""Tests for exchange schedules and hybrid placement descriptions."""

import pytest

from repro.parallel import ExchangeSchedule, HybridConfig


class TestSchedules:
    def test_overlap_ordering(self):
        """Overlap grows along the paper's tuning sequence."""
        order = [
            ExchangeSchedule.BLOCKING,
            ExchangeSchedule.NONBLOCKING,
            ExchangeSchedule.NONBLOCKING_GC,
            ExchangeSchedule.GC_SPLIT,
        ]
        fracs = [s.overlap_fraction for s in order]
        assert fracs == sorted(fracs)
        assert fracs[0] == 0.0
        assert fracs[-1] < 1.0

    def test_ghost_cell_requirement(self):
        assert ExchangeSchedule.GC_SPLIT.uses_ghost_cells
        assert ExchangeSchedule.NONBLOCKING_GC.uses_ghost_cells
        assert not ExchangeSchedule.BLOCKING.uses_ghost_cells
        assert not ExchangeSchedule.NONBLOCKING.uses_ghost_cells

    def test_labels_match_figure_legend(self):
        assert ExchangeSchedule.NONBLOCKING.label == "NB-C"
        assert ExchangeSchedule.NONBLOCKING_GC.label == "NB-C & GC"
        assert ExchangeSchedule.GC_SPLIT.label == "GC-C"


class TestHybridConfig:
    def test_totals(self):
        cfg = HybridConfig(nodes=16, tasks_per_node=4, threads_per_task=16)
        assert cfg.total_ranks == 64
        assert cfg.hardware_threads_per_node == 64
        assert cfg.label == "4-16"

    def test_fits(self):
        cfg = HybridConfig(nodes=1, tasks_per_node=4, threads_per_task=16)
        assert cfg.fits(cores_per_node=16, threads_per_core=4)
        assert not cfg.fits(cores_per_node=16, threads_per_core=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(nodes=0, tasks_per_node=1, threads_per_task=1)

    def test_ghost_cell_count_formula(self):
        """§VI-B: ghost cells = cross-section x domains x 2n (x k planes)."""
        cfg = HybridConfig(nodes=32, tasks_per_node=4, threads_per_task=1)
        assert cfg.ghost_cells_total(cross_section=100, depth=2, k=1) == (
            128 * 2 * 2 * 1 * 100
        )

    def test_threading_reduces_ghost_cells(self):
        """The paper's key §VI-B observation."""
        vn = HybridConfig(nodes=32, tasks_per_node=4, threads_per_task=1)
        hybrid = HybridConfig(nodes=32, tasks_per_node=1, threads_per_task=4)
        assert hybrid.ghost_cells_total(100, 2, 3) == vn.ghost_cells_total(100, 2, 3) // 4

    def test_ghost_bytes_follow_dtype_policy(self):
        """float32 halves ghost-cell storage, mirroring the halo
        exchange's ledger bytes."""
        cfg = HybridConfig(nodes=8, tasks_per_node=4, threads_per_task=2)
        cells = cfg.ghost_cells_total(100, 2, 3)
        f64 = cfg.ghost_bytes_total(100, 2, 3, q=39)
        f32 = cfg.ghost_bytes_total(100, 2, 3, q=39, dtype="float32")
        assert f64 == cells * 39 * 8
        assert f64 == 2 * f32
