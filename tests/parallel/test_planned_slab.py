"""Planned distributed stepping: the kernel x dtype x depth x schedule
equivalence matrix, the zero-allocation property, and dtype-honest
communication byte accounting."""

import tracemalloc

import numpy as np
import pytest

from repro.core import Simulation, shear_wave
from repro.core.plan import KernelPlan, build_slab_gather_table
from repro.errors import HaloValidityError, LatticeError
from repro.lattice import get_lattice
from repro.parallel import (
    DISTRIBUTED_KERNELS,
    DistributedSimulation,
    ExchangeSchedule,
    HaloSpec,
    PlannedSlabKernel,
)


def _tol(dtype):
    return 1e-13 if dtype == "float64" else 2e-5


def _run_pair(lname, shape, tau, steps, *, ranks, depth, schedule, kernel, dtype):
    """(single-domain f, distributed gather) under one configuration."""
    rho, u = shear_wave(shape)
    ref = Simulation(
        lname,
        shape,
        tau=tau,
        kernel="planned" if kernel == "planned" else None,
        dtype=dtype,
    )
    ref.initialize(rho, u)
    ref.run(steps)
    dist = DistributedSimulation(
        lname,
        shape,
        tau=tau,
        num_ranks=ranks,
        ghost_depth=depth,
        schedule=schedule,
        kernel=kernel,
        dtype=dtype,
    )
    dist.initialize(rho, u)
    dist.run(steps)
    return ref.f, dist


class TestEquivalenceMatrix:
    """The PR's correctness contract: gather() equals the single-domain
    solver for every kernel x dtype x ghost-depth x schedule cell."""

    @pytest.mark.parametrize("schedule", list(ExchangeSchedule))
    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("kernel", list(DISTRIBUTED_KERNELS))
    def test_matrix_d3q19(self, kernel, dtype, depth, schedule):
        ref, dist = _run_pair(
            "D3Q19",
            (24, 5, 5),
            0.8,
            10,
            ranks=3,
            depth=depth,
            schedule=schedule,
            kernel=kernel,
            dtype=dtype,
        )
        got = dist.gather()
        assert got.dtype == np.dtype(dtype)
        assert np.allclose(
            got.astype(np.float64), ref.astype(np.float64), atol=_tol(dtype)
        )

    @pytest.mark.parametrize("depth", [1, 2])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("kernel", list(DISTRIBUTED_KERNELS))
    def test_matrix_d3q39(self, kernel, dtype, depth):
        ref, dist = _run_pair(
            "D3Q39",
            (30, 4, 4),
            0.9,
            9,
            ranks=3,
            depth=depth,
            schedule=ExchangeSchedule.NONBLOCKING_GC,
            kernel=kernel,
            dtype=dtype,
        )
        assert np.allclose(
            dist.gather().astype(np.float64),
            ref.astype(np.float64),
            atol=_tol(dtype),
        )

    def test_planned_float64_bitwise_vs_legacy_tolerance(self):
        """Planned and legacy slab paths agree to rounding (they are
        different arithmetic orderings of the same update)."""
        _, legacy = _run_pair(
            "D3Q19",
            (24, 4, 4),
            0.8,
            8,
            ranks=2,
            depth=2,
            schedule=ExchangeSchedule.NONBLOCKING_GC,
            kernel="legacy",
            dtype="float64",
        )
        _, planned = _run_pair(
            "D3Q19",
            (24, 4, 4),
            0.8,
            8,
            ranks=2,
            depth=2,
            schedule=ExchangeSchedule.NONBLOCKING_GC,
            kernel="planned",
            dtype="float64",
        )
        assert np.allclose(planned.gather(), legacy.gather(), atol=1e-12)

    def test_uneven_decomposition_planned(self):
        """23 planes over 4 ranks (6,6,6,5): two slab geometries, two
        plan sets, still exact."""
        ref, dist = _run_pair(
            "D3Q19",
            (23, 4, 4),
            0.8,
            7,
            ranks=4,
            depth=1,
            schedule=ExchangeSchedule.BLOCKING,
            kernel="planned",
            dtype="float64",
        )
        assert np.allclose(dist.gather(), ref, atol=1e-13)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(LatticeError, match="unknown distributed kernel"):
            DistributedSimulation("D3Q19", (16, 4, 4), kernel="simd")


class TestZeroAllocation:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_step_and_exchange_allocate_nothing(self, dtype):
        """The acceptance property: after warmup, the planned distributed
        loop — stepping *and* halo exchange — makes no heap allocations
        beyond O(1) request bookkeeping (a single hidden payload or
        window copy would exceed the budget ~100-fold)."""
        dist = DistributedSimulation(
            "D3Q39",
            (32, 16, 16),
            tau=0.8,
            num_ranks=4,
            ghost_depth=2,
            kernel="planned",
            dtype=dtype,
        )
        rho, u = shear_wave((32, 16, 16))
        dist.initialize(rho, u)
        dist.run(4)  # warmup: two full exchange macro-cycles
        slab_bytes = sum(slab.data.nbytes for slab in dist.slabs)
        tracemalloc.start()
        dist.run(6)  # three macro-cycles including their exchanges
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < slab_bytes // 100, f"peak {peak} B vs slabs {slab_bytes} B"

    def test_legacy_path_still_allocates(self):
        """Contrast case documenting why the planned slab kernel exists."""
        dist = DistributedSimulation(
            "D3Q19", (32, 16, 16), tau=0.8, num_ranks=4, ghost_depth=2
        )
        rho, u = shear_wave((32, 16, 16))
        dist.initialize(rho, u)
        dist.run(4)
        slab_bytes = sum(slab.data.nbytes for slab in dist.slabs)
        tracemalloc.start()
        dist.run(2)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak > slab_bytes // 4


class TestCommBytes:
    @pytest.mark.parametrize("kernel", list(DISTRIBUTED_KERNELS))
    def test_float32_halves_ledger_bytes(self, kernel):
        """B(Q) on the wire: the ledger must reflect the real payload
        width, so float32 halves total_comm_bytes exactly."""
        totals = {}
        for dtype in ("float64", "float32"):
            _, dist = _run_pair(
                "D3Q19",
                (24, 4, 4),
                0.8,
                8,
                ranks=4,
                depth=2,
                schedule=ExchangeSchedule.NONBLOCKING_GC,
                kernel=kernel,
                dtype=dtype,
            )
            totals[dtype] = dist.total_comm_bytes()
        assert totals["float64"] == 2 * totals["float32"]

    def test_bytes_match_halo_geometry_float32(self):
        shape = (24, 5, 6)
        dist = DistributedSimulation(
            "D3Q39",
            shape,
            tau=0.8,
            num_ranks=2,
            ghost_depth=1,
            dtype="float32",
            kernel="planned",
        )
        rho, u = shear_wave(shape)
        dist.initialize(rho, u)
        dist.run(1)
        # one exchange: 2 ranks x 2 directions = 4 messages of k*area*Q*4
        assert dist.message_count() == 4
        assert dist.total_comm_bytes() == 4 * 3 * 5 * 6 * 39 * 4

    @pytest.mark.parametrize("kernel", list(DISTRIBUTED_KERNELS))
    def test_deep_halo_message_ledger_invariants(self, kernel):
        """§VI-A holds on both kernels: d-fold fewer messages, same
        bytes per macro-cycle."""
        counts, totals = {}, {}
        for depth in (1, 2, 3):
            _, dist = _run_pair(
                "D3Q19",
                (48, 4, 4),
                0.8,
                12,
                ranks=4,
                depth=depth,
                schedule=ExchangeSchedule.NONBLOCKING_GC,
                kernel=kernel,
                dtype="float64",
            )
            counts[depth] = dist.message_count()
            totals[depth] = dist.total_comm_bytes()
        assert counts[1] == 2 * counts[2] == 3 * counts[3]
        assert totals[1] == totals[2] == totals[3]


class TestPlannedSlabKernel:
    def test_dtype_mismatch_rejected(self, q19):
        from repro.parallel import HaloSlab

        spec = HaloSpec.for_lattice(q19, 1)
        kernel = PlannedSlabKernel(q19, 8, 4, 4, spec, tau=0.8, dtype="float32")
        slab = HaloSlab(q19, 8, 4, 4, spec)  # float64 storage
        slab.mark_exchanged()
        with pytest.raises(LatticeError, match="float32"):
            kernel.step(slab)

    def test_exhausted_halo_rejected(self, q19):
        from repro.parallel import HaloSlab

        spec = HaloSpec.for_lattice(q19, 1)
        kernel = PlannedSlabKernel(q19, 8, 4, 4, spec, tau=0.8)
        slab = HaloSlab(q19, 8, 4, 4, spec)
        assert slab.validity == 0
        with pytest.raises(HaloValidityError, match="exhausted"):
            kernel.step(slab)

    def test_one_window_plan_per_substep(self, q39):
        spec = HaloSpec.for_lattice(q39, 2)  # width 6, k 3
        kernel = PlannedSlabKernel(q39, 12, 3, 3, spec, tau=0.8)
        assert sorted(kernel._plans) == [0, 3]
        assert kernel._plans[3].shape == (12 + 2 * 3, 3, 3)
        assert kernel._plans[0].shape == (12, 3, 3)
        assert kernel.nbytes > 0

    def test_mismatched_slab_geometry_rejected(self, q19):
        from repro.parallel import HaloSlab

        depth2 = HaloSpec.for_lattice(q19, 2)
        depth3 = HaloSpec.for_lattice(q19, 3)
        kernel = PlannedSlabKernel(q19, 8, 4, 4, depth2, tau=0.8)
        slab = HaloSlab(q19, 8, 4, 4, depth3)
        slab.mark_exchanged()
        with pytest.raises(HaloValidityError, match="window plan"):
            kernel.step(slab)


class TestSlabGatherTable:
    def test_matches_padded_streaming_inside_window(self, q39):
        """The fused gather equals stream_padded restricted to a window
        that keeps k planes of slack per side."""
        from repro.core.streaming import stream_padded

        lat = q39
        padded = (14, 4, 5)
        window = slice(3, 11)
        rng = np.random.default_rng(3)
        f = rng.standard_normal((lat.q, *padded))
        expected = stream_padded(lat, f)[:, window]
        table = build_slab_gather_table(lat, padded, window)
        got = np.take(f.reshape(-1), table).reshape(
            lat.q, window.stop - window.start, *padded[1:]
        )
        assert np.array_equal(got, expected)

    def test_window_too_close_to_edge_rejected(self, q39):
        with pytest.raises(LatticeError, match="outside the padded"):
            build_slab_gather_table(q39, (14, 4, 5), slice(2, 12))

    def test_empty_window_rejected(self, q19):
        with pytest.raises(LatticeError, match="empty"):
            build_slab_gather_table(q19, (10, 4, 4), slice(5, 5))

    def test_for_window_plan_geometry(self, q19):
        plan = KernelPlan.for_window(q19, (12, 4, 4), slice(2, 10))
        assert plan.shape == (8, 4, 4)
        assert plan.source_shape == (12, 4, 4)
        assert plan.window == slice(2, 10)
        # default periodic plans keep source == compute
        whole = KernelPlan(q19, (8, 4, 4))
        assert whole.window is None
        assert whole.source_shape == (8, 4, 4)


class TestProfilerAndFailureSafety:
    def test_mismatch_leaves_validity_ledger_intact(self, q19):
        """A geometry-mismatch failure must be side-effect-free: the
        validity ledger may not record a step that never computed."""
        from repro.parallel import HaloSlab

        kernel = PlannedSlabKernel(q19, 8, 4, 4, HaloSpec.for_lattice(q19, 2), tau=0.8)
        slab = HaloSlab(q19, 8, 4, 4, HaloSpec.for_lattice(q19, 3))
        slab.mark_exchanged()
        before = slab.validity
        with pytest.raises(HaloValidityError, match="window plan"):
            kernel.step(slab)
        assert slab.validity == before

    @pytest.mark.parametrize("kernel", list(DISTRIBUTED_KERNELS))
    def test_phase_profiler_drives_the_selected_kernel(self, kernel):
        """PhaseProfiler must step through the simulation's configured
        kernel: profiled physics equals the uninstrumented driver's,
        bit for bit, on both paths."""
        from repro.parallel import PhaseProfiler

        shape = (24, 5, 5)
        rho, u = shear_wave(shape)

        def build():
            dist = DistributedSimulation(
                "D3Q19", shape, tau=0.8, num_ranks=3, ghost_depth=2, kernel=kernel
            )
            dist.initialize(rho, u)
            return dist

        plain = build()
        plain.run(7)
        profiled = build()
        profile = PhaseProfiler(profiled).run(7)
        assert np.array_equal(profiled.gather(), plain.gather())
        assert profile.steps == 7
        assert profile.seconds["stream"].sum() > 0
        assert profile.seconds["collide"].sum() > 0
        assert profile.seconds["exchange"].sum() > 0
