"""The correctness contract: distributed == single-domain, exactly."""

import numpy as np
import pytest

from repro.core import Simulation, shear_wave, taylor_green
from repro.errors import DecompositionError
from repro.parallel import DistributedSimulation, ExchangeSchedule


def reference(lname, shape, tau, steps, init=shear_wave):
    sim = Simulation(lname, shape, tau=tau)
    rho, u = init(shape)
    sim.initialize(rho, u)
    sim.run(steps)
    return sim.f


class TestExactness:
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_matches_single_domain(self, lname, ranks):
        shape = (24, 5, 5)
        ref = reference(lname, shape, tau=0.8, steps=10)
        dist = DistributedSimulation(lname, shape, tau=0.8, num_ranks=ranks)
        rho, u = shear_wave(shape)
        dist.initialize(rho, u)
        dist.run(10)
        assert np.allclose(dist.gather(), ref, atol=1e-13)

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_deep_halo_invariance_d3q19(self, depth):
        """Exchange every d steps with d*k-wide halos is exact."""
        shape = (32, 4, 4)
        ref = reference("D3Q19", shape, tau=0.7, steps=12)
        dist = DistributedSimulation(
            "D3Q19", shape, tau=0.7, num_ranks=4, ghost_depth=depth
        )
        rho, u = shear_wave(shape)
        dist.initialize(rho, u)
        dist.run(12)
        assert np.allclose(dist.gather(), ref, atol=1e-13)

    @pytest.mark.parametrize("depth", [1, 2])
    def test_deep_halo_invariance_d3q39(self, depth):
        shape = (30, 4, 4)
        ref = reference("D3Q39", shape, tau=0.9, steps=9)
        dist = DistributedSimulation(
            "D3Q39", shape, tau=0.9, num_ranks=3, ghost_depth=depth
        )
        rho, u = shear_wave(shape)
        dist.initialize(rho, u)
        dist.run(9)
        assert np.allclose(dist.gather(), ref, atol=1e-13)

    @pytest.mark.parametrize("schedule", list(ExchangeSchedule))
    def test_all_schedules_identical_physics(self, schedule):
        shape = (20, 4, 4)
        ref = reference("D3Q19", shape, tau=0.8, steps=8)
        dist = DistributedSimulation(
            "D3Q19", shape, tau=0.8, num_ranks=4, schedule=schedule
        )
        rho, u = shear_wave(shape)
        dist.initialize(rho, u)
        dist.run(8)
        assert np.allclose(dist.gather(), ref, atol=1e-13)

    def test_uneven_decomposition(self):
        """23 planes over 4 ranks: 6,6,6,5."""
        shape = (23, 4, 4)
        ref = reference("D3Q19", shape, tau=0.8, steps=7)
        dist = DistributedSimulation("D3Q19", shape, tau=0.8, num_ranks=4)
        rho, u = shear_wave(shape)
        dist.initialize(rho, u)
        dist.run(7)
        assert np.allclose(dist.gather(), ref, atol=1e-13)

    def test_taylor_green_distributed(self):
        shape = (16, 16, 4)
        ref = reference("D3Q19", shape, tau=0.7, steps=15, init=taylor_green)
        dist = DistributedSimulation("D3Q19", shape, tau=0.7, num_ranks=4, ghost_depth=2)
        rho, u = taylor_green(shape)
        dist.initialize(rho, u)
        dist.run(15)
        assert np.allclose(dist.gather(), ref, atol=1e-13)

    def test_steps_not_multiple_of_depth(self):
        """Runs need not align with the exchange period."""
        shape = (24, 4, 4)
        ref = reference("D3Q19", shape, tau=0.8, steps=7)
        dist = DistributedSimulation("D3Q19", shape, tau=0.8, num_ranks=2, ghost_depth=3)
        rho, u = shear_wave(shape)
        dist.initialize(rho, u)
        dist.run(7)
        assert np.allclose(dist.gather(), ref, atol=1e-13)


class TestMessageAccounting:
    def test_deep_halo_reduces_messages_d_fold(self):
        """§VI-A: 'The same amount of data is passed, but the reduction
        in number of messages allows for easier masking'."""
        shape = (48, 4, 4)
        counts, totals = {}, {}
        for depth in (1, 2, 3):
            dist = DistributedSimulation(
                "D3Q19", shape, tau=0.8, num_ranks=4, ghost_depth=depth
            )
            rho, u = shear_wave(shape)
            dist.initialize(rho, u)
            dist.run(12)
            counts[depth] = dist.message_count()
            totals[depth] = dist.total_comm_bytes()
        assert counts[1] == 2 * counts[2] == 3 * counts[3]
        # same bytes per macro-cycle
        assert totals[1] == totals[2] == totals[3]

    def test_message_bytes_match_halo_geometry(self, q39):
        shape = (24, 5, 6)
        dist = DistributedSimulation("D3Q39", shape, tau=0.8, num_ranks=2, ghost_depth=1)
        rho, u = shear_wave(shape)
        dist.initialize(rho, u)
        dist.run(1)
        # one exchange: 2 ranks x 2 directions = 4 messages of k*area*Q*8
        assert dist.message_count() == 4
        expected = 4 * 3 * 5 * 6 * 39 * 8
        assert dist.total_comm_bytes() == expected

    def test_exchange_count(self):
        dist = DistributedSimulation("D3Q19", (24, 4, 4), tau=0.8, num_ranks=2, ghost_depth=2)
        rho, u = shear_wave((24, 4, 4))
        dist.initialize(rho, u)
        dist.run(8)
        assert dist.exchange_count == 4

    def test_no_pending_messages_after_run(self):
        dist = DistributedSimulation("D3Q19", (16, 4, 4), tau=0.8, num_ranks=4)
        rho, u = shear_wave((16, 4, 4))
        dist.initialize(rho, u)
        dist.run(5)
        assert dist.mpi.pending_messages() == 0


class TestValidation:
    def test_rejects_thin_subdomains(self):
        # D3Q39 depth 2 needs 6 planes/rank; 16/4 = 4 planes
        with pytest.raises(DecompositionError):
            DistributedSimulation("D3Q39", (16, 4, 4), num_ranks=4, ghost_depth=2)

    def test_rejects_non_3d(self):
        with pytest.raises(DecompositionError):
            DistributedSimulation("D3Q19", (16, 16), num_ranks=2)

    def test_gather_shape(self):
        dist = DistributedSimulation("D3Q19", (10, 3, 4), tau=0.8, num_ranks=2)
        rho, u = shear_wave((10, 3, 4))
        dist.initialize(rho, u)
        assert dist.gather().shape == (19, 10, 3, 4)
