"""Tests for deep-halo slab management."""

import numpy as np
import pytest

from repro.errors import HaloValidityError
from repro.parallel import HaloSlab, HaloSpec


class TestHaloSpec:
    def test_width(self):
        assert HaloSpec(k=1, depth=3).width == 3
        assert HaloSpec(k=3, depth=2).width == 6

    def test_for_lattice(self, q19, q39):
        assert HaloSpec.for_lattice(q19, 2).width == 2
        # D3Q39's fundamental thickness is k=3 planes
        assert HaloSpec.for_lattice(q39, 2).width == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            HaloSpec(k=0, depth=1)
        with pytest.raises(ValueError):
            HaloSpec(k=1, depth=0)


class TestHaloSlab:
    def _slab(self, q19, local=8, depth=2):
        return HaloSlab(q19, local, 4, 4, HaloSpec.for_lattice(q19, depth))

    def test_padded_shape(self, q19):
        slab = self._slab(q19, local=8, depth=2)
        assert slab.data.shape == (19, 12, 4, 4)
        assert slab.interior == slice(2, 10)

    def test_too_thin_subdomain_rejected(self, q19):
        with pytest.raises(HaloValidityError):
            HaloSlab(q19, 2, 4, 4, HaloSpec(k=1, depth=3))

    def test_pack_shapes(self, q19):
        slab = self._slab(q19)
        assert slab.pack_to_left().shape == (19, 2, 4, 4)
        assert slab.pack_to_right().shape == (19, 2, 4, 4)

    def test_pack_reads_interior_borders(self, q19):
        slab = self._slab(q19, local=6, depth=1)
        slab.interior_view()[...] = np.arange(6)[None, :, None, None]
        assert (slab.pack_to_left()[:, 0] == 0).all()
        assert (slab.pack_to_right()[:, 0] == 5).all()

    def test_unpack_fills_ghosts(self, q19):
        slab = self._slab(q19, depth=1)
        payload = np.full((19, 1, 4, 4), 3.5)
        slab.unpack_from_left(payload)
        assert (slab.data[:, :1] == 3.5).all()
        slab.unpack_from_right(payload * 2)
        assert (slab.data[:, -1:] == 7.0).all()

    def test_unpack_shape_checked(self, q19):
        slab = self._slab(q19, depth=2)
        with pytest.raises(HaloValidityError, match="payload"):
            slab.unpack_from_left(np.zeros((19, 1, 4, 4)))

    def test_validity_lifecycle(self, q19):
        slab = self._slab(q19, depth=3)
        assert slab.validity == 0
        with pytest.raises(HaloValidityError, match="exhausted"):
            slab.consume_step()
        slab.mark_exchanged()
        assert slab.validity == 3
        assert slab.steps_until_exchange == 3
        for expected in (2, 1, 0):
            slab.consume_step()
            assert slab.validity == expected
        with pytest.raises(HaloValidityError):
            slab.consume_step()

    def test_compute_window_tracks_validity(self, q19):
        slab = self._slab(q19, local=8, depth=2)
        slab.mark_exchanged()
        slab.consume_step()
        assert slab.compute_window() == slice(1, 11)
        slab.consume_step()
        assert slab.compute_window() == slice(2, 10)

    def test_d3q39_consumes_three_planes_per_step(self, q39):
        slab = HaloSlab(q39, 12, 3, 3, HaloSpec.for_lattice(q39, 2))
        slab.mark_exchanged()
        assert slab.validity == 6
        slab.consume_step()
        assert slab.validity == 3
        assert slab.steps_until_exchange == 1


class TestDtypePolicy:
    def test_default_is_float64(self, q19):
        slab = HaloSlab(q19, 8, 4, 4, HaloSpec.for_lattice(q19, 1))
        assert slab.dtype == np.float64
        assert slab.data.dtype == np.float64

    def test_float32_sizes_every_buffer(self, q19):
        slab = HaloSlab(q19, 8, 4, 4, HaloSpec.for_lattice(q19, 2), dtype="float32")
        assert slab.data.dtype == np.float32
        assert slab.scratch.dtype == np.float32
        assert slab.pack_to_left().dtype == np.float32
        assert slab.recv_from_left.dtype == np.float32
        assert slab.recv_from_right.dtype == np.float32

    def test_unsupported_dtype_rejected(self, q19):
        from repro.errors import LatticeError

        with pytest.raises(LatticeError, match="unsupported"):
            HaloSlab(q19, 8, 4, 4, HaloSpec.for_lattice(q19, 1), dtype="float16")

    def test_payload_dtype_mismatch_rejected(self, q19):
        slab = HaloSlab(q19, 8, 4, 4, HaloSpec.for_lattice(q19, 1), dtype="float32")
        with pytest.raises(HaloValidityError, match="dtype"):
            slab.unpack_from_left(np.zeros((19, 1, 4, 4)))  # float64

    def test_scratch_is_lazy(self, q19):
        """The planned slab path never streams through scratch; the
        double-buffer must not cost memory until the legacy path asks."""
        slab = HaloSlab(q19, 8, 4, 4, HaloSpec.for_lattice(q19, 1))
        assert slab._scratch is None
        _ = slab.scratch
        assert slab._scratch is not None


class TestPackBuffers:
    def test_packs_are_contiguous_copies_with_honest_nbytes(self, q19):
        """A pack must be a stable contiguous buffer whose nbytes is
        exactly the wire payload — not a strided view of live data."""
        spec = HaloSpec.for_lattice(q19, 2)
        slab = HaloSlab(q19, 8, 4, 4, spec, dtype="float32")
        for payload in (slab.pack_to_left(), slab.pack_to_right()):
            assert payload.flags.c_contiguous
            assert payload.base is not slab.data
            assert payload.nbytes == 19 * spec.width * 4 * 4 * 4

    def test_pack_is_decoupled_from_later_mutation(self, q19):
        """Mutating slab.data after packing must not change the payload
        (the exchange sends pack buffers by reference, copy=False)."""
        slab = HaloSlab(q19, 6, 4, 4, HaloSpec.for_lattice(q19, 1))
        slab.interior_view()[...] = np.arange(6)[None, :, None, None]
        payload = slab.pack_to_right()
        assert (payload == 5).all()
        slab.interior_view()[...] = -1.0
        assert (payload == 5).all()

    def test_pack_to_right_reads_last_interior_planes(self, q19):
        """Regression for the dead arithmetic `width + local - width`:
        the right pack is the last `width` interior planes for any
        width, including width > 1."""
        spec = HaloSpec.for_lattice(q19, 3)  # width 3
        slab = HaloSlab(q19, 8, 2, 2, spec)
        slab.interior_view()[...] = np.arange(8)[None, :, None, None]
        assert (slab.pack_to_right()[:, :, 0, 0] == np.array([5, 6, 7])).all()
        assert (slab.pack_to_left()[:, :, 0, 0] == np.array([0, 1, 2])).all()
