"""Tests for the 1-D slab decomposition."""

import pytest

from repro.errors import DecompositionError
from repro.parallel import Slab1D


class TestBalancedSplit:
    def test_even_split(self):
        d = Slab1D(12, 4)
        assert [d.local_size(r) for r in range(4)] == [3, 3, 3, 3]

    def test_remainder_goes_to_first_ranks(self):
        d = Slab1D(14, 4)
        assert [d.local_size(r) for r in range(4)] == [4, 4, 3, 3]

    def test_sizes_sum_to_global(self):
        for nx, ranks in ((17, 5), (100, 7), (8, 8)):
            d = Slab1D(nx, ranks)
            assert sum(d.local_size(r) for r in range(ranks)) == nx

    def test_ranges_are_contiguous(self):
        d = Slab1D(23, 6)
        for r in range(5):
            assert d.stop(r) == d.start(r + 1)
        assert d.start(0) == 0 and d.stop(5) == 23

    def test_owner(self):
        d = Slab1D(10, 3)
        for x in range(10):
            r = d.owner(x)
            assert d.start(r) <= x < d.stop(r)

    def test_owner_out_of_range(self):
        with pytest.raises(DecompositionError):
            Slab1D(10, 2).owner(10)


class TestNeighbors:
    def test_periodic_ring(self):
        d = Slab1D(12, 4)
        assert d.left_neighbor(0) == 3
        assert d.right_neighbor(3) == 0
        assert d.right_neighbor(1) == 2

    def test_single_rank_self_neighbor(self):
        d = Slab1D(8, 1)
        assert d.left_neighbor(0) == 0
        assert d.right_neighbor(0) == 0


class TestValidation:
    def test_too_many_ranks(self):
        with pytest.raises(DecompositionError):
            Slab1D(3, 4)

    def test_zero_ranks(self):
        with pytest.raises(DecompositionError):
            Slab1D(10, 0)

    def test_rank_range_checked(self):
        d = Slab1D(10, 2)
        with pytest.raises(DecompositionError):
            d.local_size(2)

    def test_validate_halo_ok(self):
        Slab1D(16, 4).validate_halo(4)

    def test_validate_halo_too_wide(self):
        with pytest.raises(DecompositionError, match="halo width"):
            Slab1D(16, 4).validate_halo(5)

    def test_validate_halo_uses_smallest_rank(self):
        # 4,4,3,3 split: halo 4 exceeds the size-3 subdomains
        with pytest.raises(DecompositionError):
            Slab1D(14, 4).validate_halo(4)
