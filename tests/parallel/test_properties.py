"""Property-based tests: the distributed solver is exact for *any*
valid (shape, ranks, depth, schedule) configuration."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core import Simulation, shear_wave
from repro.parallel import DistributedSimulation, ExchangeSchedule


@st.composite
def distributed_configs(draw):
    lname = draw(st.sampled_from(["D3Q19", "D3Q39"]))
    k = 1 if lname == "D3Q19" else 3
    ranks = draw(st.integers(1, 4))
    depth = draw(st.integers(1, 3))
    # every rank needs at least depth*k planes
    min_nx = ranks * depth * k
    nx = draw(st.integers(min_nx, min_nx + 12))
    ny = draw(st.integers(3, 5))
    nz = draw(st.integers(3, 5))
    steps = draw(st.integers(1, 7))
    schedule = draw(st.sampled_from(list(ExchangeSchedule)))
    return lname, (nx, ny, nz), ranks, depth, steps, schedule


@given(cfg=distributed_configs())
@settings(max_examples=25, deadline=None)
def test_distributed_always_matches_reference(cfg):
    lname, shape, ranks, depth, steps, schedule = cfg
    ref = Simulation(lname, shape, tau=0.8)
    rho, u = shear_wave(shape, amplitude=1e-3)
    ref.initialize(rho, u)
    ref.run(steps)

    dist = DistributedSimulation(
        lname, shape, tau=0.8, num_ranks=ranks, ghost_depth=depth, schedule=schedule
    )
    dist.initialize(rho, u)
    dist.run(steps)
    assert np.allclose(dist.gather(), ref.f, atol=1e-12)


@given(cfg=distributed_configs())
@settings(max_examples=15, deadline=None)
def test_mass_conserved_distributed(cfg):
    lname, shape, ranks, depth, steps, schedule = cfg
    dist = DistributedSimulation(
        lname, shape, tau=0.9, num_ranks=ranks, ghost_depth=depth, schedule=schedule
    )
    rho, u = shear_wave(shape, amplitude=1e-3)
    dist.initialize(rho, u)
    m0 = dist.gather().sum()
    dist.run(steps)
    assert dist.gather().sum() == np.float64(m0) or abs(
        dist.gather().sum() - m0
    ) < 1e-9 * abs(m0)
