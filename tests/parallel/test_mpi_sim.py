"""Tests for the simulated MPI fabric."""

import numpy as np
import pytest

from repro.parallel import SimMPI


class TestPointToPoint:
    def test_send_then_recv(self):
        mpi = SimMPI(2)
        payload = np.arange(5.0)
        mpi.isend(0, 1, tag=7, payload=payload)
        req = mpi.irecv(1, source=0, tag=7)
        mpi.waitall([req])
        assert np.array_equal(req.data, payload)

    def test_payload_copied_on_send(self):
        """Value semantics: later mutation must not reach the receiver."""
        mpi = SimMPI(2)
        payload = np.zeros(3)
        mpi.isend(0, 1, tag=1, payload=payload)
        payload[:] = 99.0
        req = mpi.irecv(1, source=0, tag=1)
        mpi.waitall([req])
        assert (req.data == 0.0).all()

    def test_fifo_per_channel(self):
        """MPI non-overtaking rule: same (src, dst, tag) is FIFO."""
        mpi = SimMPI(2)
        mpi.isend(0, 1, tag=5, payload=np.array([1.0]))
        mpi.isend(0, 1, tag=5, payload=np.array([2.0]))
        r1 = mpi.irecv(1, 0, tag=5)
        r2 = mpi.irecv(1, 0, tag=5)
        mpi.waitall([r1, r2])
        assert r1.data[0] == 1.0 and r2.data[0] == 2.0

    def test_tags_are_independent_channels(self):
        mpi = SimMPI(2)
        mpi.isend(0, 1, tag=2, payload=np.array([20.0]))
        mpi.isend(0, 1, tag=1, payload=np.array([10.0]))
        r = mpi.irecv(1, 0, tag=1)
        mpi.waitall([r])
        assert r.data[0] == 10.0

    def test_unmatched_recv_raises_deadlock(self):
        mpi = SimMPI(2)
        req = mpi.irecv(1, 0, tag=3)
        with pytest.raises(RuntimeError, match="deadlock"):
            mpi.waitall([req])

    def test_rank_bounds_checked(self):
        mpi = SimMPI(2)
        with pytest.raises(ValueError, match="rank"):
            mpi.isend(0, 2, tag=1, payload=np.zeros(1))
        with pytest.raises(ValueError, match="rank"):
            mpi.irecv(-1, 0, tag=1)

    def test_sendrecv_helper(self):
        mpi = SimMPI(3)
        mpi.isend(2, 1, tag=9, payload=np.array([5.0]))
        got = mpi.sendrecv(1, dest=0, send_payload=np.array([1.0]), source=2, tag=9)
        assert got[0] == 5.0

    def test_single_rank_fabric(self):
        mpi = SimMPI(1)
        mpi.isend(0, 0, tag=1, payload=np.array([3.0]))
        req = mpi.irecv(0, 0, tag=1)
        mpi.waitall([req])
        assert req.data[0] == 3.0

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            SimMPI(0)


class TestBufferedPath:
    """The zero-allocation exchange contract: stable-buffer sends and
    preallocated receive buffers (MPI_Isend/MPI_Irecv semantics)."""

    def test_recv_into_buffer(self):
        mpi = SimMPI(2)
        mpi.isend(0, 1, tag=4, payload=np.arange(6.0).reshape(2, 3))
        buf = np.empty((2, 3))
        req = mpi.irecv(1, 0, tag=4, buffer=buf)
        mpi.waitall([req])
        assert req.data is buf
        assert np.array_equal(buf, np.arange(6.0).reshape(2, 3))

    def test_buffer_mismatch_raises(self):
        mpi = SimMPI(2)
        mpi.isend(0, 1, tag=4, payload=np.zeros((2, 3)))
        req = mpi.irecv(1, 0, tag=4, buffer=np.empty((3, 2)))
        with pytest.raises(ValueError, match="does not match"):
            mpi.waitall([req])
        mpi.isend(0, 1, tag=5, payload=np.zeros(3, dtype=np.float64))
        req = mpi.irecv(1, 0, tag=5, buffer=np.empty(3, dtype=np.float32))
        with pytest.raises(ValueError, match="does not match"):
            mpi.waitall([req])

    def test_nocopy_send_enqueues_reference(self):
        """copy=False hands the fabric the caller's buffer: mutations
        before the receive ARE visible — the caller promises stability
        (which the halo pack buffers provide)."""
        mpi = SimMPI(2)
        payload = np.zeros(3)
        mpi.isend(0, 1, tag=1, payload=payload, copy=False)
        payload[:] = 7.0
        req = mpi.irecv(1, 0, tag=1)
        mpi.waitall([req])
        assert (req.data == 7.0).all()

    def test_nocopy_send_same_ledger_bytes(self):
        mpi = SimMPI(2)
        mpi.isend(0, 1, tag=1, payload=np.zeros(10, dtype=np.float32), copy=False)
        mpi.isend(0, 1, tag=1, payload=np.zeros(10, dtype=np.float32), copy=True)
        a, b = mpi.ledger.records
        assert a.nbytes == b.nbytes == 40


class TestLedger:
    def test_counts_and_bytes(self):
        mpi = SimMPI(2)
        mpi.isend(0, 1, tag=1, payload=np.zeros(10))
        mpi.isend(1, 0, tag=1, payload=np.zeros(4, dtype=np.float64))
        assert mpi.ledger.message_count == 2
        assert mpi.ledger.total_bytes == 14 * 8

    def test_step_clock_stamps_records(self):
        mpi = SimMPI(2)
        mpi.step_clock = 7
        mpi.isend(0, 1, tag=1, payload=np.zeros(1))
        assert mpi.ledger.records[0].step == 7
        assert mpi.ledger.messages_by_step() == {7: 1}

    def test_bytes_by_rank(self):
        mpi = SimMPI(3)
        mpi.isend(0, 1, tag=1, payload=np.zeros(2))
        mpi.isend(0, 2, tag=1, payload=np.zeros(3))
        per_rank = mpi.ledger.bytes_by_rank(3)
        assert per_rank.tolist() == [40, 0, 0]

    def test_pending_messages(self):
        mpi = SimMPI(2)
        assert mpi.pending_messages() == 0
        mpi.isend(0, 1, tag=1, payload=np.zeros(1))
        assert mpi.pending_messages() == 1
        req = mpi.irecv(1, 0, tag=1)
        mpi.waitall([req])
        assert mpi.pending_messages() == 0
