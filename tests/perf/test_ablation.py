"""Tests for the cost-model ablations."""


from repro.perf import (
    ablate_depth_consolidation,
    ablate_gc_split_overlap,
    ablate_simd_lanes,
    run_all_ablations,
)


class TestAblations:
    def test_depth_consolidation_is_load_bearing(self):
        """Without consolidated waits the Fig. 10 crossover vanishes."""
        result = ablate_depth_consolidation()
        assert result.baseline >= 2  # deep halo optimal at 133k
        assert result.ablated == 1  # collapses without the mechanism

    def test_gc_split_overlap_costs_throughput(self):
        result = ablate_gc_split_overlap()
        assert result.ablated < result.baseline
        assert result.change < -0.005

    def test_simd_ablation_rebinds_flop_roofline(self):
        """Forcing scalar issue at the top of the ladder makes the flop
        term bind again and costs measurable throughput.  (The paper's
        'cut in half' refers to the pre-tuning potential; at the fully
        tuned state the memory roofline limits the visible loss.)"""
        result = ablate_simd_lanes()
        assert result.ablated < result.baseline
        assert result.change < -0.05

    def test_run_all(self):
        results = run_all_ablations()
        assert len(results) == 3
        assert all(r.conclusion for r in results)

    def test_cost_model_unpatched_after_ablation(self):
        """The monkey-patched step_breakdown must be restored."""
        import repro.perf.cost_model as cm

        before = cm.CostModel.step_breakdown
        ablate_depth_consolidation()
        assert cm.CostModel.step_breakdown is before
