"""The fitted performance model (repro.perf.model).

Fits are exercised against the *committed* BENCH_PR3–PR5 history — the
same records `repro perf-model fit` consumes — so these tests double as
a round-trip check that the calibration reproduces the measurements it
was fitted from.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.perf.model import (
    FittedPerfModel,
    MeasuredSample,
    PerfModelError,
    calibration_path,
    fit,
    fit_samples,
    load_calibration,
    samples_from_bench,
    samples_from_events,
    save_calibration,
)

REPO = Path(__file__).resolve().parents[2]
BENCH_PATHS = [REPO / f"BENCH_PR{n}.json" for n in (3, 4, 5)]


def bench_samples():
    samples = []
    for path in BENCH_PATHS:
        found, skipped = samples_from_bench(
            json.loads(path.read_text()), source=path.name
        )
        assert skipped == 0, f"{path.name} rows should all be attributable"
        samples.extend(found)
    return samples


@pytest.fixture(scope="module")
def history_model():
    return fit_samples(bench_samples(), host="fit-host")


class TestSampleExtraction:
    def test_committed_history_yields_samples(self):
        samples = bench_samples()
        # 4 rows in PR3, 10 in PR4, 16 in PR5 (2 non-throughput rows).
        assert len(samples) == 30
        kernels = {s.kernel for s in samples}
        assert kernels == {"roll", "fused-gather", "planned", "legacy"}
        assert all(s.mflups > 0 for s in samples)
        # Committed records predate host stamping (schema <= 3).
        assert all(s.host is None for s in samples)

    def test_legacy_class_names_map_to_registry_names(self):
        record = {
            "kernels": {
                "test_kernel_throughput[RollKernel-D3Q19]": {"mflups": 2.5},
                "test_kernel_throughput[FusedGatherKernel-D3Q39]": {"mflups": 0.8},
            }
        }
        samples, skipped = samples_from_bench(record)
        assert skipped == 0
        assert {(s.kernel, s.lattice) for s in samples} == {
            ("roll", "D3Q19"),
            ("fused-gather", "D3Q39"),
        }

    def test_unattributable_rows_are_skipped_not_fatal(self):
        record = {
            "kernels": {
                "test_kernel_throughput[MysteryKernel-noQ]": {"mflups": 1.0},
                "test_kernel_throughput[roll-D3Q19]": {
                    "mflups": 2.0,
                    "kernel": "roll",
                },
                "test_flop_ratio": {"measured_ratio": 2.4},
            }
        }
        samples, skipped = samples_from_bench(record)
        assert skipped == 1  # the mystery row; the ratio row isn't throughput
        assert len(samples) == 1

    def test_schema4_host_is_carried(self):
        record = {
            "host": "bench-host",
            "kernels": {
                "test_kernel_throughput[roll-float64-D3Q19]": {
                    "mflups": 2.0,
                    "kernel": "roll",
                    "dtype": "float64",
                }
            },
        }
        samples, _ = samples_from_bench(record)
        assert samples[0].host == "bench-host"

    def test_events_only_measured_verdicts_feed_the_fit(self):
        events = [
            {
                "type": "event",
                "name": "kernel.auto",
                "attrs": {
                    "provenance": "measured",
                    "lattice": "D3Q19",
                    "dtype": "float64",
                    "mflups": {"roll": 2.5, "planned": 6.0},
                },
            },
            {
                "type": "event",
                "name": "kernel.auto",
                "attrs": {
                    "provenance": "cached",
                    "lattice": "D3Q19",
                    "dtype": "float64",
                    "mflups": {"roll": 2.5},
                },
            },
            {
                "type": "event",
                "name": "kernel.auto",
                "attrs": {
                    "provenance": "model",
                    "lattice": "D3Q19",
                    "dtype": "float64",
                    "mflups": {"planned": 6.0},
                },
            },
            {"type": "span", "name": "kernel.auto.race", "seconds": 0.1},
        ]
        samples = samples_from_events(events)
        assert len(samples) == 2  # one per raced candidate, measured only
        assert {s.kernel for s in samples} == {"roll", "planned"}


class TestFit:
    def test_round_trip_within_tolerance(self, history_model):
        """Every measured row predicts back within run-to-run noise.

        The fitted entry is the group mean, so each sample must sit
        within the group's observed spread; 30% is well above the
        largest spread in the committed history (~8%) while still tight
        enough to catch a mis-keyed fit (cross-kernel errors are 2x+).
        """
        for sample in bench_samples():
            predicted = history_model.predict_mflups(
                sample.kernel,
                sample.lattice,
                sample.dtype,
                ranks=2 if sample.mode == "distributed" else 1,
            )
            assert predicted == pytest.approx(sample.mflups, rel=0.30), sample

    def test_exact_cells_reproduce_group_means(self, history_model):
        entry = next(
            e
            for e in history_model.entries
            if e.key == ("planned", "single", "float64", "D3Q19")
        )
        predicted = history_model.predict_mflups("planned", "D3Q19", "float64")
        assert predicted == pytest.approx(entry.mflups, rel=1e-12)

    def test_unknown_kernel_predicts_nan(self, history_model):
        assert math.isnan(history_model.predict_mflups("naive", "D3Q19"))

    def test_pooled_fallback_scales_by_bytes_per_cell(self, history_model):
        """fused-gather was never measured at float32: the prediction
        pools the float64 fits and rescales along the roofline's B(Q)."""
        prediction = history_model.predict("fused-gather", "D3Q19", "float32")
        assert prediction is not None
        assert prediction.level == "kernel"
        f64 = history_model.predict_mflups("fused-gather", "D3Q19", "float64")
        # Halving B should roughly double the bandwidth-bound rate.
        assert prediction.mflups > f64

    def test_distributed_mode_is_separate(self, history_model):
        single = history_model.predict_mflups("planned", "D3Q19", "float64")
        dist = history_model.predict_mflups("planned", "D3Q19", "float64", ranks=4)
        assert single != dist  # halo overhead fits differently

    def test_other_hosts_samples_are_excluded(self):
        mine = MeasuredSample("roll", "D3Q19", "float64", 2.0, host="me")
        theirs = MeasuredSample("roll", "D3Q19", "float64", 9.0, host="them")
        legacy = MeasuredSample("roll", "D3Q19", "float64", 2.2, host=None)
        model = fit_samples([mine, theirs, legacy], host="me")
        assert model.skipped == 1
        assert model.predict_mflups("roll", "D3Q19") == pytest.approx(2.1)

    def test_fit_from_files_and_empty_error(self, tmp_path):
        model = fit(BENCH_PATHS, host="h")
        assert model.entries
        assert model.sources == tuple(p.name for p in BENCH_PATHS)
        with pytest.raises(PerfModelError, match="no usable"):
            empty = tmp_path / "empty.json"
            empty.write_text('{"kernels": {}}')
            fit([empty], host="h")

    def test_predict_case_seconds_scales_with_work(self, history_model):
        one = history_model.predict_case_seconds(
            "planned", "D3Q19", "float64", (16, 16, 16), 100
        )
        four = history_model.predict_case_seconds(
            "planned", "D3Q19", "float64", (16, 16, 16), 400
        )
        assert four == pytest.approx(4 * one)
        assert math.isnan(
            history_model.predict_case_seconds(
                "naive", "D3Q19", "float64", (16, 16, 16), 100
            )
        )

    def test_rank_kernels_orders_the_ladder(self, history_model):
        rates = history_model.rank_kernels(
            ("roll", "fused-gather", "planned"), "D3Q19", "float64"
        )
        # The committed history's single-node ladder: planned on top.
        assert max(rates, key=rates.get) == "planned"
        assert rates["planned"] > rates["roll"]


class TestPersistence:
    def test_save_load_round_trip(self, history_model, tmp_path):
        path = save_calibration(history_model, tmp_path / "cal.json")
        loaded = load_calibration(path)
        assert loaded is not None
        assert loaded.entries == history_model.entries
        assert loaded.host == history_model.host

    def test_default_path_is_host_keyed_under_cache_dir(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        path = calibration_path("node-7")
        assert path == tmp_path / "perf-model" / "node-7.json"

    def test_missing_and_corrupt_read_as_absent(self, tmp_path):
        assert load_calibration(tmp_path / "nope.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_calibration(bad) is None
        wrong_schema = tmp_path / "schema.json"
        wrong_schema.write_text('{"schema": 99, "entries": []}')
        assert load_calibration(wrong_schema) is None

    def test_host_filter_on_load(self, history_model, tmp_path):
        path = save_calibration(history_model, tmp_path / "cal.json")
        assert load_calibration(path, host="someone-else") is None
        assert load_calibration(path, host=history_model.host) is not None

    def test_from_json_rejects_wrong_schema_loudly(self):
        with pytest.raises(PerfModelError, match="schema"):
            FittedPerfModel.from_json({"schema": 99})

    def test_fit_from_telemetry_run(self, tmp_path):
        """A telemetry directory's measured verdicts are fit input."""
        events = [
            {"type": "meta", "name": "process.start"},
            {
                "type": "event",
                "name": "kernel.auto",
                "attrs": {
                    "provenance": "measured",
                    "lattice": "D3Q19",
                    "dtype": "float64",
                    "mflups": {"roll": 2.5, "planned": 6.0},
                },
            },
        ]
        run = tmp_path / "telemetry"
        run.mkdir()
        (run / "events-p1.jsonl").write_text(
            "\n".join(json.dumps(e) for e in events) + "\n"
        )
        model = fit((), telemetry_roots=[run], host="h")
        assert model.predict_mflups("planned", "D3Q19") == pytest.approx(6.0)


class TestAutoResolution:
    """kernel='auto' resolves from the calibration without timing."""

    @pytest.fixture
    def calibrated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_PERF_MODEL", raising=False)
        model = fit_samples(bench_samples())  # host defaults to this node
        save_calibration(model)
        return model

    @staticmethod
    def _no_clock():
        raise AssertionError("timing clock read: a measurement race ran")

    def test_model_resolves_without_measurement(self, calibrated, q19):
        from repro.core.plan import auto_select_kernel
        from repro.telemetry.recorder import (
            NULL_TELEMETRY,
            Telemetry,
            set_telemetry,
        )

        recorder = Telemetry.in_memory()
        set_telemetry(recorder)
        try:
            winner = auto_select_kernel(
                q19, (8, 8, 8), tau=0.8, clock=self._no_clock
            )
        finally:
            set_telemetry(NULL_TELEMETRY)
        assert winner.auto_provenance == "model"
        events = recorder.events()
        spans = [e for e in events if e.get("type") == "span"]
        assert spans == []  # acceptance: no measurement spans at all
        (verdict,) = [e for e in events if e.get("name") == "kernel.auto"]
        assert verdict["attrs"]["provenance"] == "model"
        assert winner.name in verdict["attrs"]["mflups"]

    def test_model_agrees_with_measurement_on_d3q19_float64(
        self, calibrated, q19
    ):
        """The ISSUE's winner-agreement cell: the model's pick matches
        an actual timing race on (D3Q19, float64)."""
        from repro.core.plan import auto_select_kernel, model_select_kernel

        predicted = model_select_kernel(q19, (16, 16, 16), tau=0.8)
        assert predicted is not None
        measured = auto_select_kernel(
            q19, (16, 16, 16), tau=0.8, model=False, cache=False, trials=4
        )
        assert predicted.name == measured.name

    def test_partial_coverage_falls_through_to_race(self, calibrated, q19):
        from repro.core.plan import model_select_kernel

        # naive was never benchmarked: a candidate set including it is
        # not fully covered, so the model refuses to crown a winner.
        assert (
            model_select_kernel(
                q19, (8, 8, 8), tau=0.8, candidates=("naive", "planned")
            )
            is None
        )

    def test_env_disable_skips_the_model(self, calibrated, q19, monkeypatch):
        from repro.core.plan import auto_select_kernel

        monkeypatch.setenv("REPRO_NO_PERF_MODEL", "1")
        winner = auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache=False)
        assert winner.auto_provenance == "measured"

    def test_race_emits_span_and_measured_verdict(self, tmp_path, monkeypatch, q19):
        from repro.core.plan import auto_select_kernel
        from repro.telemetry.recorder import (
            NULL_TELEMETRY,
            Telemetry,
            set_telemetry,
        )

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))  # no model
        recorder = Telemetry.in_memory()
        set_telemetry(recorder)
        try:
            auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache=False)
        finally:
            set_telemetry(NULL_TELEMETRY)
        events = recorder.events()
        assert [e["name"] for e in events if e.get("type") == "span"] == [
            "kernel.auto.race"
        ]
        (verdict,) = [e for e in events if e.get("name") == "kernel.auto"]
        assert verdict["attrs"]["provenance"] == "measured"
