"""Tests for the mechanistic step cost model."""

import pytest

from repro.errors import DecompositionError, OutOfMemoryModelError
from repro.lattice import get_lattice
from repro.machine import BLUE_GENE_P, BLUE_GENE_Q
from repro.perf import CostModel, Placement, Workload, base_params


@pytest.fixture
def q19_model():
    return CostModel(BLUE_GENE_P, get_lattice("D3Q19"))


@pytest.fixture
def params():
    return base_params(BLUE_GENE_P, get_lattice("D3Q19"))


@pytest.fixture
def workload():
    return Workload(get_lattice("D3Q19"), (512, 64, 64), steps=100)


class TestCapabilities:
    def test_bandwidth_saturation_monotone_in_threads(self, q19_model, params):
        sats = [
            q19_model.bandwidth_saturation(Placement(1, 1, t)) for t in (1, 2, 3, 4)
        ]
        assert sats == sorted(sats)
        assert sats[0] == pytest.approx(0.45)
        # 4 threads saturate (up to the small OpenMP team overhead)
        assert sats[-1] == pytest.approx(1.0, abs=0.01)

    def test_bgq_needs_many_threads(self):
        model = CostModel(BLUE_GENE_Q, get_lattice("D3Q19"))
        assert model.bandwidth_saturation(Placement(1, 1, 1)) < 0.1
        assert model.bandwidth_saturation(Placement(1, 32, 1)) == pytest.approx(1.0)

    def test_omp_efficiency_decreasing(self, q19_model):
        effs = [q19_model.omp_efficiency(t) for t in (1, 4, 16, 64)]
        assert effs[0] == 1.0
        assert effs == sorted(effs, reverse=True)
        assert effs[-1] < 0.5  # 64-thread teams are expensive

    def test_simd_capped_by_machine_width(self, q19_model, params):
        wide = params.replace(simd_lanes_used=8.0)
        narrow = params.replace(simd_lanes_used=2.0)
        assert q19_model.node_flops(wide, Placement(1, 4, 1)) == q19_model.node_flops(
            narrow, Placement(1, 4, 1)
        )


class TestStepBreakdown:
    def test_all_phases_nonnegative(self, q19_model, params, workload):
        b = q19_model.step_breakdown(params, workload, Placement(8, 4, 1))
        for field in ("compute_s", "ghost_s", "pack_s", "comm_exposed_s", "sync_s"):
            assert getattr(b, field) >= 0
        assert b.total_s > 0
        assert 0 <= b.comm_fraction < 1

    def test_compute_dominates_for_large_slabs(self, q19_model, params, workload):
        b = q19_model.step_breakdown(params, workload, Placement(8, 4, 1))
        assert b.compute_s > 0.5 * b.total_s

    def test_deeper_halo_more_ghost_work(self, q19_model, params, workload):
        b1 = q19_model.step_breakdown(params, workload, Placement(8, 4, 1), ghost_depth=1)
        b3 = q19_model.step_breakdown(params, workload, Placement(8, 4, 1), ghost_depth=3)
        assert b3.ghost_s > b1.ghost_s

    def test_deeper_halo_less_sync(self, q19_model, params, workload):
        p = params.replace(ghost_depth=1)
        b1 = q19_model.step_breakdown(p, workload, Placement(8, 4, 1), ghost_depth=1)
        b4 = q19_model.step_breakdown(p, workload, Placement(8, 4, 1), ghost_depth=4)
        assert b4.sync_s < b1.sync_s

    def test_better_bandwidth_fraction_is_faster(self, q19_model, params, workload):
        fast = params.replace(bandwidth_fraction=0.9, issue_fraction=0.9)
        slow = params.replace(bandwidth_fraction=0.3)
        t_fast = q19_model.step_breakdown(fast, workload, Placement(8, 4, 1)).total_s
        t_slow = q19_model.step_breakdown(slow, workload, Placement(8, 4, 1)).total_s
        assert t_fast < t_slow

    def test_mflups_scale_with_nodes(self, q19_model, params):
        wl = Workload(get_lattice("D3Q19"), (1024, 64, 64))
        a = q19_model.mflups_aggregate(params, wl, Placement(8, 4, 1))
        b = q19_model.mflups_aggregate(params, wl, Placement(16, 4, 1))
        assert b > a  # strong scaling helps (fewer cells per node)

    def test_memory_check(self, q19_model, params):
        wl = Workload(get_lattice("D3Q19"), (4096, 512, 512))
        with pytest.raises(OutOfMemoryModelError):
            q19_model.step_breakdown(
                params, wl, Placement(2, 4, 1), ghost_depth=1, check_memory=True
            )

    def test_decomposition_check(self, q19_model, params):
        wl = Workload(get_lattice("D3Q19"), (8, 64, 64))
        with pytest.raises(DecompositionError):
            q19_model.step_breakdown(params, wl, Placement(8, 4, 1))

    def test_runtime_is_steps_times_step(self, q19_model, params, workload):
        b = q19_model.step_breakdown(params, workload, Placement(8, 4, 1))
        rt = q19_model.runtime_seconds(params, workload, Placement(8, 4, 1))
        assert rt == pytest.approx(b.total_s * workload.steps)


class TestLatticeContrast:
    def test_d3q39_costs_more_per_cell(self, workload):
        """The headline cost of going beyond Navier-Stokes."""
        p19 = base_params(BLUE_GENE_P, get_lattice("D3Q19"))
        p39 = base_params(BLUE_GENE_P, get_lattice("D3Q39"))
        m19 = CostModel(BLUE_GENE_P, get_lattice("D3Q19"))
        m39 = CostModel(BLUE_GENE_P, get_lattice("D3Q39"))
        wl19 = Workload(get_lattice("D3Q19"), (512, 64, 64))
        wl39 = Workload(get_lattice("D3Q39"), (512, 64, 64))
        f19 = m19.mflups_aggregate(p19, wl19, Placement(8, 4, 1))
        f39 = m39.mflups_aggregate(p39, wl39, Placement(8, 4, 1))
        assert f39 < 0.7 * f19
