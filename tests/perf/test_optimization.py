"""Tests for the optimization-ladder definition."""

import pytest

from repro.lattice import get_lattice
from repro.machine import BLUE_GENE_P, BLUE_GENE_Q
from repro.parallel.schedules import ExchangeSchedule
from repro.perf import LADDER, OptimizationLevel, base_params, effect_note, ladder_states


class TestLadderStructure:
    def test_order_matches_fig8_axis(self):
        assert [level.value for level in LADDER] == [
            "Orig",
            "GC",
            "DH",
            "CF",
            "LoBr",
            "NB-C",
            "GC_C",
            "SIMD",
        ]

    @pytest.mark.parametrize("machine", [BLUE_GENE_P, BLUE_GENE_Q])
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_eight_states(self, machine, lname):
        states = ladder_states(machine, get_lattice(lname))
        assert len(states) == 8
        assert states[0][0] is OptimizationLevel.ORIG

    def test_base_params_unknown_lattice(self):
        with pytest.raises(KeyError, match="calibration"):
            base_params(BLUE_GENE_P, get_lattice("D3Q27"))


class TestCumulativeEffects:
    @pytest.mark.parametrize("machine", [BLUE_GENE_P, BLUE_GENE_Q])
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_parameters_improve_monotonically(self, machine, lname):
        states = ladder_states(machine, get_lattice(lname))
        by_level = dict(states)
        orig = by_level[OptimizationLevel.ORIG]
        final = by_level[OptimizationLevel.SIMD]
        assert final.bandwidth_fraction > orig.bandwidth_fraction
        assert final.issue_fraction > orig.issue_fraction
        assert final.work_overhead < orig.work_overhead
        assert final.simd_lanes_used > orig.simd_lanes_used

    def test_schedule_progression(self):
        states = dict(ladder_states(BLUE_GENE_P, get_lattice("D3Q19")))
        assert states[OptimizationLevel.ORIG].schedule is ExchangeSchedule.BLOCKING
        assert states[OptimizationLevel.ORIG].ghost_depth == 0
        assert states[OptimizationLevel.GC].ghost_depth == 1
        assert (
            states[OptimizationLevel.NB_C].schedule
            is ExchangeSchedule.NONBLOCKING_GC
        )
        assert states[OptimizationLevel.GC_C].schedule is ExchangeSchedule.GC_SPLIT

    def test_dh_gain_larger_on_bgq(self):
        """'30%' on BG/P vs '75%' on BG/Q (§V-B)."""
        for lname in ("D3Q19", "D3Q39"):
            lat = get_lattice(lname)
            p_states = dict(ladder_states(BLUE_GENE_P, lat))
            q_states = dict(ladder_states(BLUE_GENE_Q, lat))
            p_gain = (
                p_states[OptimizationLevel.DH].bandwidth_fraction
                / p_states[OptimizationLevel.GC].bandwidth_fraction
            )
            q_gain = (
                q_states[OptimizationLevel.DH].bandwidth_fraction
                / q_states[OptimizationLevel.GC].bandwidth_fraction
            )
            assert q_gain > p_gain

    def test_simd_sets_two_lanes(self):
        for machine in (BLUE_GENE_P, BLUE_GENE_Q):
            states = dict(ladder_states(machine, get_lattice("D3Q19")))
            assert states[OptimizationLevel.SIMD].simd_lanes_used == 2.0

    def test_every_effect_has_provenance_note(self):
        for machine in (BLUE_GENE_P, BLUE_GENE_Q):
            for lname in ("D3Q19", "D3Q39"):
                for level in LADDER[1:]:
                    note = effect_note(machine, get_lattice(lname), level)
                    assert len(note) > 20, (machine.name, lname, level)
