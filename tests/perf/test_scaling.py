"""Tests for the strong/weak scaling predictions."""

import pytest

from repro.lattice import get_lattice
from repro.machine import BLUE_GENE_P, BLUE_GENE_Q
from repro.perf import (
    Workload,
    base_params,
    ladder_states,
    strong_scaling,
    weak_scaling,
)
from repro.perf.optimization import OptimizationLevel


@pytest.fixture
def tuned():
    lat = get_lattice("D3Q19")
    return dict(ladder_states(BLUE_GENE_Q, lat))[OptimizationLevel.SIMD]


class TestStrongScaling:
    def test_throughput_grows_with_nodes(self, tuned):
        lat = get_lattice("D3Q19")
        wl = Workload(lat, (4096, 64, 64))
        pts = strong_scaling(BLUE_GENE_Q, lat, tuned, wl, (8, 16, 32, 64), 32)
        values = [p.mflups for p in pts]
        assert values == sorted(values)

    def test_efficiency_decays(self, tuned):
        lat = get_lattice("D3Q19")
        wl = Workload(lat, (4096, 64, 64))
        pts = strong_scaling(BLUE_GENE_Q, lat, tuned, wl, (8, 16, 32, 64), 32)
        effs = [p.efficiency for p in pts]
        assert effs[0] == pytest.approx(1.0)
        assert effs == sorted(effs, reverse=True)
        assert effs[-1] < 0.95  # surface effects bite at 64 nodes

    def test_comm_fraction_grows(self, tuned):
        lat = get_lattice("D3Q19")
        wl = Workload(lat, (4096, 64, 64))
        pts = strong_scaling(BLUE_GENE_Q, lat, tuned, wl, (8, 64), 32)
        assert pts[-1].comm_fraction > pts[0].comm_fraction


class TestWeakScaling:
    def test_near_flat_efficiency(self, tuned):
        """Per-node work fixed: efficiency should stay near 1."""
        lat = get_lattice("D3Q19")
        pts = weak_scaling(
            BLUE_GENE_Q, lat, tuned, planes_per_node=512, cross_section=(64, 64),
            node_counts=(8, 32, 128), tasks_per_node=32,
        )
        for p in pts:
            assert p.efficiency > 0.9

    def test_aggregate_grows_linearly(self, tuned):
        lat = get_lattice("D3Q19")
        pts = weak_scaling(
            BLUE_GENE_Q, lat, tuned, 512, (64, 64), (8, 16), tasks_per_node=32
        )
        assert pts[1].mflups == pytest.approx(2 * pts[0].mflups, rel=0.1)

    def test_d3q39_scales_worse_than_d3q19(self):
        """k=3 halos triple the surface traffic of the extended model."""
        results = {}
        for lname in ("D3Q19", "D3Q39"):
            lat = get_lattice(lname)
            params = base_params(BLUE_GENE_P, lat)
            pts = strong_scaling(
                BLUE_GENE_P,
                lat,
                params,
                Workload(lat, (2048, 48, 48)),
                (8, 64),
                tasks_per_node=4,
            )
            results[lname] = pts[-1].efficiency
        assert results["D3Q39"] <= results["D3Q19"] + 0.02
