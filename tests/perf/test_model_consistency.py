"""Cross-consistency between the performance-model components."""

import pytest

from repro.lattice import get_lattice
from repro.machine import BLUE_GENE_P, BLUE_GENE_Q, roofline
from repro.parallel.schedules import ExchangeSchedule
from repro.perf import (
    CostModel,
    Placement,
    Workload,
    base_params,
    ladder_states,
    simulate_comm_times,
)
from repro.perf.optimization import OptimizationLevel


class TestModelRoofline:
    @pytest.mark.parametrize("machine", [BLUE_GENE_P, BLUE_GENE_Q])
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_cost_model_never_exceeds_roofline(self, machine, lname):
        """No code state may beat the Eq. 5 bound."""
        lat = get_lattice(lname)
        model = CostModel(machine, lat)
        tasks = 4 if machine is BLUE_GENE_P else 32
        placement = Placement(128, tasks)
        workload = Workload(lat, (placement.total_ranks * 48, 64, 64))
        bound = roofline(machine, lat).attainable_mflups * placement.nodes
        for _, params in ladder_states(machine, lat):
            assert model.mflups_aggregate(params, workload, placement) < bound

    def test_cost_model_above_torus_floor_when_tuned(self):
        """The tuned state must clear the §III-C all-remote lower bound."""
        from repro.machine import torus_lower_bound

        lat = get_lattice("D3Q19")
        model = CostModel(BLUE_GENE_P, lat)
        params = dict(ladder_states(BLUE_GENE_P, lat))[OptimizationLevel.SIMD]
        placement = Placement(128, 4)
        workload = Workload(lat, (placement.total_ranks * 64, 128, 128))
        agg = model.mflups_aggregate(params, workload, placement)
        floor = torus_lower_bound(BLUE_GENE_P, lat) * placement.nodes
        assert agg > floor


class TestCostModelVsEventSim:
    def test_sync_term_tracks_event_sim_median(self):
        """The cost model's mean-field sync estimate and the event
        simulator's measured median wait agree within a small factor
        for the same schedule/step scale."""
        lat = get_lattice("D3Q19")
        model = CostModel(BLUE_GENE_P, lat)
        params = base_params(BLUE_GENE_P, lat).replace(
            schedule=ExchangeSchedule.NONBLOCKING_GC, ghost_depth=1
        )
        placement = Placement(1024, 1)
        # pick a workload whose modeled compute is ~0.11 s/step to match
        # the event simulator's base_step_seconds
        workload = Workload(lat, (1024 * 20, 128, 128), steps=300)
        b = model.step_breakdown(params, workload, placement)
        assert b.compute_s == pytest.approx(0.11, rel=0.5)

        sim = simulate_comm_times(
            ExchangeSchedule.NONBLOCKING_GC,
            num_ranks=1024,
            steps=300,
            base_step_seconds=b.compute_s,
            transfer_seconds=0.007,
        )
        model_comm_total = (b.sync_s + b.comm_exposed_s) * 300
        ratio = sim.median / model_comm_total
        assert 0.2 < ratio < 5.0
