"""Tests for the ghost-depth tuner and the hybrid threading sweep."""

import pytest

from repro.errors import OutOfMemoryModelError
from repro.lattice import get_lattice
from repro.machine import BLUE_GENE_P, BLUE_GENE_Q
from repro.perf import (
    Placement,
    Workload,
    best_point,
    depth_table,
    ladder_states,
    sweep_ghost_depth,
    sweep_hybrid,
    tuned_params_for_depth_study,
)
from repro.perf.optimization import OptimizationLevel


@pytest.fixture
def tuned_q19():
    lat = get_lattice("D3Q19")
    return tuned_params_for_depth_study(
        dict(ladder_states(BLUE_GENE_P, lat))[OptimizationLevel.SIMD]
    )


class TestDepthSweep:
    def test_result_structure(self, tuned_q19):
        lat = get_lattice("D3Q19")
        wl = Workload(lat, (32000, 140, 140))
        sweep = sweep_ghost_depth(
            BLUE_GENE_P, lat, tuned_q19, wl, Placement(512, 4)
        )
        assert sweep.depths == (1, 2, 3, 4)
        assert len(sweep.runtimes_s) == 4
        assert sweep.normalized[0] == pytest.approx(1.0)

    def test_small_system_prefers_shallow(self, tuned_q19):
        lat = get_lattice("D3Q19")
        wl = Workload(lat, (8000, 140, 140))
        sweep = sweep_ghost_depth(BLUE_GENE_P, lat, tuned_q19, wl, Placement(512, 4))
        assert sweep.optimal_depth == 1
        norms = [n for n in sweep.normalized if n is not None]
        assert norms == sorted(norms)  # monotonically worse with depth

    def test_large_system_prefers_deep(self, tuned_q19):
        lat = get_lattice("D3Q19")
        wl = Workload(lat, (133000, 140, 140))
        sweep = sweep_ghost_depth(BLUE_GENE_P, lat, tuned_q19, wl, Placement(512, 4))
        assert sweep.optimal_depth >= 2

    def test_oom_at_depth4_for_133k(self, tuned_q19):
        """The paper's Fig. 10a footnote, reproduced by the memory model."""
        lat = get_lattice("D3Q19")
        wl = Workload(lat, (133000, 140, 140))
        sweep = sweep_ghost_depth(BLUE_GENE_P, lat, tuned_q19, wl, Placement(512, 4))
        assert sweep.oom_depths == (4,)
        assert sweep.normalized[3] is None

    def test_nothing_fits_raises(self, tuned_q19):
        lat = get_lattice("D3Q19")
        wl = Workload(lat, (10**6, 600, 600))
        sweep = sweep_ghost_depth(BLUE_GENE_P, lat, tuned_q19, wl, Placement(8, 4))
        with pytest.raises(OutOfMemoryModelError):
            _ = sweep.optimal_depth

    def test_depth_table_monotone(self, tuned_q19):
        lat = get_lattice("D3Q19")
        rows = depth_table(
            BLUE_GENE_P, lat, tuned_q19, (4, 16, 32, 64), (140, 140), Placement(512, 4)
        )
        depths = [d for _, d in rows]
        assert depths == sorted(depths)  # deeper for larger ratios
        assert depths[0] == 1


class TestHybridSweep:
    def _sweep(self, lname, machine, combos, nodes, area, r_per_proc, ref_procs):
        lat = get_lattice(lname)
        params = dict(ladder_states(machine, lat))[OptimizationLevel.SIMD]
        wl = Workload(lat, (r_per_proc * ref_procs, area, area))
        return sweep_hybrid(machine, lat, params, wl, nodes, combos)

    def test_threading_improves_bgp(self):
        pts = self._sweep(
            "D3Q19", BLUE_GENE_P, ((1, 1), (1, 2), (1, 4)), 32, 64, 66, 128
        )
        times = [p.runtime_s for p in pts]
        assert times[0] > times[1] > times[2]

    def test_oversubscription_marked_infeasible(self):
        pts = self._sweep("D3Q19", BLUE_GENE_P, ((4, 4),), 32, 64, 66, 128)
        assert pts[0].runtime_s is None  # 16 threads > 4 hw threads

    def test_labels(self):
        pts = self._sweep("D3Q19", BLUE_GENE_Q, ((4, 16),), 16, 128, 66, 256)
        assert pts[0].label == "4-16"

    def test_best_point_requires_feasible(self):
        pts = self._sweep("D3Q19", BLUE_GENE_P, ((4, 4),), 32, 64, 66, 128)
        with pytest.raises(ValueError):
            best_point(pts)

    def test_best_depth_reported(self):
        pts = self._sweep("D3Q39", BLUE_GENE_P, ((1, 4),), 32, 28, 800, 128)
        assert pts[0].best_depth in (1, 2, 3, 4)
