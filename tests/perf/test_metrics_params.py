"""Tests for metrics (Eq. 4) and code-state parameters."""

import pytest

from repro.parallel.schedules import ExchangeSchedule
from repro.perf import CodeParams, mflups, parallel_efficiency, runtime_for_mflups, speedup


class TestMFlups:
    def test_eq4(self):
        # 300 steps x 1e6 cells in 10 s = 30 MFlup/s
        assert mflups(300, 1_000_000, 10.0) == pytest.approx(30.0)

    def test_roundtrip(self):
        t = runtime_for_mflups(300, 1_000_000, 30.0)
        assert mflups(300, 1_000_000, t) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mflups(10, 100, 0.0)
        with pytest.raises(ValueError):
            mflups(-1, 100, 1.0)
        with pytest.raises(ValueError):
            runtime_for_mflups(10, 100, 0.0)

    def test_speedup(self):
        assert speedup(30.0, 10.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_parallel_efficiency(self):
        assert parallel_efficiency(27.4, 29.8) == pytest.approx(0.9195, rel=1e-3)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0.0)


class TestCodeParams:
    def _valid(self, **over):
        base = dict(
            bandwidth_fraction=0.5,
            issue_fraction=0.3,
            simd_lanes_used=1.0,
            work_overhead=1.2,
            schedule=ExchangeSchedule.BLOCKING,
            ghost_depth=0,
            message_latency_s=50e-6,
            jitter_fraction=0.1,
        )
        base.update(over)
        return CodeParams(**base)

    def test_valid_construction(self):
        p = self._valid()
        assert p.bandwidth_fraction == 0.5

    @pytest.mark.parametrize(
        "field,value",
        [
            ("bandwidth_fraction", 0.0),
            ("bandwidth_fraction", 1.5),
            ("issue_fraction", -0.1),
            ("simd_lanes_used", 0.5),
            ("work_overhead", 0.9),
            ("ghost_depth", -1),
            ("message_latency_s", -1e-6),
            ("jitter_fraction", -0.1),
        ],
    )
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ValueError):
            self._valid(**{field: value})

    def test_replace(self):
        p = self._valid()
        q = p.replace(ghost_depth=2)
        assert q.ghost_depth == 2
        assert p.ghost_depth == 0
