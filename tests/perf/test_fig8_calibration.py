"""Shape tests: the optimization ladder reproduces the paper's Fig. 8.

Tolerances are deliberately bands, not exact values: the paper reports
92%/83% (BG/P) and 85%/79% (BG/Q) of the model bound at full tuning,
with ~3x / 7.5-8x cumulative improvements.
"""

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def fig8a():
    return run_experiment("fig8a")


@pytest.fixture(scope="module")
def fig8b():
    return run_experiment("fig8b")


class TestBGPEndpoints:
    def test_d3q19_final_fraction(self, fig8a):
        # paper: 92% of predicted peak
        assert fig8a.checks["D3Q19/final_over_peak"] == pytest.approx(0.92, abs=0.05)

    def test_d3q39_final_fraction(self, fig8a):
        # paper: 83%
        assert fig8a.checks["D3Q39/final_over_peak"] == pytest.approx(0.83, abs=0.05)

    def test_improvement_about_3x(self, fig8a):
        # paper: "a three-fold improvement on Blue Gene/P"
        assert fig8a.checks["D3Q19/improvement"] == pytest.approx(3.0, abs=0.5)
        assert fig8a.checks["D3Q39/improvement"] == pytest.approx(3.0, abs=0.5)

    def test_monotone_ladder(self, fig8a):
        assert fig8a.checks["D3Q19/monotone"]
        assert fig8a.checks["D3Q39/monotone"]


class TestBGQEndpoints:
    def test_d3q19_final_fraction(self, fig8b):
        # paper: 85%
        assert fig8b.checks["D3Q19/final_over_peak"] == pytest.approx(0.85, abs=0.05)

    def test_d3q39_final_fraction(self, fig8b):
        # paper: 79%
        assert fig8b.checks["D3Q39/final_over_peak"] == pytest.approx(0.79, abs=0.05)

    def test_improvement_about_8x(self, fig8b):
        # paper: "almost an eight-fold improvement on Blue Gene/Q"
        assert fig8b.checks["D3Q19/improvement"] == pytest.approx(8.0, abs=1.0)
        assert fig8b.checks["D3Q39/improvement"] == pytest.approx(7.75, abs=1.0)

    def test_monotone_ladder(self, fig8b):
        assert fig8b.checks["D3Q19/monotone"]
        assert fig8b.checks["D3Q39/monotone"]


class TestPerLevelSignatures:
    """The paper's per-optimization statements."""

    def _gains(self, result, lname):
        series = result.series[lname]
        return {
            level: series[i] / series[i - 1]
            for i, level in enumerate(
                ["GC", "DH", "CF", "LoBr", "NB-C", "GC_C", "SIMD"], start=1
            )
        }

    def test_dh_about_30pct_on_bgp(self, fig8a):
        gains = self._gains(fig8a, "D3Q19")
        assert gains["DH"] == pytest.approx(1.30, abs=0.07)

    def test_dh_about_75pct_on_bgq(self, fig8b):
        gains = self._gains(fig8b, "D3Q19")
        assert gains["DH"] == pytest.approx(1.75, abs=0.08)

    def test_cf_about_2_5x_on_bgq(self, fig8b):
        gains = self._gains(fig8b, "D3Q19")
        assert gains["CF"] == pytest.approx(2.5, abs=0.15)

    def test_simd_stronger_on_bgp_than_bgq_relatively(self, fig8a, fig8b):
        """BG/P intrinsics mattered (scalar code 'cut efficiency in
        half'); on BG/Q 'the intrinsics provided less of an impact'
        relative to what the compiler already achieved."""
        p_gain = self._gains(fig8a, "D3Q19")["SIMD"]
        q_cf = self._gains(fig8b, "D3Q19")["CF"]
        q_simd = self._gains(fig8b, "D3Q19")["SIMD"]
        assert p_gain > 1.1
        assert q_simd < q_cf  # compiler, not intrinsics, was BG/Q's lever

    def test_comm_opts_matter_more_for_d3q39_on_bgp(self, fig8a):
        """§VI: for D3Q39 'the optimizations ... with the largest impact
        were the compiler settings and the separate collide function'."""
        g19 = self._gains(fig8a, "D3Q19")
        g39 = self._gains(fig8a, "D3Q39")
        comm19 = g19["NB-C"] * g19["GC_C"]
        comm39 = g39["NB-C"] * g39["GC_C"]
        assert comm39 > comm19
