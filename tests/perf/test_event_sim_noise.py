"""Tests for the jitter model and the comm-time event simulator."""

import numpy as np

from repro.parallel.schedules import ExchangeSchedule
from repro.perf import JitterModel, simulate_comm_times


class TestJitterModel:
    def test_deterministic(self):
        a = JitterModel(seed=5).compute_times(0.1, 64, 50)
        b = JitterModel(seed=5).compute_times(0.1, 64, 50)
        assert np.array_equal(a, b)

    def test_seed_changes_draws(self):
        a = JitterModel(seed=5).compute_times(0.1, 64, 50)
        b = JitterModel(seed=6).compute_times(0.1, 64, 50)
        assert not np.array_equal(a, b)

    def test_compute_times_exceed_base(self):
        times = JitterModel().compute_times(0.1, 128, 100)
        assert times.shape == (100, 128)
        assert (times >= 0.09).all()  # skew is small, spikes only add

    def test_hotspot_is_contiguous_block(self):
        jm = JitterModel(hotspot_fraction=0.1)
        mask = jm.hotspot_mask(200)
        assert mask.sum() == 20
        # contiguity (modulo wrap): the mask has at most 2 runs
        transitions = int(np.abs(np.diff(mask.astype(int))).sum())
        assert transitions <= 2

    def test_hot_ranks_spike_more(self):
        jm = JitterModel(hotspot_probability=0.5, spike_probability=0.01)
        mask = jm.hotspot_mask(256)
        spikes = jm.spikes(256, 400)
        hot_rate = (spikes[:, mask] > 0).mean()
        cold_rate = (spikes[:, ~mask] > 0).mean()
        assert hot_rate > 10 * cold_rate

    def test_contention_positive_and_clipped(self):
        jm = JitterModel()
        m = jm.message_contention(1024, 0.007)
        assert (m > 0).all()
        assert m.max() <= jm.contention_max_mult * 0.007 + 1e-12


class TestEventSimulator:
    def test_deterministic(self):
        a = simulate_comm_times(ExchangeSchedule.NONBLOCKING, num_ranks=64, steps=50)
        b = simulate_comm_times(ExchangeSchedule.NONBLOCKING, num_ranks=64, steps=50)
        assert np.array_equal(a.comm_seconds, b.comm_seconds)

    def test_summary_ordering(self):
        r = simulate_comm_times(ExchangeSchedule.NONBLOCKING, num_ranks=64, steps=50)
        mn, med, mx = r.summary()
        assert mn <= med <= mx

    def test_schedule_hierarchy(self):
        """The Fig. 9 ordering: NB-C worst, GC-C best (medians)."""
        meds = {}
        for sched in (
            ExchangeSchedule.NONBLOCKING,
            ExchangeSchedule.NONBLOCKING_GC,
            ExchangeSchedule.GC_SPLIT,
        ):
            meds[sched] = simulate_comm_times(
                sched, num_ranks=256, steps=100
            ).median
        assert (
            meds[ExchangeSchedule.NONBLOCKING]
            > meds[ExchangeSchedule.NONBLOCKING_GC]
            > meds[ExchangeSchedule.GC_SPLIT]
        )

    def test_blocking_worst_of_all(self):
        blocking = simulate_comm_times(ExchangeSchedule.BLOCKING, num_ranks=128, steps=60)
        nbc = simulate_comm_times(ExchangeSchedule.NONBLOCKING, num_ranks=128, steps=60)
        assert blocking.median >= nbc.median

    def test_deep_halo_reduces_comm_time(self):
        shallow = simulate_comm_times(
            ExchangeSchedule.NONBLOCKING_GC, num_ranks=128, steps=120, ghost_depth=1
        )
        deep = simulate_comm_times(
            ExchangeSchedule.NONBLOCKING_GC, num_ranks=128, steps=120, ghost_depth=3
        )
        assert deep.median < shallow.median

    def test_elapsed_exceeds_compute_floor(self):
        r = simulate_comm_times(
            ExchangeSchedule.NONBLOCKING, num_ranks=32, steps=50, base_step_seconds=0.1
        )
        assert r.elapsed_seconds >= 50 * 0.1

    def test_larger_transfers_cost_more(self):
        small = simulate_comm_times(
            ExchangeSchedule.NONBLOCKING, num_ranks=64, steps=60, transfer_seconds=0.001
        )
        large = simulate_comm_times(
            ExchangeSchedule.NONBLOCKING, num_ranks=64, steps=60, transfer_seconds=0.02
        )
        assert large.median > small.median
